// ServingService: the overload-safe front end in front of the
// Optimizer/MatchingService pipeline. Everything below this layer
// assumes one well-behaved caller per query; this layer is where an
// open-world stream of requests meets bounded resources, so overload is
// a first-class outcome rather than an accident:
//
//   - a bounded admission queue with queue-deadline propagation: the
//     absolute deadline is computed once at Submit from the request's
//     relative deadline, so time spent queued is charged against the
//     query's budget naturally and never double-counted;
//   - per-tenant token-bucket quotas plus a global in-flight limit, with
//     a machine-readable AdmissionOutcome and a retry_after hint on
//     every shed;
//   - an OverloadController stepping through degradation tiers (full →
//     counters-only tracing → reduced candidate caps → filter-tree-only
//     probes) with hysteretic recovery;
//   - graceful drain: in-flight queries complete, new submissions get a
//     terminal kShedShutdown, and no ticket is ever left unanswered.
//
// Contract: every Submit() returns a ticket that receives EXACTLY ONE
// terminal result — admitted-and-answered or shed-with-guidance — no
// matter which failpoints fire or when Drain() races the submission.
// The chaos-soak suite (tests/serving_chaos_test.cc) holds the service
// to that contract under TSan.
//
// Lock order: mu_ (admission/queue state) is self-contained; a ticket's
// own lock is only taken with mu_ released. DESIGN.md §13 documents the
// full protocol.

#ifndef MVOPT_SERVE_SERVING_SERVICE_H_
#define MVOPT_SERVE_SERVING_SERVICE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/query_budget.h"
#include "common/thread_annotations.h"
#include "observe/observe.h"
#include "optimizer/optimizer.h"
#include "query/spjg.h"
#include "rewrite/substitute_source.h"
#include "serve/admission.h"
#include "serve/overload_controller.h"

namespace mvopt {

class ThreadPool;

/// One query submission. The query is copied into the ticket (SpjgQuery
/// is shared_ptr-backed plain data), so the caller's copy may go out of
/// scope before the ticket completes.
struct ServeRequest {
  SpjgQuery query;
  /// Tenant key for quota accounting; "" is a valid tenant.
  std::string tenant;
  /// Relative deadline in seconds; <= 0 means no deadline. Converted to
  /// an absolute QueryBudget deadline at Submit, so queue wait counts
  /// against it.
  double deadline_seconds = 0;
  /// Staleness tolerance in update epochs (see QueryBudget).
  uint64_t max_staleness = 0;
  /// When set, an admitted answer that uses no materialized view is
  /// reported as ServeErrorKind::kVerifyRejected (deterministic — the
  /// retry policy never resubmits it).
  bool require_view_answer = false;
  /// Per-query RNG seed threaded into the QueryContext.
  uint64_t rng_seed = 0x9e3779b97f4a7c15ull;
};

/// Terminal result delivered to a ticket exactly once.
struct ServeResult {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  /// Tier the query executed at (meaningful only when admitted).
  ServingTier tier = ServingTier::kFull;
  /// Backoff guidance on retryable sheds, in seconds (clamped to the
  /// service's [min,max] window); 0 on success and terminal outcomes.
  double retry_after_seconds = 0;
  /// Time the query spent in the admission queue (admitted only).
  double queue_seconds = 0;
  ServeErrorKind error_kind = ServeErrorKind::kNone;
  /// Human-readable detail for error_kind != kNone.
  std::string error;
  /// True when `opt` carries a plan (admitted, executed cleanly).
  bool has_plan = false;
  OptimizationResult opt;
};

/// Completion handle for one submission. Submit() always returns a
/// ticket; Wait() blocks until the terminal result is published (sheds
/// are published before Submit returns, so Wait never blocks for them).
class ServeTicket {
 public:
  /// Returns a copy so the `service.Submit(req)->Wait()` idiom is safe:
  /// a reference into the ticket would dangle once the temporary
  /// shared_ptr releases the last ownership of it.
  ServeResult Wait() MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!done_) cv_.Wait(lock);
    return result_;
  }
  bool done() const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return done_;
  }

 private:
  friend class ServingService;

  // Immutable request payload, written once in Submit before the ticket
  // is shared.
  ServeRequest request_;
  bool has_deadline_ = false;
  QueryBudget::Clock::time_point deadline_{};
  QueryBudget::Clock::time_point enqueue_time_{};

  /// Publish guard: the first fetch_add wins; any later publish attempt
  /// is counted as a duplicate in ServingStats instead of overwriting
  /// the result (asserts are compiled out in release builds, so the
  /// exactly-once property must be *observable*, not just asserted).
  std::atomic<int> publishes_{0};

  mutable Mutex mu_;
  CondVar cv_;
  bool done_ MVOPT_GUARDED_BY(mu_) = false;
  ServeResult result_ MVOPT_GUARDED_BY(mu_);
};

/// What the front end does with a query that routes to a quarantined
/// catalog shard (sharded catalogs only; see shard/ and DESIGN.md §14).
enum class PartialCatalogPolicy {
  /// Serve it: healthy shards answer, the result carries the sticky
  /// kPartialCatalog degradation advisory. The default — partial
  /// availability is the point of shard isolation.
  kDegrade = 0,
  /// Shed it with kShedPartialCatalog (retryable — the scrubber may
  /// readmit the shard). For callers that require complete answers.
  kShed,
};

struct ServingOptions {
  /// Worker threads executing admitted queries (clamped to >= 1; the
  /// queue needs an independent consumer for drain to terminate).
  int num_workers = 2;
  /// Bounded admission queue. 0 is legal and sheds every submission
  /// with kShedQueueFull — the degenerate "serve nothing" configuration
  /// the edge-case tests pin down.
  size_t queue_capacity = 64;
  /// Global limit on queries admitted but not yet answered (queued +
  /// executing). 0 = unlimited. Breaches shed with kShedOverload.
  int64_t max_in_flight = 0;
  /// Per-tenant quota applied to tenants without an explicit
  /// SetTenantQuota. nullopt = unknown tenants are unlimited.
  std::optional<TokenBucketConfig> default_quota;
  OverloadControllerConfig overload;
  /// Tier the controller starts at (tests pin degraded tiers directly).
  ServingTier initial_tier = ServingTier::kFull;
  /// Candidate cap applied at ServingTier::kReducedCandidates.
  int64_t reduced_candidate_cap = 8;
  /// Clamp window for retry_after hints on retryable sheds.
  double min_retry_after_seconds = 0.001;
  double max_retry_after_seconds = 5.0;
  /// Fallback per-query execution estimate (seconds) used for
  /// retry_after hints until the EWMA has a real sample.
  double default_exec_seconds_estimate = 0.005;
  /// Options for the service-owned Optimizer (including its observe
  /// knob); the MatchingService passed to the constructor carries its
  /// own.
  OptimizerOptions optimizer;
  /// Serving-layer observability (queue gauges, shed counters, wait
  /// histograms). Independent of optimizer.observe.
  ObserveOptions observe;
  /// Shared match-stage pool handed to every query's context (may be
  /// null = serial matching). Borrowed; must outlive the service.
  ThreadPool* match_pool = nullptr;
  /// Clock used for token-bucket refill only (never for query
  /// deadlines, which must track the real QueryBudget clock). Tests
  /// inject a manual clock to pin quota decisions; null = steady_clock.
  std::function<TokenBucket::Clock::time_point()> quota_clock;
  /// Test seam: invoked by the worker after dequeue, before execution.
  /// Lets tests hold a worker mid-query (to fill the queue or race a
  /// drain deterministically). Runs with no service lock held.
  std::function<void(const ServeRequest&)> pre_execute_hook;
  /// Shard-health probe: returns true when a catalog shard the query
  /// routes to is unavailable (wire to
  /// ShardedCatalogService::AnyRoutedUnhealthy). Null = never partial
  /// (the single-store MatchingService). Called under the admission
  /// lock — must be cheap and must not call back into the service.
  std::function<bool(const SpjgQuery&)> partial_catalog_probe;
  PartialCatalogPolicy partial_catalog = PartialCatalogPolicy::kDegrade;
  /// retry_after hint on kShedPartialCatalog (scrub-backoff scale, not
  /// backlog turnover — the queue is irrelevant to a quarantined shard).
  double partial_catalog_retry_seconds = 0.05;
};

/// Monotonic totals since construction; snapshot via stats().
struct ServingStats {
  int64_t submitted = 0;
  /// Terminal outcomes by AdmissionOutcome index; outcomes[0]
  /// (kAdmitted) counts queries answered after execution.
  std::array<int64_t, kNumAdmissionOutcomes> outcomes{};
  /// Admitted queries that finished execution, by error kind.
  std::array<int64_t, kNumServeErrorKinds> completions{};
  /// Publish attempts that lost the exactly-once race (must stay 0; the
  /// chaos suite fails the run otherwise).
  int64_t duplicate_publishes = 0;
  /// Primary publish path failures recovered by the fallback path.
  int64_t publish_retries = 0;
  int64_t tier_escalations = 0;
  int64_t tier_recoveries = 0;
  int64_t max_queue_depth = 0;
  double ewma_exec_seconds = 0;
};

class ServingService {
 public:
  /// The catalog/matching pipeline is borrowed and must outlive the
  /// service. `matching` may be null (serving without materialized
  /// views, as with the bare Optimizer) or any SubstituteSource — the
  /// single-store MatchingService or the sharded catalog.
  ServingService(const Catalog* catalog, SubstituteSource* matching,
                 ServingOptions options = {});
  ~ServingService();

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  /// Admits or sheds one query. Never blocks on execution: sheds are
  /// decided and published synchronously; admitted queries are answered
  /// by a worker, observable via the returned ticket. Safe from any
  /// thread, including concurrently with Drain().
  std::shared_ptr<ServeTicket> Submit(ServeRequest request)
      MVOPT_EXCLUDES(mu_);

  /// Installs or replaces one tenant's quota at runtime (administrative
  /// reset: the tenant starts the new config with a full burst). Takes
  /// effect for the next admission decision.
  void SetTenantQuota(const std::string& tenant, TokenBucketConfig config)
      MVOPT_EXCLUDES(mu_);

  /// Graceful shutdown: stops admitting (new submissions shed with
  /// kShedShutdown), lets workers finish every already-admitted query,
  /// then joins them. Idempotent; concurrent callers block until the
  /// drain completes. Must not be called from a worker-executed query.
  void Drain() MVOPT_EXCLUDES(mu_);

  ServingStats stats() const MVOPT_EXCLUDES(mu_);
  ServingTier tier() const { return controller_.tier(); }
  size_t queue_depth() const MVOPT_EXCLUDES(mu_);
  bool draining() const MVOPT_EXCLUDES(mu_);

 private:
  enum class State { kRunning, kDraining, kStopped };

  void WorkerLoop() MVOPT_EXCLUDES(mu_);
  /// Executes one admitted query at `tier` and returns its result
  /// (exceptions → kTransient; never throws).
  ServeResult ExecuteQuery(const ServeTicket& ticket, ServingTier tier,
                           double queue_seconds);
  /// Delivers `result` to `ticket` exactly once; loses the race →
  /// duplicate_publishes. Call with mu_ released.
  void Publish(const std::shared_ptr<ServeTicket>& ticket, ServeResult result)
      MVOPT_EXCLUDES(mu_);
  /// Terminal-outcome bookkeeping shared by every publish site.
  void RecordOutcome(const ServeResult& result) MVOPT_EXCLUDES(mu_);

  /// Feeds the controller one pressure sample and mirrors tier moves
  /// into stats/metrics.
  void UpdateControllerLocked(double depth_ratio, double queue_wait_seconds)
      MVOPT_REQUIRES(mu_);
  /// Tenant's bucket, creating it from default_quota on first sight;
  /// null = tenant is unlimited.
  TokenBucket* TenantBucketLocked(const std::string& tenant)
      MVOPT_REQUIRES(mu_);

  TokenBucket::Clock::time_point QuotaNow() const;
  double ClampRetryAfter(double seconds) const;
  /// Estimated seconds until the queue/in-flight backlog turns over.
  double BacklogRetryAfterLocked(int64_t backlog) const
      MVOPT_REQUIRES(mu_);
  void RegisterMetrics();

  const Catalog* catalog_;
  SubstituteSource* matching_;
  ServingOptions options_;
  Optimizer optimizer_;
  OverloadController controller_;

  mutable Mutex mu_;
  CondVar queue_cv_;    // workers wait here for queue activity / drain
  CondVar stopped_cv_;  // Drain() latecomers wait here for kStopped
  State state_ MVOPT_GUARDED_BY(mu_) = State::kRunning;
  std::deque<std::shared_ptr<ServeTicket>> queue_ MVOPT_GUARDED_BY(mu_);
  int64_t in_flight_ MVOPT_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, TokenBucket> buckets_ MVOPT_GUARDED_BY(mu_);
  /// EWMA of execution seconds feeding retry_after estimates.
  double ewma_exec_seconds_ MVOPT_GUARDED_BY(mu_) = 0;
  bool has_exec_sample_ MVOPT_GUARDED_BY(mu_) = false;
  /// Queue wait of the most recently dequeued query (controller input).
  double last_queue_wait_seconds_ MVOPT_GUARDED_BY(mu_) = 0;

  // Stats. Plain fields are guarded; duplicate_publishes is atomic
  // because the losing publisher records it without mu_.
  ServingStats stats_ MVOPT_GUARDED_BY(mu_);
  std::atomic<int64_t> duplicate_publishes_{0};

  /// Cached registry instruments; all null when counters are off.
  struct ServeMetrics {
    Counter* submitted = nullptr;
    std::array<Counter*, kNumAdmissionOutcomes> outcomes{};
    std::array<Counter*, kNumServeErrorKinds> completions{};
    Counter* publish_retries = nullptr;
    Counter* duplicate_publishes = nullptr;
    Counter* tier_escalations = nullptr;
    Counter* tier_recoveries = nullptr;
    Gauge* queue_depth = nullptr;
    Gauge* in_flight = nullptr;
    Gauge* tier = nullptr;
    Histogram* queue_wait = nullptr;
    Histogram* exec_latency = nullptr;
  };
  ServeMetrics metrics_;

  /// Started last in the constructor, joined by Drain; immutable in
  /// between.
  std::vector<std::thread> workers_;
};

}  // namespace mvopt

#endif  // MVOPT_SERVE_SERVING_SERVICE_H_
