// Overload degradation-tier controller for the serving front end.
//
// Under sustained pressure the service steps through serving tiers,
// each cheaper than the last, instead of shedding everything at a
// cliff: full pipeline → counters-only tracing → reduced candidate
// caps → filter-tree-only probes. Recovery is hysteretic: pressure
// must stay below the low-water mark for `recover_after` consecutive
// evaluations before the controller steps back one tier, so a brief
// lull never flaps the tier (the same consecutive-tick convention the
// budget's DegradationReason machinery uses for stickiness).
//
// The controller itself is a small pure state machine: Update() is
// called under the service's admission lock with the current pressure
// signals, and tier() is a lock-free atomic read so workers can pick
// the tier for a query without touching the lock.

#ifndef MVOPT_SERVE_OVERLOAD_CONTROLLER_H_
#define MVOPT_SERVE_OVERLOAD_CONTROLLER_H_

#include <atomic>
#include <cstdint>

#include "common/enum_coverage.h"

namespace mvopt {

/// Degradation tier an admitted query executes at. Ordered: higher
/// values do strictly less work per query.
enum class ServingTier {
  kFull = 0,           ///< full pipeline: tracing, full candidate caps
  kCountersOnly,       ///< per-query traces suppressed; counters remain
  kReducedCandidates,  ///< + candidate cap clamped to a small constant
  kFilterProbeOnly,    ///< + cap 0: filter-tree probe, no match stage
};

inline constexpr int kNumServingTiers = 4;
static_assert(static_cast<int>(ServingTier::kFilterProbeOnly) + 1 ==
                  kNumServingTiers,
              "kNumServingTiers must cover every ServingTier");

constexpr const char* ServingTierName(ServingTier tier) {
  switch (tier) {
    case ServingTier::kFull:
      return "full";
    case ServingTier::kCountersOnly:
      return "counters-only";
    case ServingTier::kReducedCandidates:
      return "reduced-candidates";
    case ServingTier::kFilterProbeOnly:
      return "filter-probe-only";
  }
  return "?";
}

static_assert(
    AllEnumeratorsNamed<ServingTier, ServingTierName>(kNumServingTiers),
    "every ServingTier needs a ServingTierName entry");

struct OverloadControllerConfig {
  /// Queue-depth ratio (depth / capacity) at or above which an
  /// evaluation counts toward escalation.
  double high_water = 0.75;
  /// Ratio at or below which an evaluation counts toward recovery.
  /// Between the marks both streaks reset (dead band).
  double low_water = 0.25;
  /// Queue-wait signal: an evaluation whose observed queue wait exceeds
  /// this also counts toward escalation, even with a shallow queue
  /// (slow-consumer overload). <= 0 disables the wait signal.
  double queue_wait_high_seconds = 0.0;
  /// Consecutive high evaluations before stepping one tier down the
  /// degradation ladder.
  int escalate_after = 3;
  /// Consecutive low evaluations before stepping one tier back up.
  int recover_after = 8;
};

/// Hysteretic tier state machine. Update() must be externally
/// serialized (the service calls it under its admission lock); tier()
/// is safe from any thread.
class OverloadController {
 public:
  explicit OverloadController(OverloadControllerConfig config = {},
                              ServingTier initial = ServingTier::kFull)
      : config_(config), tier_(initial) {}

  /// Feeds one pressure evaluation. `depth_ratio` is queue depth over
  /// capacity (0 when the queue is unbounded-empty); `queue_wait_seconds`
  /// is the queue wait of the most recently dequeued query. Returns the
  /// tier in force after the evaluation.
  ServingTier Update(double depth_ratio, double queue_wait_seconds) {
    const bool high =
        depth_ratio >= config_.high_water ||
        (config_.queue_wait_high_seconds > 0 &&
         queue_wait_seconds > config_.queue_wait_high_seconds);
    const bool low = !high && depth_ratio <= config_.low_water;
    ServingTier tier = tier_.load(std::memory_order_relaxed);
    if (high) {
      recover_streak_ = 0;
      if (++escalate_streak_ >= config_.escalate_after &&
          tier != ServingTier::kFilterProbeOnly) {
        tier = static_cast<ServingTier>(static_cast<int>(tier) + 1);
        tier_.store(tier, std::memory_order_relaxed);
        ++escalations_;
        escalate_streak_ = 0;
      }
    } else if (low) {
      escalate_streak_ = 0;
      if (++recover_streak_ >= config_.recover_after &&
          tier != ServingTier::kFull) {
        tier = static_cast<ServingTier>(static_cast<int>(tier) - 1);
        tier_.store(tier, std::memory_order_relaxed);
        ++recoveries_;
        recover_streak_ = 0;
      }
    } else {
      // Dead band: neither streak advances, and both restart — pressure
      // must be *consecutively* high or low to move the tier.
      escalate_streak_ = 0;
      recover_streak_ = 0;
    }
    return tier;
  }

  /// Current tier; lock-free, any thread.
  ServingTier tier() const { return tier_.load(std::memory_order_relaxed); }

  int64_t escalations() const { return escalations_; }
  int64_t recoveries() const { return recoveries_; }
  const OverloadControllerConfig& config() const { return config_; }

 private:
  OverloadControllerConfig config_;
  std::atomic<ServingTier> tier_;
  // Streaks and totals are only touched inside Update() (externally
  // serialized); totals are read from stats paths that hold the same
  // lock the service calls Update() under.
  int escalate_streak_ = 0;
  int recover_streak_ = 0;
  int64_t escalations_ = 0;
  int64_t recoveries_ = 0;
};

}  // namespace mvopt

#endif  // MVOPT_SERVE_OVERLOAD_CONTROLLER_H_
