// Admission-control primitives for the serving front end
// (serve/serving_service.h): the machine-readable admission verdict, the
// per-tenant token bucket, and the client-side retry policy.
//
// Layering: this header sits below serving_service.h and depends only on
// common/. TokenBucket is deliberately not internally synchronized — the
// ServingService guards its buckets with the admission lock, and tests
// drive one directly with a manual clock. RetryPolicy is per-client
// state (one instance per retry loop) and is not thread-safe either.

#ifndef MVOPT_SERVE_ADMISSION_H_
#define MVOPT_SERVE_ADMISSION_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/enum_coverage.h"
#include "common/rng.h"

namespace mvopt {

/// Terminal admission verdict for one submitted query. Every Submit
/// yields exactly one of these on its ticket; kAdmitted means the query
/// was (or will be) executed and answered, every kShed* means it was
/// rejected without execution, with `retry_after` guidance.
enum class AdmissionOutcome {
  kAdmitted = 0,        ///< executed; the ticket carries the result
  kShedQueueFull,       ///< bounded admission queue at capacity
  kShedQuota,           ///< tenant token bucket empty
  kShedOverload,        ///< global in-flight limit / overload protection
  kShedShutdown,        ///< draining or stopped; terminal, do not retry
  kShedPartialCatalog,  ///< a catalog shard the query routes to is
                        ///< quarantined and the service is configured to
                        ///< shed rather than serve partial answers;
                        ///< retryable — the scrubber may readmit it
};

inline constexpr int kNumAdmissionOutcomes = 6;
static_assert(static_cast<int>(AdmissionOutcome::kShedPartialCatalog) + 1 ==
                  kNumAdmissionOutcomes,
              "kNumAdmissionOutcomes must cover every AdmissionOutcome");

constexpr const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kShedQueueFull:
      return "shed-queue-full";
    case AdmissionOutcome::kShedQuota:
      return "shed-quota";
    case AdmissionOutcome::kShedOverload:
      return "shed-overload";
    case AdmissionOutcome::kShedShutdown:
      return "shed-shutdown";
    case AdmissionOutcome::kShedPartialCatalog:
      return "shed-partial-catalog";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<AdmissionOutcome, AdmissionOutcomeName>(
                  kNumAdmissionOutcomes),
              "every AdmissionOutcome needs an AdmissionOutcomeName entry");

constexpr bool IsShed(AdmissionOutcome outcome) {
  return outcome != AdmissionOutcome::kAdmitted;
}

/// Sheds a client may retry after backing off. Shutdown is terminal —
/// the service will not come back for this process — and kAdmitted is
/// already answered.
constexpr bool IsRetryableOutcome(AdmissionOutcome outcome) {
  return outcome == AdmissionOutcome::kShedQueueFull ||
         outcome == AdmissionOutcome::kShedQuota ||
         outcome == AdmissionOutcome::kShedOverload ||
         outcome == AdmissionOutcome::kShedPartialCatalog;
}

/// How an admitted query's execution ended (ServeResult::error_kind).
enum class ServeErrorKind {
  kNone = 0,        ///< executed cleanly
  kTransient,       ///< worker crash / injected fault; safe to resubmit
  kVerifyRejected,  ///< enforce-mode verification left no acceptable
                    ///< answer; deterministic, never retried
};

inline constexpr int kNumServeErrorKinds = 3;
static_assert(static_cast<int>(ServeErrorKind::kVerifyRejected) + 1 ==
                  kNumServeErrorKinds,
              "kNumServeErrorKinds must cover every ServeErrorKind");

constexpr const char* ServeErrorKindName(ServeErrorKind kind) {
  switch (kind) {
    case ServeErrorKind::kNone:
      return "none";
    case ServeErrorKind::kTransient:
      return "transient";
    case ServeErrorKind::kVerifyRejected:
      return "verify-rejected";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<ServeErrorKind, ServeErrorKindName>(
                  kNumServeErrorKinds),
              "every ServeErrorKind needs a ServeErrorKindName entry");

// --- token bucket ----------------------------------------------------------

struct TokenBucketConfig {
  /// Maximum burst (tokens the bucket can hold). 0 admits nothing.
  double capacity = 1;
  /// Sustained refill rate in tokens per second. 0 = no refill: the
  /// initial burst is all the tenant ever gets.
  double refill_per_second = 1;
};

/// Classic token bucket with fractional accumulation. The caller passes
/// `now` explicitly, so admission decisions are reproducible from a
/// manual clock in tests and the bucket itself never reads a clock.
/// NOT thread-safe; guard externally (the ServingService holds its
/// admission lock across every call).
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket(TokenBucketConfig config, Clock::time_point now)
      : config_(config), tokens_(config.capacity), last_(now) {}

  /// Takes one token if available. On refusal, sets *retry_after_seconds
  /// (when non-null) to the time until the next whole token — infinity
  /// when the bucket can never reach one (no refill, or a capacity below
  /// a whole token: refills clamp at capacity, so waiting
  /// (1 - tokens)/rate would never actually produce a token and a finite
  /// hint would send the client into a futile retry loop). Callers clamp.
  bool TryAcquire(Clock::time_point now, double* retry_after_seconds) {
    Refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    if (retry_after_seconds != nullptr) {
      const bool can_reach_one =
          config_.refill_per_second > 0 && config_.capacity >= 1.0;
      *retry_after_seconds =
          can_reach_one ? (1.0 - tokens_) / config_.refill_per_second
                        : std::numeric_limits<double>::infinity();
    }
    return false;
  }

  /// Returns one token (admission failed after the token was consumed —
  /// e.g. an enqueue fault). Clamped to capacity.
  void Refund() { tokens_ = std::min(config_.capacity, tokens_ + 1.0); }

  /// Runtime quota flip: replaces the config, clamping the accumulated
  /// tokens into the new capacity (a shrink takes effect immediately, a
  /// grow only refills at the new rate — no free burst).
  void Reconfigure(TokenBucketConfig config, Clock::time_point now) {
    Refill(now);
    config_ = config;
    tokens_ = std::min(tokens_, config_.capacity);
  }

  /// Current level after refilling to `now` (tests / introspection).
  double tokens(Clock::time_point now) {
    Refill(now);
    return tokens_;
  }

  const TokenBucketConfig& config() const { return config_; }

 private:
  void Refill(Clock::time_point now) {
    if (now <= last_) return;  // manual clocks may repeat a reading
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(config_.capacity,
                       tokens_ + elapsed * config_.refill_per_second);
  }

  TokenBucketConfig config_;
  double tokens_;
  Clock::time_point last_;
};

// --- retry policy ----------------------------------------------------------

struct RetryPolicyConfig {
  /// Total attempts allowed, including the first submission. When the
  /// budget is spent, NextDelay reports "stop" even for retryable sheds.
  int max_attempts = 4;
  double initial_backoff_seconds = 0.01;
  double max_backoff_seconds = 2.0;
  double backoff_multiplier = 2.0;
  /// Jitter fraction f: each delay is drawn uniformly from
  /// [backoff*(1-f), backoff*(1+f)) by a deterministic seeded stream.
  double jitter = 0.25;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Client-side retry loop state: capped exponential backoff with
/// deterministic seeded jitter (common/rng.h — same seed, same delays).
/// Retries only retryable sheds and transient execution errors; never
/// retries success, shutdown, or enforce-mode verification failures
/// (those are deterministic — resubmitting cannot change the verdict).
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = {})
      : config_(config),
        rng_(config.seed),
        backoff_(config.initial_backoff_seconds) {}

  /// Feed one attempt's terminal outcome. Returns the delay in seconds
  /// to wait before the next attempt, or nullopt to stop (done, not
  /// retryable, or retry budget exhausted). The server's retry_after
  /// hint acts as a floor under the backoff.
  std::optional<double> NextDelay(AdmissionOutcome outcome,
                                  ServeErrorKind error_kind,
                                  double retry_after_hint_seconds) {
    ++attempts_;
    const bool retryable =
        IsRetryableOutcome(outcome) ||
        (outcome == AdmissionOutcome::kAdmitted &&
         error_kind == ServeErrorKind::kTransient);
    if (!retryable) return std::nullopt;
    if (attempts_ >= config_.max_attempts) return std::nullopt;
    const double base = backoff_;
    backoff_ = std::min(backoff_ * config_.backoff_multiplier,
                        config_.max_backoff_seconds);
    const double f = config_.jitter;
    const double jittered = base * (1.0 - f + rng_.NextDouble() * 2.0 * f);
    return std::max(jittered, retry_after_hint_seconds);
  }

  int attempts() const { return attempts_; }

  void Reset() {
    attempts_ = 0;
    backoff_ = config_.initial_backoff_seconds;
    rng_ = Rng(config_.seed);
  }

 private:
  RetryPolicyConfig config_;
  Rng rng_;
  int attempts_ = 0;
  double backoff_;
};

}  // namespace mvopt

#endif  // MVOPT_SERVE_ADMISSION_H_
