#include "serve/serving_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "common/thread_pool.h"

namespace mvopt {

namespace {

/// EWMA smoothing for the execution-time estimate feeding retry_after.
constexpr double kEwmaAlpha = 0.2;

double SecondsBetween(QueryBudget::Clock::time_point from,
                      QueryBudget::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ServingService::ServingService(const Catalog* catalog,
                               SubstituteSource* matching,
                               ServingOptions options)
    : catalog_(catalog),
      matching_(matching),
      options_(std::move(options)),
      optimizer_(catalog_, matching_, options_.optimizer),
      controller_(options_.overload, options_.initial_tier) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  RegisterMetrics();
  if (metrics_.tier != nullptr) {
    metrics_.tier->Set(static_cast<int64_t>(options_.initial_tier));
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingService::~ServingService() { Drain(); }

void ServingService::RegisterMetrics() {
  if (!options_.observe.counters_enabled()) return;
  MetricsRegistry* reg = options_.observe.registry;
  metrics_.submitted = reg->FindOrCreateCounter(
      "mvopt_serve_submitted_total", "Queries submitted to the serving layer");
  for (int i = 0; i < kNumAdmissionOutcomes; ++i) {
    metrics_.outcomes[static_cast<size_t>(i)] = reg->FindOrCreateCounter(
        "mvopt_serve_outcomes_total", "Terminal admission outcomes",
        {{"outcome", AdmissionOutcomeName(static_cast<AdmissionOutcome>(i))}});
  }
  for (int i = 0; i < kNumServeErrorKinds; ++i) {
    metrics_.completions[static_cast<size_t>(i)] = reg->FindOrCreateCounter(
        "mvopt_serve_completions_total",
        "Admitted queries answered, by execution error kind",
        {{"kind", ServeErrorKindName(static_cast<ServeErrorKind>(i))}});
  }
  metrics_.publish_retries = reg->FindOrCreateCounter(
      "mvopt_serve_publish_retries_total",
      "Primary result-publish failures recovered by the fallback path");
  metrics_.duplicate_publishes = reg->FindOrCreateCounter(
      "mvopt_serve_duplicate_publishes_total",
      "Publish attempts that lost the exactly-once race (must stay 0)");
  metrics_.tier_escalations = reg->FindOrCreateCounter(
      "mvopt_serve_tier_escalations_total",
      "Overload-controller steps down the degradation ladder");
  metrics_.tier_recoveries = reg->FindOrCreateCounter(
      "mvopt_serve_tier_recoveries_total",
      "Overload-controller steps back toward full service");
  metrics_.queue_depth = reg->FindOrCreateGauge(
      "mvopt_serve_queue_depth", "Admitted queries waiting for a worker");
  metrics_.in_flight = reg->FindOrCreateGauge(
      "mvopt_serve_in_flight", "Admitted queries not yet answered");
  metrics_.tier = reg->FindOrCreateGauge(
      "mvopt_serve_tier", "Current serving tier (0=full .. 3=filter-probe)");
  metrics_.queue_wait = reg->FindOrCreateHistogram(
      "mvopt_serve_queue_wait_seconds", "Time admitted queries spent queued");
  metrics_.exec_latency = reg->FindOrCreateHistogram(
      "mvopt_serve_exec_seconds", "Per-query execution time in the worker");
}

std::shared_ptr<ServeTicket> ServingService::Submit(ServeRequest request) {
  auto ticket = std::make_shared<ServeTicket>();
  ticket->request_ = std::move(request);
  const ServeRequest& req = ticket->request_;
  if (req.deadline_seconds > 0) {
    // The absolute deadline is fixed HERE, from the budget's own clock,
    // so queue wait is charged against it naturally and execution never
    // re-adds time already spent queued (no double-counting).
    ticket->has_deadline_ = true;
    ticket->deadline_ =
        QueryBudget::Clock::now() +
        std::chrono::duration_cast<QueryBudget::Clock::duration>(
            std::chrono::duration<double>(req.deadline_seconds));
  }

  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  double retry_after = 0;
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
    if (metrics_.submitted != nullptr) metrics_.submitted->Increment();
    // Checks are ordered cheapest-first and consume nothing until the
    // query is certain to be enqueued: the tenant token is taken LAST,
    // so a full queue never burns quota.
    if (MVOPT_FAILPOINT_HIT("serving.admit")) {
      outcome = AdmissionOutcome::kShedOverload;
      retry_after = BacklogRetryAfterLocked(std::max<int64_t>(in_flight_, 1));
    } else if (state_ != State::kRunning) {
      outcome = AdmissionOutcome::kShedShutdown;
    } else if (queue_.size() >= options_.queue_capacity) {
      outcome = AdmissionOutcome::kShedQueueFull;
      retry_after =
          BacklogRetryAfterLocked(static_cast<int64_t>(queue_.size()) + 1);
    } else if (options_.max_in_flight > 0 &&
               in_flight_ >= options_.max_in_flight) {
      outcome = AdmissionOutcome::kShedOverload;
      retry_after = BacklogRetryAfterLocked(in_flight_);
    } else if (options_.partial_catalog == PartialCatalogPolicy::kShed &&
               options_.partial_catalog_probe &&
               options_.partial_catalog_probe(req.query)) {
      // A shard this query routes to is quarantined and the caller
      // demands complete answers. Still before the bucket: the tenant
      // pays no quota for an answer the catalog cannot give.
      outcome = AdmissionOutcome::kShedPartialCatalog;
      retry_after = options_.partial_catalog_retry_seconds;
    } else {
      TokenBucket* bucket = TenantBucketLocked(req.tenant);
      double quota_wait = 0;
      if (bucket != nullptr && !bucket->TryAcquire(QuotaNow(), &quota_wait)) {
        outcome = AdmissionOutcome::kShedQuota;
        retry_after = quota_wait;
      } else {
        try {
          MVOPT_FAILPOINT("serving.enqueue");
          ticket->enqueue_time_ = QueryBudget::Clock::now();
          queue_.push_back(ticket);
          ++in_flight_;
          stats_.max_queue_depth = std::max(
              stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
          if (metrics_.queue_depth != nullptr) {
            metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
          }
          if (metrics_.in_flight != nullptr) {
            metrics_.in_flight->Set(in_flight_);
          }
        } catch (const FailpointTriggered&) {
          // Admission already consumed the tenant token; give it back —
          // the tenant must not pay for a query the service lost.
          if (bucket != nullptr) bucket->Refund();
          outcome = AdmissionOutcome::kShedOverload;
          retry_after =
              BacklogRetryAfterLocked(std::max<int64_t>(in_flight_, 1));
        }
      }
    }
    const double ratio =
        options_.queue_capacity > 0
            ? static_cast<double>(queue_.size()) /
                  static_cast<double>(options_.queue_capacity)
            : 0.0;
    UpdateControllerLocked(ratio, last_queue_wait_seconds_);
  }

  if (outcome == AdmissionOutcome::kAdmitted) {
    queue_cv_.NotifyOne();
  } else {
    ServeResult result;
    result.outcome = outcome;
    result.retry_after_seconds =
        IsRetryableOutcome(outcome) ? ClampRetryAfter(retry_after) : 0;
    Publish(ticket, std::move(result));
  }
  return ticket;
}

void ServingService::SetTenantQuota(const std::string& tenant,
                                    TokenBucketConfig config) {
  MutexLock lock(mu_);
  // An explicit quota install is an administrative reset: the tenant
  // gets a fresh bucket with the new burst immediately (unlike
  // TokenBucket::Reconfigure, which deliberately grants no free burst —
  // an operator raising a throttled tenant's quota expects the raise to
  // take effect now, not after a refill interval).
  buckets_.insert_or_assign(tenant, TokenBucket(config, QuotaNow()));
}

void ServingService::Drain() {
  {
    MutexLock lock(mu_);
    if (state_ == State::kStopped) return;
    if (state_ == State::kDraining) {
      // Another caller owns the join; wait until it finishes.
      while (state_ != State::kStopped) stopped_cv_.Wait(lock);
      return;
    }
    state_ = State::kDraining;
  }
  queue_cv_.NotifyAll();
  try {
    MVOPT_FAILPOINT("serving.drain");
  } catch (const FailpointTriggered&) {
    // Drain must complete even when the injected fault fires: the state
    // transition is already visible, so fall through to the join — a
    // drain that aborts half-way would strand tickets forever.
  }
  for (std::thread& w : workers_) w.join();
  std::vector<std::shared_ptr<ServeTicket>> leftovers;
  {
    MutexLock lock(mu_);
    // Workers drain the queue before exiting, so this is normally
    // empty; anything left (a future bug, not a supported path) still
    // gets a terminal outcome rather than a hung Wait().
    leftovers.assign(queue_.begin(), queue_.end());
    queue_.clear();
    in_flight_ -= static_cast<int64_t>(leftovers.size());
    if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Set(0);
    if (metrics_.in_flight != nullptr) metrics_.in_flight->Set(in_flight_);
    state_ = State::kStopped;
  }
  for (const auto& ticket : leftovers) {
    ServeResult result;
    result.outcome = AdmissionOutcome::kShedShutdown;
    Publish(ticket, std::move(result));
  }
  stopped_cv_.NotifyAll();
}

ServingStats ServingService::stats() const {
  MutexLock lock(mu_);
  ServingStats snapshot = stats_;
  snapshot.duplicate_publishes =
      duplicate_publishes_.load(std::memory_order_relaxed);
  snapshot.ewma_exec_seconds = ewma_exec_seconds_;
  return snapshot;
}

size_t ServingService::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool ServingService::draining() const {
  MutexLock lock(mu_);
  return state_ != State::kRunning;
}

void ServingService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<ServeTicket> ticket;
    ServingTier tier = ServingTier::kFull;
    double queue_wait = 0;
    {
      MutexLock lock(mu_);
      while (state_ == State::kRunning && queue_.empty()) {
        queue_cv_.Wait(lock);
      }
      if (queue_.empty()) return;  // draining and nothing left to serve
      ticket = queue_.front();
      queue_.pop_front();
      queue_wait =
          SecondsBetween(ticket->enqueue_time_, QueryBudget::Clock::now());
      last_queue_wait_seconds_ = queue_wait;
      const double ratio =
          options_.queue_capacity > 0
              ? static_cast<double>(queue_.size()) /
                    static_cast<double>(options_.queue_capacity)
              : 0.0;
      UpdateControllerLocked(ratio, queue_wait);
      tier = controller_.tier();
      if (metrics_.queue_depth != nullptr) {
        metrics_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (metrics_.queue_wait != nullptr) metrics_.queue_wait->Observe(queue_wait);

    ServeResult result;
    bool dequeue_fault = false;
    try {
      MVOPT_FAILPOINT("serving.dequeue");
    } catch (const FailpointTriggered& e) {
      // The query was admitted, so its ticket still gets a terminal
      // answer: an admitted-but-failed result the retry policy treats
      // as transient.
      dequeue_fault = true;
      result.outcome = AdmissionOutcome::kAdmitted;
      result.tier = tier;
      result.queue_seconds = queue_wait;
      result.error_kind = ServeErrorKind::kTransient;
      result.error = e.what();
    }

    double exec_seconds = 0;
    if (!dequeue_fault) {
      if (options_.pre_execute_hook) {
        options_.pre_execute_hook(ticket->request_);
      }
      const auto exec_start = QueryBudget::Clock::now();
      result = ExecuteQuery(*ticket, tier, queue_wait);
      exec_seconds = SecondsBetween(exec_start, QueryBudget::Clock::now());
      if (metrics_.exec_latency != nullptr) {
        metrics_.exec_latency->Observe(exec_seconds);
      }
    }

    if (MVOPT_FAILPOINT_HIT("serving.result_publish")) {
      // Simulated primary-publish failure: record the recovery and fall
      // through to the (idempotent) publish below — the ticket must
      // receive its result exactly once regardless.
      {
        MutexLock lock(mu_);
        ++stats_.publish_retries;
      }
      if (metrics_.publish_retries != nullptr) {
        metrics_.publish_retries->Increment();
      }
    }
    Publish(ticket, std::move(result));

    {
      MutexLock lock(mu_);
      --in_flight_;
      if (metrics_.in_flight != nullptr) metrics_.in_flight->Set(in_flight_);
      if (!dequeue_fault) {
        ewma_exec_seconds_ = has_exec_sample_
                                 ? (1 - kEwmaAlpha) * ewma_exec_seconds_ +
                                       kEwmaAlpha * exec_seconds
                                 : exec_seconds;
        has_exec_sample_ = true;
      }
    }
  }
}

ServeResult ServingService::ExecuteQuery(const ServeTicket& ticket,
                                         ServingTier tier,
                                         double queue_seconds) {
  ServeResult result;
  result.outcome = AdmissionOutcome::kAdmitted;
  result.tier = tier;
  result.queue_seconds = queue_seconds;

  QueryContext ctx;
  QueryBudget& budget = ctx.EmplaceBudget();
  if (ticket.has_deadline_) budget.set_deadline(ticket.deadline_);
  budget.set_max_staleness(ticket.request_.max_staleness);
  ctx.set_rng_seed(ticket.request_.rng_seed);
  ctx.set_match_pool(options_.match_pool);
  switch (tier) {
    case ServingTier::kFull:
      break;
    case ServingTier::kCountersOnly:
      ctx.set_suppress_trace(true);
      break;
    case ServingTier::kReducedCandidates:
      ctx.set_suppress_trace(true);
      budget.set_candidate_cap(options_.reduced_candidate_cap);
      break;
    case ServingTier::kFilterProbeOnly:
      // Cap 0: the filter tree is still probed but the first candidate
      // trips kCandidateCapReached, so the match stage never runs — the
      // cheapest still-correct answer (base-table plan).
      ctx.set_suppress_trace(true);
      budget.set_candidate_cap(0);
      break;
  }

  try {
    MVOPT_FAILPOINT("serving.execute");
    result.opt = optimizer_.Optimize(ticket.request_.query, ctx);
    result.has_plan = result.opt.plan != nullptr;
    if (ticket.request_.require_view_answer && !result.opt.uses_view) {
      result.error_kind = ServeErrorKind::kVerifyRejected;
      result.error = "no view-based answer available under verification";
      result.has_plan = false;
    }
  } catch (const std::exception& e) {
    result.error_kind = ServeErrorKind::kTransient;
    result.error = e.what();
    result.has_plan = false;
  }
  return result;
}

void ServingService::Publish(const std::shared_ptr<ServeTicket>& ticket,
                             ServeResult result) {
  const int prior = ticket->publishes_.fetch_add(1, std::memory_order_acq_rel);
  if (prior != 0) {
    // Exactly-once violation: observable (not just assertable) so the
    // chaos suite fails loudly even with NDEBUG.
    duplicate_publishes_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.duplicate_publishes != nullptr) {
      metrics_.duplicate_publishes->Increment();
    }
    return;
  }
  RecordOutcome(result);
  {
    MutexLock lock(ticket->mu_);
    ticket->result_ = std::move(result);
    ticket->done_ = true;
  }
  ticket->cv_.NotifyAll();
}

void ServingService::RecordOutcome(const ServeResult& result) {
  const auto outcome_idx = static_cast<size_t>(result.outcome);
  {
    MutexLock lock(mu_);
    ++stats_.outcomes[outcome_idx];
    if (result.outcome == AdmissionOutcome::kAdmitted) {
      ++stats_.completions[static_cast<size_t>(result.error_kind)];
    }
  }
  if (metrics_.outcomes[outcome_idx] != nullptr) {
    metrics_.outcomes[outcome_idx]->Increment();
  }
  if (result.outcome == AdmissionOutcome::kAdmitted) {
    Counter* c = metrics_.completions[static_cast<size_t>(result.error_kind)];
    if (c != nullptr) c->Increment();
  }
}

void ServingService::UpdateControllerLocked(double depth_ratio,
                                            double queue_wait_seconds) {
  const ServingTier before = controller_.tier();
  const ServingTier after =
      controller_.Update(depth_ratio, queue_wait_seconds);
  if (static_cast<int>(after) > static_cast<int>(before)) {
    ++stats_.tier_escalations;
    if (metrics_.tier_escalations != nullptr) {
      metrics_.tier_escalations->Increment();
    }
  } else if (static_cast<int>(after) < static_cast<int>(before)) {
    ++stats_.tier_recoveries;
    if (metrics_.tier_recoveries != nullptr) {
      metrics_.tier_recoveries->Increment();
    }
  }
  if (metrics_.tier != nullptr) {
    metrics_.tier->Set(static_cast<int64_t>(after));
  }
}

TokenBucket* ServingService::TenantBucketLocked(const std::string& tenant) {
  auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return &it->second;
  if (!options_.default_quota.has_value()) return nullptr;
  auto inserted =
      buckets_.emplace(tenant, TokenBucket(*options_.default_quota, QuotaNow()));
  return &inserted.first->second;
}

TokenBucket::Clock::time_point ServingService::QuotaNow() const {
  return options_.quota_clock ? options_.quota_clock()
                              : TokenBucket::Clock::now();
}

double ServingService::ClampRetryAfter(double seconds) const {
  if (!std::isfinite(seconds)) return options_.max_retry_after_seconds;
  return std::clamp(seconds, options_.min_retry_after_seconds,
                    options_.max_retry_after_seconds);
}

double ServingService::BacklogRetryAfterLocked(int64_t backlog) const {
  double est = has_exec_sample_ ? ewma_exec_seconds_
                                : options_.default_exec_seconds_estimate;
  // The estimate must stay positive: before the EWMA has a sample a
  // zeroed default_exec_seconds_estimate (or, once seeded, an EWMA fed
  // sub-clock-resolution executions) would otherwise produce
  // retry_after == 0 on a retryable shed — an instruction to hammer the
  // service immediately, the opposite of backpressure. (ClampRetryAfter
  // cannot be relied on to repair this: its minimum is configurable down
  // to zero.) Floor at 100us, well below any real execution.
  constexpr double kMinExecSecondsEstimate = 1e-4;
  if (!(est > 0)) est = kMinExecSecondsEstimate;
  if (backlog < 1) backlog = 1;  // a shed implies at least one queue slot
  const double workers =
      workers_.empty() ? 1.0 : static_cast<double>(workers_.size());
  return static_cast<double>(backlog) * est / workers;
}

}  // namespace mvopt
