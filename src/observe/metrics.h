// Low-overhead metrics for the query pipeline: named monotonic counters,
// two-way gauges (instantaneous levels such as queue depth) and
// fixed-bucket latency histograms collected in a MetricsRegistry.
//
// Hot path: Counter::Increment, Gauge::Set/Add and Histogram::Observe
// are single relaxed atomic operations — no locks, no allocation, safe
// from any thread. The
// registry mutex guards only registration (FindOrCreate*) and snapshot
// assembly; instruments live in deques so their addresses stay stable
// for the lifetime of the registry and call sites can cache raw
// pointers.
//
// Reads: counters are monotonic, so a relaxed per-instrument load taken
// under the registration mutex yields a snapshot in which every value
// was current at some point during the call — sufficient for export.
// (Cross-counter invariants such as "full tests ≤ candidates" are the
// job of the probe-atomic MatchingService stats, not of the registry;
// see index/matching_service.h.)
//
// Export: Prometheus text exposition (WritePrometheus) and a JSON dump
// (WriteJson), plus validators used by the CI smoke step and tests.

#ifndef MVOPT_OBSERVE_METRICS_H_
#define MVOPT_OBSERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mvopt {

/// Monotonic counter. Increment-only; relaxed atomics on the hot path.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Instantaneous level (queue depth, serving tier, in-flight count):
/// unlike a Counter it moves both ways and supports absolute Set. Same
/// hot-path contract — single relaxed atomics, safe from any thread.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket upper bounds follow a 1-2-5
/// decade ladder from 1µs to 10s plus +Inf, so every histogram in the
/// system is bucket-compatible and the exposition stays small.
class Histogram {
 public:
  static constexpr int kNumBuckets = 22;  // 21 finite bounds + Inf

  /// Upper bounds in seconds (index i holds observations ≤ bound[i]).
  static const std::array<double, kNumBuckets - 1>& BucketBounds();

  void Observe(double seconds);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observed values (accumulated in integer nanoseconds so the
  /// hot path stays a single atomic add).
  double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_nanos_{0};
};

/// Sorted (label, value) pairs; the empty vector means "no labels".
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it
  /// on first use. The returned pointer stays valid for the registry's
  /// lifetime; call sites should cache it. `help` is recorded on first
  /// registration of the family.
  Counter* FindOrCreateCounter(const std::string& name, const std::string& help,
                               MetricLabels labels = {}) MVOPT_EXCLUDES(mu_);
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& help,
                                   MetricLabels labels = {})
      MVOPT_EXCLUDES(mu_);
  Gauge* FindOrCreateGauge(const std::string& name, const std::string& help,
                           MetricLabels labels = {}) MVOPT_EXCLUDES(mu_);

  /// Value of one counter, or nullopt if never registered.
  std::optional<int64_t> CounterValue(const std::string& name,
                                      const MetricLabels& labels = {}) const
      MVOPT_EXCLUDES(mu_);
  /// Value of one gauge, or nullopt if never registered.
  std::optional<int64_t> GaugeValue(const std::string& name,
                                    const MetricLabels& labels = {}) const
      MVOPT_EXCLUDES(mu_);
  /// Sum over every labeled instrument of a counter family (0 if none).
  int64_t SumFamily(const std::string& name) const MVOPT_EXCLUDES(mu_);

  /// Prometheus text exposition format (one HELP/TYPE block per family).
  std::string WritePrometheus() const MVOPT_EXCLUDES(mu_);
  /// JSON dump: {"counters": [...], "histograms": [...]}.
  std::string WriteJson() const MVOPT_EXCLUDES(mu_);

  size_t num_counters() const MVOPT_EXCLUDES(mu_);
  size_t num_histograms() const MVOPT_EXCLUDES(mu_);
  size_t num_gauges() const MVOPT_EXCLUDES(mu_);

 private:
  struct CounterEntry {
    std::string name;
    std::string help;
    MetricLabels labels;
    Counter counter;
  };
  struct HistogramEntry {
    std::string name;
    std::string help;
    MetricLabels labels;
    Histogram histogram;
  };
  struct GaugeEntry {
    std::string name;
    std::string help;
    MetricLabels labels;
    Gauge gauge;
  };

  mutable Mutex mu_;
  /// Deques: growth never moves an instrument, so cached Counter* /
  /// Histogram* stay valid and the hot-path atomics are touched without
  /// the registration lock. The deques themselves (structure: growth,
  /// iteration for snapshots) are guarded.
  std::deque<CounterEntry> counters_ MVOPT_GUARDED_BY(mu_);
  std::deque<HistogramEntry> histograms_ MVOPT_GUARDED_BY(mu_);
  std::deque<GaugeEntry> gauges_ MVOPT_GUARDED_BY(mu_);
};

/// Renders `labels` as {k="v",...}, empty string for no labels. Values
/// are escaped per the exposition format.
std::string FormatLabels(const MetricLabels& labels);

/// Structural validation of a Prometheus text exposition: every line is
/// a comment or `name{labels} value`, HELP/TYPE precede samples of their
/// family, and every sample value parses as a finite number. Returns
/// false and sets *error on the first violation.
bool ValidatePrometheusText(const std::string& text, std::string* error);

/// Minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, literals). Returns false and sets *error on the first
/// violation. Used by tests and the CI metrics smoke step.
bool ValidateJson(const std::string& text, std::string* error);

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace mvopt

#endif  // MVOPT_OBSERVE_METRICS_H_
