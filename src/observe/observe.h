// The observability knob threaded through the probe pipeline
// (MatchingService, Optimizer, CatalogStore, ViewMaintainer):
//
//   kOff          no clocks read, no counters touched — instrumentation
//                 points reduce to a null-pointer check, so the mode is
//                 provably near-zero cost (bench/observe_overhead guards
//                 ≤2% probe-latency regression).
//   kCountersOnly registry counters + latency histograms only; two clock
//                 reads per probe, relaxed atomic adds per event.
//   kFullTrace    counters plus a QueryTrace span recorder attached to
//                 every OptimizationResult (per-stage wall clock and
//                 per-candidate-view verdict records).
//
// Each layer registers its own metric families into the shared
// MetricsRegistry at construction and caches raw Counter/Histogram
// pointers, so the hot path never consults the registry.

#ifndef MVOPT_OBSERVE_OBSERVE_H_
#define MVOPT_OBSERVE_OBSERVE_H_

#include "observe/metrics.h"

namespace mvopt {

enum class ObserveMode {
  kOff = 0,
  kCountersOnly = 1,
  kFullTrace = 2,
};

inline const char* ObserveModeName(ObserveMode mode) {
  switch (mode) {
    case ObserveMode::kOff:
      return "off";
    case ObserveMode::kCountersOnly:
      return "counters";
    case ObserveMode::kFullTrace:
      return "full-trace";
  }
  return "?";
}

struct ObserveOptions {
  ObserveMode mode = ObserveMode::kOff;
  /// Shared registry; required for any mode other than kOff (a null
  /// registry silently degrades to kOff).
  MetricsRegistry* registry = nullptr;

  bool counters_enabled() const {
    return mode != ObserveMode::kOff && registry != nullptr;
  }
  bool trace_enabled() const {
    return mode == ObserveMode::kFullTrace && registry != nullptr;
  }
};

}  // namespace mvopt

#endif  // MVOPT_OBSERVE_OBSERVE_H_
