// QueryTrace: a per-optimization span recorder attached to
// OptimizationResult in full-trace mode. Records per-stage wall-clock
// (filter probe → match tests → memo exploration → costing), named
// counts (per-level filter-tree candidate counts, candidates emitted,
// memo sizes) and one verdict record per candidate view the probe
// pipeline examined, so a single query's matching behavior can be
// replayed offline from the JSON dump.
//
// A trace belongs to one optimization and is NOT thread-safe; the
// optimizer owns it for the duration of Optimize and hands it out via a
// shared_ptr afterwards.

#ifndef MVOPT_OBSERVE_TRACE_H_
#define MVOPT_OBSERVE_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mvopt {

class QueryTrace {
 public:
  /// The pipeline stages measured per query (§5's time breakdown, plus
  /// the staged-probe substages). New values are appended so the
  /// original four keep their indices in dumps.
  enum class Stage {
    kFilterProbe = 0,     ///< filter-tree candidate search
    kMatchTests = 1,      ///< full view-matching tests over candidates
    kMemoExploration = 2, ///< memo/group construction incl. rule firing
    kCosting = 3,         ///< physical implementation + plan selection
    kPrefilter = 4,       ///< sidelined skip + staleness gate
    kCompensate = 5,      ///< verify/compensation checks on raw matches
    kCostAnnotate = 6,    ///< substitute annotation + deterministic order
    kUnionMatch = 7,      ///< union-substitute assembly (§7 extension)
  };
  static constexpr int kNumStages = 8;
  static const char* StageName(Stage stage);

  /// One candidate view's fate in a probe.
  struct Verdict {
    std::string view;     ///< view name
    std::string action;   ///< accepted | rejected | skipped-sidelined | ...
    std::string detail;   ///< reject reason / staleness lag / check code
  };

  void set_query(std::string sql) { query_ = std::move(sql); }
  const std::string& query() const { return query_; }

  void AddStageSeconds(Stage stage, double seconds) {
    stage_seconds_[static_cast<size_t>(stage)] += seconds;
  }
  double stage_seconds(Stage stage) const {
    return stage_seconds_[static_cast<size_t>(stage)];
  }

  /// Accumulates a named count (e.g. "filter-level.hub", "candidates").
  void AddCount(const std::string& name, int64_t n);
  int64_t count(const std::string& name) const;

  void RecordVerdict(std::string view, std::string action,
                     std::string detail = "");
  const std::vector<Verdict>& verdicts() const { return verdicts_; }

  /// Number of probes (FindSubstitutes calls) folded into this trace.
  void NoteProbe() { ++num_probes_; }
  int64_t num_probes() const { return num_probes_; }

  /// Ordered log of pipeline stage boundaries as the probe executed
  /// them (one entry per stage per probe) — the golden-order tests
  /// assert this sequence stays stable across refactors.
  void NoteStageBoundary(const char* stage) { stage_log_.push_back(stage); }
  const std::vector<std::string>& stage_log() const { return stage_log_; }

  /// Full JSON dump for offline analysis.
  std::string ToJson() const;

 private:
  std::string query_;
  std::array<double, kNumStages> stage_seconds_{};
  /// Sorted-insertion (name, value) pairs: few distinct names per trace.
  std::vector<std::pair<std::string, int64_t>> counts_;
  std::vector<Verdict> verdicts_;
  std::vector<std::string> stage_log_;
  int64_t num_probes_ = 0;
};

}  // namespace mvopt

#endif  // MVOPT_OBSERVE_TRACE_H_
