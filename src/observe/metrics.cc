#include "observe/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mvopt {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::string FormatValue(int64_t v) { return std::to_string(v); }

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escapes a label value per the exposition format (\\, \", \n).
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

const std::array<double, Histogram::kNumBuckets - 1>&
Histogram::BucketBounds() {
  static const std::array<double, kNumBuckets - 1> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  10.0};
  return kBounds;
}

void Histogram::Observe(double seconds) {
  if (!(seconds >= 0)) seconds = 0;  // NaN / negative clock glitches
  const auto& bounds = BucketBounds();
  // Linear scan: 21 doubles, branch-predictable, no binary-search
  // mispredicts for the common small-latency case.
  int b = kNumBuckets - 1;
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (seconds <= bounds[i]) {
      b = i;
      break;
    }
  }
  buckets_[b].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  sum_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9), kRelaxed);
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name,
                                              const std::string& help,
                                              MetricLabels labels) {
  MutexLock lock(mu_);
  for (CounterEntry& e : counters_) {
    if (e.name == name && e.labels == labels) return &e.counter;
  }
  counters_.emplace_back();
  CounterEntry& e = counters_.back();
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  return &e.counter;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name,
                                                  const std::string& help,
                                                  MetricLabels labels) {
  MutexLock lock(mu_);
  for (HistogramEntry& e : histograms_) {
    if (e.name == name && e.labels == labels) return &e.histogram;
  }
  histograms_.emplace_back();
  HistogramEntry& e = histograms_.back();
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  return &e.histogram;
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name,
                                          const std::string& help,
                                          MetricLabels labels) {
  MutexLock lock(mu_);
  for (GaugeEntry& e : gauges_) {
    if (e.name == name && e.labels == labels) return &e.gauge;
  }
  gauges_.emplace_back();
  GaugeEntry& e = gauges_.back();
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  return &e.gauge;
}

std::optional<int64_t> MetricsRegistry::GaugeValue(
    const std::string& name, const MetricLabels& labels) const {
  MutexLock lock(mu_);
  for (const GaugeEntry& e : gauges_) {
    if (e.name == name && e.labels == labels) return e.gauge.value();
  }
  return std::nullopt;
}

std::optional<int64_t> MetricsRegistry::CounterValue(
    const std::string& name, const MetricLabels& labels) const {
  MutexLock lock(mu_);
  for (const CounterEntry& e : counters_) {
    if (e.name == name && e.labels == labels) return e.counter.value();
  }
  return std::nullopt;
}

int64_t MetricsRegistry::SumFamily(const std::string& name) const {
  MutexLock lock(mu_);
  int64_t sum = 0;
  for (const CounterEntry& e : counters_) {
    if (e.name == name) sum += e.counter.value();
  }
  return sum;
}

size_t MetricsRegistry::num_counters() const {
  MutexLock lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_histograms() const {
  MutexLock lock(mu_);
  return histograms_.size();
}

size_t MetricsRegistry::num_gauges() const {
  MutexLock lock(mu_);
  return gauges_.size();
}

std::string FormatLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::WritePrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  // One HELP/TYPE block per family, samples in registration order within
  // it. Registration order is deterministic, so the exposition is too.
  std::vector<std::string> families_done;
  auto family_done = [&families_done](const std::string& name) {
    return std::find(families_done.begin(), families_done.end(), name) !=
           families_done.end();
  };
  for (const CounterEntry& e : counters_) {
    if (family_done(e.name)) continue;
    families_done.push_back(e.name);
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " counter\n";
    for (const CounterEntry& s : counters_) {
      if (s.name != e.name) continue;
      out += s.name + FormatLabels(s.labels) + " " +
             FormatValue(s.counter.value()) + "\n";
    }
  }
  for (const GaugeEntry& e : gauges_) {
    if (family_done(e.name)) continue;
    families_done.push_back(e.name);
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " gauge\n";
    for (const GaugeEntry& s : gauges_) {
      if (s.name != e.name) continue;
      out += s.name + FormatLabels(s.labels) + " " +
             FormatValue(s.gauge.value()) + "\n";
    }
  }
  for (const HistogramEntry& e : histograms_) {
    if (family_done(e.name)) continue;
    families_done.push_back(e.name);
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " histogram\n";
    for (const HistogramEntry& s : histograms_) {
      if (s.name != e.name) continue;
      const auto& bounds = Histogram::BucketBounds();
      int64_t cumulative = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        cumulative += s.histogram.bucket_count(i);
        MetricLabels ls = s.labels;
        ls.emplace_back("le", i < Histogram::kNumBuckets - 1
                                  ? FormatDouble(bounds[i])
                                  : "+Inf");
        out += s.name + "_bucket" + FormatLabels(ls) + " " +
               FormatValue(cumulative) + "\n";
      }
      out += s.name + "_sum" + FormatLabels(s.labels) + " " +
             FormatDouble(s.histogram.sum_seconds()) + "\n";
      out += s.name + "_count" + FormatLabels(s.labels) + " " +
             FormatValue(s.histogram.count()) + "\n";
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string MetricsRegistry::WriteJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const CounterEntry& e : counters_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"labels\":{";
    for (size_t i = 0; i < e.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(e.labels[i].first) + "\":\"" +
             JsonEscape(e.labels[i].second) + "\"";
    }
    out += "},\"value\":" + FormatValue(e.counter.value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const GaugeEntry& e : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"labels\":{";
    for (size_t i = 0; i < e.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(e.labels[i].first) + "\":\"" +
             JsonEscape(e.labels[i].second) + "\"";
    }
    out += "},\"value\":" + FormatValue(e.gauge.value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramEntry& e : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"count\":" +
           FormatValue(e.histogram.count()) +
           ",\"sum_seconds\":" + FormatDouble(e.histogram.sum_seconds()) +
           ",\"buckets\":[";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i > 0) out += ",";
      out += FormatValue(e.histogram.bucket_count(i));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

// --- validators -----------------------------------------------------------

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  // Families that emitted a TYPE line, so samples can be checked against
  // announced families (histogram samples use the _bucket/_sum/_count
  // suffixes of their family name).
  std::vector<std::string> announced;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why + ": " + line;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") return fail("bad comment kind");
      if (name.empty()) return fail("comment without metric name");
      if (kind == "TYPE") announced.push_back(name);
      continue;
    }
    // Sample: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("sample without value");
    std::string name = line.substr(0, name_end);
    if (name.empty() ||
        !(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
      return fail("bad metric name");
    }
    size_t value_start;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string::npos) return fail("unterminated label set");
      value_start = close + 1;
    } else {
      value_start = name_end;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    if (value_start >= line.size()) return fail("sample without value");
    const std::string value_text = line.substr(value_start);
    char* end = nullptr;
    double v = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      return fail("unparsable sample value");
    }
    if (std::isnan(v)) return fail("NaN sample value");
    // The sample must belong to an announced family (exact name or a
    // histogram-suffixed variant).
    bool known = false;
    for (const std::string& fam : announced) {
      if (name == fam || name == fam + "_bucket" || name == fam + "_sum" ||
          name == fam + "_count") {
        known = true;
        break;
      }
    }
    if (!known) return fail("sample precedes its TYPE line");
  }
  if (error != nullptr) error->clear();
  return true;
}

namespace {

/// Recursive-descent JSON well-formedness scanner.
struct JsonScanner {
  const char* p;
  const char* end;
  std::string error;
  int depth = 0;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool Fail(const std::string& why) {
    error = why;
    return false;
  }
  bool Value() {
    if (++depth > 256) return Fail("nesting too deep");
    SkipWs();
    if (p >= end) return Fail("unexpected end of input");
    bool ok;
    switch (*p) {
      case '{':
        ok = Object();
        break;
      case '[':
        ok = Array();
        break;
      case '"':
        ok = String();
        break;
      case 't':
        ok = Literal("true");
        break;
      case 'f':
        ok = Literal("false");
        break;
      case 'n':
        ok = Literal("null");
        break;
      default:
        ok = Number();
    }
    --depth;
    return ok;
  }
  bool Literal(const char* lit) {
    for (const char* q = lit; *q != '\0'; ++q, ++p) {
      if (p >= end || *p != *q) return Fail("bad literal");
    }
    return true;
  }
  bool Number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                       *p == '-')) {
      ++p;
    }
    if (p == start) return Fail("expected a value");
    char* numend = nullptr;
    std::string text(start, p);
    std::strtod(text.c_str(), &numend);
    if (numend != text.c_str() + text.size()) return Fail("bad number");
    return true;
  }
  bool String() {
    ++p;  // opening quote
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return Fail("truncated escape");
        const char c = *p;
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) {
              return Fail("bad unicode escape");
            }
          }
        } else if (c != '"' && c != '\\' && c != '/' && c != 'b' &&
                   c != 'f' && c != 'n' && c != 'r' && c != 't') {
          return Fail("bad escape");
        }
      }
      ++p;
    }
    if (p >= end) return Fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
  bool Object() {
    ++p;  // {
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      SkipWs();
      if (p >= end || *p != '"') return Fail("expected object key");
      if (!String()) return false;
      SkipWs();
      if (p >= end || *p != ':') return Fail("expected ':'");
      ++p;
      if (!Value()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }
  bool Array() {
    ++p;  // [
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool ValidateJson(const std::string& text, std::string* error) {
  JsonScanner scan{text.data(), text.data() + text.size(), "", 0};
  if (!scan.Value()) {
    if (error != nullptr) {
      *error = scan.error + " at offset " +
               std::to_string(scan.p - text.data());
    }
    return false;
  }
  scan.SkipWs();
  if (scan.p != scan.end) {
    if (error != nullptr) *error = "trailing data after JSON value";
    return false;
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace mvopt
