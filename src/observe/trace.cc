#include "observe/trace.h"

#include <algorithm>
#include <cstdio>

#include "observe/metrics.h"

namespace mvopt {

const char* QueryTrace::StageName(Stage stage) {
  switch (stage) {
    case Stage::kFilterProbe:
      return "filter-probe";
    case Stage::kMatchTests:
      return "match-tests";
    case Stage::kMemoExploration:
      return "memo-exploration";
    case Stage::kCosting:
      return "costing";
    case Stage::kPrefilter:
      return "prefilter";
    case Stage::kCompensate:
      return "compensate";
    case Stage::kCostAnnotate:
      return "cost-annotate";
    case Stage::kUnionMatch:
      return "union-match";
  }
  return "?";
}

void QueryTrace::AddCount(const std::string& name, int64_t n) {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != counts_.end() && it->first == name) {
    it->second += n;
  } else {
    counts_.insert(it, {name, n});
  }
}

int64_t QueryTrace::count(const std::string& name) const {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  return (it != counts_.end() && it->first == name) ? it->second : 0;
}

void QueryTrace::RecordVerdict(std::string view, std::string action,
                               std::string detail) {
  verdicts_.push_back(
      Verdict{std::move(view), std::move(action), std::move(detail)});
}

std::string QueryTrace::ToJson() const {
  std::string out = "{";
  out += "\"query\":\"" + JsonEscape(query_) + "\",";
  out += "\"num_probes\":" + std::to_string(num_probes_) + ",";
  out += "\"stages\":{";
  for (int i = 0; i < kNumStages; ++i) {
    if (i > 0) out += ",";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", stage_seconds_[i]);
    out += "\"" + std::string(StageName(static_cast<Stage>(i))) +
           "_seconds\":" + buf;
  }
  out += "},\"counts\":{";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(counts_[i].first) +
           "\":" + std::to_string(counts_[i].second);
  }
  out += "},\"pipeline\":[";
  for (size_t i = 0; i < stage_log_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(stage_log_[i]) + "\"";
  }
  out += "],\"verdicts\":[";
  for (size_t i = 0; i < verdicts_.size(); ++i) {
    if (i > 0) out += ",";
    const Verdict& v = verdicts_[i];
    out += "{\"view\":\"" + JsonEscape(v.view) + "\",\"action\":\"" +
           JsonEscape(v.action) + "\"";
    if (!v.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscape(v.detail) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace mvopt
