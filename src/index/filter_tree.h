// Filter tree (§4): a multiway search tree over view descriptions that
// quickly discards views that cannot be used by a query. Every internal
// node partitions its views by one condition; the keys within a node are
// organized in a lattice index so subset/superset searches avoid scanning
// every key.
//
// Two parallel trees are kept: one for SPJ views and one for aggregation
// views (the paper's two extra grouping levels only exist for the
// latter). SPJ queries search only the SPJ tree — an aggregated view can
// never answer a pure SPJ query.
//
// Level order follows §4.3: hubs, source tables, output expressions,
// output columns, residual constraints, range constraints, and (for
// aggregation views) grouping expressions and grouping columns.
//
// Thread-safety: externally synchronized. The tree has no internal
// locking; MatchingService owns the only concurrent instance and guards
// it with its structure lock (FindCandidates under the shared lock,
// AddView/RemoveView under the exclusive one) — expressed there as
// MVOPT_GUARDED_BY on the filter_tree_ member, which is what the
// thread-safety analysis checks. Standalone instances (tests, benches)
// are single-threaded.

#ifndef MVOPT_INDEX_FILTER_TREE_H_
#define MVOPT_INDEX_FILTER_TREE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/query_budget.h"
#include "common/query_context.h"
#include "index/lattice.h"
#include "query/view_def.h"
#include "rewrite/view_description.h"

namespace mvopt {

/// The partitioning conditions of §4.2.
enum class FilterLevel {
  kHub,
  kSourceTables,
  kOutputExprs,
  kOutputColumns,
  kResidual,
  kRangeConstraints,
  kGroupingExprs,
  kGroupingColumns,
};

/// Number of FilterLevel values, for level-indexed count arrays.
inline constexpr int kNumFilterLevels = 8;
static_assert(static_cast<int>(FilterLevel::kGroupingColumns) + 1 ==
                  kNumFilterLevels,
              "kNumFilterLevels must cover every FilterLevel");

const char* FilterLevelName(FilterLevel level);

/// Search-side instrumentation (for the §5 effectiveness numbers, the
/// level-ablation bench and the observability layer). Per-level arrays
/// are indexed by FilterLevel value, merging the SPJ and aggregation
/// trees.
struct FilterSearchStats {
  int64_t lattice_nodes_visited = 0;
  int64_t views_range_checked = 0;
  int64_t views_range_rejected = 0;
  /// Lattice search calls by kind (§4.4's subset/superset walks; scans
  /// are the backjoin-relaxed full-level walks).
  int64_t subset_searches = 0;
  int64_t superset_searches = 0;
  int64_t scan_searches = 0;
  /// Times each level's partitioning condition was evaluated.
  std::array<int64_t, kNumFilterLevels> level_probes{};
  /// Lattice nodes qualifying (candidate paths surviving) per level.
  std::array<int64_t, kNumFilterLevels> level_qualifying{};

  void MergeFrom(const FilterSearchStats& other) {
    lattice_nodes_visited += other.lattice_nodes_visited;
    views_range_checked += other.views_range_checked;
    views_range_rejected += other.views_range_rejected;
    subset_searches += other.subset_searches;
    superset_searches += other.superset_searches;
    scan_searches += other.scan_searches;
    for (int i = 0; i < kNumFilterLevels; ++i) {
      level_probes[i] += other.level_probes[i];
      level_qualifying[i] += other.level_qualifying[i];
    }
  }
};

class FilterTree {
 public:
  /// `descriptions` must outlive the tree and grow append-only (it is the
  /// ViewCatalog's description store).
  explicit FilterTree(const std::vector<ViewDescription>* descriptions);

  /// Rebinding deep copy (the snapshot-clone path, DESIGN.md §15):
  /// clones every node, lattice and interned atom of `other`, but points
  /// the copy at `descriptions` — the cloned snapshot's own description
  /// store — instead of the source tree's.
  FilterTree(const FilterTree& other,
             const std::vector<ViewDescription>* descriptions);

  FilterTree(const FilterTree&) = delete;
  FilterTree& operator=(const FilterTree&) = delete;

  /// Overrides the default level orders (primarily for the ablation
  /// bench). Must be called before the first AddView. Grouping levels are
  /// ignored for the SPJ tree.
  void SetLevels(std::vector<FilterLevel> spj_levels,
                 std::vector<FilterLevel> agg_levels);

  /// When the matcher may add base-table backjoins (§7 extension), the
  /// output-column and grouping-column hitting conditions are no longer
  /// necessary conditions; this disables them.
  void set_assume_backjoins(bool v) { assume_backjoins_ = v; }

  /// Indexes the view with the given description index (== ViewId).
  /// Strongly exception-safe: a failure mid-insert (allocation or
  /// failpoint) rolls the tree back to its previous state before
  /// rethrowing.
  void AddView(ViewId id);

  /// Removes a previously added view.
  void RemoveView(ViewId id);

  /// Returns ids of views satisfying every partitioning condition for
  /// `query`, including the full range-constraint check (§4.2.5).
  /// When `budget` is given, the search stops early on deadline or
  /// candidate-cap exhaustion and returns the candidates found so far.
  std::vector<ViewId> FindCandidates(const QueryDescription& query,
                                     FilterSearchStats* stats = nullptr,
                                     QueryBudget* budget = nullptr) const;

  /// Context form: the probe draws its budget (deadline + candidate cap)
  /// from `ctx`. Preferred for new callers; the loose-parameter overload
  /// above is kept for back-compat.
  std::vector<ViewId> FindCandidates(const QueryDescription& query,
                                     QueryContext& ctx,
                                     FilterSearchStats* stats = nullptr) const {
    return FindCandidates(query, stats, ctx.budget());
  }

  int num_views() const { return num_views_; }

 private:
  /// The invariant auditor (src/verify) walks the private tree structure
  /// read-only to validate it against the public search results.
  friend class InvariantAuditor;

  struct Node {
    LatticeIndex index;
    /// Children / leaf payloads indexed by lattice node id.
    std::vector<std::unique_ptr<Node>> children;
    std::vector<std::vector<ViewId>> leaves;
  };

  /// Interned query-side keys, computed once per search.
  struct SearchContext {
    LatticeIndex::Key source_tables;
    LatticeIndex::Key output_expr_atoms;       // SPJ tree
    bool output_exprs_impossible = false;
    LatticeIndex::Key output_agg_expr_atoms;   // agg tree (incl. agg texts)
    bool output_agg_exprs_impossible = false;
    std::vector<LatticeIndex::Key> output_classes_spj;
    std::vector<LatticeIndex::Key> output_classes_agg;
    LatticeIndex::Key residual_atoms;          // unknown texts dropped
    LatticeIndex::Key extended_range_columns;
    LatticeIndex::Key grouping_expr_atoms;
    bool grouping_exprs_impossible = false;
    std::vector<LatticeIndex::Key> grouping_classes;
    bool is_aggregate = false;
  };

  /// Deep-copies `from`'s subtree into `to` (rebinding copy ctor).
  static void CloneNode(const Node& from, Node* to);

  LatticeIndex::Key ViewKey(const ViewDescription& d, FilterLevel level);
  void Search(const Node& node, const std::vector<FilterLevel>& levels,
              size_t depth, const SearchContext& ctx, bool agg_tree,
              std::vector<ViewId>* out, FilterSearchStats* stats,
              QueryBudget* budget) const;
  void SearchLevel(const Node& node, FilterLevel level,
                   const SearchContext& ctx, bool agg_tree,
                   std::vector<int>* out, FilterSearchStats* stats) const;
  bool PassesFullRangeCondition(ViewId id, const SearchContext& ctx) const;

  uint32_t Intern(const std::string& text);
  std::optional<uint32_t> LookupAtom(const std::string& text) const;

  const std::vector<ViewDescription>* descriptions_;
  std::vector<FilterLevel> spj_levels_;
  std::vector<FilterLevel> agg_levels_;
  Node spj_root_;
  Node agg_root_;
  std::unordered_map<std::string, uint32_t> atoms_;
  int num_views_ = 0;
  bool assume_backjoins_ = false;
};

}  // namespace mvopt

#endif  // MVOPT_INDEX_FILTER_TREE_H_
