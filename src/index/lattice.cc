#include "index/lattice.h"

#include <algorithm>
#include <cassert>

namespace mvopt {

namespace {

// Visited-marking scratch for the graph searches. Thread-local so
// concurrent const searches over the same index share no mutable state;
// the monotone counter makes clearing O(1), and because every search
// draws a fresh counter value, stale marks left by other indexes (or
// earlier searches) can never collide.
struct VisitScratch {
  std::vector<uint64_t> mark;
  uint64_t counter = 0;

  // Returns the stamp for this search; `mark[n] == stamp` <=> visited.
  uint64_t Begin(size_t num_nodes) {
    if (mark.size() < num_nodes) mark.resize(num_nodes, 0);
    return ++counter;
  }
};

thread_local VisitScratch t_visit_scratch;

}  // namespace

bool LatticeIndex::IsSubset(const Key& a, const Key& b) {
  if (a.size() > b.size()) return false;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == a.size();
}

int LatticeIndex::Find(const Key& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? -1 : it->second;
}

void LatticeIndex::CollectSupersetsOf(const Key& key,
                                      std::vector<int>* out) const {
  // Structural descent from tops; includes erased nodes (they still route).
  VisitScratch& scratch = t_visit_scratch;
  const uint64_t stamp = scratch.Begin(nodes_.size());
  std::vector<int> stack = tops_;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (scratch.mark[n] == stamp) continue;
    scratch.mark[n] = stamp;
    if (!IsSubset(key, nodes_[n].key)) continue;  // subsets fail too
    out->push_back(n);
    for (int c : nodes_[n].subsets) stack.push_back(c);
  }
}

void LatticeIndex::CollectSubsetsOf(const Key& key,
                                    std::vector<int>* out) const {
  VisitScratch& scratch = t_visit_scratch;
  const uint64_t stamp = scratch.Begin(nodes_.size());
  std::vector<int> stack = roots_;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (scratch.mark[n] == stamp) continue;
    scratch.mark[n] = stamp;
    if (!IsSubset(nodes_[n].key, key)) continue;  // supersets fail too
    out->push_back(n);
    for (int p : nodes_[n].supersets) stack.push_back(p);
  }
}

int LatticeIndex::Insert(const Key& key) {
  assert(std::is_sorted(key.begin(), key.end()));
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    Node& node = nodes_[it->second];
    if (!node.alive) {
      node.alive = true;
      ++num_live_;
    }
    return it->second;
  }

  // Locate minimal supersets M and maximal subsets X of the new key.
  std::vector<int> supersets;
  CollectSupersetsOf(key, &supersets);
  std::vector<int> minimal;
  for (int s : supersets) {
    bool is_minimal = true;
    for (int s2 : supersets) {
      if (s2 != s && IsSubset(nodes_[s2].key, nodes_[s].key)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(s);
  }
  std::vector<int> subsets;
  CollectSubsetsOf(key, &subsets);
  std::vector<int> maximal;
  for (int s : subsets) {
    bool is_maximal = true;
    for (int s2 : subsets) {
      if (s2 != s && IsSubset(nodes_[s].key, nodes_[s2].key)) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.push_back(s);
  }

  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{key, {}, {}, true});
  by_key_[key] = id;
  ++num_live_;

  auto erase_from = [](std::vector<int>* v, int x) {
    v->erase(std::remove(v->begin(), v->end(), x), v->end());
  };

  // Remove cover edges between X and M now that the new node interposes.
  for (int x : maximal) {
    for (int m : minimal) {
      if (std::find(nodes_[x].supersets.begin(), nodes_[x].supersets.end(),
                    m) != nodes_[x].supersets.end()) {
        erase_from(&nodes_[x].supersets, m);
        erase_from(&nodes_[m].subsets, x);
      }
    }
  }
  // Wire the new node in.
  for (int m : minimal) {
    if (nodes_[m].subsets.empty()) erase_from(&roots_, m);
    nodes_[id].supersets.push_back(m);
    nodes_[m].subsets.push_back(id);
  }
  for (int x : maximal) {
    if (nodes_[x].supersets.empty()) erase_from(&tops_, x);
    nodes_[x].supersets.push_back(id);
    nodes_[id].subsets.push_back(x);
  }
  if (minimal.empty()) tops_.push_back(id);
  if (maximal.empty()) roots_.push_back(id);
  return id;
}

bool LatticeIndex::Erase(const Key& key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end() || !nodes_[it->second].alive) return false;
  nodes_[it->second].alive = false;
  --num_live_;
  return true;
}

void LatticeIndex::SearchDown(const NodePredicate& pred,
                              std::vector<int>* out) const {
  VisitScratch& scratch = t_visit_scratch;
  const uint64_t stamp = scratch.Begin(nodes_.size());
  std::vector<int> stack = tops_;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (scratch.mark[n] == stamp) continue;
    scratch.mark[n] = stamp;
    if (!pred(nodes_[n].key)) continue;  // all subsets fail
    if (nodes_[n].alive) out->push_back(n);
    for (int c : nodes_[n].subsets) stack.push_back(c);
  }
}

void LatticeIndex::SearchUp(const NodePredicate& pred,
                            std::vector<int>* out) const {
  VisitScratch& scratch = t_visit_scratch;
  const uint64_t stamp = scratch.Begin(nodes_.size());
  std::vector<int> stack = roots_;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (scratch.mark[n] == stamp) continue;
    scratch.mark[n] = stamp;
    if (!pred(nodes_[n].key)) continue;  // all supersets fail
    if (nodes_[n].alive) out->push_back(n);
    for (int p : nodes_[n].supersets) stack.push_back(p);
  }
}

void LatticeIndex::SearchSubsets(const Key& query,
                                 std::vector<int>* out) const {
  SearchUp([&query](const Key& k) { return IsSubset(k, query); }, out);
}

void LatticeIndex::SearchSupersets(const Key& query,
                                   std::vector<int>* out) const {
  SearchDown([&query](const Key& k) { return IsSubset(query, k); }, out);
}

void LatticeIndex::LinearScan(const NodePredicate& pred,
                              std::vector<int>* out) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && pred(nodes_[i].key)) {
      out->push_back(static_cast<int>(i));
    }
  }
}

std::string LatticeIndex::CheckStructure() const {
  auto describe = [this](int n) {
    std::string s = "node " + std::to_string(n) + " {";
    for (uint32_t a : nodes_[n].key) s += std::to_string(a) + ",";
    return s + "}";
  };
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int m : nodes_[i].supersets) {
      if (!IsSubset(nodes_[i].key, nodes_[m].key) ||
          nodes_[i].key == nodes_[m].key) {
        return describe(static_cast<int>(i)) + " superset edge to non-strict-"
               "superset " + describe(m);
      }
      // Cover property: nothing strictly between.
      for (size_t z = 0; z < nodes_.size(); ++z) {
        if (z == i || static_cast<int>(z) == m) continue;
        if (IsSubset(nodes_[i].key, nodes_[z].key) &&
            nodes_[z].key != nodes_[i].key &&
            IsSubset(nodes_[z].key, nodes_[m].key) &&
            nodes_[z].key != nodes_[m].key) {
          return describe(static_cast<int>(i)) + " -> " + describe(m) +
                 " is not a cover edge: " + describe(static_cast<int>(z)) +
                 " lies between";
        }
      }
      const auto& back = nodes_[m].subsets;
      if (std::find(back.begin(), back.end(), static_cast<int>(i)) ==
          back.end()) {
        return "missing back pointer " + describe(m);
      }
    }
    bool is_top = nodes_[i].supersets.empty();
    bool in_tops = std::find(tops_.begin(), tops_.end(),
                             static_cast<int>(i)) != tops_.end();
    if (is_top != in_tops) return describe(static_cast<int>(i)) + " tops mismatch";
    bool is_root = nodes_[i].subsets.empty();
    bool in_roots = std::find(roots_.begin(), roots_.end(),
                              static_cast<int>(i)) != roots_.end();
    if (is_root != in_roots) {
      return describe(static_cast<int>(i)) + " roots mismatch";
    }
  }
  return "";
}

}  // namespace mvopt
