// Lattice index (§4.1): a Hasse diagram over key *sets*, supporting
// subset/superset searches without scanning every key.
//
// Nodes store sorted sets of uint32 atoms. Each node keeps pointers to its
// minimal supersets and maximal subsets; the index keeps arrays of tops
// (no supersets) and roots (no subsets). A superset search starts from the
// tops and descends along subset pointers while the (upward-closed)
// qualification predicate holds; a subset search starts from the roots and
// ascends along superset pointers while the (downward-closed) predicate
// holds.
//
// Deletion is lazy: erased nodes stay as routing waypoints and are skipped
// in results, which keeps the Hasse structure trivially correct.

#ifndef MVOPT_INDEX_LATTICE_H_
#define MVOPT_INDEX_LATTICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mvopt {

class LatticeIndex {
 public:
  /// A key: sorted, duplicate-free atoms.
  using Key = std::vector<uint32_t>;
  using NodePredicate = std::function<bool(const Key&)>;

  /// Inserts `key` (must be sorted unique); returns its node id.
  /// Re-inserting an erased key revives it.
  int Insert(const Key& key);

  /// Node id of `key`, or -1 (erased keys included while alive=false).
  int Find(const Key& key) const;

  /// Marks the node for `key` erased. Returns false if absent.
  bool Erase(const Key& key);

  /// Collects live nodes whose key is a subset of `query`.
  void SearchSubsets(const Key& query, std::vector<int>* out) const;

  /// Collects live nodes whose key is a superset of `query`.
  void SearchSupersets(const Key& query, std::vector<int>* out) const;

  /// Generic searches. `pred` must be upward-closed for SearchDown
  /// (supersets of a passing key pass) and downward-closed for SearchUp.
  void SearchDown(const NodePredicate& pred, std::vector<int>* out) const;
  void SearchUp(const NodePredicate& pred, std::vector<int>* out) const;

  /// Baseline for the ablation bench: test every live node.
  void LinearScan(const NodePredicate& pred, std::vector<int>* out) const;

  const Key& key(int node) const { return nodes_[node].key; }
  bool alive(int node) const { return nodes_[node].alive; }
  /// Cover edges (minimal supersets / maximal subsets), exposed so the
  /// invariant auditor can re-derive the Hasse diagram independently.
  const std::vector<int>& supersets(int node) const {
    return nodes_[node].supersets;
  }
  const std::vector<int>& subsets(int node) const {
    return nodes_[node].subsets;
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_live_nodes() const { return num_live_; }

  /// Structure check for tests: edges connect exactly covering pairs and
  /// tops/roots are consistent. Returns a description of the first
  /// violation, or empty.
  std::string CheckStructure() const;

  /// True if `a` is a subset of `b` (both sorted unique).
  static bool IsSubset(const Key& a, const Key& b);

 private:
  struct Node {
    Key key;
    std::vector<int> supersets;  ///< minimal supersets (cover edges up)
    std::vector<int> subsets;    ///< maximal subsets (cover edges down)
    bool alive = true;
  };

  void CollectSupersetsOf(const Key& key, std::vector<int>* out) const;
  void CollectSubsetsOf(const Key& key, std::vector<int>* out) const;

  std::vector<Node> nodes_;
  std::vector<int> tops_;
  std::vector<int> roots_;
  std::map<Key, int> by_key_;
  int num_live_ = 0;
};

}  // namespace mvopt

#endif  // MVOPT_INDEX_LATTICE_H_
