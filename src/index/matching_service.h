// MatchingService: the façade the optimizer's view-matching rule calls.
// Combines the view catalog, the filter tree (§4) and the view-matching
// algorithm (§3), and accumulates the effectiveness statistics reported
// in §5 (candidate-set fraction, pass rate, substitutes per invocation).
//
// Concurrency model: FindSubstitutes / FindUnionSubstitute may be called
// from any number of threads while AddView proceeds on another — readers
// take a shared lock, AddView an exclusive one, and all counters are
// atomic, so probe results are always computed against a consistent
// catalog/filter-tree snapshot (the one before or after the AddView).
// AddView itself is transactional: if indexing fails after catalog
// registration, the registration is rolled back, so the catalog, filter
// tree and lattices never disagree. The stats()/verify_stats() accessors
// return value snapshots.

#ifndef MVOPT_INDEX_MATCHING_SERVICE_H_
#define MVOPT_INDEX_MATCHING_SERVICE_H_

#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/query_budget.h"
#include "index/filter_tree.h"
#include "query/substitute.h"
#include "rewrite/matcher.h"
#include "rewrite/union_matcher.h"
#include "rewrite/view_catalog.h"
#include "verify/rewrite_checker.h"

namespace mvopt {

/// Value snapshot of the matching counters (see MatchingService::stats).
struct MatchingStats {
  int64_t invocations = 0;         ///< FindSubstitutes calls
  int64_t candidates = 0;          ///< views surviving the filter (summed)
  int64_t full_tests = 0;          ///< matcher executions
  int64_t substitutes = 0;         ///< substitutes produced
  int64_t match_failures = 0;      ///< matcher runs aborted by an exception
  int64_t budget_truncations = 0;  ///< probes cut short by a budget
  int64_t quarantine_skips = 0;    ///< candidates skipped while quarantined
  /// Rejection counts by reason (indexed by RejectReason).
  std::array<int64_t, kNumRejectReasons> rejects{};
};

/// Outcomes of the soundness checker over produced substitutes.
struct VerifyStats {
  static constexpr size_t kMaxRejectionTraces = 32;

  int64_t checked = 0;
  int64_t proven = 0;
  int64_t rejected = 0;
  int64_t quarantined_views = 0;  ///< views currently quarantined
  /// Rejection counts by CheckCode.
  std::array<int64_t, kNumCheckCodes> by_code{};
  /// First rejections, "view: code: detail" (capped).
  std::vector<std::string> rejection_traces;
};

class MatchingService {
 public:
  struct Options {
    bool use_filter_tree = true;
    MatchOptions match;
    /// Soundness checking of produced substitutes: off, log (count and
    /// trace rejections, keep everything) or enforce (discard unproven
    /// substitutes).
    VerifyMode verify_mode = VerifyMode::kOff;
    RewriteChecker::Options verify;
    /// Enforce-mode quarantine: a view whose substitutes are rejected by
    /// the checker this many times in a row is skipped by subsequent
    /// probes (a proven substitute resets the streak). 0 disables.
    int quarantine_threshold = 0;
  };

  explicit MatchingService(const Catalog* catalog);
  MatchingService(const Catalog* catalog, Options options);

  /// Validates + registers + indexes a view. nullptr with *error on
  /// rejection. Transactional: on an indexing failure the catalog
  /// registration is rolled back and the error is reported — no
  /// exception escapes and no partial state is left behind.
  ViewDefinition* AddView(const std::string& name, SpjgQuery definition,
                          std::string* error = nullptr);

  /// The view-matching rule body: all substitutes for `query`. With a
  /// `budget`, candidate enumeration and matching stop cooperatively on
  /// exhaustion and the substitutes found so far are returned.
  std::vector<Substitute> FindSubstitutes(const SpjgQuery& query,
                                          QueryBudget* budget = nullptr);

  /// §7 extension: a union substitute assembled from several
  /// range-partitioned views (SPJ queries only). Tries the views that
  /// survive a relaxed filter probe. Not part of FindSubstitutes so the
  /// §5 experiments stay paper-faithful.
  std::optional<UnionSubstitute> FindUnionSubstitute(const SpjgQuery& query);

  /// Structure accessors. Safe to use freely in single-threaded code;
  /// while concurrent AddView calls are possible they must not be
  /// retained across them.
  const ViewCatalog& views() const { return view_catalog_; }
  ViewCatalog& mutable_views() { return view_catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  const FilterTree& filter_tree() const { return filter_tree_; }
  const ViewMatcher& matcher() const { return matcher_; }

  /// Value snapshots of the (atomic) counters.
  MatchingStats stats() const;
  VerifyStats verify_stats() const;
  void ResetStats();
  void ResetVerifyStats();

  VerifyMode verify_mode() const { return options_.verify_mode; }
  void set_verify_mode(VerifyMode mode) { options_.verify_mode = mode; }
  const RewriteChecker& checker() const { return checker_; }

  /// Names of quarantined views, in id order.
  std::vector<std::string> QuarantinedViews() const;
  bool IsQuarantined(ViewId id) const;

 private:
  struct AtomicMatchingCounters {
    std::atomic<int64_t> invocations{0};
    std::atomic<int64_t> candidates{0};
    std::atomic<int64_t> full_tests{0};
    std::atomic<int64_t> substitutes{0};
    std::atomic<int64_t> match_failures{0};
    std::atomic<int64_t> budget_truncations{0};
    std::atomic<int64_t> quarantine_skips{0};
    std::array<std::atomic<int64_t>, kNumRejectReasons> rejects{};
  };
  struct AtomicVerifyCounters {
    std::atomic<int64_t> checked{0};
    std::atomic<int64_t> proven{0};
    std::atomic<int64_t> rejected{0};
    std::array<std::atomic<int64_t>, kNumCheckCodes> by_code{};
  };
  /// Per-view enforce-mode health (deque: grows without invalidating
  /// entries, and atomics need not move).
  struct ViewHealth {
    std::atomic<int32_t> consecutive_rejections{0};
    std::atomic<bool> quarantined{false};
  };

  void RecordVerifyRejection(ViewId id, const Verdict& verdict);

  const Catalog* catalog_;
  Options options_;
  ViewCatalog view_catalog_;
  FilterTree filter_tree_;
  ViewMatcher matcher_;
  RewriteChecker checker_;

  /// Guards catalog + filter tree structure: shared for probes,
  /// exclusive for AddView.
  mutable std::shared_mutex mu_;
  /// Guards the (rare) rejection-trace appends.
  mutable std::mutex trace_mu_;

  AtomicMatchingCounters stats_;
  AtomicVerifyCounters verify_stats_;
  std::vector<std::string> rejection_traces_;
  std::deque<ViewHealth> view_health_;
  std::atomic<int64_t> num_quarantined_{0};
};

}  // namespace mvopt

#endif  // MVOPT_INDEX_MATCHING_SERVICE_H_
