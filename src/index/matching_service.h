// MatchingService: the façade the optimizer's view-matching rule calls.
// Combines the view catalog, the filter tree (§4) and the view-matching
// algorithm (§3), and accumulates the effectiveness statistics reported
// in §5 (candidate-set fraction, pass rate, substitutes per invocation).
//
// Concurrency model (DESIGN.md §15): the catalog + filter tree live in
// one immutable CatalogSnapshot published through an atomic pointer.
// Probes (FindSubstitutes / FindUnionSubstitute / ResolveView) pin the
// current snapshot with an epoch-based-reclamation pin (EpochPin over
// common/epoch_reclaim.h) and run entirely lock-free — zero shared lock
// acquisitions and zero shared writes on the probe path outside the
// probe-atomic stats commit. Writers (AddView / recovery / lifecycle
// readmission and quarantine) serialize on the writer mutex, clone the
// current snapshot off-path, mutate the clone, and publish it with a
// pointer swap; the displaced snapshot is retired into the epoch domain
// and freed once no pin can still reference it. Probe results are always
// computed against one consistent snapshot (the one before or after any
// concurrent AddView). AddView stays transactional: if indexing or
// logging fails after catalog registration, the clone is simply
// discarded — the published snapshot never contains partial state.
// Options::probe_mode == kReaderLock selects the pre-snapshot discipline
// (a shared lock on the writer mutex) for A/B benchmarking and the
// byte-identity cross-check; results, ordering and stats are identical
// on both paths.
//
// Stats are *probe-atomic*: each probe accumulates its counters locally
// and commits them in one critical section at the end, so a stats()
// snapshot is always internally consistent (full_tests ≤ candidates,
// substitutes ≤ full_tests, every probe's contribution is all-in or
// all-out) and a ResetStats() racing concurrent probes loses no
// increments — it returns the pre-reset snapshot, and every in-flight
// probe lands entirely before or entirely after the reset.
//
// Observability (src/observe): with Options::observe enabled the service
// registers its metric families (probe counters, per-level filter-tree
// counters, reject reasons, probe-latency histogram, lifecycle
// transitions, WAL counters, snapshot lifecycle gauges) into the shared
// MetricsRegistry and mirrors every probe commit into them; a QueryTrace
// passed to FindSubstitutes additionally records per-stage wall clock
// and per-candidate verdicts.
//
// View lifecycle (rewrite/view_lifecycle.h): every view carries a
// durable lifecycle entry — FRESH / STALE / QUARANTINED / DISABLED —
// plus the base-table epoch of its last refresh and a content checksum.
// Probes skip sidelined views, reject stale ones (RejectReason::kStale)
// unless the query's budget grants a staleness tolerance (tolerated
// stale substitutes are down-ranked behind fresh ones), and record
// kStaleViewsOnly degradation when staleness was the only reason a probe
// came back empty. The revalidation pass re-admits sidelined views with
// exponential backoff.
//
// Durability (rewrite/catalog_store.h): with a store attached, AddView
// appends a CRC-framed WAL record before returning — its fsync is the
// commit point, and an append failure discards the cloned snapshot
// (unless the record was already durable, in which case the registration
// stands and the clone is published). RecoverFrom replays snapshot + WAL
// at startup, rebuilds the filter tree and lattices through the normal
// registration path into ONE new snapshot, quarantines unreplayable
// entries in the RecoveryReport instead of aborting, and Checkpoint
// writes a new snapshot and resets the WAL.

#ifndef MVOPT_INDEX_MATCHING_SERVICE_H_
#define MVOPT_INDEX_MATCHING_SERVICE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/epoch_reclaim.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/query_budget.h"
#include "common/query_context.h"
#include "index/filter_tree.h"
#include "observe/observe.h"
#include "observe/trace.h"
#include "query/substitute.h"
#include "rewrite/catalog_store.h"
#include "rewrite/match_program.h"
#include "rewrite/matcher.h"
#include "rewrite/substitute_source.h"
#include "rewrite/union_matcher.h"
#include "rewrite/view_catalog.h"
#include "rewrite/view_lifecycle.h"
#include "verify/rewrite_checker.h"

namespace mvopt {

/// Value snapshot of the matching counters (see MatchingService::stats).
struct MatchingStats {
  int64_t invocations = 0;         ///< FindSubstitutes calls
  int64_t candidates = 0;          ///< views surviving the filter (summed)
  int64_t full_tests = 0;          ///< matcher executions
  int64_t substitutes = 0;         ///< substitutes produced
  int64_t match_failures = 0;      ///< matcher runs aborted by an exception
  int64_t budget_truncations = 0;  ///< probes cut short by a budget
  int64_t quarantine_skips = 0;    ///< candidates skipped while sidelined
  int64_t stale_tolerated = 0;     ///< stale substitutes kept (down-ranked)
  /// Two-tier matching (rewrite/match_program.h): full tests decided by
  /// a compiled program vs. the generic oracle. Invariant:
  /// compiled_hits + compiled_fallbacks == full_tests (every matcher
  /// execution is attributed to exactly one tier; exceptions count as
  /// fallbacks — the compiled path never decided).
  int64_t compiled_hits = 0;       ///< candidates decided by a MatchProgram
  int64_t compiled_fallbacks = 0;  ///< candidates decided by the oracle
  int64_t cross_check_mismatches = 0;  ///< compiled verdict != oracle verdict
  /// Rejection counts by reason (indexed by RejectReason).
  std::array<int64_t, kNumRejectReasons> rejects{};

  void MergeFrom(const MatchingStats& other) {
    invocations += other.invocations;
    candidates += other.candidates;
    full_tests += other.full_tests;
    substitutes += other.substitutes;
    match_failures += other.match_failures;
    budget_truncations += other.budget_truncations;
    quarantine_skips += other.quarantine_skips;
    stale_tolerated += other.stale_tolerated;
    compiled_hits += other.compiled_hits;
    compiled_fallbacks += other.compiled_fallbacks;
    cross_check_mismatches += other.cross_check_mismatches;
    for (size_t i = 0; i < rejects.size(); ++i) rejects[i] += other.rejects[i];
  }
};

/// Outcomes of the soundness checker over produced substitutes.
struct VerifyStats {
  static constexpr size_t kMaxRejectionTraces = 32;

  int64_t checked = 0;
  int64_t proven = 0;
  int64_t rejected = 0;
  int64_t quarantined_views = 0;  ///< views currently sidelined
  /// Rejection counts by CheckCode.
  std::array<int64_t, kNumCheckCodes> by_code{};
  /// First rejections, "view: code: detail" (capped).
  std::vector<std::string> rejection_traces;
};

/// The unit of publication on the probe path (DESIGN.md §15): the view
/// catalog and the filter tree built over its descriptions, bundled so
/// one atomic pointer covers everything a probe walks. Immutable once
/// published — writers clone, mutate the clone, and publish the clone.
/// The clone shares the ViewDefinition objects with its source (see
/// ViewCatalog's copy constructor) but owns its descriptions and tree.
struct CatalogSnapshot {
  explicit CatalogSnapshot(const Catalog* catalog)
      : views(catalog), tree(&views.descriptions()) {}
  /// Clone for the next generation: bumps the version, copies the
  /// catalog (sharing definitions), deep-copies the tree rebound onto
  /// the clone's own description store.
  CatalogSnapshot(const CatalogSnapshot& other)
      : version(other.version + 1),
        views(other.views),
        tree(other.tree, &views.descriptions()) {}
  CatalogSnapshot& operator=(const CatalogSnapshot&) = delete;

  uint64_t version = 0;  ///< publication generation (0 = initial, empty)
  ViewCatalog views;
  FilterTree tree;
};

class MatchingService : public SubstituteSource {
 public:
  /// How probes synchronize with writers. kSnapshot is the production
  /// path: pin the published snapshot, no shared locks. kReaderLock is
  /// the pre-snapshot discipline (shared lock on the writer mutex),
  /// kept as the A/B baseline for bench/snapshot_scaling and the
  /// byte-identity cross-check in tests/snapshot_test.cc.
  enum class ProbeMode { kSnapshot, kReaderLock };

  struct Options {
    bool use_filter_tree = true;
    MatchOptions match;
    ProbeMode probe_mode = ProbeMode::kSnapshot;
    /// Soundness checking of produced substitutes: off, log (count and
    /// trace rejections, keep everything) or enforce (discard unproven
    /// substitutes).
    VerifyMode verify_mode = VerifyMode::kOff;
    RewriteChecker::Options verify;
    /// Enforce-mode quarantine: a view whose substitutes are rejected by
    /// the checker this many times in a row is skipped by subsequent
    /// probes (a proven substitute resets the streak). 0 disables.
    int quarantine_threshold = 0;
    /// Circuit breaker: a rejection streak of this many moves a
    /// quarantined view to DISABLED (only revalidation re-enables it).
    /// 0 disables the escalation.
    int disable_threshold = 0;
    /// Two-tier matching (rewrite/match_program.h): compile each view
    /// into a MatchProgram at registration/recovery. Views outside the
    /// compiled envelope (and all views when this is off) match through
    /// the generic ViewMatcher.
    bool compile_match_programs = true;
    /// Initial compiled-vs-oracle agreement checking; runtime-flippable
    /// afterwards via set_cross_check() (see cross_check_).
    MatchCrossCheck cross_check = MatchCrossCheck::kOff;
    /// Observability (off by default; see observe/observe.h). The
    /// registry, when set, must outlive the service.
    ObserveOptions observe;
  };

  explicit MatchingService(const Catalog* catalog);
  MatchingService(const Catalog* catalog, Options options);
  ~MatchingService() override;

  /// Validates + registers + indexes a view (and, with a store attached,
  /// commits it to the WAL). nullptr with *error on rejection.
  /// Transactional: the registration happens on a private clone of the
  /// current snapshot, so an indexing or logging failure just discards
  /// the clone — no exception escapes and no partial state is ever
  /// published. The one exception is an ambiguous commit
  /// (StoreIoError::durable()): the WAL record is already on stable
  /// storage, so the clone is published and the registration stands.
  ViewDefinition* AddView(const std::string& name, SpjgQuery definition,
                          std::string* error = nullptr) MVOPT_EXCLUDES(mu_);

  /// The view-matching rule body: all substitutes for `query`, computed
  /// by an explicit staged pipeline
  ///
  ///   probe -> prefilter -> match -> compensate -> cost-annotate
  ///
  /// over a pinned immutable snapshot — the probe takes no shared lock
  /// and performs no shared write outside the final stats commit. The
  /// pipeline's boundaries are visible to the context's trace (stage
  /// wall clock + NoteStageBoundary) and stage hook. The context
  /// supplies the budget (candidate enumeration and matching stop
  /// cooperatively on exhaustion, returning the substitutes found so
  /// far), the staleness tolerance (how far behind a substituted view
  /// may lag; default: fresh views only) and, optionally, a ThreadPool
  /// for the match stage. Without a pool (the default) the pipeline is
  /// serial and its results are byte-identical to the pre-pipeline
  /// implementation; with one, candidates are matched in parallel
  /// batches but results, ordering and stats are still deterministic —
  /// each candidate fills its own outcome slot and the slots are merged
  /// in candidate order by the serial compensate stage, so worker count
  /// and scheduling never show through. The context (and its trace) must
  /// not be shared across concurrent probes; the pool may be.
  std::vector<Substitute> FindSubstitutes(const SpjgQuery& query,
                                          QueryContext& ctx) override
      MVOPT_EXCLUDES(mu_);

  /// Back-compat loose-parameter form: forwards through a local context.
  std::vector<Substitute> FindSubstitutes(const SpjgQuery& query,
                                          QueryBudget* budget = nullptr,
                                          QueryTrace* trace = nullptr)
      MVOPT_EXCLUDES(mu_);

  /// §7 extension: a union substitute assembled from several
  /// range-partitioned views (SPJ queries only). Tries the views that
  /// survive a relaxed filter probe. Not part of FindSubstitutes so the
  /// §5 experiments stay paper-faithful. Respects the context's deadline
  /// (cooperative ticks inside the partition sweep), admits legs from
  /// views lagging at most ctx.max_staleness() epochs, and records a
  /// "union-match" span into the trace / stage hook.
  std::optional<UnionSubstitute> FindUnionSubstitute(
      const SpjgQuery& query, QueryContext& ctx) override MVOPT_EXCLUDES(mu_);

  /// Back-compat form: default context (no deadline, fresh views only).
  std::optional<UnionSubstitute> FindUnionSubstitute(const SpjgQuery& query)
      MVOPT_EXCLUDES(mu_);

  /// SubstituteSource: the definition behind one of this service's view
  /// ids. Safe from any thread: the lookup pins the current snapshot,
  /// and the returned reference outlives the pin because definitions
  /// are shared across snapshot generations (published catalogs grow
  /// append-only), so the object lives as long as the service.
  const ViewDefinition& ResolveView(ViewId id) const override {
    EpochPin pin(reclaim_);
    return PinnedSnapshot()->views.view(id);
  }

  // --- durability ---------------------------------------------------------

  /// Attaches `store` (opened on demand) so subsequent AddView calls and
  /// lifecycle events are logged. The store must outlive the service.
  void AttachStore(CatalogStore* store) MVOPT_EXCLUDES(mu_);

  /// Startup recovery: replays `store`'s snapshot + WAL into this (empty)
  /// service, rebuilding the filter tree and lattices through the normal
  /// registration path into one new snapshot published at the end.
  /// Entries whose SQL no longer parses or validates are quarantined in
  /// the report, never fatal. Attaches the store.
  RecoveryReport RecoverFrom(CatalogStore* store) MVOPT_EXCLUDES(mu_);

  /// Writes a full snapshot of the catalog + lifecycle states and resets
  /// the WAL. Requires an attached store.
  void Checkpoint() MVOPT_EXCLUDES(mu_);

  // --- lifecycle ----------------------------------------------------------

  /// Wires base-table update epochs (owned by the engine side); without
  /// a clock every view is considered fresh. The clock must outlive the
  /// service. The pointer is an atomic: probes read it lock-free on the
  /// snapshot path, so a plain member store here would be a data race.
  void set_epoch_clock(const TableEpochClock* clock) {
    epochs_.store(clock, std::memory_order_release);
  }
  const TableEpochClock* epoch_clock() const {
    return epochs_.load(std::memory_order_acquire);
  }

  /// The lifecycle registry (engine-side maintenance reports refreshes
  /// and checksums through this). Internally synchronized: safe from any
  /// thread without the service lock.
  ViewLifecycleRegistry& lifecycle() { return lifecycle_; }
  const ViewLifecycleRegistry& lifecycle() const { return lifecycle_; }

  /// Lock-free (the lifecycle registry is internally synchronized).
  ViewState view_state(ViewId id) const { return lifecycle_.state(id); }

  /// How many update epochs `id` lags its base tables (0 = fresh).
  uint64_t StalenessLag(ViewId id) const;

  /// Trips the circuit breaker for `id` (content checksum mismatch):
  /// DISABLED, removed from the filter tree (a new snapshot is
  /// published), event logged. Returns true if the state changed.
  bool ReportChecksumMismatch(ViewId id) MVOPT_EXCLUDES(mu_);

  /// One background-revalidation tick: sidelined views are compacted out
  /// of the filter tree; those due for a retry (exponential backoff) are
  /// handed to `validate`, and on success re-inserted into the filter
  /// tree and returned to FRESH. Tree changes land in one published
  /// snapshot. Returns the number readmitted.
  int RevalidationTick(
      const std::function<bool(const ViewDefinition&)>& validate)
      MVOPT_EXCLUDES(mu_);

  /// Forces `id` back into rotation (FRESH + re-indexed). Returns false
  /// if the view was not sidelined.
  bool ReadmitView(ViewId id) MVOPT_EXCLUDES(mu_);

  /// Structure accessors. They hand out references INTO the current
  /// snapshot without pinning it, so the single-threaded contract from
  /// the pre-snapshot code still applies: they must not run (and the
  /// references must not be retained) concurrently with AddView /
  /// recovery / revalidation, which may retire the snapshot under them.
  /// (Individual ViewDefinitions are exempt — those are shared across
  /// generations; see ResolveView.)
  const ViewCatalog& views() const {
    return snapshot_.load(std::memory_order_acquire)->views;
  }
  ViewCatalog& mutable_views() {
    return snapshot_.load(std::memory_order_acquire)->views;
  }
  const Catalog& catalog() const { return *catalog_; }
  const FilterTree& filter_tree() const {
    return snapshot_.load(std::memory_order_acquire)->tree;
  }
  const ViewMatcher& matcher() const { return matcher_; }

  /// Current publication generation (bumps on every published write).
  uint64_t snapshot_version() const {
    return snapshot_.load(std::memory_order_acquire)->version;
  }
  /// Snapshots retired but not yet reclaimed (mvopt_snapshot_retired).
  int64_t retired_snapshots() const { return reclaim_.retired_count(); }

  /// Internally consistent value snapshots (probe-atomic: no probe is
  /// ever half-reflected).
  MatchingStats stats() const MVOPT_EXCLUDES(stats_mu_);
  VerifyStats verify_stats() const MVOPT_EXCLUDES(stats_mu_);
  /// Reset and return the pre-reset snapshot in one critical section, so
  /// no probe's increments are lost even when resets race probes.
  MatchingStats ResetStats() MVOPT_EXCLUDES(stats_mu_);
  VerifyStats ResetVerifyStats() MVOPT_EXCLUDES(stats_mu_);

  /// The verify mode is an atomic, not part of the lock-guarded options:
  /// operators flip it at runtime (log -> enforce) while probes are in
  /// flight, and each probe snapshots it once so a flip never lands
  /// half-way through one probe's accounting.
  VerifyMode verify_mode() const {
    return verify_mode_.load(std::memory_order_relaxed);
  }
  void set_verify_mode(VerifyMode mode) {
    verify_mode_.store(mode, std::memory_order_relaxed);
  }
  const RewriteChecker& checker() const { return checker_; }

  /// Compiled-vs-oracle cross-check mode: atomic and runtime-flippable
  /// like verify_mode, snapshotted once per probe so a flip applies to
  /// whole probes only.
  MatchCrossCheck cross_check() const {
    return cross_check_.load(std::memory_order_relaxed);
  }
  void set_cross_check(MatchCrossCheck mode) {
    cross_check_.store(mode, std::memory_order_relaxed);
  }

  /// Test hook (adversarial mutant tests): swaps the compiled program of
  /// `id` — possibly for a corrupted one, or nullptr to force the
  /// generic tier — through the normal clone-mutate-publish path.
  void ReplaceProgramForTest(ViewId id,
                             std::shared_ptr<const MatchProgram> program)
      MVOPT_EXCLUDES(mu_);

  /// Names of sidelined (quarantined or disabled) views, in id order.
  std::vector<std::string> QuarantinedViews() const;
  /// Lock-free (the lifecycle registry is internally synchronized).
  bool IsQuarantined(ViewId id) const;

 private:
  /// Plain (non-atomic) verify counters, guarded by stats_mu_.
  struct VerifyCounters {
    int64_t checked = 0;
    int64_t proven = 0;
    int64_t rejected = 0;
    std::array<int64_t, kNumCheckCodes> by_code{};

    void MergeFrom(const VerifyCounters& other) {
      checked += other.checked;
      proven += other.proven;
      rejected += other.rejected;
      for (size_t i = 0; i < by_code.size(); ++i) {
        by_code[i] += other.by_code[i];
      }
    }
  };

  /// One probe's locally accumulated stats, committed atomically at the
  /// end of the probe (the tearing fix: a snapshot reader can never see
  /// a probe half-applied, and a reset can never lose part of one).
  struct ProbeDelta {
    MatchingStats stats;
    VerifyCounters verify;
    std::vector<std::string> rejection_traces;
  };

  /// Cached MetricsRegistry instruments; all null when counters are off,
  /// so every instrumentation point is a null check in kOff mode.
  struct ProbeMetrics {
    Counter* invocations = nullptr;
    Counter* candidates = nullptr;
    Counter* full_tests = nullptr;
    Counter* substitutes = nullptr;
    Counter* match_failures = nullptr;
    Counter* budget_truncations = nullptr;
    Counter* quarantine_skips = nullptr;
    Counter* stale_tolerated = nullptr;
    Counter* compiled_hits = nullptr;
    Counter* compiled_fallbacks = nullptr;
    Counter* cross_check_mismatches = nullptr;
    /// Per-tier match-stage latency (seconds per candidate), indexed by
    /// MatchTier.
    std::array<Histogram*, kNumMatchTiers> match_latency{};
    std::array<Counter*, kNumRejectReasons> rejects{};
    std::array<Counter*, kNumFilterLevels> level_probes{};
    std::array<Counter*, kNumFilterLevels> level_visits{};
    Counter* lattice_nodes = nullptr;
    Counter* subset_searches = nullptr;
    Counter* superset_searches = nullptr;
    Counter* scan_searches = nullptr;
    Counter* range_checked = nullptr;
    Counter* range_rejected = nullptr;
    Histogram* probe_latency = nullptr;
  };

  /// A candidate admitted by the prefilter stage. lag == 0 means fresh;
  /// lag > 0 means the view is stale but within the query's tolerance
  /// (its substitutes are down-ranked and annotated by cost-annotate).
  struct GatedCandidate {
    ViewId id = 0;
    uint64_t lag = 0;
  };

  /// Per-candidate outcome slot of the match stage. Slots are written by
  /// at most one thread (serial loop or the worker that claimed the
  /// item) and merged in candidate order by the serial compensate stage,
  /// which is what makes the parallel path deterministic.
  struct MatchOutcome {
    enum class Kind : uint8_t {
      kSkipped = 0,  ///< never attempted (deadline hit before this slot)
      kDone,         ///< matcher ran; `result` holds its answer
      kError,        ///< matcher threw; isolated to this candidate
    };
    Kind kind = Kind::kSkipped;
    MatchResult result;
    /// Which tier decided `result` (kDone only): the view's MatchProgram
    /// ran to a verdict, or the generic oracle ran (no program, program
    /// declined, or the compiled attempt threw).
    MatchTier tier = MatchTier::kGeneric;
    /// Wall clock of this candidate's match test; < 0 when untimed
    /// (per-tier latency histograms off).
    double seconds = -1.0;
  };

  // --- snapshot plumbing --------------------------------------------------

  /// The published snapshot, dereferenceable while the caller holds an
  /// EpochPin on reclaim_ — the REQUIRES_SHARED makes obtaining the
  /// pointer after Unpin a compile error under the thread-safety gate.
  /// seq_cst load: the pin's slot store must precede this load in the
  /// single total order the reclamation safety argument relies on.
  const CatalogSnapshot* PinnedSnapshot() const
      MVOPT_REQUIRES_SHARED(reclaim_) {
    return snapshot_.load(std::memory_order_seq_cst);
  }
  /// The published snapshot under the writer mutex (shared suffices:
  /// publication requires the exclusive lock, so the snapshot cannot be
  /// retired while any reader holds mu_).
  CatalogSnapshot* SnapshotLocked() const MVOPT_REQUIRES_SHARED(mu_) {
    return snapshot_.load(std::memory_order_acquire);
  }
  /// Swaps `next` in as the published snapshot, retires the old one into
  /// the epoch domain and updates the snapshot gauges.
  void PublishLocked(std::unique_ptr<CatalogSnapshot> next)
      MVOPT_REQUIRES(mu_);

  // --- pipeline stages (pure functions of the pinned snapshot) ------------

  /// Stage 1 (probe): filter-tree candidate enumeration (or the full id
  /// range when the tree is off).
  std::vector<ViewId> StageProbe(const CatalogSnapshot& snap,
                                 const SpjgQuery& query, QueryContext& ctx,
                                 FilterSearchStats* fstats);
  /// Stage 2 (prefilter): sidelined screen + staleness gate via
  /// ViewLifecycleRegistry::GateForProbe; ticks the deadline per
  /// candidate. Sets *truncated when the budget cut the walk short.
  std::vector<GatedCandidate> StagePrefilter(
      const CatalogSnapshot& snap, const std::vector<ViewId>& candidates,
      QueryContext& ctx, ProbeDelta* delta, int64_t* stale_rejects,
      bool* truncated);
  /// Stage 3 (match): runs the matcher over the gated candidates —
  /// serially, or in one ThreadPool batch when the context attached a
  /// pool and the candidate set is large enough. Workers never touch the
  /// budget: they compare against a snapshotted deadline and raise a
  /// shared stop flag; the charge is applied after the join. The
  /// caller's pin keeps the snapshot alive across the join.
  std::vector<MatchOutcome> StageMatch(const CatalogSnapshot& snap,
                                       const SpjgQuery& query,
                                       const std::vector<GatedCandidate>& gated,
                                       QueryContext& ctx, bool* truncated);
  /// Stage 4 (compensate): serial, candidate-order walk of the outcome
  /// slots — verification (soundness checker / quarantine bookkeeping),
  /// stats accounting and trace verdicts all happen here, so the stats
  /// delta is identical however the match stage was scheduled. `mode` is
  /// the probe's verify-mode snapshot (taken once, see verify_mode_).
  /// `xmode` is the probe's cross-check snapshot: compiled verdicts are
  /// replayed against the generic oracle here (serial, candidate order),
  /// mismatches counted and — in enforce mode — the view quarantined via
  /// the circuit breaker and the oracle's verdict substituted, so
  /// enforce-mode output is byte-identical to the generic tier by
  /// construction.
  void StageCompensate(const CatalogSnapshot& snap, const SpjgQuery& query,
                       const std::vector<GatedCandidate>& gated,
                       std::vector<MatchOutcome>* outcomes, QueryContext& ctx,
                       VerifyMode mode, MatchCrossCheck xmode,
                       ProbeDelta* delta, std::vector<Substitute>* fresh,
                       std::vector<Substitute>* stale);

  /// The probe pipeline over one consistent snapshot. The caller
  /// guarantees `snap` stays alive for the duration (EpochPin on the
  /// snapshot path, a shared writer-mutex hold on the reader-lock path).
  std::vector<Substitute> FindSubstitutesOn(const CatalogSnapshot& snap,
                                            const SpjgQuery& query,
                                            QueryContext& ctx);
  std::optional<UnionSubstitute> FindUnionSubstituteOn(
      const CatalogSnapshot& snap, const SpjgQuery& query, QueryContext& ctx);

  /// Registers this service's metric families (ctor, counters on).
  void RegisterMetrics();
  /// Wires the attached store's WAL counters.
  void WireStoreCountersLocked() MVOPT_REQUIRES(mu_);
  /// Commits one probe's delta into the authoritative stats (one
  /// critical section) and mirrors it into the registry counters.
  /// `fstats` carries the filter-tree counters when they were collected.
  void CommitProbe(const ProbeDelta& delta, const FilterSearchStats* fstats)
      MVOPT_EXCLUDES(stats_mu_);
  void RecordVerifyRejection(const CatalogSnapshot& snap, ViewId id,
                             const Verdict& verdict, VerifyMode mode,
                             ProbeDelta* delta);
  /// Staleness lag of `id` against `snap`'s description store.
  uint64_t StalenessLagOn(const CatalogSnapshot& snap, ViewId id) const;
  /// Persisted image of view `id` out of `views`.
  PersistedView PersistedImageOf(const ViewCatalog& views, ViewId id) const;
  /// Best-effort lifecycle event append (store_ is mu_-guarded).
  void LogViewEventLocked(const ViewCatalog& views, ViewId id)
      MVOPT_REQUIRES(mu_);
  /// Grows lifecycle + tree-membership bookkeeping to `num_views`.
  void GrowBookkeepingLocked(int num_views) MVOPT_REQUIRES(mu_);

  const Catalog* catalog_;
  /// Immutable after construction except verify_mode (see verify_mode_,
  /// which supersedes options_.verify_mode after the ctor).
  Options options_;
  ViewMatcher matcher_;      ///< stateless per-call; Match() is const
  RewriteChecker checker_;   ///< stateless per-call; Check() is const

  /// The writer mutex: serializes AddView / recovery / revalidation /
  /// checkpoint (held exclusive while cloning and publishing), and doubles
  /// as the reader-lock baseline's probe lock (held shared) in
  /// ProbeMode::kReaderLock. Always acquired before stats_mu_ and before
  /// the attached store's internal mutex. Snapshot-path probes never
  /// touch it.
  mutable SharedMutex mu_ MVOPT_ACQUIRED_BEFORE(stats_mu_);
  /// Guards the probe-atomic stats below: probes take it once per probe
  /// (to commit their delta), snapshots and resets take it for the whole
  /// read-or-swap. Never held together with mu_ waits.
  mutable Mutex stats_mu_;

  /// The published snapshot (never null). Writers exchange it under mu_;
  /// probes load it under an EpochPin. The pointed-to snapshot is
  /// immutable while published (the snapshot contract), which is why no
  /// TSA guard applies — consistency is by construction, not exclusion.
  std::atomic<CatalogSnapshot*> snapshot_;
  /// Epoch-based reclamation domain for retired snapshots. mutable: a
  /// const probe (ResolveView, StalenessLag) still pins.
  mutable EpochDomain reclaim_;

  MatchingStats stats_ MVOPT_GUARDED_BY(stats_mu_);
  VerifyCounters verify_counters_ MVOPT_GUARDED_BY(stats_mu_);
  std::vector<std::string> rejection_traces_ MVOPT_GUARDED_BY(stats_mu_);
  /// Written once in RegisterMetrics (ctor); immutable afterwards, and
  /// the instruments it points at are internally atomic.
  ProbeMetrics metrics_;
  /// Snapshot lifecycle gauges (null when observability is off):
  /// mvopt_snapshot_live = snapshots alive in memory (current + retired
  /// awaiting reclamation), mvopt_snapshot_retired = retired only.
  Gauge* snapshot_live_gauge_ = nullptr;
  Gauge* snapshot_retired_gauge_ = nullptr;

  /// Runtime-flippable soundness-checking mode (see verify_mode()).
  std::atomic<VerifyMode> verify_mode_;
  /// Runtime-flippable compiled-vs-oracle cross-check (see cross_check()).
  std::atomic<MatchCrossCheck> cross_check_;

  /// Internally synchronized (lock-free entry access); not guarded.
  ViewLifecycleRegistry lifecycle_;
  /// Atomic: probes read it lock-free on the snapshot path.
  std::atomic<const TableEpochClock*> epochs_{nullptr};
  CatalogStore* store_ MVOPT_GUARDED_BY(mu_) = nullptr;
  /// Whether each view currently lives in the filter tree (sidelined
  /// views are compacted out by RevalidationTick). Writer-side
  /// bookkeeping: probes never read it — the published tree itself is
  /// the probe-visible truth.
  std::vector<char> in_tree_ MVOPT_GUARDED_BY(mu_);
  int64_t revalidation_tick_ MVOPT_GUARDED_BY(mu_) = 0;
};

}  // namespace mvopt

#endif  // MVOPT_INDEX_MATCHING_SERVICE_H_
