// MatchingService: the façade the optimizer's view-matching rule calls.
// Combines the view catalog, the filter tree (§4) and the view-matching
// algorithm (§3), and accumulates the effectiveness statistics reported
// in §5 (candidate-set fraction, pass rate, substitutes per invocation).

#ifndef MVOPT_INDEX_MATCHING_SERVICE_H_
#define MVOPT_INDEX_MATCHING_SERVICE_H_

#include <array>
#include <string>
#include <vector>

#include "index/filter_tree.h"
#include "query/substitute.h"
#include "rewrite/matcher.h"
#include "rewrite/union_matcher.h"
#include "rewrite/view_catalog.h"
#include "verify/rewrite_checker.h"

namespace mvopt {

struct MatchingStats {
  int64_t invocations = 0;    ///< FindSubstitutes calls
  int64_t candidates = 0;     ///< views surviving the filter (summed)
  int64_t full_tests = 0;     ///< matcher executions
  int64_t substitutes = 0;    ///< substitutes produced
  /// Rejection counts by reason (indexed by RejectReason).
  std::array<int64_t, 16> rejects{};

  void Reset() { *this = MatchingStats(); }
};

/// Outcomes of the soundness checker over produced substitutes.
struct VerifyStats {
  static constexpr size_t kMaxRejectionTraces = 32;

  int64_t checked = 0;
  int64_t proven = 0;
  int64_t rejected = 0;
  /// Rejection counts by CheckCode.
  std::array<int64_t, kNumCheckCodes> by_code{};
  /// First rejections, "view: code: detail" (capped).
  std::vector<std::string> rejection_traces;

  void Reset() { *this = VerifyStats(); }
};

class MatchingService {
 public:
  struct Options {
    bool use_filter_tree = true;
    MatchOptions match;
    /// Soundness checking of produced substitutes: off, log (count and
    /// trace rejections, keep everything) or enforce (discard unproven
    /// substitutes).
    VerifyMode verify_mode = VerifyMode::kOff;
    RewriteChecker::Options verify;
  };

  explicit MatchingService(const Catalog* catalog);
  MatchingService(const Catalog* catalog, Options options);

  /// Validates + registers + indexes a view. nullptr with *error on
  /// rejection.
  ViewDefinition* AddView(const std::string& name, SpjgQuery definition,
                          std::string* error = nullptr);

  /// The view-matching rule body: all substitutes for `query`.
  std::vector<Substitute> FindSubstitutes(const SpjgQuery& query);

  /// §7 extension: a union substitute assembled from several
  /// range-partitioned views (SPJ queries only). Tries the views that
  /// survive a relaxed filter probe. Not part of FindSubstitutes so the
  /// §5 experiments stay paper-faithful.
  std::optional<UnionSubstitute> FindUnionSubstitute(const SpjgQuery& query);

  const ViewCatalog& views() const { return view_catalog_; }
  ViewCatalog& mutable_views() { return view_catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  const FilterTree& filter_tree() const { return filter_tree_; }
  const ViewMatcher& matcher() const { return matcher_; }

  MatchingStats& stats() { return stats_; }
  const MatchingStats& stats() const { return stats_; }

  VerifyMode verify_mode() const { return options_.verify_mode; }
  void set_verify_mode(VerifyMode mode) { options_.verify_mode = mode; }
  const RewriteChecker& checker() const { return checker_; }
  VerifyStats& verify_stats() { return verify_stats_; }
  const VerifyStats& verify_stats() const { return verify_stats_; }

 private:
  const Catalog* catalog_;
  Options options_;
  ViewCatalog view_catalog_;
  FilterTree filter_tree_;
  ViewMatcher matcher_;
  RewriteChecker checker_;
  MatchingStats stats_;
  VerifyStats verify_stats_;
};

}  // namespace mvopt

#endif  // MVOPT_INDEX_MATCHING_SERVICE_H_
