#include "index/matching_service.h"

#include <algorithm>
#include <cassert>
#include <exception>

#include "common/failpoint.h"
#include "query/parser.h"

namespace mvopt {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

MatchingService::MatchingService(const Catalog* catalog)
    : MatchingService(catalog, Options()) {}

MatchingService::MatchingService(const Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      view_catalog_(catalog),
      filter_tree_(&view_catalog_.descriptions()),
      matcher_(catalog, options.match),
      checker_(catalog, options.verify) {
  filter_tree_.set_assume_backjoins(options_.match.enable_backjoins);
}

void MatchingService::GrowBookkeepingLocked() {
  const size_t n = static_cast<size_t>(view_catalog_.num_views());
  lifecycle_.EnsureSize(n);
  // Self-healing growth so a historical allocation failure here can
  // never skew later ids; new views enter the filter tree in AddView.
  while (in_tree_.size() < n) in_tree_.push_back(1);
}

PersistedView MatchingService::PersistedImageLocked(ViewId id) const {
  PersistedView image;
  const ViewDefinition& view = view_catalog_.view(id);
  image.name = view.name();
  image.sql = view.query().ToSql(*catalog_);
  ViewLifecycleRegistry::Snapshot snap = lifecycle_.snapshot(id);
  image.state = snap.state;
  image.epoch = snap.epoch;
  image.content_checksum = snap.content_checksum;
  return image;
}

void MatchingService::LogViewEventLocked(ViewId id) {
  if (store_ == nullptr || !store_->is_open()) return;
  ViewLifecycleRegistry::Snapshot snap = lifecycle_.snapshot(id);
  try {
    store_->AppendViewEvent(view_catalog_.view(id).name(), snap.state,
                            snap.epoch, snap.content_checksum);
  } catch (const StoreIoError&) {
    // Lifecycle events are best-effort: the in-memory registry stays
    // authoritative, and a lost event only means the view comes back
    // after a crash in its previous durable state — the revalidation
    // pass converges it again.
  }
}

ViewDefinition* MatchingService::AddView(const std::string& name,
                                         SpjgQuery definition,
                                         std::string* error) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ViewDefinition* view = nullptr;
  bool indexed = false;
  try {
    view = view_catalog_.AddView(name, std::move(definition), error);
    if (view == nullptr) return nullptr;
    filter_tree_.AddView(view->id());
    indexed = true;
    if (store_ != nullptr && store_->is_open()) {
      PersistedView image;
      image.name = view->name();
      image.sql = view->query().ToSql(*catalog_);
      image.state = ViewState::kFresh;
      image.epoch = epochs_ != nullptr ? epochs_->now() : 0;
      store_->AppendAddView(image);
    }
  } catch (const StoreIoError& e) {
    if (!e.durable()) {
      // The WAL append failed before the commit point: nothing is on
      // stable storage, so undo the in-memory registration too.
      filter_tree_.RemoveView(view->id());
      view_catalog_.RemoveLastView(view->id());
      if (error != nullptr) {
        *error = std::string("view registration aborted and rolled back: ") +
                 e.what();
      }
      return nullptr;
    }
    // Ambiguous commit: the record reached stable storage before the
    // failure, so the registration stands (recovery would replay it).
  } catch (const std::exception& e) {
    // Transactional: indexing failed (or registration threw), so undo
    // the catalog registration. FilterTree::AddView already rolled its
    // own partial inserts back, leaving every structure as it was.
    if (view != nullptr) {
      if (indexed) filter_tree_.RemoveView(view->id());
      view_catalog_.RemoveLastView(view->id());
    }
    if (error != nullptr) {
      *error = std::string("view registration aborted and rolled back: ") +
               e.what();
    }
    return nullptr;
  }
  GrowBookkeepingLocked();
  lifecycle_.MarkFresh(view->id(),
                       epochs_ != nullptr ? epochs_->now() : 0);
  return view;
}

uint64_t MatchingService::StalenessLagLocked(ViewId id) const {
  if (epochs_ == nullptr) return 0;
  const ViewDescription& d = view_catalog_.description(id);
  const uint64_t latest = epochs_->LatestOf(d.source_tables);
  const uint64_t mine = lifecycle_.epoch(id);
  return latest > mine ? latest - mine : 0;
}

uint64_t MatchingService::StalenessLag(ViewId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return StalenessLagLocked(id);
}

std::vector<Substitute> MatchingService::FindSubstitutes(
    const SpjgQuery& query, QueryBudget* budget) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MVOPT_FAILPOINT("matching_service.find_substitutes");
  stats_.invocations.fetch_add(1, kRelaxed);
  if (view_catalog_.num_views() == 0) return {};
  std::vector<ViewId> candidates;
  if (options_.use_filter_tree) {
    QueryDescription qd = DescribeQuery(*catalog_, query);
    candidates = filter_tree_.FindCandidates(qd, nullptr, budget);
  } else {
    // Without the index every view description must be considered; the
    // only cheap pre-test retained is the aggregation/table-set screen
    // performed inside the matcher itself.
    candidates.reserve(view_catalog_.num_views());
    for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
      candidates.push_back(id);
    }
  }
  stats_.candidates.fetch_add(static_cast<int64_t>(candidates.size()),
                              kRelaxed);

  const bool quarantine_active =
      options_.quarantine_threshold > 0 &&
      options_.verify_mode == VerifyMode::kEnforce;
  const uint64_t tolerance = budget != nullptr ? budget->max_staleness() : 0;
  std::vector<Substitute> out;
  std::vector<Substitute> stale_out;  // tolerated-stale: ranked after fresh
  int64_t stale_rejects = 0;
  for (ViewId id : candidates) {
    if (budget != nullptr && budget->TickDeadline()) {
      stats_.budget_truncations.fetch_add(1, kRelaxed);
      break;
    }
    // Sidelined views never participate, regardless of how they got
    // there (verify quarantine, checksum breaker, recovered state).
    if (lifecycle_.IsSidelined(id)) {
      stats_.quarantine_skips.fetch_add(1, kRelaxed);
      continue;
    }
    // Staleness screen: a view whose base tables advanced past its last
    // refresh may only substitute within the query's declared tolerance.
    const uint64_t lag = StalenessLagLocked(id);
    bool tolerated_stale = false;
    if (lag > 0) {
      lifecycle_.MarkStale(id);  // opportunistic: probe observed the lag
      if (lag > tolerance) {
        stats_.rejects[static_cast<size_t>(RejectReason::kStale)].fetch_add(
            1, kRelaxed);
        ++stale_rejects;
        continue;
      }
      tolerated_stale = true;
    }
    stats_.full_tests.fetch_add(1, kRelaxed);
    MatchResult result;
    try {
      MVOPT_FAILPOINT("matcher.match");
      result = matcher_.Match(query, view_catalog_.view(id));
    } catch (const std::exception&) {
      // Fault isolation: one failing candidate never poisons the probe.
      stats_.match_failures.fetch_add(1, kRelaxed);
      continue;
    }
    if (result.ok()) {
      Substitute sub = std::move(*result.substitute);
      if (options_.verify_mode != VerifyMode::kOff) {
        verify_stats_.checked.fetch_add(1, kRelaxed);
        Verdict verdict;
        if (MVOPT_FAILPOINT_HIT("rewrite_checker.check")) {
          verdict = Verdict::Fail(CheckCode::kMalformedSubstitute,
                                  "failpoint 'rewrite_checker.check'");
        } else {
          verdict = checker_.Check(query, view_catalog_.view(id), sub);
        }
        if (verdict.proven) {
          verify_stats_.proven.fetch_add(1, kRelaxed);
          if (quarantine_active) lifecycle_.ReportVerifySuccess(id);
        } else {
          RecordVerifyRejection(id, verdict);
          if (options_.verify_mode == VerifyMode::kEnforce) continue;
        }
      }
      stats_.substitutes.fetch_add(1, kRelaxed);
      if (tolerated_stale) {
        stats_.stale_tolerated.fetch_add(1, kRelaxed);
        stale_out.push_back(std::move(sub));
      } else {
        out.push_back(std::move(sub));
      }
    } else {
      stats_.rejects[static_cast<size_t>(result.reason)].fetch_add(1,
                                                                   kRelaxed);
    }
  }
  // Degradation advisory: the probe had stale candidates but no fresh
  // substitute — the plan either fell back to base tables or leans on a
  // down-ranked stale view.
  if (budget != nullptr && out.empty() &&
      (stale_rejects > 0 || !stale_out.empty())) {
    budget->NoteDegradation(DegradationReason::kStaleViewsOnly);
  }
  for (Substitute& sub : stale_out) out.push_back(std::move(sub));
  return out;
}

void MatchingService::RecordVerifyRejection(ViewId id,
                                            const Verdict& verdict) {
  verify_stats_.rejected.fetch_add(1, kRelaxed);
  verify_stats_.by_code[static_cast<size_t>(verdict.code)].fetch_add(
      1, kRelaxed);
  {
    std::lock_guard<std::mutex> trace_lock(trace_mu_);
    if (rejection_traces_.size() < VerifyStats::kMaxRejectionTraces) {
      rejection_traces_.push_back(view_catalog_.view(id).name() + ": " +
                                  CheckCodeName(verdict.code) + ": " +
                                  verdict.detail);
    }
  }
  if (options_.quarantine_threshold > 0 &&
      options_.verify_mode == VerifyMode::kEnforce) {
    lifecycle_.ReportVerifyFailure(id, options_.quarantine_threshold,
                                   options_.disable_threshold);
  }
}

// --- durability -----------------------------------------------------------

void MatchingService::AttachStore(CatalogStore* store) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  store->OpenForAppend();
  store_ = store;
}

RecoveryReport MatchingService::RecoverFrom(CatalogStore* store) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  assert(view_catalog_.num_views() == 0 &&
         "recovery must target an empty service");
  CatalogStore::RecoveredState recovered = store->Recover();
  RecoveryReport report = std::move(recovered.report);
  report.views_recovered = 0;  // re-counted below: only views that rebuild
  for (PersistedView& image : recovered.views) {
    // Self-healing: a durable entry that no longer replays (schema
    // drift, corruption that survived the CRC, a bad state byte) is
    // quarantined in the report instead of aborting recovery.
    if (static_cast<uint8_t>(image.state) >=
        static_cast<uint8_t>(kNumViewStates)) {
      report.quarantined.push_back(
          {image.name, "invalid lifecycle state in durable record"});
      continue;
    }
    std::string err;
    std::optional<SpjgQuery> parsed = ParseSpjg(*catalog_, image.sql, &err);
    if (!parsed.has_value()) {
      report.quarantined.push_back({image.name, "unparsable SQL: " + err});
      continue;
    }
    ViewDefinition* view = nullptr;
    try {
      view = view_catalog_.AddView(image.name, std::move(*parsed), &err);
      if (view != nullptr) filter_tree_.AddView(view->id());
    } catch (const std::exception& e) {
      if (view != nullptr) view_catalog_.RemoveLastView(view->id());
      view = nullptr;
      err = e.what();
    }
    if (view == nullptr) {
      report.quarantined.push_back({image.name, err});
      continue;
    }
    GrowBookkeepingLocked();
    ViewLifecycleRegistry::Snapshot snap;
    snap.state = image.state;
    snap.epoch = image.epoch;
    snap.content_checksum = image.content_checksum;
    lifecycle_.Restore(view->id(), snap);
    ++report.views_recovered;
  }
  store->OpenForAppend();
  store_ = store;
  return report;
}

void MatchingService::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  assert(store_ != nullptr && "Checkpoint requires an attached store");
  std::vector<PersistedView> images;
  images.reserve(static_cast<size_t>(view_catalog_.num_views()));
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    images.push_back(PersistedImageLocked(id));
  }
  store_->WriteSnapshot(images);
}

// --- lifecycle ------------------------------------------------------------

bool MatchingService::ReportChecksumMismatch(ViewId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!lifecycle_.ReportChecksumMismatch(id)) return false;
  if (static_cast<size_t>(id) < in_tree_.size() && in_tree_[id]) {
    filter_tree_.RemoveView(id);
    in_tree_[id] = 0;
  }
  LogViewEventLocked(id);
  return true;
}

int MatchingService::RevalidationTick(
    const std::function<bool(const ViewDefinition&)>& validate) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t tick = ++revalidation_tick_;
  GrowBookkeepingLocked();
  int readmitted = 0;
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    if (!lifecycle_.IsSidelined(id)) continue;
    // Compaction: sidelined views leave the filter tree so probes stop
    // paying for them (probe-side quarantine entry cannot touch the
    // tree, it only holds the shared lock).
    if (in_tree_[id]) {
      filter_tree_.RemoveView(id);
      in_tree_[id] = 0;
    }
    if (!lifecycle_.DueForRetry(id, tick)) continue;
    bool ok = false;
    try {
      ok = validate != nullptr && validate(view_catalog_.view(id));
      if (ok) {
        filter_tree_.AddView(id);  // re-insertion; strongly exception-safe
        in_tree_[id] = 1;
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      lifecycle_.Readmit(id, epochs_ != nullptr ? epochs_->now() : 0);
      LogViewEventLocked(id);
      ++readmitted;
    } else {
      lifecycle_.RecordRetryFailure(id, tick);
    }
  }
  return readmitted;
}

bool MatchingService::ReadmitView(ViewId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  GrowBookkeepingLocked();
  if (!lifecycle_.Readmit(id, epochs_ != nullptr ? epochs_->now() : 0)) {
    return false;
  }
  if (static_cast<size_t>(id) < in_tree_.size() && !in_tree_[id]) {
    try {
      filter_tree_.AddView(id);
      in_tree_[id] = 1;
    } catch (const std::exception&) {
      // Leave it out of the tree; the next revalidation tick retries.
    }
  }
  LogViewEventLocked(id);
  return true;
}

bool MatchingService::IsQuarantined(ViewId id) const {
  return lifecycle_.IsSidelined(id);
}

std::vector<std::string> MatchingService::QuarantinedViews() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    if (lifecycle_.IsSidelined(id)) {
      out.push_back(view_catalog_.view(id).name());
    }
  }
  return out;
}

MatchingStats MatchingService::stats() const {
  MatchingStats snapshot;
  snapshot.invocations = stats_.invocations.load(kRelaxed);
  snapshot.candidates = stats_.candidates.load(kRelaxed);
  snapshot.full_tests = stats_.full_tests.load(kRelaxed);
  snapshot.substitutes = stats_.substitutes.load(kRelaxed);
  snapshot.match_failures = stats_.match_failures.load(kRelaxed);
  snapshot.budget_truncations = stats_.budget_truncations.load(kRelaxed);
  snapshot.quarantine_skips = stats_.quarantine_skips.load(kRelaxed);
  snapshot.stale_tolerated = stats_.stale_tolerated.load(kRelaxed);
  for (size_t i = 0; i < snapshot.rejects.size(); ++i) {
    snapshot.rejects[i] = stats_.rejects[i].load(kRelaxed);
  }
  return snapshot;
}

VerifyStats MatchingService::verify_stats() const {
  VerifyStats snapshot;
  snapshot.checked = verify_stats_.checked.load(kRelaxed);
  snapshot.proven = verify_stats_.proven.load(kRelaxed);
  snapshot.rejected = verify_stats_.rejected.load(kRelaxed);
  snapshot.quarantined_views =
      static_cast<int64_t>(lifecycle_.num_sidelined());
  for (size_t i = 0; i < snapshot.by_code.size(); ++i) {
    snapshot.by_code[i] = verify_stats_.by_code[i].load(kRelaxed);
  }
  {
    std::lock_guard<std::mutex> trace_lock(trace_mu_);
    snapshot.rejection_traces = rejection_traces_;
  }
  return snapshot;
}

void MatchingService::ResetStats() {
  stats_.invocations.store(0, kRelaxed);
  stats_.candidates.store(0, kRelaxed);
  stats_.full_tests.store(0, kRelaxed);
  stats_.substitutes.store(0, kRelaxed);
  stats_.match_failures.store(0, kRelaxed);
  stats_.budget_truncations.store(0, kRelaxed);
  stats_.quarantine_skips.store(0, kRelaxed);
  stats_.stale_tolerated.store(0, kRelaxed);
  for (auto& r : stats_.rejects) r.store(0, kRelaxed);
}

void MatchingService::ResetVerifyStats() {
  verify_stats_.checked.store(0, kRelaxed);
  verify_stats_.proven.store(0, kRelaxed);
  verify_stats_.rejected.store(0, kRelaxed);
  for (auto& c : verify_stats_.by_code) c.store(0, kRelaxed);
  std::lock_guard<std::mutex> trace_lock(trace_mu_);
  rejection_traces_.clear();
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstitute(
    const SpjgQuery& query) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (query.is_aggregate || view_catalog_.num_views() < 2) {
    return std::nullopt;
  }
  // Candidate legs need not contain the query's ranges (that is the
  // point), so probe with only the structural conditions intact: every
  // view whose table set qualifies. Sidelined and stale views are
  // excluded here too — a union leg is as much a rewrite as a direct
  // substitute.
  std::vector<ViewId> candidates;
  QueryDescription qd = DescribeQuery(*catalog_, query);
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    if (lifecycle_.IsSidelined(id)) {
      stats_.quarantine_skips.fetch_add(1, kRelaxed);
      continue;
    }
    if (StalenessLagLocked(id) > 0) {
      lifecycle_.MarkStale(id);
      continue;
    }
    const ViewDescription& d = view_catalog_.description(id);
    if (d.is_aggregate) continue;
    bool tables_ok = std::includes(d.source_tables.begin(),
                                   d.source_tables.end(),
                                   qd.source_tables.begin(),
                                   qd.source_tables.end());
    if (tables_ok) candidates.push_back(id);
  }
  UnionMatchOptions opts;
  opts.match = options_.match;
  UnionMatcher matcher(catalog_, &view_catalog_, opts);
  return matcher.Match(query, candidates);
}

}  // namespace mvopt
