#include "index/matching_service.h"

#include <algorithm>
#include <exception>

#include "common/failpoint.h"

namespace mvopt {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

MatchingService::MatchingService(const Catalog* catalog)
    : MatchingService(catalog, Options()) {}

MatchingService::MatchingService(const Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      view_catalog_(catalog),
      filter_tree_(&view_catalog_.descriptions()),
      matcher_(catalog, options.match),
      checker_(catalog, options.verify) {
  filter_tree_.set_assume_backjoins(options_.match.enable_backjoins);
}

ViewDefinition* MatchingService::AddView(const std::string& name,
                                         SpjgQuery definition,
                                         std::string* error) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ViewDefinition* view = nullptr;
  try {
    view = view_catalog_.AddView(name, std::move(definition), error);
    if (view == nullptr) return nullptr;
    filter_tree_.AddView(view->id());
  } catch (const std::exception& e) {
    // Transactional: indexing failed (or registration threw), so undo
    // the catalog registration. FilterTree::AddView already rolled its
    // own partial inserts back, leaving every structure as it was.
    if (view != nullptr) view_catalog_.RemoveLastView(view->id());
    if (error != nullptr) {
      *error = std::string("view registration aborted and rolled back: ") +
               e.what();
    }
    return nullptr;
  }
  // Keep the health list aligned with the catalog (self-healing so a
  // historical allocation failure here can never skew later ids).
  while (view_health_.size() <
         static_cast<size_t>(view_catalog_.num_views())) {
    view_health_.emplace_back();
  }
  return view;
}

std::vector<Substitute> MatchingService::FindSubstitutes(
    const SpjgQuery& query, QueryBudget* budget) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MVOPT_FAILPOINT("matching_service.find_substitutes");
  stats_.invocations.fetch_add(1, kRelaxed);
  if (view_catalog_.num_views() == 0) return {};
  std::vector<ViewId> candidates;
  if (options_.use_filter_tree) {
    QueryDescription qd = DescribeQuery(*catalog_, query);
    candidates = filter_tree_.FindCandidates(qd, nullptr, budget);
  } else {
    // Without the index every view description must be considered; the
    // only cheap pre-test retained is the aggregation/table-set screen
    // performed inside the matcher itself.
    candidates.reserve(view_catalog_.num_views());
    for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
      candidates.push_back(id);
    }
  }
  stats_.candidates.fetch_add(static_cast<int64_t>(candidates.size()),
                              kRelaxed);

  const bool quarantine_active =
      options_.quarantine_threshold > 0 &&
      options_.verify_mode == VerifyMode::kEnforce;
  std::vector<Substitute> out;
  for (ViewId id : candidates) {
    if (budget != nullptr && budget->TickDeadline()) {
      stats_.budget_truncations.fetch_add(1, kRelaxed);
      break;
    }
    if (quarantine_active && IsQuarantined(id)) {
      stats_.quarantine_skips.fetch_add(1, kRelaxed);
      continue;
    }
    stats_.full_tests.fetch_add(1, kRelaxed);
    MatchResult result;
    try {
      MVOPT_FAILPOINT("matcher.match");
      result = matcher_.Match(query, view_catalog_.view(id));
    } catch (const std::exception&) {
      // Fault isolation: one failing candidate never poisons the probe.
      stats_.match_failures.fetch_add(1, kRelaxed);
      continue;
    }
    if (result.ok()) {
      Substitute sub = std::move(*result.substitute);
      if (options_.verify_mode != VerifyMode::kOff) {
        verify_stats_.checked.fetch_add(1, kRelaxed);
        Verdict verdict;
        if (MVOPT_FAILPOINT_HIT("rewrite_checker.check")) {
          verdict = Verdict::Fail(CheckCode::kMalformedSubstitute,
                                  "failpoint 'rewrite_checker.check'");
        } else {
          verdict = checker_.Check(query, view_catalog_.view(id), sub);
        }
        if (verdict.proven) {
          verify_stats_.proven.fetch_add(1, kRelaxed);
          if (quarantine_active &&
              static_cast<size_t>(id) < view_health_.size()) {
            view_health_[id].consecutive_rejections.store(0, kRelaxed);
          }
        } else {
          RecordVerifyRejection(id, verdict);
          if (options_.verify_mode == VerifyMode::kEnforce) continue;
        }
      }
      stats_.substitutes.fetch_add(1, kRelaxed);
      out.push_back(std::move(sub));
    } else {
      stats_.rejects[static_cast<size_t>(result.reason)].fetch_add(1,
                                                                   kRelaxed);
    }
  }
  return out;
}

void MatchingService::RecordVerifyRejection(ViewId id,
                                            const Verdict& verdict) {
  verify_stats_.rejected.fetch_add(1, kRelaxed);
  verify_stats_.by_code[static_cast<size_t>(verdict.code)].fetch_add(
      1, kRelaxed);
  {
    std::lock_guard<std::mutex> trace_lock(trace_mu_);
    if (rejection_traces_.size() < VerifyStats::kMaxRejectionTraces) {
      rejection_traces_.push_back(view_catalog_.view(id).name() + ": " +
                                  CheckCodeName(verdict.code) + ": " +
                                  verdict.detail);
    }
  }
  if (options_.quarantine_threshold > 0 &&
      options_.verify_mode == VerifyMode::kEnforce &&
      static_cast<size_t>(id) < view_health_.size()) {
    ViewHealth& health = view_health_[id];
    const int32_t streak =
        health.consecutive_rejections.fetch_add(1, kRelaxed) + 1;
    if (streak >= options_.quarantine_threshold &&
        !health.quarantined.exchange(true, kRelaxed)) {
      num_quarantined_.fetch_add(1, kRelaxed);
    }
  }
}

bool MatchingService::IsQuarantined(ViewId id) const {
  return static_cast<size_t>(id) < view_health_.size() &&
         view_health_[id].quarantined.load(kRelaxed);
}

std::vector<std::string> MatchingService::QuarantinedViews() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    if (IsQuarantined(id)) out.push_back(view_catalog_.view(id).name());
  }
  return out;
}

MatchingStats MatchingService::stats() const {
  MatchingStats snapshot;
  snapshot.invocations = stats_.invocations.load(kRelaxed);
  snapshot.candidates = stats_.candidates.load(kRelaxed);
  snapshot.full_tests = stats_.full_tests.load(kRelaxed);
  snapshot.substitutes = stats_.substitutes.load(kRelaxed);
  snapshot.match_failures = stats_.match_failures.load(kRelaxed);
  snapshot.budget_truncations = stats_.budget_truncations.load(kRelaxed);
  snapshot.quarantine_skips = stats_.quarantine_skips.load(kRelaxed);
  for (size_t i = 0; i < snapshot.rejects.size(); ++i) {
    snapshot.rejects[i] = stats_.rejects[i].load(kRelaxed);
  }
  return snapshot;
}

VerifyStats MatchingService::verify_stats() const {
  VerifyStats snapshot;
  snapshot.checked = verify_stats_.checked.load(kRelaxed);
  snapshot.proven = verify_stats_.proven.load(kRelaxed);
  snapshot.rejected = verify_stats_.rejected.load(kRelaxed);
  snapshot.quarantined_views = num_quarantined_.load(kRelaxed);
  for (size_t i = 0; i < snapshot.by_code.size(); ++i) {
    snapshot.by_code[i] = verify_stats_.by_code[i].load(kRelaxed);
  }
  {
    std::lock_guard<std::mutex> trace_lock(trace_mu_);
    snapshot.rejection_traces = rejection_traces_;
  }
  return snapshot;
}

void MatchingService::ResetStats() {
  stats_.invocations.store(0, kRelaxed);
  stats_.candidates.store(0, kRelaxed);
  stats_.full_tests.store(0, kRelaxed);
  stats_.substitutes.store(0, kRelaxed);
  stats_.match_failures.store(0, kRelaxed);
  stats_.budget_truncations.store(0, kRelaxed);
  stats_.quarantine_skips.store(0, kRelaxed);
  for (auto& r : stats_.rejects) r.store(0, kRelaxed);
}

void MatchingService::ResetVerifyStats() {
  verify_stats_.checked.store(0, kRelaxed);
  verify_stats_.proven.store(0, kRelaxed);
  verify_stats_.rejected.store(0, kRelaxed);
  for (auto& c : verify_stats_.by_code) c.store(0, kRelaxed);
  std::lock_guard<std::mutex> trace_lock(trace_mu_);
  rejection_traces_.clear();
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstitute(
    const SpjgQuery& query) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (query.is_aggregate || view_catalog_.num_views() < 2) {
    return std::nullopt;
  }
  // Candidate legs need not contain the query's ranges (that is the
  // point), so probe with only the structural conditions intact: every
  // view whose table set qualifies.
  std::vector<ViewId> candidates;
  QueryDescription qd = DescribeQuery(*catalog_, query);
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    const ViewDescription& d = view_catalog_.description(id);
    if (d.is_aggregate) continue;
    bool tables_ok = std::includes(d.source_tables.begin(),
                                   d.source_tables.end(),
                                   qd.source_tables.begin(),
                                   qd.source_tables.end());
    if (tables_ok) candidates.push_back(id);
  }
  UnionMatchOptions opts;
  opts.match = options_.match;
  UnionMatcher matcher(catalog_, &view_catalog_, opts);
  return matcher.Match(query, candidates);
}

}  // namespace mvopt
