#include "index/matching_service.h"

#include <algorithm>

namespace mvopt {

MatchingService::MatchingService(const Catalog* catalog)
    : MatchingService(catalog, Options()) {}

MatchingService::MatchingService(const Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      view_catalog_(catalog),
      filter_tree_(&view_catalog_.descriptions()),
      matcher_(catalog, options.match),
      checker_(catalog, options.verify) {
  filter_tree_.set_assume_backjoins(options_.match.enable_backjoins);
}

ViewDefinition* MatchingService::AddView(const std::string& name,
                                         SpjgQuery definition,
                                         std::string* error) {
  ViewDefinition* view = view_catalog_.AddView(name, std::move(definition),
                                               error);
  if (view == nullptr) return nullptr;
  filter_tree_.AddView(view->id());
  return view;
}

std::vector<Substitute> MatchingService::FindSubstitutes(
    const SpjgQuery& query) {
  ++stats_.invocations;
  if (view_catalog_.num_views() == 0) return {};
  std::vector<ViewId> candidates;
  if (options_.use_filter_tree) {
    QueryDescription qd = DescribeQuery(*catalog_, query);
    candidates = filter_tree_.FindCandidates(qd);
  } else {
    // Without the index every view description must be considered; the
    // only cheap pre-test retained is the aggregation/table-set screen
    // performed inside the matcher itself.
    candidates.reserve(view_catalog_.num_views());
    for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
      candidates.push_back(id);
    }
  }
  stats_.candidates += static_cast<int64_t>(candidates.size());

  std::vector<Substitute> out;
  for (ViewId id : candidates) {
    ++stats_.full_tests;
    MatchResult result = matcher_.Match(query, view_catalog_.view(id));
    if (result.ok()) {
      ++stats_.substitutes;
      Substitute sub = std::move(*result.substitute);
      if (options_.verify_mode != VerifyMode::kOff) {
        ++verify_stats_.checked;
        Verdict verdict = checker_.Check(query, view_catalog_.view(id), sub);
        if (verdict.proven) {
          ++verify_stats_.proven;
        } else {
          ++verify_stats_.rejected;
          ++verify_stats_.by_code[static_cast<size_t>(verdict.code)];
          if (verify_stats_.rejection_traces.size() <
              VerifyStats::kMaxRejectionTraces) {
            verify_stats_.rejection_traces.push_back(
                view_catalog_.view(id).name() + ": " +
                CheckCodeName(verdict.code) + ": " + verdict.detail);
          }
          if (options_.verify_mode == VerifyMode::kEnforce) continue;
        }
      }
      out.push_back(std::move(sub));
    } else {
      ++stats_.rejects[static_cast<size_t>(result.reason)];
    }
  }
  return out;
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstitute(
    const SpjgQuery& query) {
  if (query.is_aggregate || view_catalog_.num_views() < 2) {
    return std::nullopt;
  }
  // Candidate legs need not contain the query's ranges (that is the
  // point), so probe with only the structural conditions intact: every
  // view whose table set qualifies.
  std::vector<ViewId> candidates;
  QueryDescription qd = DescribeQuery(*catalog_, query);
  for (ViewId id = 0; id < view_catalog_.num_views(); ++id) {
    const ViewDescription& d = view_catalog_.description(id);
    if (d.is_aggregate) continue;
    bool tables_ok = std::includes(d.source_tables.begin(),
                                   d.source_tables.end(),
                                   qd.source_tables.begin(),
                                   qd.source_tables.end());
    if (tables_ok) candidates.push_back(id);
  }
  UnionMatchOptions opts;
  opts.match = options_.match;
  UnionMatcher matcher(catalog_, &view_catalog_, opts);
  return matcher.Match(query, candidates);
}

}  // namespace mvopt
