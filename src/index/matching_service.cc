#include "index/matching_service.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>
#include <memory>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "query/parser.h"

namespace mvopt {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start,
                    SteadyClock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

/// Lap timer for the pipeline's stage boundaries; reads no clock when
/// the probe is unobserved (kOff mode must stay hook-free).
class StageTimer {
 public:
  explicit StageTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) last_ = SteadyClock::now();
  }
  double Lap() {
    if (!enabled_) return 0.0;
    const SteadyClock::time_point now = SteadyClock::now();
    const double seconds = SecondsSince(last_, now);
    last_ = now;
    return seconds;
  }

 private:
  bool enabled_;
  SteadyClock::time_point last_{};
};

/// One stage boundary: stage wall clock into the trace, the stage name
/// into the trace's pipeline log and the context's stage hook.
void NoteStage(QueryContext& ctx, QueryTrace* trace, QueryTrace::Stage stage,
               const char* name, double seconds) {
  if (trace != nullptr) {
    trace->AddStageSeconds(stage, seconds);
    trace->NoteStageBoundary(name);
  }
  ctx.NotifyStage(name, seconds);
}

bool SameExprList(const std::vector<ExprPtr>& a,
                  const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

/// Structural equality of two match verdicts, for the compiled-vs-oracle
/// cross-check: same accept/reject and reason, and on accept the same
/// substitute — view, compensating predicates (in order), outputs (names
/// and expressions, in order), group-by, aggregation flag, backjoins —
/// compared node-by-node with Expr::Equals.
bool SameMatchVerdict(const MatchResult& a, const MatchResult& b) {
  if (a.ok() != b.ok()) return false;
  if (!a.ok()) return a.reason == b.reason;
  const Substitute& x = *a.substitute;
  const Substitute& y = *b.substitute;
  if (x.view_id != y.view_id) return false;
  if (x.needs_aggregation != y.needs_aggregation) return false;
  if (x.backjoins.size() != y.backjoins.size()) return false;
  for (size_t i = 0; i < x.backjoins.size(); ++i) {
    if (x.backjoins[i].table != y.backjoins[i].table ||
        x.backjoins[i].key_join != y.backjoins[i].key_join) {
      return false;
    }
  }
  if (!SameExprList(x.predicates, y.predicates)) return false;
  if (!SameExprList(x.group_by, y.group_by)) return false;
  if (x.outputs.size() != y.outputs.size()) return false;
  for (size_t i = 0; i < x.outputs.size(); ++i) {
    if (x.outputs[i].name != y.outputs[i].name ||
        !x.outputs[i].expr->Equals(*y.outputs[i].expr)) {
      return false;
    }
  }
  return true;
}

std::string VerdictSummary(const MatchResult& r) {
  if (!r.ok()) return RejectReasonName(r.reason);
  return "accept(preds=" + std::to_string(r.substitute->predicates.size()) +
         ",outputs=" + std::to_string(r.substitute->outputs.size()) + ")";
}

}  // namespace

MatchingService::MatchingService(const Catalog* catalog)
    : MatchingService(catalog, Options()) {}

MatchingService::MatchingService(const Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      matcher_(catalog, options.match),
      checker_(catalog, options.verify),
      snapshot_(new CatalogSnapshot(catalog)),
      verify_mode_(options.verify_mode),
      cross_check_(options.cross_check) {
  // The initial snapshot is not yet visible to any other thread, so
  // configuring its tree in place is safe; clones inherit the setting.
  snapshot_.load(std::memory_order_relaxed)
      ->tree.set_assume_backjoins(options_.match.enable_backjoins);
  RegisterMetrics();
  if (snapshot_live_gauge_ != nullptr) snapshot_live_gauge_->Set(1);
}

MatchingService::~MatchingService() {
  // No probes can be in flight during destruction (owner contract); the
  // epoch domain's destructor drains the retired generations.
  delete snapshot_.load(std::memory_order_acquire);
}

void MatchingService::RegisterMetrics() {
  if (!options_.observe.counters_enabled()) return;
  MetricsRegistry* r = options_.observe.registry;
  metrics_.invocations = r->FindOrCreateCounter(
      "mvopt_probe_invocations_total", "FindSubstitutes probes");
  metrics_.candidates = r->FindOrCreateCounter(
      "mvopt_probe_candidates_total",
      "Views surviving the filter-tree probe (summed over probes)");
  metrics_.full_tests = r->FindOrCreateCounter(
      "mvopt_probe_full_tests_total", "Full view-matching tests run");
  metrics_.substitutes = r->FindOrCreateCounter(
      "mvopt_probe_substitutes_total", "Substitutes produced");
  metrics_.match_failures = r->FindOrCreateCounter(
      "mvopt_probe_match_failures_total",
      "Matcher runs aborted by an exception");
  metrics_.budget_truncations = r->FindOrCreateCounter(
      "mvopt_probe_budget_truncations_total",
      "Probes cut short by budget exhaustion");
  metrics_.quarantine_skips = r->FindOrCreateCounter(
      "mvopt_probe_quarantine_skips_total",
      "Candidates skipped while sidelined");
  metrics_.stale_tolerated = r->FindOrCreateCounter(
      "mvopt_probe_stale_tolerated_total",
      "Stale substitutes kept under a staleness tolerance");
  metrics_.compiled_hits = r->FindOrCreateCounter(
      "mvopt_match_compiled_hits_total",
      "Full match tests decided by a compiled MatchProgram");
  metrics_.compiled_fallbacks = r->FindOrCreateCounter(
      "mvopt_match_compiled_fallbacks_total",
      "Full match tests decided by the generic oracle (no program, "
      "program declined, or compiled attempt failed)");
  metrics_.cross_check_mismatches = r->FindOrCreateCounter(
      "mvopt_match_cross_check_mismatches_total",
      "Compiled verdicts that disagreed with the generic oracle");
  for (int i = 0; i < kNumMatchTiers; ++i) {
    metrics_.match_latency[i] = r->FindOrCreateHistogram(
        "mvopt_match_latency_seconds",
        "Per-candidate match-test wall clock, by deciding tier",
        {{"tier", MatchTierName(static_cast<MatchTier>(i))}});
  }
  for (int i = 0; i < kNumRejectReasons; ++i) {
    metrics_.rejects[i] = r->FindOrCreateCounter(
        "mvopt_match_rejects_total", "Match rejections by reason",
        {{"reason", RejectReasonName(static_cast<RejectReason>(i))}});
  }
  for (int i = 0; i < kNumFilterLevels; ++i) {
    const char* level = FilterLevelName(static_cast<FilterLevel>(i));
    metrics_.level_probes[i] = r->FindOrCreateCounter(
        "mvopt_filter_level_probes_total",
        "Filter-tree partitioning conditions evaluated, by level",
        {{"level", level}});
    metrics_.level_visits[i] = r->FindOrCreateCounter(
        "mvopt_filter_level_visits_total",
        "Lattice nodes qualifying per filter-tree level", {{"level", level}});
  }
  metrics_.lattice_nodes = r->FindOrCreateCounter(
      "mvopt_filter_lattice_nodes_total", "Lattice nodes visited");
  metrics_.subset_searches = r->FindOrCreateCounter(
      "mvopt_filter_subset_searches_total", "Lattice subset searches");
  metrics_.superset_searches = r->FindOrCreateCounter(
      "mvopt_filter_superset_searches_total", "Lattice superset searches");
  metrics_.scan_searches = r->FindOrCreateCounter(
      "mvopt_filter_scan_searches_total",
      "Full-level lattice scans (backjoin-relaxed levels)");
  metrics_.range_checked = r->FindOrCreateCounter(
      "mvopt_filter_range_checked_total",
      "Views run through the full range-constraint check");
  metrics_.range_rejected = r->FindOrCreateCounter(
      "mvopt_filter_range_rejected_total",
      "Views rejected by the full range-constraint check");
  metrics_.probe_latency = r->FindOrCreateHistogram(
      "mvopt_probe_latency_seconds", "FindSubstitutes wall-clock latency");
  snapshot_live_gauge_ = r->FindOrCreateGauge(
      "mvopt_snapshot_live",
      "Catalog snapshots alive in memory (current + retired awaiting "
      "epoch reclamation)");
  snapshot_retired_gauge_ = r->FindOrCreateGauge(
      "mvopt_snapshot_retired",
      "Catalog snapshots retired but not yet reclaimed (waiting for "
      "in-flight probe pins)");
  std::array<Counter*, kNumViewStates> to_state{};
  for (int s = 0; s < kNumViewStates; ++s) {
    to_state[s] = r->FindOrCreateCounter(
        "mvopt_lifecycle_transitions_total",
        "View lifecycle transitions, by destination state",
        {{"to", ViewStateName(static_cast<ViewState>(s))}});
  }
  lifecycle_.set_transition_counters(to_state);
}

void MatchingService::WireStoreCountersLocked() {
  if (store_ == nullptr || !options_.observe.counters_enabled()) return;
  MetricsRegistry* r = options_.observe.registry;
  CatalogStore::StoreCounters c;
  c.wal_appends = r->FindOrCreateCounter("mvopt_wal_appends_total",
                                         "Catalog WAL append attempts");
  c.wal_fsyncs = r->FindOrCreateCounter(
      "mvopt_wal_fsyncs_total", "Catalog WAL commit-point fsyncs");
  c.wal_append_failures = r->FindOrCreateCounter(
      "mvopt_wal_append_failures_total", "Catalog WAL appends that threw");
  c.snapshot_writes = r->FindOrCreateCounter(
      "mvopt_snapshot_writes_total", "Catalog snapshots installed");
  store_->set_counters(c);
}

void MatchingService::PublishLocked(std::unique_ptr<CatalogSnapshot> next) {
  CatalogSnapshot* old =
      snapshot_.exchange(next.release(), std::memory_order_seq_cst);
  // Retire bumps the global epoch and opportunistically reclaims every
  // generation no in-flight pin can still reference.
  reclaim_.Retire(old);
  if (snapshot_retired_gauge_ != nullptr) {
    const int64_t retired = reclaim_.retired_count();
    snapshot_retired_gauge_->Set(retired);
    snapshot_live_gauge_->Set(1 + retired);
  }
}

void MatchingService::CommitProbe(const ProbeDelta& delta,
                                  const FilterSearchStats* fstats) {
  {
    MutexLock stats_lock(stats_mu_);
    stats_.MergeFrom(delta.stats);
    verify_counters_.MergeFrom(delta.verify);
    for (const std::string& t : delta.rejection_traces) {
      if (rejection_traces_.size() >= VerifyStats::kMaxRejectionTraces) break;
      rejection_traces_.push_back(t);
    }
  }
  // Mirror into the registry (relaxed atomics; outside the lock).
  if (metrics_.invocations == nullptr) return;
  const MatchingStats& s = delta.stats;
  if (s.invocations != 0) metrics_.invocations->Increment(s.invocations);
  if (s.candidates != 0) metrics_.candidates->Increment(s.candidates);
  if (s.full_tests != 0) metrics_.full_tests->Increment(s.full_tests);
  if (s.substitutes != 0) metrics_.substitutes->Increment(s.substitutes);
  if (s.match_failures != 0) {
    metrics_.match_failures->Increment(s.match_failures);
  }
  if (s.budget_truncations != 0) {
    metrics_.budget_truncations->Increment(s.budget_truncations);
  }
  if (s.quarantine_skips != 0) {
    metrics_.quarantine_skips->Increment(s.quarantine_skips);
  }
  if (s.stale_tolerated != 0) {
    metrics_.stale_tolerated->Increment(s.stale_tolerated);
  }
  if (s.compiled_hits != 0) {
    metrics_.compiled_hits->Increment(s.compiled_hits);
  }
  if (s.compiled_fallbacks != 0) {
    metrics_.compiled_fallbacks->Increment(s.compiled_fallbacks);
  }
  if (s.cross_check_mismatches != 0) {
    metrics_.cross_check_mismatches->Increment(s.cross_check_mismatches);
  }
  for (size_t i = 0; i < s.rejects.size(); ++i) {
    if (s.rejects[i] != 0) metrics_.rejects[i]->Increment(s.rejects[i]);
  }
  if (fstats == nullptr) return;
  for (int i = 0; i < kNumFilterLevels; ++i) {
    if (fstats->level_probes[i] != 0) {
      metrics_.level_probes[i]->Increment(fstats->level_probes[i]);
    }
    if (fstats->level_qualifying[i] != 0) {
      metrics_.level_visits[i]->Increment(fstats->level_qualifying[i]);
    }
  }
  if (fstats->lattice_nodes_visited != 0) {
    metrics_.lattice_nodes->Increment(fstats->lattice_nodes_visited);
  }
  if (fstats->subset_searches != 0) {
    metrics_.subset_searches->Increment(fstats->subset_searches);
  }
  if (fstats->superset_searches != 0) {
    metrics_.superset_searches->Increment(fstats->superset_searches);
  }
  if (fstats->scan_searches != 0) {
    metrics_.scan_searches->Increment(fstats->scan_searches);
  }
  if (fstats->views_range_checked != 0) {
    metrics_.range_checked->Increment(fstats->views_range_checked);
  }
  if (fstats->views_range_rejected != 0) {
    metrics_.range_rejected->Increment(fstats->views_range_rejected);
  }
}

void MatchingService::GrowBookkeepingLocked(int num_views) {
  const size_t n = static_cast<size_t>(num_views);
  lifecycle_.EnsureSize(n);
  // Self-healing growth so a historical allocation failure here can
  // never skew later ids; new views enter the filter tree in AddView.
  while (in_tree_.size() < n) in_tree_.push_back(1);
}

PersistedView MatchingService::PersistedImageOf(const ViewCatalog& views,
                                                ViewId id) const {
  PersistedView image;
  const ViewDefinition& view = views.view(id);
  image.name = view.name();
  image.sql = view.query().ToSql(*catalog_);
  ViewLifecycleRegistry::Snapshot snap = lifecycle_.snapshot(id);
  image.state = snap.state;
  image.epoch = snap.epoch;
  image.content_checksum = snap.content_checksum;
  return image;
}

void MatchingService::LogViewEventLocked(const ViewCatalog& views, ViewId id) {
  if (store_ == nullptr || !store_->is_open()) return;
  ViewLifecycleRegistry::Snapshot snap = lifecycle_.snapshot(id);
  try {
    store_->AppendViewEvent(views.view(id).name(), snap.state, snap.epoch,
                            snap.content_checksum);
  } catch (const StoreIoError&) {
    // Lifecycle events are best-effort: the in-memory registry stays
    // authoritative, and a lost event only means the view comes back
    // after a crash in its previous durable state — the revalidation
    // pass converges it again.
  }
}

ViewDefinition* MatchingService::AddView(const std::string& name,
                                         SpjgQuery definition,
                                         std::string* error) {
  WriterLock lock(mu_);
  // Build the next generation on a private clone: probes keep running
  // against the published snapshot, and any failure below just discards
  // the clone — rollback is structural, not compensating.
  auto next = std::make_unique<CatalogSnapshot>(*SnapshotLocked());
  ViewDefinition* view = nullptr;
  try {
    view = next->views.AddView(name, std::move(definition), error);
    if (view == nullptr) return nullptr;
    next->tree.AddView(view->id());
    if (options_.compile_match_programs) {
      // Compile once, here under the writer lock — the program rides the
      // clone into publication and is shared (shared_ptr) by every later
      // snapshot generation; the probe path never compiles. A compile
      // failure aborts the registration like an indexing failure (the
      // clone is discarded), keeping "registered implies tiered exactly
      // as configured".
      MVOPT_FAILPOINT("match_program.compile");
      next->views.SetProgram(
          view->id(), CompileMatchProgram(*catalog_, *view, options_.match));
    }
    if (store_ != nullptr && store_->is_open()) {
      PersistedView image;
      image.name = view->name();
      image.sql = view->query().ToSql(*catalog_);
      image.state = ViewState::kFresh;
      const TableEpochClock* clock = epochs_.load(std::memory_order_acquire);
      image.epoch = clock != nullptr ? clock->now() : 0;
      store_->AppendAddView(image);
    }
  } catch (const StoreIoError& e) {
    if (!e.durable()) {
      // The WAL append failed before the commit point: nothing is on
      // stable storage, so the unpublished clone is simply dropped.
      if (error != nullptr) {
        *error = std::string("view registration aborted and rolled back: ") +
                 e.what();
      }
      return nullptr;
    }
    // Ambiguous commit: the record reached stable storage before the
    // failure, so the registration stands (recovery would replay it) —
    // fall through and publish the clone.
  } catch (const std::exception& e) {
    // Transactional: indexing failed (or registration threw). The clone
    // carries all the partial state; dropping it leaves the published
    // snapshot exactly as it was.
    if (error != nullptr) {
      *error = std::string("view registration aborted and rolled back: ") +
               e.what();
    }
    return nullptr;
  }
  GrowBookkeepingLocked(next->views.num_views());
  const TableEpochClock* clock = epochs_.load(std::memory_order_acquire);
  lifecycle_.MarkFresh(view->id(), clock != nullptr ? clock->now() : 0);
  PublishLocked(std::move(next));
  return view;
}

uint64_t MatchingService::StalenessLagOn(const CatalogSnapshot& snap,
                                         ViewId id) const {
  const TableEpochClock* clock = epochs_.load(std::memory_order_acquire);
  if (clock == nullptr) return 0;
  const ViewDescription& d = snap.views.description(id);
  const uint64_t latest = clock->LatestOf(d.source_tables);
  const uint64_t mine = lifecycle_.epoch(id);
  return latest > mine ? latest - mine : 0;
}

uint64_t MatchingService::StalenessLag(ViewId id) const {
  EpochPin pin(reclaim_);
  return StalenessLagOn(*PinnedSnapshot(), id);
}

std::vector<ViewId> MatchingService::StageProbe(const CatalogSnapshot& snap,
                                                const SpjgQuery& query,
                                                QueryContext& ctx,
                                                FilterSearchStats* fstats) {
  std::vector<ViewId> candidates;
  if (snap.views.num_views() == 0) return candidates;
  if (options_.use_filter_tree) {
    QueryDescription qd = DescribeQuery(*catalog_, query);
    candidates = snap.tree.FindCandidates(qd, fstats, ctx.budget());
  } else {
    // Without the index every view description must be considered; the
    // only cheap pre-test retained is the aggregation/table-set screen
    // performed inside the matcher itself.
    candidates.reserve(snap.views.num_views());
    for (ViewId id = 0; id < snap.views.num_views(); ++id) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

std::vector<MatchingService::GatedCandidate> MatchingService::StagePrefilter(
    const CatalogSnapshot& snap, const std::vector<ViewId>& candidates,
    QueryContext& ctx, ProbeDelta* delta, int64_t* stale_rejects,
    bool* truncated) {
  QueryTrace* trace = ctx.trace();
  const uint64_t tolerance = ctx.max_staleness();
  std::vector<GatedCandidate> gated;
  gated.reserve(candidates.size());
  for (ViewId id : candidates) {
    if (ctx.TickDeadline()) {
      *truncated = true;
      break;
    }
    // Sidelined views never participate, regardless of how they got
    // there (verify quarantine, checksum breaker, recovered state);
    // stale views may only substitute within the query's tolerance.
    const uint64_t lag = StalenessLagOn(snap, id);
    switch (lifecycle_.GateForProbe(id, lag, tolerance)) {
      case ViewLifecycleRegistry::ProbeGate::kSidelined:
        delta->stats.quarantine_skips += 1;
        if (trace != nullptr) {
          trace->RecordVerdict(snap.views.view(id).name(), "skipped",
                               "sidelined");
        }
        break;
      case ViewLifecycleRegistry::ProbeGate::kRejectStale:
        delta->stats.rejects[static_cast<size_t>(RejectReason::kStale)] += 1;
        ++*stale_rejects;
        if (trace != nullptr) {
          trace->RecordVerdict(snap.views.view(id).name(), "rejected",
                               "stale lag=" + std::to_string(lag));
        }
        break;
      case ViewLifecycleRegistry::ProbeGate::kAdmit:
        gated.push_back(GatedCandidate{id, 0});
        break;
      case ViewLifecycleRegistry::ProbeGate::kAdmitStale:
        gated.push_back(GatedCandidate{id, lag});
        break;
    }
  }
  return gated;
}

std::vector<MatchingService::MatchOutcome> MatchingService::StageMatch(
    const CatalogSnapshot& snap, const SpjgQuery& query,
    const std::vector<GatedCandidate>& gated, QueryContext& ctx,
    bool* truncated) {
  std::vector<MatchOutcome> outcomes(gated.size());
  if (gated.empty() || ctx.exhausted()) return outcomes;

  // Tier dispatch setup: the query-side context is built once per probe,
  // and only when some gated candidate actually carries a compiled
  // program (an all-generic catalog pays nothing). It is read-only
  // during the stage, so the parallel path shares it across workers;
  // each worker keeps its own scratch.
  bool any_compiled = false;
  for (const GatedCandidate& g : gated) {
    if (snap.views.program(g.id) != nullptr) {
      any_compiled = true;
      break;
    }
  }
  std::optional<MatchProbeContext> pctx;
  if (any_compiled) {
    pctx.emplace(BuildMatchProbeContext(*catalog_, query, options_.match));
  }
  // Per-candidate timing feeds the per-tier latency histograms; skipped
  // entirely (no clock reads) when counters are off.
  const bool timed = metrics_.match_latency[0] != nullptr;

  // One candidate's match test: compiled program first (when the view
  // has one and it reaches a verdict), generic oracle otherwise. The
  // tier records who DECIDED — a program that declines (extra view
  // tables needing FK elimination) or throws is a fallback.
  auto match_one = [&](const ViewDefinition& view, MatchProgramScratch& scratch,
                       MatchOutcome& o) {
    const SteadyClock::time_point start =
        timed ? SteadyClock::now() : SteadyClock::time_point{};
    try {
      MVOPT_FAILPOINT("matcher.match");
      const std::shared_ptr<const MatchProgram>& program =
          snap.views.program(view.id());
      bool decided = false;
      if (program != nullptr) {
        MatchExecResult ex = ExecuteMatchProgram(*program, *pctx, scratch);
        if (ex.status == MatchExecStatus::kDecided) {
          o.result = std::move(ex.result);
          o.tier = MatchTier::kCompiled;
          decided = true;
        }
      }
      if (!decided) {
        o.result = matcher_.Match(query, view);
        o.tier = MatchTier::kGeneric;
      }
      o.kind = MatchOutcome::Kind::kDone;
    } catch (const std::exception&) {
      // Fault isolation: one failing candidate never poisons the probe.
      o.kind = MatchOutcome::Kind::kError;
    }
    if (timed) o.seconds = SecondsSince(start, SteadyClock::now());
  };

  ThreadPool* pool = ctx.match_pool();
  const bool parallel =
      pool != nullptr && pool->num_workers() > 0 &&
      static_cast<int>(gated.size()) >= ctx.min_parallel_candidates();

  if (!parallel) {
    MatchProgramScratch scratch;
    for (size_t i = 0; i < gated.size(); ++i) {
      if (ctx.TickDeadline()) {
        *truncated = true;
        break;  // remaining slots stay kSkipped
      }
      match_one(snap.views.view(gated[i].id), scratch, outcomes[i]);
    }
    return outcomes;
  }

  // Parallel batch. The budget is not thread-safe, so workers never
  // touch it: the deadline is snapshotted here, each task compares the
  // clock against it and raises a shared stop flag, and the exhaustion
  // is charged to the budget after the join. Each task writes only its
  // own outcome slots; the serial compensate stage merges the slots in
  // candidate order, so results are identical for any worker count.
  //
  // Tasks are contiguous candidate RANGES, not single candidates: the
  // typical candidate is rejected by the matcher's table-set screen in
  // well under a microsecond, so per-candidate closures would spend
  // more time in dispatch (closure allocation, claim, completion lock)
  // than in matching. A few chunks per drainer (workers + the calling
  // thread) keeps the batch balanced while amortizing that overhead.
  QueryBudget* budget = ctx.budget();
  const bool has_deadline = budget != nullptr && budget->has_deadline();
  const QueryBudget::Clock::time_point deadline =
      has_deadline ? budget->deadline() : QueryBudget::Clock::time_point{};
  std::atomic<bool> stop{false};
  const size_t drainers = static_cast<size_t>(pool->num_workers()) + 1;
  const size_t num_chunks = std::min(gated.size(), drainers * 4);
  const size_t chunk = (gated.size() + num_chunks - 1) / num_chunks;
  // The snapshot reference is bound here, under the caller's pin (or
  // reader lock), and stays valid for the batch because RunBatch joins
  // before the pin is released; workers therefore never touch service
  // state at all — only the immutable snapshot.
  const ViewCatalog& catalog_snapshot = snap.views;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_chunks);
  for (size_t begin = 0; begin < gated.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, gated.size());
    tasks.emplace_back([&catalog_snapshot, &match_one, &gated, &outcomes,
                        &stop, has_deadline, deadline, begin, end] {
      // Worker-local scratch: match_one shares only the immutable
      // snapshot and the read-only probe context across threads.
      MatchProgramScratch scratch;
      for (size_t i = begin; i < end; ++i) {
        if (stop.load(std::memory_order_relaxed)) return;  // slots stay
                                                           // kSkipped
        if (has_deadline && QueryBudget::Clock::now() >= deadline) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        match_one(catalog_snapshot.view(gated[i].id), scratch, outcomes[i]);
      }
    });
  }
  pool->RunBatch(tasks);
  if (stop.load(std::memory_order_relaxed)) {
    if (budget != nullptr) {
      budget->MarkExhausted(DegradationReason::kDeadlineExceeded);
    }
    *truncated = true;
  }
  return outcomes;
}

void MatchingService::StageCompensate(
    const CatalogSnapshot& snap, const SpjgQuery& query,
    const std::vector<GatedCandidate>& gated,
    std::vector<MatchOutcome>* outcomes, QueryContext& ctx, VerifyMode mode,
    MatchCrossCheck xmode, ProbeDelta* delta, std::vector<Substitute>* fresh,
    std::vector<Substitute>* stale) {
  QueryTrace* trace = ctx.trace();
  const bool quarantine_active =
      options_.quarantine_threshold > 0 && mode == VerifyMode::kEnforce;
  for (size_t i = 0; i < gated.size(); ++i) {
    const GatedCandidate& g = gated[i];
    MatchOutcome& o = (*outcomes)[i];
    if (o.kind == MatchOutcome::Kind::kSkipped) continue;
    delta->stats.full_tests += 1;
    // Tier attribution: every full test was decided by exactly one tier
    // (compiled_hits + compiled_fallbacks == full_tests); an exception
    // counts as a fallback — the compiled path never reached a verdict.
    if (o.kind == MatchOutcome::Kind::kDone &&
        o.tier == MatchTier::kCompiled) {
      delta->stats.compiled_hits += 1;
    } else {
      delta->stats.compiled_fallbacks += 1;
    }
    if (o.seconds >= 0 && o.kind != MatchOutcome::Kind::kError) {
      metrics_.match_latency[static_cast<size_t>(o.tier)]->Observe(o.seconds);
    }
    if (o.kind == MatchOutcome::Kind::kError) {
      delta->stats.match_failures += 1;
      if (trace != nullptr) {
        trace->RecordVerdict(snap.views.view(g.id).name(), "error",
                             "matcher exception");
      }
      continue;
    }
    // Cross-check: replay this compiled verdict against the generic
    // oracle (serial, candidate order — the replay itself never runs in
    // the parallel batch). A disagreement is a compiler or executor bug;
    // in enforce mode the disagreeing view trips the same circuit
    // breaker verify rejections use, and the oracle's verdict replaces
    // the compiled one — so enforce-mode plans, ordering and stats are
    // byte-identical to the all-generic path by construction.
    if (o.tier == MatchTier::kCompiled && xmode != MatchCrossCheck::kOff) {
      MatchResult oracle = matcher_.Match(query, snap.views.view(g.id));
      if (!SameMatchVerdict(o.result, oracle)) {
        delta->stats.cross_check_mismatches += 1;
        if (trace != nullptr) {
          trace->RecordVerdict(snap.views.view(g.id).name(),
                               "cross-check-mismatch",
                               std::string("compiled=") +
                                   VerdictSummary(o.result) +
                                   " oracle=" + VerdictSummary(oracle));
        }
        if (xmode == MatchCrossCheck::kEnforce) {
          lifecycle_.ReportVerifyFailure(
              g.id,
              options_.quarantine_threshold > 0 ? options_.quarantine_threshold
                                                : 1,
              options_.disable_threshold);
          o.result = std::move(oracle);
        }
      }
    }
    MatchResult& result = o.result;
    if (!result.ok()) {
      delta->stats.rejects[static_cast<size_t>(result.reason)] += 1;
      if (trace != nullptr) {
        trace->RecordVerdict(snap.views.view(g.id).name(), "rejected",
                             RejectReasonName(result.reason));
      }
      continue;
    }
    Substitute sub = std::move(*result.substitute);
    if (mode != VerifyMode::kOff) {
      delta->verify.checked += 1;
      Verdict verdict;
      if (MVOPT_FAILPOINT_HIT("rewrite_checker.check")) {
        verdict = Verdict::Fail(CheckCode::kMalformedSubstitute,
                                "failpoint 'rewrite_checker.check'");
      } else {
        verdict = checker_.Check(query, snap.views.view(g.id), sub);
      }
      if (verdict.proven) {
        delta->verify.proven += 1;
        if (quarantine_active) lifecycle_.ReportVerifySuccess(g.id);
      } else {
        RecordVerifyRejection(snap, g.id, verdict, mode, delta);
        if (mode == VerifyMode::kEnforce) {
          if (trace != nullptr) {
            trace->RecordVerdict(
                snap.views.view(g.id).name(), "rejected",
                std::string("verify:") + CheckCodeName(verdict.code));
          }
          continue;
        }
      }
    }
    delta->stats.substitutes += 1;
    if (trace != nullptr) {
      trace->RecordVerdict(snap.views.view(g.id).name(), "accepted",
                           g.lag > 0 ? "stale-tolerated" : "");
    }
    if (g.lag > 0) {
      delta->stats.stale_tolerated += 1;
      sub.staleness_lag = g.lag;
      stale->push_back(std::move(sub));
    } else {
      fresh->push_back(std::move(sub));
    }
  }
}

std::vector<Substitute> MatchingService::FindSubstitutesOn(
    const CatalogSnapshot& snap, const SpjgQuery& query, QueryContext& ctx) {
  MVOPT_FAILPOINT("matching_service.find_substitutes");
  // One verify-mode (and cross-check-mode) snapshot per probe: a
  // concurrent flip applies to whole probes, never to half of one.
  const VerifyMode vmode = verify_mode();
  const MatchCrossCheck xmode = cross_check();
  // In kOff mode (no registered metrics, no trace, no stage hook) the
  // instrumentation below reduces to null/flag checks: no clock reads,
  // no FilterSearchStats collection, no trace recording. bench/
  // observe_overhead guards this stays within 2% of a build without the
  // hooks.
  QueryTrace* trace = ctx.trace();
  const bool counters = metrics_.invocations != nullptr;
  const bool tracing = trace != nullptr;
  const bool observing = counters || tracing || ctx.has_stage_hook();
  ProbeDelta delta;
  delta.stats.invocations = 1;
  if (tracing) trace->NoteProbe();
  StageTimer timer(observing);
  double total_seconds = 0;
  bool truncated = false;

  // Stage 1 (probe): candidate enumeration.
  FilterSearchStats fstats;
  FilterSearchStats* fstats_ptr = observing ? &fstats : nullptr;
  std::vector<ViewId> candidates = StageProbe(snap, query, ctx, fstats_ptr);
  delta.stats.candidates = static_cast<int64_t>(candidates.size());
  if (observing) {
    const double s = timer.Lap();
    total_seconds += s;
    NoteStage(ctx, trace, QueryTrace::Stage::kFilterProbe, "probe", s);
  }

  // Stage 2 (prefilter): sidelined screen + staleness gate.
  int64_t stale_rejects = 0;
  std::vector<GatedCandidate> gated =
      StagePrefilter(snap, candidates, ctx, &delta, &stale_rejects, &truncated);
  if (observing) {
    const double s = timer.Lap();
    total_seconds += s;
    NoteStage(ctx, trace, QueryTrace::Stage::kPrefilter, "prefilter", s);
  }

  // Stage 3 (match): serial or batched-parallel matcher runs.
  std::vector<MatchOutcome> outcomes =
      StageMatch(snap, query, gated, ctx, &truncated);
  if (observing) {
    const double s = timer.Lap();
    total_seconds += s;
    NoteStage(ctx, trace, QueryTrace::Stage::kMatchTests, "match", s);
  }

  // Stage 4 (compensate): verification + accounting, candidate order.
  std::vector<Substitute> out;
  std::vector<Substitute> stale_out;  // tolerated-stale: ranked after fresh
  StageCompensate(snap, query, gated, &outcomes, ctx, vmode, xmode, &delta,
                  &out, &stale_out);
  if (observing) {
    const double s = timer.Lap();
    total_seconds += s;
    NoteStage(ctx, trace, QueryTrace::Stage::kCompensate, "compensate", s);
  }

  // Stage 5 (cost-annotate): fresh substitutes rank ahead of tolerated-
  // stale ones (which carry their staleness_lag annotation), and a probe
  // that saw stale candidates but produced no fresh substitute records
  // the advisory degradation — the plan either fell back to base tables
  // or leans on a down-ranked stale view.
  if (truncated) delta.stats.budget_truncations += 1;
  if (out.empty() && (stale_rejects > 0 || !stale_out.empty())) {
    ctx.NoteDegradation(DegradationReason::kStaleViewsOnly);
  }
  for (Substitute& sub : stale_out) out.push_back(std::move(sub));
  if (observing) {
    const double s = timer.Lap();
    total_seconds += s;
    NoteStage(ctx, trace, QueryTrace::Stage::kCostAnnotate, "cost-annotate", s);
    if (counters) metrics_.probe_latency->Observe(total_seconds);
    if (tracing) {
      trace->AddCount("candidates", delta.stats.candidates);
      trace->AddCount("full_tests", delta.stats.full_tests);
      trace->AddCount("substitutes", delta.stats.substitutes);
      trace->AddCount("lattice_nodes_visited", fstats.lattice_nodes_visited);
      for (int i = 0; i < kNumFilterLevels; ++i) {
        if (fstats.level_probes[i] == 0 && fstats.level_qualifying[i] == 0) {
          continue;
        }
        const char* level = FilterLevelName(static_cast<FilterLevel>(i));
        trace->AddCount(std::string("filter.probes.") + level,
                        fstats.level_probes[i]);
        trace->AddCount(std::string("filter.qualifying.") + level,
                        fstats.level_qualifying[i]);
      }
    }
  }
  CommitProbe(delta, fstats_ptr);
  return out;
}

std::vector<Substitute> MatchingService::FindSubstitutes(
    const SpjgQuery& query, QueryContext& ctx) {
  if (options_.probe_mode == ProbeMode::kReaderLock) {
    // A/B baseline: the pre-snapshot shared-lock discipline. Holding the
    // writer mutex shared keeps the current snapshot published (retiring
    // it requires the exclusive lock), so no pin is needed.
    ReaderLock lock(mu_);
    return FindSubstitutesOn(*SnapshotLocked(), query, ctx);
  }
  // Production path: pin the snapshot, probe lock-free. The pin blocks
  // reclamation (not publication) of the generation the probe walks.
  EpochPin pin(reclaim_);
  return FindSubstitutesOn(*PinnedSnapshot(), query, ctx);
}

std::vector<Substitute> MatchingService::FindSubstitutes(
    const SpjgQuery& query, QueryBudget* budget, QueryTrace* trace) {
  QueryContext ctx;
  ctx.BorrowBudget(budget);
  ctx.set_trace(trace);
  return FindSubstitutes(query, ctx);
}

void MatchingService::RecordVerifyRejection(const CatalogSnapshot& snap,
                                            ViewId id, const Verdict& verdict,
                                            VerifyMode mode,
                                            ProbeDelta* delta) {
  delta->verify.rejected += 1;
  delta->verify.by_code[static_cast<size_t>(verdict.code)] += 1;
  if (delta->rejection_traces.size() < VerifyStats::kMaxRejectionTraces) {
    delta->rejection_traces.push_back(snap.views.view(id).name() + ": " +
                                      CheckCodeName(verdict.code) + ": " +
                                      verdict.detail);
  }
  if (options_.quarantine_threshold > 0 && mode == VerifyMode::kEnforce) {
    lifecycle_.ReportVerifyFailure(id, options_.quarantine_threshold,
                                   options_.disable_threshold);
  }
}

// --- durability -----------------------------------------------------------

void MatchingService::AttachStore(CatalogStore* store) {
  WriterLock lock(mu_);
  store->OpenForAppend();
  store_ = store;
  WireStoreCountersLocked();
}

RecoveryReport MatchingService::RecoverFrom(CatalogStore* store) {
  WriterLock lock(mu_);
  assert(SnapshotLocked()->views.num_views() == 0 &&
         "recovery must target an empty service");
  CatalogStore::RecoveredState recovered = store->Recover();
  RecoveryReport report = std::move(recovered.report);
  report.views_recovered = 0;  // re-counted below: only views that rebuild
  // The whole batch lands in ONE next-generation snapshot: per-entry
  // failures roll back on the unpublished clone, and probes racing the
  // recovery keep seeing the (empty) published snapshot until the final
  // publish below.
  auto next = std::make_unique<CatalogSnapshot>(*SnapshotLocked());
  for (PersistedView& image : recovered.views) {
    // Self-healing: a durable entry that no longer replays (schema
    // drift, corruption that survived the CRC, a bad state byte) is
    // quarantined in the report instead of aborting recovery.
    if (static_cast<uint8_t>(image.state) >=
        static_cast<uint8_t>(kNumViewStates)) {
      report.quarantined.push_back({image.name,
                                    EntryQuarantineCause::kInvalidState,
                                    "invalid lifecycle state in durable record"});
      continue;
    }
    std::string err;
    std::optional<SpjgQuery> parsed = ParseSpjg(*catalog_, image.sql, &err);
    if (!parsed.has_value()) {
      report.quarantined.push_back({image.name,
                                    EntryQuarantineCause::kUnparsableSql,
                                    "unparsable SQL: " + err});
      continue;
    }
    ViewDefinition* view = nullptr;
    try {
      view = next->views.AddView(image.name, std::move(*parsed), &err);
      if (view != nullptr) {
        next->tree.AddView(view->id());
        if (options_.compile_match_programs) {
          // Programs are not persisted — they are recompiled from the
          // replayed definition, so recovery lands with the same tiers
          // a fresh registration would produce.
          MVOPT_FAILPOINT("match_program.compile");
          next->views.SetProgram(
              view->id(),
              CompileMatchProgram(*catalog_, *view, options_.match));
        }
      }
    } catch (const std::exception& e) {
      if (view != nullptr) next->views.RemoveLastView(view->id());
      view = nullptr;
      err = e.what();
    }
    if (view == nullptr) {
      report.quarantined.push_back(
          {image.name, EntryQuarantineCause::kIndexingFailed, err});
      continue;
    }
    GrowBookkeepingLocked(next->views.num_views());
    ViewLifecycleRegistry::Snapshot snap;
    snap.state = image.state;
    snap.epoch = image.epoch;
    snap.content_checksum = image.content_checksum;
    lifecycle_.Restore(view->id(), snap);
    ++report.views_recovered;
  }
  store->OpenForAppend();
  store_ = store;
  WireStoreCountersLocked();
  PublishLocked(std::move(next));
  return report;
}

void MatchingService::Checkpoint() {
  WriterLock lock(mu_);
  assert(store_ != nullptr && "Checkpoint requires an attached store");
  const ViewCatalog& views = SnapshotLocked()->views;
  std::vector<PersistedView> images;
  images.reserve(static_cast<size_t>(views.num_views()));
  for (ViewId id = 0; id < views.num_views(); ++id) {
    images.push_back(PersistedImageOf(views, id));
  }
  store_->WriteSnapshot(images);
}

// --- lifecycle ------------------------------------------------------------

bool MatchingService::ReportChecksumMismatch(ViewId id) {
  WriterLock lock(mu_);
  if (!lifecycle_.ReportChecksumMismatch(id)) return false;
  if (static_cast<size_t>(id) < in_tree_.size() && in_tree_[id]) {
    auto next = std::make_unique<CatalogSnapshot>(*SnapshotLocked());
    next->tree.RemoveView(id);
    in_tree_[id] = 0;
    PublishLocked(std::move(next));
  }
  LogViewEventLocked(SnapshotLocked()->views, id);
  return true;
}

int MatchingService::RevalidationTick(
    const std::function<bool(const ViewDefinition&)>& validate) {
  WriterLock lock(mu_);
  const int64_t tick = ++revalidation_tick_;
  CatalogSnapshot* current = SnapshotLocked();
  GrowBookkeepingLocked(current->views.num_views());
  // Probe the work list first so quiet ticks (the common case) skip the
  // snapshot clone entirely.
  bool tree_work = false;
  for (ViewId id = 0; id < current->views.num_views(); ++id) {
    if (!lifecycle_.IsSidelined(id)) continue;
    if (in_tree_[id] || lifecycle_.DueForRetry(id, tick)) {
      tree_work = true;
      break;
    }
  }
  int readmitted = 0;
  if (tree_work) {
    auto next = std::make_unique<CatalogSnapshot>(*current);
    for (ViewId id = 0; id < next->views.num_views(); ++id) {
      if (!lifecycle_.IsSidelined(id)) continue;
      // Compaction: sidelined views leave the filter tree so probes stop
      // paying for them (probe-side quarantine entry cannot touch the
      // tree — it changes only the lifecycle registry).
      if (in_tree_[id]) {
        next->tree.RemoveView(id);
        in_tree_[id] = 0;
      }
      if (!lifecycle_.DueForRetry(id, tick)) continue;
      bool ok = false;
      try {
        ok = validate != nullptr && validate(next->views.view(id));
        if (ok) {
          next->tree.AddView(id);  // re-insertion; strongly exception-safe
          in_tree_[id] = 1;
        }
      } catch (const std::exception&) {
        ok = false;
      }
      if (ok) {
        const TableEpochClock* clock = epochs_.load(std::memory_order_acquire);
        lifecycle_.Readmit(id, clock != nullptr ? clock->now() : 0);
        LogViewEventLocked(next->views, id);
        ++readmitted;
      } else {
        lifecycle_.RecordRetryFailure(id, tick);
      }
    }
    PublishLocked(std::move(next));
  }
  // Under the exclusive lock no transition is in flight, so the
  // incremental gauges must agree with the per-entry states exactly.
  // AuditCounters also resyncs on mismatch, so the check must run even
  // in NDEBUG builds.
  bool gauges_consistent = lifecycle_.AuditCounters();
  assert(gauges_consistent && "lifecycle gauge drift detected");
  (void)gauges_consistent;
  return readmitted;
}

bool MatchingService::ReadmitView(ViewId id) {
  WriterLock lock(mu_);
  CatalogSnapshot* current = SnapshotLocked();
  GrowBookkeepingLocked(current->views.num_views());
  const TableEpochClock* clock = epochs_.load(std::memory_order_acquire);
  if (!lifecycle_.Readmit(id, clock != nullptr ? clock->now() : 0)) {
    return false;
  }
  if (static_cast<size_t>(id) < in_tree_.size() && !in_tree_[id]) {
    auto next = std::make_unique<CatalogSnapshot>(*current);
    try {
      next->tree.AddView(id);
      in_tree_[id] = 1;
      PublishLocked(std::move(next));
    } catch (const std::exception&) {
      // Leave it out of the tree (drop the clone); the next revalidation
      // tick retries.
    }
  }
  LogViewEventLocked(SnapshotLocked()->views, id);
  return true;
}

void MatchingService::ReplaceProgramForTest(
    ViewId id, std::shared_ptr<const MatchProgram> program) {
  WriterLock lock(mu_);
  auto next = std::make_unique<CatalogSnapshot>(*SnapshotLocked());
  next->views.SetProgram(id, std::move(program));
  PublishLocked(std::move(next));
}

bool MatchingService::IsQuarantined(ViewId id) const {
  return lifecycle_.IsSidelined(id);
}

std::vector<std::string> MatchingService::QuarantinedViews() const {
  EpochPin pin(reclaim_);
  const CatalogSnapshot& snap = *PinnedSnapshot();
  std::vector<std::string> out;
  for (ViewId id = 0; id < snap.views.num_views(); ++id) {
    if (lifecycle_.IsSidelined(id)) {
      out.push_back(snap.views.view(id).name());
    }
  }
  return out;
}

MatchingStats MatchingService::stats() const {
  MutexLock stats_lock(stats_mu_);
  return stats_;
}

VerifyStats MatchingService::verify_stats() const {
  VerifyStats snapshot;
  snapshot.quarantined_views =
      static_cast<int64_t>(lifecycle_.num_sidelined());
  MutexLock stats_lock(stats_mu_);
  snapshot.checked = verify_counters_.checked;
  snapshot.proven = verify_counters_.proven;
  snapshot.rejected = verify_counters_.rejected;
  snapshot.by_code = verify_counters_.by_code;
  snapshot.rejection_traces = rejection_traces_;
  return snapshot;
}

MatchingStats MatchingService::ResetStats() {
  // Swap under the same lock probes commit under: every in-flight probe
  // lands entirely in the returned snapshot or entirely after the reset;
  // no increment is ever lost.
  MutexLock stats_lock(stats_mu_);
  MatchingStats previous = stats_;
  stats_ = MatchingStats{};
  return previous;
}

VerifyStats MatchingService::ResetVerifyStats() {
  VerifyStats previous;
  previous.quarantined_views =
      static_cast<int64_t>(lifecycle_.num_sidelined());
  MutexLock stats_lock(stats_mu_);
  previous.checked = verify_counters_.checked;
  previous.proven = verify_counters_.proven;
  previous.rejected = verify_counters_.rejected;
  previous.by_code = verify_counters_.by_code;
  previous.rejection_traces = std::move(rejection_traces_);
  verify_counters_ = VerifyCounters{};
  rejection_traces_.clear();
  return previous;
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstituteOn(
    const CatalogSnapshot& snap, const SpjgQuery& query, QueryContext& ctx) {
  QueryTrace* trace = ctx.trace();
  const bool observing = trace != nullptr || ctx.has_stage_hook();
  StageTimer timer(observing);
  std::optional<UnionSubstitute> result;
  if (!query.is_aggregate && snap.views.num_views() >= 2 &&
      !ctx.TickDeadline()) {
    // Candidate legs need not contain the query's ranges (that is the
    // point), so probe with only the structural conditions intact: every
    // view whose table set qualifies. Sidelined views are excluded here
    // too — a union leg is as much a rewrite as a direct substitute —
    // and stale views are admitted only within the context's tolerance.
    ProbeDelta delta;  // quarantine skips only; not a FindSubstitutes probe
    const uint64_t tolerance = ctx.max_staleness();
    std::vector<ViewId> candidates;
    QueryDescription qd = DescribeQuery(*catalog_, query);
    for (ViewId id = 0; id < snap.views.num_views(); ++id) {
      const uint64_t lag = StalenessLagOn(snap, id);
      switch (lifecycle_.GateForProbe(id, lag, tolerance)) {
        case ViewLifecycleRegistry::ProbeGate::kSidelined:
          delta.stats.quarantine_skips += 1;
          continue;
        case ViewLifecycleRegistry::ProbeGate::kRejectStale:
          continue;
        case ViewLifecycleRegistry::ProbeGate::kAdmit:
        case ViewLifecycleRegistry::ProbeGate::kAdmitStale:
          break;
      }
      const ViewDescription& d = snap.views.description(id);
      if (d.is_aggregate) continue;
      bool tables_ok = std::includes(d.source_tables.begin(),
                                     d.source_tables.end(),
                                     qd.source_tables.begin(),
                                     qd.source_tables.end());
      if (tables_ok) candidates.push_back(id);
    }
    if (delta.stats.quarantine_skips != 0) CommitProbe(delta, nullptr);
    UnionMatchOptions opts;
    opts.match = options_.match;
    UnionMatcher matcher(catalog_, &snap.views, opts);
    result = matcher.Match(query, candidates, &ctx);
  }
  if (observing) {
    const double s = timer.Lap();
    NoteStage(ctx, trace, QueryTrace::Stage::kUnionMatch, "union-match", s);
  }
  return result;
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstitute(
    const SpjgQuery& query, QueryContext& ctx) {
  if (options_.probe_mode == ProbeMode::kReaderLock) {
    ReaderLock lock(mu_);
    return FindUnionSubstituteOn(*SnapshotLocked(), query, ctx);
  }
  EpochPin pin(reclaim_);
  return FindUnionSubstituteOn(*PinnedSnapshot(), query, ctx);
}

std::optional<UnionSubstitute> MatchingService::FindUnionSubstitute(
    const SpjgQuery& query) {
  QueryContext ctx;
  return FindUnionSubstitute(query, ctx);
}

}  // namespace mvopt
