#include "index/filter_tree.h"

#include <algorithm>
#include <cassert>

#include "common/failpoint.h"

namespace mvopt {

namespace {

// True if sorted keys `a` and `b` intersect.
bool Intersects(const LatticeIndex::Key& a, const LatticeIndex::Key& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

template <typename T>
LatticeIndex::Key ToKey(const std::vector<T>& values) {
  LatticeIndex::Key key;
  key.reserve(values.size());
  for (T v : values) key.push_back(static_cast<uint32_t>(v));
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

}  // namespace

const char* FilterLevelName(FilterLevel level) {
  switch (level) {
    case FilterLevel::kHub:
      return "hub";
    case FilterLevel::kSourceTables:
      return "source-tables";
    case FilterLevel::kOutputExprs:
      return "output-exprs";
    case FilterLevel::kOutputColumns:
      return "output-columns";
    case FilterLevel::kResidual:
      return "residual";
    case FilterLevel::kRangeConstraints:
      return "range-constraints";
    case FilterLevel::kGroupingExprs:
      return "grouping-exprs";
    case FilterLevel::kGroupingColumns:
      return "grouping-columns";
  }
  return "?";
}

FilterTree::FilterTree(const std::vector<ViewDescription>* descriptions)
    : descriptions_(descriptions) {
  spj_levels_ = {FilterLevel::kHub,           FilterLevel::kSourceTables,
                 FilterLevel::kOutputExprs,   FilterLevel::kOutputColumns,
                 FilterLevel::kResidual,      FilterLevel::kRangeConstraints};
  agg_levels_ = spj_levels_;
  agg_levels_.push_back(FilterLevel::kGroupingExprs);
  agg_levels_.push_back(FilterLevel::kGroupingColumns);
}

// Recursive node clone for the rebinding copy constructor. Child slots
// may be null (lattice node ids keep their slot even when unused).
void FilterTree::CloneNode(const Node& from, Node* to) {
  to->index = from.index;
  to->leaves = from.leaves;
  to->children.clear();
  to->children.reserve(from.children.size());
  for (const std::unique_ptr<Node>& child : from.children) {
    if (child == nullptr) {
      to->children.push_back(nullptr);
      continue;
    }
    auto copy = std::make_unique<Node>();
    CloneNode(*child, copy.get());
    to->children.push_back(std::move(copy));
  }
}

FilterTree::FilterTree(const FilterTree& other,
                       const std::vector<ViewDescription>* descriptions)
    : descriptions_(descriptions),
      spj_levels_(other.spj_levels_),
      agg_levels_(other.agg_levels_),
      atoms_(other.atoms_),
      num_views_(other.num_views_),
      assume_backjoins_(other.assume_backjoins_) {
  CloneNode(other.spj_root_, &spj_root_);
  CloneNode(other.agg_root_, &agg_root_);
}

void FilterTree::SetLevels(std::vector<FilterLevel> spj_levels,
                           std::vector<FilterLevel> agg_levels) {
  assert(num_views_ == 0 && "SetLevels before any AddView");
  spj_levels_ = std::move(spj_levels);
  agg_levels_ = std::move(agg_levels);
}

uint32_t FilterTree::Intern(const std::string& text) {
  auto [it, inserted] =
      atoms_.emplace(text, static_cast<uint32_t>(atoms_.size()));
  (void)inserted;
  return it->second;
}

std::optional<uint32_t> FilterTree::LookupAtom(const std::string& text) const {
  auto it = atoms_.find(text);
  if (it == atoms_.end()) return std::nullopt;
  return it->second;
}

LatticeIndex::Key FilterTree::ViewKey(const ViewDescription& d,
                                      FilterLevel level) {
  switch (level) {
    case FilterLevel::kHub:
      return ToKey(d.hub);
    case FilterLevel::kSourceTables:
      return ToKey(d.source_tables);
    case FilterLevel::kOutputExprs: {
      LatticeIndex::Key key;
      for (const auto& t : d.output_expr_texts) key.push_back(Intern(t));
      std::sort(key.begin(), key.end());
      return key;
    }
    case FilterLevel::kOutputColumns:
      return ToKey(d.extended_output_columns);
    case FilterLevel::kResidual: {
      LatticeIndex::Key key;
      for (const auto& t : d.residual_texts) key.push_back(Intern(t));
      std::sort(key.begin(), key.end());
      return key;
    }
    case FilterLevel::kRangeConstraints:
      return ToKey(d.reduced_range_columns);
    case FilterLevel::kGroupingExprs: {
      LatticeIndex::Key key;
      for (const auto& t : d.grouping_expr_texts) key.push_back(Intern(t));
      std::sort(key.begin(), key.end());
      return key;
    }
    case FilterLevel::kGroupingColumns:
      return ToKey(d.extended_grouping_columns);
  }
  return {};
}

void FilterTree::AddView(ViewId id) {
  MVOPT_FAILPOINT("filter_tree.add_view");
  const ViewDescription& d = (*descriptions_)[id];
  const std::vector<FilterLevel>& levels =
      d.is_aggregate ? agg_levels_ : spj_levels_;
  Node* node = d.is_aggregate ? &agg_root_ : &spj_root_;
  // Undo log: lattice keys this insert brought to life, so a failure
  // mid-path (allocation, failpoint) can re-erase exactly them. Keys
  // that were already live belong to other views and must survive.
  struct Step {
    Node* node;
    LatticeIndex::Key key;
    bool created;
  };
  std::vector<Step> steps;
  steps.reserve(levels.size());
  try {
    for (size_t depth = 0; depth < levels.size(); ++depth) {
      LatticeIndex::Key key = ViewKey(d, levels[depth]);
      const int existing = node->index.Find(key);
      const bool created = existing < 0 || !node->index.alive(existing);
      int lattice_node = node->index.Insert(key);
      steps.push_back(Step{node, std::move(key), created});
      const bool last = depth + 1 == levels.size();
      if (last) {
        MVOPT_FAILPOINT("filter_tree.insert_leaf");
        if (node->leaves.size() <= static_cast<size_t>(lattice_node)) {
          node->leaves.resize(lattice_node + 1);
        }
        node->leaves[lattice_node].push_back(id);
      } else {
        if (node->children.size() <= static_cast<size_t>(lattice_node)) {
          node->children.resize(lattice_node + 1);
        }
        if (node->children[lattice_node] == nullptr) {
          node->children[lattice_node] = std::make_unique<Node>();
        }
        node = node->children[lattice_node].get();
      }
    }
  } catch (...) {
    // The leaf push is the final mutation, so on any failure the view id
    // is not in a leaf yet; erasing the keys this insert created (lazy
    // deletion keeps them as dead routing waypoints) restores the
    // searchable state exactly.
    for (auto rit = steps.rbegin(); rit != steps.rend(); ++rit) {
      if (rit->created) rit->node->index.Erase(rit->key);
    }
    throw;
  }
  ++num_views_;
}

void FilterTree::RemoveView(ViewId id) {
  const ViewDescription& d = (*descriptions_)[id];
  const std::vector<FilterLevel>& levels =
      d.is_aggregate ? agg_levels_ : spj_levels_;
  Node* node = d.is_aggregate ? &agg_root_ : &spj_root_;
  for (size_t depth = 0; depth < levels.size(); ++depth) {
    LatticeIndex::Key key = ViewKey(d, levels[depth]);
    int lattice_node = node->index.Find(key);
    assert(lattice_node >= 0 && "view path must exist");
    const bool last = depth + 1 == levels.size();
    if (last) {
      auto& leaf = node->leaves[lattice_node];
      leaf.erase(std::remove(leaf.begin(), leaf.end(), id), leaf.end());
      if (leaf.empty()) node->index.Erase(key);
    } else {
      node = node->children[lattice_node].get();
    }
  }
  --num_views_;
}

void FilterTree::SearchLevel(const Node& node, FilterLevel level,
                             const SearchContext& ctx, bool agg_tree,
                             std::vector<int>* out,
                             FilterSearchStats* stats) const {
  // Lattice search kinds by level (the §4.4 walk each condition uses);
  // recorded before the dispatch so impossible-key early returns still
  // count as a performed search.
  if (stats != nullptr) {
    switch (level) {
      case FilterLevel::kHub:
      case FilterLevel::kResidual:
      case FilterLevel::kRangeConstraints:
        ++stats->subset_searches;
        break;
      case FilterLevel::kSourceTables:
      case FilterLevel::kOutputExprs:
      case FilterLevel::kGroupingExprs:
        ++stats->superset_searches;
        break;
      case FilterLevel::kOutputColumns:
      case FilterLevel::kGroupingColumns:
        ++stats->scan_searches;
        break;
    }
  }
  switch (level) {
    case FilterLevel::kHub:
      // Hub condition (§4.2.2): hub ⊆ query source tables.
      node.index.SearchSubsets(ctx.source_tables, out);
      return;
    case FilterLevel::kSourceTables:
      // Source table condition (§4.2.1): view tables ⊇ query tables.
      node.index.SearchSupersets(ctx.source_tables, out);
      return;
    case FilterLevel::kOutputExprs: {
      const bool impossible = agg_tree ? ctx.output_agg_exprs_impossible
                                       : ctx.output_exprs_impossible;
      if (impossible) return;  // a required text exists in no view
      const LatticeIndex::Key& atoms =
          agg_tree ? ctx.output_agg_expr_atoms : ctx.output_expr_atoms;
      node.index.SearchSupersets(atoms, out);
      return;
    }
    case FilterLevel::kOutputColumns: {
      // Output column condition (§4.2.3): every query output class must
      // be hit by the view's extended output list. Upward-closed, so
      // descend from the tops. Not applicable when backjoins can recover
      // missing columns.
      if (assume_backjoins_) {
        node.index.SearchDown([](const LatticeIndex::Key&) { return true; },
                              out);
        return;
      }
      const auto& classes =
          agg_tree ? ctx.output_classes_agg : ctx.output_classes_spj;
      node.index.SearchDown(
          [&classes](const LatticeIndex::Key& key) {
            for (const auto& cls : classes) {
              if (!Intersects(key, cls)) return false;
            }
            return true;
          },
          out);
      return;
    }
    case FilterLevel::kResidual:
      // Residual predicate condition (§4.2.6): view residual texts ⊆
      // query residual texts.
      node.index.SearchSubsets(ctx.residual_atoms, out);
      return;
    case FilterLevel::kRangeConstraints:
      // Weak range constraint condition (§4.2.5); the full condition is
      // applied per view after the leaf is reached.
      node.index.SearchSubsets(ctx.extended_range_columns, out);
      return;
    case FilterLevel::kGroupingExprs:
      if (assume_backjoins_) {
        // The FD relaxation lets grouping expressions be recovered via
        // backjoins; the textual containment is no longer necessary.
        node.index.SearchDown([](const LatticeIndex::Key&) { return true; },
                              out);
        return;
      }
      if (ctx.grouping_exprs_impossible) return;
      node.index.SearchSupersets(ctx.grouping_expr_atoms, out);
      return;
    case FilterLevel::kGroupingColumns:
      if (assume_backjoins_) {
        node.index.SearchDown([](const LatticeIndex::Key&) { return true; },
                              out);
        return;
      }
      node.index.SearchDown(
          [&ctx](const LatticeIndex::Key& key) {
            for (const auto& cls : ctx.grouping_classes) {
              if (!Intersects(key, cls)) return false;
            }
            return true;
          },
          out);
      return;
  }
}

bool FilterTree::PassesFullRangeCondition(ViewId id,
                                          const SearchContext& ctx) const {
  // Range constraint condition (§4.2.5): every range-constrained view
  // equivalence class must have a column in the query's extended range
  // constraint list.
  const ViewDescription& d = (*descriptions_)[id];
  for (const auto& cls : d.range_constrained_classes) {
    if (!Intersects(ToKey(cls), ctx.extended_range_columns)) return false;
  }
  return true;
}

void FilterTree::Search(const Node& node,
                        const std::vector<FilterLevel>& levels, size_t depth,
                        const SearchContext& ctx, bool agg_tree,
                        std::vector<ViewId>* out, FilterSearchStats* stats,
                        QueryBudget* budget) const {
  if (budget != nullptr && budget->TickDeadline()) return;
  std::vector<int> qualifying;
  SearchLevel(node, levels[depth], ctx, agg_tree, &qualifying, stats);
  if (stats != nullptr) {
    const size_t li = static_cast<size_t>(levels[depth]);
    ++stats->level_probes[li];
    stats->level_qualifying[li] += static_cast<int64_t>(qualifying.size());
    stats->lattice_nodes_visited += static_cast<int64_t>(qualifying.size());
  }
  const bool last = depth + 1 == levels.size();
  for (int n : qualifying) {
    if (last) {
      if (static_cast<size_t>(n) >= node.leaves.size()) continue;
      for (ViewId id : node.leaves[n]) {
        if (stats != nullptr) ++stats->views_range_checked;
        if (PassesFullRangeCondition(id, ctx)) {
          if (budget != nullptr && budget->ConsumeCandidate()) return;
          out->push_back(id);
        } else if (stats != nullptr) {
          ++stats->views_range_rejected;
        }
      }
    } else {
      if (static_cast<size_t>(n) >= node.children.size() ||
          node.children[n] == nullptr) {
        continue;
      }
      Search(*node.children[n], levels, depth + 1, ctx, agg_tree, out, stats,
             budget);
      if (budget != nullptr && budget->exhausted()) return;
    }
  }
}

std::vector<ViewId> FilterTree::FindCandidates(const QueryDescription& query,
                                               FilterSearchStats* stats,
                                               QueryBudget* budget) const {
  SearchContext ctx;
  ctx.is_aggregate = query.is_aggregate;
  ctx.source_tables = ToKey(query.source_tables);
  ctx.extended_range_columns = ToKey(query.extended_range_columns);

  auto intern_required = [this](const std::vector<std::string>& texts,
                                LatticeIndex::Key* key, bool* impossible) {
    for (const auto& t : texts) {
      auto atom = LookupAtom(t);
      if (!atom.has_value()) {
        *impossible = true;  // no view carries this text
        return;
      }
      key->push_back(*atom);
    }
    std::sort(key->begin(), key->end());
    key->erase(std::unique(key->begin(), key->end()), key->end());
  };

  intern_required(query.output_expr_texts, &ctx.output_expr_atoms,
                  &ctx.output_exprs_impossible);
  {
    std::vector<std::string> combined = query.output_expr_texts;
    combined.insert(combined.end(), query.agg_expr_texts.begin(),
                    query.agg_expr_texts.end());
    intern_required(combined, &ctx.output_agg_expr_atoms,
                    &ctx.output_agg_exprs_impossible);
  }
  intern_required(query.grouping_expr_texts, &ctx.grouping_expr_atoms,
                  &ctx.grouping_exprs_impossible);

  // Residual atoms: unknown query texts can never appear in a view key,
  // so they are simply dropped from the superset-side set.
  for (const auto& t : query.residual_texts) {
    auto atom = LookupAtom(t);
    if (atom.has_value()) ctx.residual_atoms.push_back(*atom);
  }
  std::sort(ctx.residual_atoms.begin(), ctx.residual_atoms.end());

  for (const auto& cls : query.output_column_classes_spj) {
    ctx.output_classes_spj.push_back(ToKey(cls));
  }
  for (const auto& cls : query.output_column_classes_agg) {
    ctx.output_classes_agg.push_back(ToKey(cls));
  }
  for (const auto& cls : query.grouping_column_classes) {
    ctx.grouping_classes.push_back(ToKey(cls));
  }

  std::vector<ViewId> out;
  if (spj_root_.index.num_live_nodes() > 0 || !spj_root_.leaves.empty()) {
    Search(spj_root_, spj_levels_, 0, ctx, /*agg_tree=*/false, &out, stats,
           budget);
  }
  if (query.is_aggregate &&
      (agg_root_.index.num_live_nodes() > 0 || !agg_root_.leaves.empty())) {
    Search(agg_root_, agg_levels_, 0, ctx, /*agg_tree=*/true, &out, stats,
           budget);
  }
  return out;
}

}  // namespace mvopt
