// Relational catalog: tables, columns, and the four constraint kinds the
// view-matching algorithm exploits (paper §3): not-null constraints,
// primary keys, uniqueness constraints, and foreign keys. Also holds the
// per-column statistics the cost model and the workload generator use.

#ifndef MVOPT_CATALOG_CATALOG_H_
#define MVOPT_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace mvopt {
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;
}  // namespace mvopt

namespace mvopt {

using TableId = int32_t;
using ColumnOrdinal = int32_t;

inline constexpr TableId kInvalidTableId = -1;

/// Simple per-column statistics (populated by the data generator or set by
/// hand). Used by the cardinality estimator to derive range selectivities.
struct ColumnStats {
  Value min;             ///< smallest non-null value, or NULL if unknown
  Value max;             ///< largest non-null value, or NULL if unknown
  int64_t distinct = 0;  ///< approximate distinct count, 0 if unknown
};

/// Column definition with its not-null constraint.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool not_null = false;
  ColumnStats stats;
};

/// A foreign key from `table` (owner, implicit) to `referenced_table`.
/// Column lists are positionally aligned: fk_columns[i] references
/// key_columns[i]. The paper requires the referenced columns to form a
/// unique key and (for cardinality-preserving joins) the referencing
/// columns to be not-null.
struct ForeignKeyDef {
  std::vector<ColumnOrdinal> fk_columns;
  TableId referenced_table = kInvalidTableId;
  std::vector<ColumnOrdinal> key_columns;
};

/// Table definition. unique_keys[0], if present, is the primary key.
class TableDef {
 public:
  TableDef(TableId id, std::string name) : id_(id), name_(std::move(name)) {}

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Appends a column; returns its ordinal.
  ColumnOrdinal AddColumn(std::string name, ValueType type, bool not_null);

  /// Declares the primary key (stored as unique_keys[0]; columns become
  /// not-null, matching SQL semantics).
  void SetPrimaryKey(std::vector<ColumnOrdinal> columns);

  /// Declares an additional uniqueness constraint.
  void AddUniqueKey(std::vector<ColumnOrdinal> columns);

  void AddForeignKey(ForeignKeyDef fk) {
    foreign_keys_.push_back(std::move(fk));
  }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(ColumnOrdinal i) const { return columns_[i]; }
  ColumnDef& mutable_column(ColumnOrdinal i) { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Ordinal of the named column, or nullopt.
  std::optional<ColumnOrdinal> FindColumn(const std::string& name) const;

  const std::vector<std::vector<ColumnOrdinal>>& unique_keys() const {
    return unique_keys_;
  }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  /// True if `columns` is a superset of some declared unique key.
  bool CoversUniqueKey(const std::vector<ColumnOrdinal>& columns) const;

  /// Declares a CHECK constraint: a predicate over this table's columns
  /// (column references use table_ref 0) that every row satisfies. The
  /// view-matching tests add these to the antecedent of the implication
  /// Wq => Wv (§3.1.2). Pass one conjunct per call.
  void AddCheckConstraint(ExprPtr conjunct) {
    check_constraints_.push_back(std::move(conjunct));
  }
  const std::vector<ExprPtr>& check_constraints() const {
    return check_constraints_;
  }

  void set_row_count(int64_t n) { row_count_ = n; }
  int64_t row_count() const { return row_count_; }

 private:
  TableId id_;
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::vector<ColumnOrdinal>> unique_keys_;
  std::vector<ForeignKeyDef> foreign_keys_;
  std::vector<ExprPtr> check_constraints_;
  int64_t row_count_ = 0;
};

/// The catalog owns table definitions and resolves names.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; the returned pointer stays valid for the
  /// catalog's lifetime.
  TableDef* CreateTable(const std::string& name);

  const TableDef& table(TableId id) const { return *tables_[id]; }
  TableDef& mutable_table(TableId id) { return *tables_[id]; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  const TableDef* FindTable(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<TableDef>> tables_;
  std::unordered_map<std::string, TableId> by_name_;
};

}  // namespace mvopt

#endif  // MVOPT_CATALOG_CATALOG_H_
