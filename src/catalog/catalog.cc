#include "catalog/catalog.h"

#include <algorithm>
#include <cassert>

namespace mvopt {

ColumnOrdinal TableDef::AddColumn(std::string name, ValueType type,
                                  bool not_null) {
  ColumnDef def;
  def.name = std::move(name);
  def.type = type;
  def.not_null = not_null;
  columns_.push_back(std::move(def));
  return static_cast<ColumnOrdinal>(columns_.size()) - 1;
}

void TableDef::SetPrimaryKey(std::vector<ColumnOrdinal> columns) {
  assert(unique_keys_.empty() && "primary key must be declared first");
  for (ColumnOrdinal c : columns) columns_[c].not_null = true;
  unique_keys_.push_back(std::move(columns));
}

void TableDef::AddUniqueKey(std::vector<ColumnOrdinal> columns) {
  unique_keys_.push_back(std::move(columns));
}

std::optional<ColumnOrdinal> TableDef::FindColumn(
    const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<ColumnOrdinal>(i);
  }
  return std::nullopt;
}

bool TableDef::CoversUniqueKey(
    const std::vector<ColumnOrdinal>& columns) const {
  for (const auto& key : unique_keys_) {
    bool covered = true;
    for (ColumnOrdinal k : key) {
      if (std::find(columns.begin(), columns.end(), k) == columns.end()) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

TableDef* Catalog::CreateTable(const std::string& name) {
  assert(by_name_.find(name) == by_name_.end() && "duplicate table name");
  TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<TableDef>(id, name));
  by_name_[name] = id;
  return tables_.back().get();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return tables_[it->second].get();
}

}  // namespace mvopt
