#include "tpch/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "optimizer/cardinality.h"

namespace mvopt {
namespace tpch {

namespace {

bool IsRangeable(const ColumnDef& col) {
  return (col.type == ValueType::kInt64 || col.type == ValueType::kDate) &&
         !col.stats.min.is_null() && !col.stats.max.is_null();
}

// Per-column selection weight — the role of the paper's "parameter file"
// that "specified ... the frequency with which a column received a range
// predicate, and the frequency with which a column was chosen as an
// output column". Concentrating on keys, foreign keys and dates makes
// independently generated views and queries constrain and expose the
// same columns, which is what produces the paper's match rates.
double ColumnWeight(const TableDef& table, ColumnOrdinal col) {
  for (const auto& key : table.unique_keys()) {
    for (ColumnOrdinal k : key) {
      if (k == col) return 8.0;
    }
  }
  for (const auto& fk : table.foreign_keys()) {
    for (ColumnOrdinal k : fk.fk_columns) {
      if (k == col) return 8.0;
    }
  }
  const ColumnDef& def = table.column(col);
  if (def.type == ValueType::kDate) return 4.0;
  if (def.type == ValueType::kInt64) return 2.0;
  return 1.0;
}

bool IsSummable(const ColumnDef& col) {
  return col.type == ValueType::kInt64 || col.type == ValueType::kDouble;
}

Value MakeBound(const ColumnDef& col, double fraction) {
  const double lo = col.stats.min.AsDouble();
  const double hi = col.stats.max.AsDouble();
  const double x = lo + fraction * (hi - lo);
  switch (col.type) {
    case ValueType::kInt64:
      return Value::Int64(static_cast<int64_t>(std::llround(x)));
    case ValueType::kDate:
      return Value::Date(static_cast<int64_t>(std::llround(x)));
    default:
      return Value::Double(x);
  }
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const Catalog* catalog, uint64_t seed,
                                     WorkloadOptions options)
    : catalog_(catalog), options_(options), rng_(seed) {
  for (TableId t = 0; t < catalog->num_tables(); ++t) {
    tables_.push_back(t);
  }
}

WorkloadGenerator::WorkloadGenerator(const Catalog* catalog,
                                     std::vector<TableId> tables,
                                     uint64_t seed, WorkloadOptions options)
    : catalog_(catalog),
      tables_(std::move(tables)),
      options_(options),
      rng_(seed) {}

int WorkloadGenerator::PickQueryTableCount() {
  // Paper: 40% two tables, 20% three, 17% four, 13% five, 8% six, 2% seven.
  static const double kWeights[] = {40, 20, 17, 13, 8, 2};
  return 2 + static_cast<int>(rng_.Weighted(
                 std::vector<double>(kWeights, kWeights + 6)));
}

SpjgQuery WorkloadGenerator::Generate(int num_tables, double card_lo,
                                      double card_hi, bool aggregate,
                                      bool include_ranged_outputs) {
  SpjgBuilder builder(catalog_);

  // --- FK join random walk.
  struct Ref {
    int32_t slot;
    TableId table;
  };
  std::vector<Ref> refs;
  // The initial table: prefer the bigger tables so range tuning has room
  // (the paper used a frequency parameter file; this plays that role).
  std::vector<double> init_weights;
  for (TableId t : tables_) {
    init_weights.push_back(
        std::log2(2.0 + static_cast<double>(catalog_->table(t).row_count())));
  }
  TableId first = tables_[rng_.Weighted(init_weights)];
  refs.push_back(Ref{builder.AddTableId(first), first});

  struct Candidate {
    int32_t from_slot;      // existing ref
    TableId other;          // table to add
    const ForeignKeyDef* fk;
    bool outgoing;          // FK belongs to the existing ref?
  };
  int attempts = 0;
  while (static_cast<int>(refs.size()) < num_tables && attempts < 50) {
    ++attempts;
    std::vector<Candidate> candidates;
    for (const Ref& r : refs) {
      // Outgoing FKs of r.table.
      for (const auto& fk : catalog_->table(r.table).foreign_keys()) {
        candidates.push_back(Candidate{r.slot, fk.referenced_table, &fk,
                                       true});
      }
      // Incoming FKs: tables referencing r.table.
      for (TableId u : tables_) {
        for (const auto& fk : catalog_->table(u).foreign_keys()) {
          if (fk.referenced_table == r.table) {
            candidates.push_back(Candidate{r.slot, u, &fk, false});
          }
        }
      }
    }
    if (candidates.empty()) break;
    const Candidate& pick =
        candidates[rng_.Uniform(0, static_cast<int64_t>(candidates.size()) -
                                       1)];
    // Avoid duplicate table references: self-joins are legal but the §5
    // workload never produced them (FK walks over TPC-H).
    bool already = false;
    for (const Ref& r : refs) {
      if (r.table == pick.other) already = true;
    }
    if (already) continue;
    int32_t new_slot = builder.AddTableId(pick.other);
    refs.push_back(Ref{new_slot, pick.other});
    const ForeignKeyDef& fk = *pick.fk;
    for (size_t k = 0; k < fk.fk_columns.size(); ++k) {
      ColumnRefId fcol{pick.outgoing ? pick.from_slot : new_slot,
                       fk.fk_columns[k]};
      ColumnRefId kcol{pick.outgoing ? new_slot : pick.from_slot,
                       fk.key_columns[k]};
      builder.Where(Expr::MakeCompare(CompareOp::kEq,
                                      Expr::MakeColumn(fcol),
                                      Expr::MakeColumn(kcol)));
    }
  }

  // --- Range predicates until the estimated cardinality lands in the
  // band relative to the largest included table.
  CardinalityEstimator estimator(catalog_);
  int64_t largest = 1;
  for (const Ref& r : refs) {
    largest = std::max(largest, catalog_->table(r.table).row_count());
  }
  const double target_lo = card_lo * static_cast<double>(largest);
  const double target_hi = card_hi * static_cast<double>(largest);
  const double target_mid = 0.5 * (target_lo + target_hi);

  std::vector<std::pair<int32_t, ColumnOrdinal>> ranged_columns;
  for (int i = 0; i < options_.max_predicate_attempts; ++i) {
    SpjgQuery probe = builder.Build();
    double est = estimator.EstimateSpj(probe);
    if (est <= target_hi) break;
    // Pick a rangeable column, weighted by the parameter-file frequencies.
    const Ref& r = refs[rng_.Uniform(0, static_cast<int64_t>(refs.size()) -
                                            1)];
    const TableDef& t = catalog_->table(r.table);
    std::vector<ColumnOrdinal> rangeable;
    std::vector<double> weights;
    for (int c = 0; c < t.num_columns(); ++c) {
      if (IsRangeable(t.column(c))) {
        rangeable.push_back(c);
        weights.push_back(ColumnWeight(t, c));
      }
    }
    if (rangeable.empty()) continue;
    ColumnOrdinal c = rangeable[rng_.Weighted(weights)];
    ranged_columns.emplace_back(r.slot, c);
    // Fraction of the domain this predicate should keep.
    double needed = std::min(1.0, target_mid / est);
    // Widen a little at random so views are not razor-thin.
    needed = std::min(1.0, needed * (0.8 + 0.4 * rng_.NextDouble()));
    ExprPtr col = Expr::MakeColumn(r.slot, c);
    if (rng_.Bernoulli(0.5)) {
      // One-sided: col >= bound keeping `needed` of the domain.
      builder.Where(Expr::MakeCompare(
          CompareOp::kGe, col, Expr::MakeLiteral(MakeBound(t.column(c),
                                                           1.0 - needed))));
    } else {
      double start = rng_.NextDouble() * (1.0 - needed);
      builder.Where(Expr::MakeCompare(
          CompareOp::kGe, col,
          Expr::MakeLiteral(MakeBound(t.column(c), start))));
      builder.Where(Expr::MakeCompare(
          CompareOp::kLe, col,
          Expr::MakeLiteral(MakeBound(t.column(c), start + needed))));
    }
  }

  // --- Random output columns.
  struct OutCol {
    int32_t slot;
    ColumnOrdinal column;
    bool summable;
  };
  std::vector<OutCol> outputs;
  auto add_output = [&](int32_t slot, ColumnOrdinal c) {
    for (const OutCol& o : outputs) {
      if (o.slot == slot && o.column == c) return;
    }
    const TableDef& t = catalog_->table(refs[slot].table);
    outputs.push_back(OutCol{slot, c, IsSummable(t.column(c))});
  };
  for (const Ref& r : refs) {
    const TableDef& t = catalog_->table(r.table);
    for (int c = 0; c < t.num_columns(); ++c) {
      if (static_cast<int>(outputs.size()) >= options_.max_outputs) break;
      const double p = std::min(
          0.9, options_.output_column_prob * ColumnWeight(t, c) / 2.0);
      if (rng_.Bernoulli(p)) {
        add_output(r.slot, static_cast<ColumnOrdinal>(c));
      }
    }
  }
  if (include_ranged_outputs) {
    // Views expose the columns they constrain so compensating range
    // predicates can be applied over their output.
    for (const auto& [slot, c] : ranged_columns) add_output(slot, c);
  }
  if (outputs.empty()) {
    // Guarantee at least one output: the first table's first column.
    outputs.push_back(OutCol{refs[0].slot, 0,
                             IsSummable(catalog_->table(refs[0].table)
                                            .column(0))});
  }

  auto output_name = [&](const OutCol& o, const char* prefix,
                         size_t i) {
    (void)o;
    return std::string(prefix) + std::to_string(i);
  };

  if (!aggregate) {
    for (size_t i = 0; i < outputs.size(); ++i) {
      builder.Output(Expr::MakeColumn(outputs[i].slot, outputs[i].column),
                     output_name(outputs[i], "c", i));
    }
    return builder.Build();
  }

  // --- Aggregation: grouping subset + SUM over remaining numeric
  // columns + count(*).
  std::vector<OutCol> grouping;
  std::vector<OutCol> summed;
  for (const OutCol& o : outputs) {
    if (rng_.Bernoulli(options_.grouping_prob)) {
      grouping.push_back(o);
    } else if (o.summable) {
      summed.push_back(o);
    }
  }
  if (grouping.empty() && summed.empty()) grouping.push_back(outputs[0]);
  for (size_t i = 0; i < grouping.size(); ++i) {
    ExprPtr col = Expr::MakeColumn(grouping[i].slot, grouping[i].column);
    builder.Output(col, output_name(grouping[i], "g", i));
    builder.GroupBy(col);
  }
  builder.SetAggregate();
  builder.Output(Expr::MakeAggregate(AggKind::kCountStar, nullptr), "cnt");
  for (size_t i = 0; i < summed.size(); ++i) {
    builder.Output(
        Expr::MakeAggregate(AggKind::kSum, Expr::MakeColumn(
                                               summed[i].slot,
                                               summed[i].column)),
        output_name(summed[i], "s", i));
  }
  return builder.Build();
}

SpjgQuery WorkloadGenerator::GenerateView() {
  int tables = 1;
  while (tables < options_.max_view_tables &&
         rng_.Bernoulli(options_.fk_join_prob)) {
    ++tables;
  }
  return Generate(tables, options_.view_card_lo, options_.view_card_hi,
                  rng_.Bernoulli(options_.agg_view_fraction),
                  /*include_ranged_outputs=*/true);
}

SpjgQuery WorkloadGenerator::GenerateQuery() {
  return Generate(PickQueryTableCount(), options_.query_card_lo,
                  options_.query_card_hi,
                  rng_.Bernoulli(options_.agg_query_fraction),
                  /*include_ranged_outputs=*/false);
}

void WorkloadGenerator::AttachDefaultIndexes(ViewDefinition* view) {
  const SpjgQuery& q = view->query();
  IndexDef clustered;
  clustered.name = view->name() + "_cidx";
  if (q.is_aggregate) {
    // Grouping outputs form the unique key.
    for (size_t i = 0; i < q.outputs.size(); ++i) {
      for (const auto& g : q.group_by) {
        if (q.outputs[i].expr->Equals(*g)) {
          clustered.key_columns.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    clustered.unique = true;
    if (clustered.key_columns.empty()) {
      // Scalar aggregate: single row; key on the count column.
      clustered.key_columns.push_back(0);
    }
  } else {
    clustered.key_columns.push_back(0);
    clustered.unique = false;
  }
  view->set_clustered_index(clustered);

  if (rng_.Bernoulli(0.3) && q.outputs.size() > 1) {
    IndexDef secondary;
    secondary.name = view->name() + "_sidx";
    secondary.key_columns.push_back(static_cast<int>(
        rng_.Uniform(0, static_cast<int64_t>(q.outputs.size()) - 1)));
    secondary.unique = false;
    view->AddSecondaryIndex(secondary);
  }
}

}  // namespace tpch
}  // namespace mvopt
