#include "tpch/datagen.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mvopt {
namespace tpch {

namespace {

const char* const kWords[] = {"steel",  "brass",  "copper", "linen",
                              "silk",   "cream",  "navy",   "rose",
                              "ivory",  "khaki",  "lemon",  "plum",
                              "smoke",  "snow",   "spring", "misty"};
constexpr int kNumWords = 16;

const char* const kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                 "HOUSEHOLD", "MACHINERY"};
const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                   "4-NOT SPECIFIED", "5-LOW"};
const char* const kModes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};
const char* const kInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                 "TAKE BACK RETURN", "NONE"};

std::string RandomName(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += " ";
    out += kWords[rng->Uniform(0, kNumWords - 1)];
  }
  return out;
}

int64_t Scaled(double sf, int64_t base) {
  int64_t n = static_cast<int64_t>(std::llround(base * sf));
  return n < 1 ? 1 : n;
}

TableData* Storage(Database* db, TableId id) {
  TableData* t = db->table(id);
  return t != nullptr ? t : db->AddTable(id);
}

}  // namespace

void GenerateData(Database* db, const Schema& schema,
                  const DataGenOptions& options) {
  Rng rng(options.seed);
  const double sf = options.scale_factor;

  // region
  TableData* region = Storage(db, schema.region);
  const char* const region_names[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                      "MIDDLE EAST"};
  for (int64_t i = 0; i < 5; ++i) {
    region->AppendRow({Value::Int64(i), Value::String(region_names[i]),
                       Value::String(RandomName(&rng, 4))});
  }

  // nation
  TableData* nation = Storage(db, schema.nation);
  for (int64_t i = 0; i < 25; ++i) {
    nation->AppendRow({Value::Int64(i),
                       Value::String("NATION_" + std::to_string(i)),
                       Value::Int64(i % 5),
                       Value::String(RandomName(&rng, 4))});
  }

  // supplier
  const int64_t n_supplier = Scaled(sf, 10000);
  TableData* supplier = Storage(db, schema.supplier);
  supplier->Reserve(n_supplier);
  for (int64_t i = 1; i <= n_supplier; ++i) {
    supplier->AppendRow(
        {Value::Int64(i), Value::String("Supplier#" + std::to_string(i)),
         Value::String(RandomName(&rng, 2)), Value::Int64(rng.Uniform(0, 24)),
         Value::String("27-" + std::to_string(rng.Uniform(100, 999))),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0),
         Value::String(RandomName(&rng, 5))});
  }

  // part
  const int64_t n_part = Scaled(sf, 200000);
  TableData* part = Storage(db, schema.part);
  part->Reserve(n_part);
  for (int64_t i = 1; i <= n_part; ++i) {
    part->AppendRow(
        {Value::Int64(i), Value::String(RandomName(&rng, 3)),
         Value::String("Manufacturer#" +
                       std::to_string(rng.Uniform(1, 5))),
         Value::String("Brand#" + std::to_string(rng.Uniform(11, 55))),
         Value::String(RandomName(&rng, 2)), Value::Int64(rng.Uniform(1, 50)),
         Value::String(RandomName(&rng, 1)),
         Value::Double((90000 + (i % 2000) * 10) / 100.0),
         Value::String(RandomName(&rng, 4))});
  }

  // partsupp: 4 suppliers per part.
  TableData* partsupp = Storage(db, schema.partsupp);
  partsupp->Reserve(n_part * 4);
  for (int64_t p = 1; p <= n_part; ++p) {
    for (int64_t k = 0; k < 4; ++k) {
      int64_t s = ((p + k * (n_supplier / 4 + 1)) % n_supplier) + 1;
      partsupp->AppendRow({Value::Int64(p), Value::Int64(s),
                           Value::Int64(rng.Uniform(1, 9999)),
                           Value::Double(rng.Uniform(100, 100000) / 100.0),
                           Value::String(RandomName(&rng, 5))});
    }
  }

  // customer
  const int64_t n_customer = Scaled(sf, 150000);
  TableData* customer = Storage(db, schema.customer);
  customer->Reserve(n_customer);
  for (int64_t i = 1; i <= n_customer; ++i) {
    customer->AppendRow(
        {Value::Int64(i), Value::String("Customer#" + std::to_string(i)),
         Value::String(RandomName(&rng, 2)), Value::Int64(rng.Uniform(0, 24)),
         Value::String("13-" + std::to_string(rng.Uniform(100, 999))),
         Value::Double(rng.Uniform(-99999, 999999) / 100.0),
         Value::String(kSegments[rng.Uniform(0, 4)]),
         Value::String(RandomName(&rng, 6))});
  }

  // orders + lineitem
  const int64_t n_orders = Scaled(sf, 1500000);
  TableData* orders = Storage(db, schema.orders);
  TableData* lineitem = Storage(db, schema.lineitem);
  orders->Reserve(n_orders);
  for (int64_t i = 1; i <= n_orders; ++i) {
    const int64_t orderkey = i * 4 - 3;  // sparse keys, like dbgen
    const int64_t orderdate = rng.Uniform(8036, 10591);
    const int64_t custkey = rng.Uniform(1, n_customer);
    const int lines = static_cast<int>(rng.Uniform(1, 7));
    double total = 0;
    for (int ln = 1; ln <= lines; ++ln) {
      const int64_t partkey = rng.Uniform(1, n_part);
      const int64_t slot = rng.Uniform(0, 3);
      const int64_t suppkey =
          ((partkey + slot * (n_supplier / 4 + 1)) % n_supplier) + 1;
      const int64_t quantity = rng.Uniform(1, 50);
      const double extended =
          quantity * ((90000 + (partkey % 2000) * 10) / 100.0);
      total += extended;
      const int64_t shipdate = orderdate + rng.Uniform(1, 121);
      lineitem->AppendRow(
          {Value::Int64(orderkey), Value::Int64(partkey),
           Value::Int64(suppkey), Value::Int64(ln), Value::Int64(quantity),
           Value::Double(extended),
           Value::Double(rng.Uniform(0, 10) / 100.0),
           Value::Double(rng.Uniform(0, 8) / 100.0),
           Value::String(rng.Bernoulli(0.5) ? "N" : "R"),
           Value::String(rng.Bernoulli(0.5) ? "O" : "F"),
           Value::Date(shipdate), Value::Date(shipdate + rng.Uniform(-30, 30)),
           Value::Date(shipdate + rng.Uniform(1, 30)),
           Value::String(kInstruct[rng.Uniform(0, 3)]),
           Value::String(kModes[rng.Uniform(0, 4)]),
           Value::String(RandomName(&rng, 4))});
    }
    orders->AppendRow(
        {Value::Int64(orderkey), Value::Int64(custkey),
         Value::String(rng.Bernoulli(0.5) ? "O" : "F"), Value::Double(total),
         Value::Date(orderdate), Value::String(kPriorities[rng.Uniform(0, 4)]),
         Value::String("Clerk#" + std::to_string(rng.Uniform(1, 1000))),
         Value::Int64(0), Value::String(RandomName(&rng, 6))});
  }

  if (options.build_primary_indexes) {
    Catalog* catalog = db->catalog();
    for (TableId id :
         {schema.region, schema.nation, schema.supplier, schema.part,
          schema.partsupp, schema.customer, schema.orders, schema.lineitem}) {
      const TableDef& def = catalog->table(id);
      if (!def.unique_keys().empty()) {
        Storage(db, id)->BuildIndex(def.name() + "_pk",
                                    def.unique_keys()[0], true);
      }
    }
  }
  if (options.refresh_statistics) {
    for (TableId id :
         {schema.region, schema.nation, schema.supplier, schema.part,
          schema.partsupp, schema.customer, schema.orders, schema.lineitem}) {
      db->RefreshStatistics(id);
    }
  }
}

}  // namespace tpch
}  // namespace mvopt
