// The §5 random workload generator. Views: random initial table, extra
// tables joined in through foreign-key equijoins, range predicates added
// on random columns until the estimated SPJ cardinality is within 25-75%
// of the largest table included, random output columns, ~75% aggregation
// views (random grouping subset, remaining numerical outputs become SUM
// arguments, plus the mandatory count(*)). Queries: generated the same
// way with a different seed, cardinality tuned to 8-12%, and the paper's
// table-count distribution (2:40%, 3:20%, 4:17%, 5:13%, 6:8%, 7:2%).

#ifndef MVOPT_TPCH_WORKLOAD_H_
#define MVOPT_TPCH_WORKLOAD_H_

#include <cstdint>

#include "common/rng.h"
#include "query/spjg.h"
#include "query/view_def.h"
#include "tpch/schema.h"

namespace mvopt {
namespace tpch {

struct WorkloadOptions {
  double agg_view_fraction = 0.75;
  double agg_query_fraction = 0.5;
  double view_card_lo = 0.25;
  double view_card_hi = 0.75;
  double query_card_lo = 0.08;
  double query_card_hi = 0.12;
  /// Probability a column becomes an output column.
  double output_column_prob = 0.2;
  /// Probability an output column is used for grouping (agg views).
  double grouping_prob = 0.5;
  /// Probability of continuing the FK join walk (views).
  double fk_join_prob = 0.55;
  int max_view_tables = 5;
  int max_outputs = 8;
  int max_predicate_attempts = 12;
};

class WorkloadGenerator {
 public:
  /// Generates over the tables [0, catalog->num_tables()) present at
  /// construction time — construct before materializing views, or use
  /// the table-list overload, so view tables are never drawn as sources.
  WorkloadGenerator(const Catalog* catalog, uint64_t seed,
                    WorkloadOptions options = WorkloadOptions());

  /// Restricts generation to `tables` (e.g. the eight TPC-H ids).
  WorkloadGenerator(const Catalog* catalog, std::vector<TableId> tables,
                    uint64_t seed, WorkloadOptions options = WorkloadOptions());

  /// A random materialized-view definition (always passes
  /// ViewDefinition::Validate).
  SpjgQuery GenerateView();

  /// A random query with the paper's table-count distribution.
  SpjgQuery GenerateQuery();

  /// Attaches a clustered index (grouping key for aggregation views,
  /// first output otherwise) and a random secondary index to `view`.
  void AttachDefaultIndexes(ViewDefinition* view);

  Rng& rng() { return rng_; }

 private:
  SpjgQuery Generate(int num_tables, double card_lo, double card_hi,
                     bool aggregate, bool include_ranged_outputs);
  int PickQueryTableCount();

  const Catalog* catalog_;
  std::vector<TableId> tables_;
  WorkloadOptions options_;
  Rng rng_;
};

}  // namespace tpch
}  // namespace mvopt

#endif  // MVOPT_TPCH_WORKLOAD_H_
