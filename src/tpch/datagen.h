// Synthetic TPC-H data generator: foreign-key consistent rows with
// plausible column domains (the substitute for dbgen — optimization-time
// experiments are data-independent, and the correctness tests only need
// referentially intact data with the schema's value ranges).

#ifndef MVOPT_TPCH_DATAGEN_H_
#define MVOPT_TPCH_DATAGEN_H_

#include <cstdint>

#include "engine/database.h"
#include "tpch/schema.h"

namespace mvopt {
namespace tpch {

struct DataGenOptions {
  double scale_factor = 0.001;  ///< SF 1 = 6M lineitem rows
  uint64_t seed = 20010521;     ///< SIGMOD 2001 :-)
  bool build_primary_indexes = true;
  bool refresh_statistics = true;
};

/// Populates all eight tables in `db` (storage is created if missing).
void GenerateData(Database* db, const Schema& schema,
                  const DataGenOptions& options);

}  // namespace tpch
}  // namespace mvopt

#endif  // MVOPT_TPCH_DATAGEN_H_
