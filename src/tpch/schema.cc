#include "tpch/schema.h"

#include <cmath>

namespace mvopt {
namespace tpch {

namespace {

constexpr bool kNotNull = true;
constexpr bool kNullable = false;

int64_t Scaled(double scale_factor, int64_t base) {
  int64_t n = static_cast<int64_t>(std::llround(base * scale_factor));
  return n < 1 ? 1 : n;
}

void SetIntStats(TableDef* t, ColumnOrdinal c, int64_t lo, int64_t hi,
                 int64_t distinct) {
  ColumnStats& s = t->mutable_column(c).stats;
  s.min = Value::Int64(lo);
  s.max = Value::Int64(hi);
  s.distinct = distinct;
}

}  // namespace

Schema BuildSchema(Catalog* catalog, double scale_factor) {
  Schema s;

  TableDef* region = catalog->CreateTable("region");
  ColumnOrdinal r_regionkey =
      region->AddColumn("r_regionkey", ValueType::kInt64, kNotNull);
  region->AddColumn("r_name", ValueType::kString, kNotNull);
  region->AddColumn("r_comment", ValueType::kString, kNullable);
  region->SetPrimaryKey({r_regionkey});
  region->set_row_count(5);
  SetIntStats(region, r_regionkey, 0, 4, 5);
  s.region = region->id();

  TableDef* nation = catalog->CreateTable("nation");
  ColumnOrdinal n_nationkey =
      nation->AddColumn("n_nationkey", ValueType::kInt64, kNotNull);
  nation->AddColumn("n_name", ValueType::kString, kNotNull);
  ColumnOrdinal n_regionkey =
      nation->AddColumn("n_regionkey", ValueType::kInt64, kNotNull);
  nation->AddColumn("n_comment", ValueType::kString, kNullable);
  nation->SetPrimaryKey({n_nationkey});
  nation->AddForeignKey({{n_regionkey}, s.region, {r_regionkey}});
  nation->set_row_count(25);
  SetIntStats(nation, n_nationkey, 0, 24, 25);
  SetIntStats(nation, n_regionkey, 0, 4, 5);
  s.nation = nation->id();

  const int64_t n_supplier = Scaled(scale_factor, 10000);
  TableDef* supplier = catalog->CreateTable("supplier");
  ColumnOrdinal s_suppkey =
      supplier->AddColumn("s_suppkey", ValueType::kInt64, kNotNull);
  supplier->AddColumn("s_name", ValueType::kString, kNotNull);
  supplier->AddColumn("s_address", ValueType::kString, kNullable);
  ColumnOrdinal s_nationkey =
      supplier->AddColumn("s_nationkey", ValueType::kInt64, kNotNull);
  supplier->AddColumn("s_phone", ValueType::kString, kNullable);
  supplier->AddColumn("s_acctbal", ValueType::kDouble, kNullable);
  supplier->AddColumn("s_comment", ValueType::kString, kNullable);
  supplier->SetPrimaryKey({s_suppkey});
  supplier->AddForeignKey({{s_nationkey}, s.nation, {n_nationkey}});
  supplier->set_row_count(n_supplier);
  SetIntStats(supplier, s_suppkey, 1, n_supplier, n_supplier);
  SetIntStats(supplier, s_nationkey, 0, 24, 25);
  s.supplier = supplier->id();

  const int64_t n_part = Scaled(scale_factor, 200000);
  TableDef* part = catalog->CreateTable("part");
  ColumnOrdinal p_partkey =
      part->AddColumn("p_partkey", ValueType::kInt64, kNotNull);
  part->AddColumn("p_name", ValueType::kString, kNotNull);
  part->AddColumn("p_mfgr", ValueType::kString, kNullable);
  part->AddColumn("p_brand", ValueType::kString, kNullable);
  part->AddColumn("p_type", ValueType::kString, kNullable);
  ColumnOrdinal p_size = part->AddColumn("p_size", ValueType::kInt64,
                                         kNullable);
  part->AddColumn("p_container", ValueType::kString, kNullable);
  part->AddColumn("p_retailprice", ValueType::kDouble, kNullable);
  part->AddColumn("p_comment", ValueType::kString, kNullable);
  part->SetPrimaryKey({p_partkey});
  part->set_row_count(n_part);
  SetIntStats(part, p_partkey, 1, n_part, n_part);
  SetIntStats(part, p_size, 1, 50, 50);
  s.part = part->id();

  const int64_t n_partsupp = Scaled(scale_factor, 800000);
  TableDef* partsupp = catalog->CreateTable("partsupp");
  ColumnOrdinal ps_partkey =
      partsupp->AddColumn("ps_partkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal ps_suppkey =
      partsupp->AddColumn("ps_suppkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal ps_availqty =
      partsupp->AddColumn("ps_availqty", ValueType::kInt64, kNullable);
  partsupp->AddColumn("ps_supplycost", ValueType::kDouble, kNullable);
  partsupp->AddColumn("ps_comment", ValueType::kString, kNullable);
  partsupp->SetPrimaryKey({ps_partkey, ps_suppkey});
  partsupp->AddForeignKey({{ps_partkey}, s.part, {p_partkey}});
  partsupp->AddForeignKey({{ps_suppkey}, s.supplier, {s_suppkey}});
  partsupp->set_row_count(n_partsupp);
  SetIntStats(partsupp, ps_partkey, 1, n_part, n_part);
  SetIntStats(partsupp, ps_suppkey, 1, n_supplier, n_supplier);
  SetIntStats(partsupp, ps_availqty, 1, 9999, 9999);
  s.partsupp = partsupp->id();

  const int64_t n_customer = Scaled(scale_factor, 150000);
  TableDef* customer = catalog->CreateTable("customer");
  ColumnOrdinal c_custkey =
      customer->AddColumn("c_custkey", ValueType::kInt64, kNotNull);
  customer->AddColumn("c_name", ValueType::kString, kNotNull);
  customer->AddColumn("c_address", ValueType::kString, kNullable);
  ColumnOrdinal c_nationkey =
      customer->AddColumn("c_nationkey", ValueType::kInt64, kNotNull);
  customer->AddColumn("c_phone", ValueType::kString, kNullable);
  customer->AddColumn("c_acctbal", ValueType::kDouble, kNullable);
  customer->AddColumn("c_mktsegment", ValueType::kString, kNullable);
  customer->AddColumn("c_comment", ValueType::kString, kNullable);
  customer->SetPrimaryKey({c_custkey});
  customer->AddForeignKey({{c_nationkey}, s.nation, {n_nationkey}});
  customer->set_row_count(n_customer);
  SetIntStats(customer, c_custkey, 1, n_customer, n_customer);
  SetIntStats(customer, c_nationkey, 0, 24, 25);
  s.customer = customer->id();

  const int64_t n_orders = Scaled(scale_factor, 1500000);
  TableDef* orders = catalog->CreateTable("orders");
  ColumnOrdinal o_orderkey =
      orders->AddColumn("o_orderkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal o_custkey =
      orders->AddColumn("o_custkey", ValueType::kInt64, kNotNull);
  orders->AddColumn("o_orderstatus", ValueType::kString, kNullable);
  orders->AddColumn("o_totalprice", ValueType::kDouble, kNullable);
  ColumnOrdinal o_orderdate =
      orders->AddColumn("o_orderdate", ValueType::kDate, kNotNull);
  orders->AddColumn("o_orderpriority", ValueType::kString, kNullable);
  orders->AddColumn("o_clerk", ValueType::kString, kNullable);
  orders->AddColumn("o_shippriority", ValueType::kInt64, kNullable);
  orders->AddColumn("o_comment", ValueType::kString, kNullable);
  orders->SetPrimaryKey({o_orderkey});
  orders->AddForeignKey({{o_custkey}, s.customer, {c_custkey}});
  orders->set_row_count(n_orders);
  SetIntStats(orders, o_orderkey, 1, n_orders * 4, n_orders);
  SetIntStats(orders, o_custkey, 1, n_customer, n_customer);
  SetIntStats(orders, o_orderdate, 8036, 10591, 2400);  // 1992..1998
  s.orders = orders->id();

  const int64_t n_lineitem = Scaled(scale_factor, 6000000);
  TableDef* lineitem = catalog->CreateTable("lineitem");
  ColumnOrdinal l_orderkey =
      lineitem->AddColumn("l_orderkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal l_partkey =
      lineitem->AddColumn("l_partkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal l_suppkey =
      lineitem->AddColumn("l_suppkey", ValueType::kInt64, kNotNull);
  ColumnOrdinal l_linenumber =
      lineitem->AddColumn("l_linenumber", ValueType::kInt64, kNotNull);
  ColumnOrdinal l_quantity =
      lineitem->AddColumn("l_quantity", ValueType::kInt64, kNullable);
  lineitem->AddColumn("l_extendedprice", ValueType::kDouble, kNullable);
  lineitem->AddColumn("l_discount", ValueType::kDouble, kNullable);
  lineitem->AddColumn("l_tax", ValueType::kDouble, kNullable);
  lineitem->AddColumn("l_returnflag", ValueType::kString, kNullable);
  lineitem->AddColumn("l_linestatus", ValueType::kString, kNullable);
  ColumnOrdinal l_shipdate =
      lineitem->AddColumn("l_shipdate", ValueType::kDate, kNullable);
  ColumnOrdinal l_commitdate =
      lineitem->AddColumn("l_commitdate", ValueType::kDate, kNullable);
  lineitem->AddColumn("l_receiptdate", ValueType::kDate, kNullable);
  lineitem->AddColumn("l_shipinstruct", ValueType::kString, kNullable);
  lineitem->AddColumn("l_shipmode", ValueType::kString, kNullable);
  lineitem->AddColumn("l_comment", ValueType::kString, kNullable);
  lineitem->SetPrimaryKey({l_orderkey, l_linenumber});
  lineitem->AddForeignKey({{l_orderkey}, s.orders, {o_orderkey}});
  lineitem->AddForeignKey({{l_partkey}, s.part, {p_partkey}});
  lineitem->AddForeignKey({{l_suppkey}, s.supplier, {s_suppkey}});
  lineitem->AddForeignKey(
      {{l_partkey, l_suppkey}, s.partsupp, {ps_partkey, ps_suppkey}});
  lineitem->set_row_count(n_lineitem);
  SetIntStats(lineitem, l_orderkey, 1, n_orders * 4, n_orders);
  SetIntStats(lineitem, l_partkey, 1, n_part, n_part);
  SetIntStats(lineitem, l_suppkey, 1, n_supplier, n_supplier);
  SetIntStats(lineitem, l_linenumber, 1, 7, 7);
  SetIntStats(lineitem, l_quantity, 1, 50, 50);
  SetIntStats(lineitem, l_shipdate, 8036, 10713, 2522);
  SetIntStats(lineitem, l_commitdate, 8036, 10713, 2522);
  s.lineitem = lineitem->id();

  return s;
}

}  // namespace tpch
}  // namespace mvopt
