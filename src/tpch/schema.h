// TPC-H/R schema used by all examples and by the §5 experiments: the
// eight standard tables with primary keys, foreign keys and not-null
// constraints — exactly the constraint classes the view-matching
// algorithm exploits.

#ifndef MVOPT_TPCH_SCHEMA_H_
#define MVOPT_TPCH_SCHEMA_H_

#include "catalog/catalog.h"

namespace mvopt {
namespace tpch {

/// Table ids of the eight TPC-H tables inside a Catalog.
struct Schema {
  TableId region = kInvalidTableId;
  TableId nation = kInvalidTableId;
  TableId supplier = kInvalidTableId;
  TableId part = kInvalidTableId;
  TableId partsupp = kInvalidTableId;
  TableId customer = kInvalidTableId;
  TableId orders = kInvalidTableId;
  TableId lineitem = kInvalidTableId;
};

/// Creates the TPC-H tables in `catalog` and returns their ids. Row-count
/// statistics are initialized for `scale_factor` (SF 1 = 6M lineitems);
/// the data generator refines column statistics when it populates data.
Schema BuildSchema(Catalog* catalog, double scale_factor = 0.01);

}  // namespace tpch
}  // namespace mvopt

#endif  // MVOPT_TPCH_SCHEMA_H_
