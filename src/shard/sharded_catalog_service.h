// ShardedCatalogService: the catalog and matching state split into
// independent failure domains (DESIGN.md §14). Each shard owns its own
// MatchingService (filter-tree segment, lifecycle slice) and its own
// CatalogStore (WAL + snapshot at <dir>/shard_<i>), routed by the
// ShardRouter's table-signature rule, so
//
//   - crash recovery runs the shards in parallel (RecoverAll over a
//     ThreadPool) and a shard that fails CRC / replay / invariant audit
//     is QUARANTINED, not fatal: probes proceed over the healthy shards
//     and carry the sticky DegradationReason::kPartialCatalog advisory,
//   - a background scrubber (ScrubTick, exponential backoff) rebuilds
//     quarantined shards from their stores and readmits them without a
//     restart, and
//   - the blast radius of one corrupt WAL or snapshot is one shard's
//     views, never the whole catalog.
//
// Id space: a shard hands out dense local ids; the service exposes the
// stable composite global id  global = local * num_shards + shard.
// Decoding is arithmetic (shard = global % N, local = global / N), so
// remapping needs no table, is race-free, and survives any interleaving
// of per-shard registrations. Plan text is unaffected: the optimizer
// renders view *names* (PhysPlan::view_name), which is what makes
// sharded and unsharded plans byte-comparable.
//
// Merge determinism: FindSubstitutes visits the routed shards in
// ascending shard order, reusing the caller's QueryContext serially (the
// budget accumulates across shards exactly as it would across candidates
// within one service), and concatenates fresh (staleness_lag == 0)
// substitutes before tolerated-stale ones globally — the same order
// contract a single MatchingService keeps.
//
// Lock protocol (DESIGN.md §15): probes are lock-free at this layer
// too. Each shard publishes its current MatchingService through an
// atomic `live` pointer; probes (FindSubstitutes / FindUnionSubstitute /
// ResolveView / stats) load it with acquire and call straight through —
// the pointed-to service synchronizes probes internally with its own
// snapshot pin, so the probe path acquires zero shared locks end to
// end. Writers (AddView delegation, recovery/scrub swap, checkpoint,
// revalidation) serialize on the shard's writer mutex, which guards the
// owning `service` unique_ptr; a swap publishes the replacement into
// `live` before flipping health. Scrub-retired services are kept alive
// on retired_ for the service's lifetime, so a probe that loaded `live`
// just before a swap (or a ResolveView reference handed out long ago)
// never dangles. admin_mu_ guards the scrub / quarantine bookkeeping
// and is never held across a shard-service call.
//
// Failpoint sites (common/failpoint.h; crash-killed at every one by
// tools/ci/run_crash_recovery.sh):
//   catalog_shard.recover          per-shard recovery task entry
//   catalog_shard.add_route        after routing, before delegation
//   catalog_shard.checkpoint       per-shard checkpoint entry
//   catalog_shard.scrub_swap       shard rebuilt, before the swap
//   catalog_shard.scrub_checkpoint readmitted, before the repair snapshot

#ifndef MVOPT_SHARD_SHARDED_CATALOG_SERVICE_H_
#define MVOPT_SHARD_SHARDED_CATALOG_SERVICE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/enum_coverage.h"
#include "common/epoch.h"
#include "common/mutex.h"
#include "common/query_context.h"
#include "common/thread_annotations.h"
#include "index/matching_service.h"
#include "observe/observe.h"
#include "rewrite/catalog_store.h"
#include "rewrite/substitute_source.h"
#include "shard/shard_router.h"

namespace mvopt {

class ThreadPool;

enum class ShardHealth {
  kHealthy = 0,     ///< serving probes and registrations
  kQuarantined,     ///< sidelined; probes skip it, scrubber retries it
};

inline constexpr int kNumShardHealths = 2;
static_assert(static_cast<int>(ShardHealth::kQuarantined) + 1 ==
                  kNumShardHealths,
              "kNumShardHealths must cover every ShardHealth");

constexpr const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kQuarantined:
      return "quarantined";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<ShardHealth, ShardHealthName>(
                  kNumShardHealths),
              "every ShardHealth needs a ShardHealthName entry");

/// Why a shard was taken out of service. Machine-readable so recovery
/// tooling asserts on the cause, never on free-form detail strings.
enum class ShardQuarantineCause {
  kNone = 0,         ///< healthy
  kSnapshotCorrupt,  ///< snapshot failed its structural/CRC checks
  kWalCorrupt,       ///< WAL truncation treated as corruption (opt-in)
  kReplayFailed,     ///< durable entries could not be rebuilt
  kAuditFailed,      ///< post-replay invariant audit found violations
  kIoError,          ///< store I/O failure during recovery
  kFailpoint,        ///< injected fault (chaos / crash tests)
  kForced,           ///< administrative ForceQuarantine
};

inline constexpr int kNumShardQuarantineCauses = 8;
static_assert(static_cast<int>(ShardQuarantineCause::kForced) + 1 ==
                  kNumShardQuarantineCauses,
              "kNumShardQuarantineCauses must cover every cause");

constexpr const char* ShardQuarantineCauseName(ShardQuarantineCause cause) {
  switch (cause) {
    case ShardQuarantineCause::kNone:
      return "none";
    case ShardQuarantineCause::kSnapshotCorrupt:
      return "snapshot-corrupt";
    case ShardQuarantineCause::kWalCorrupt:
      return "wal-corrupt";
    case ShardQuarantineCause::kReplayFailed:
      return "replay-failed";
    case ShardQuarantineCause::kAuditFailed:
      return "audit-failed";
    case ShardQuarantineCause::kIoError:
      return "io-error";
    case ShardQuarantineCause::kFailpoint:
      return "failpoint";
    case ShardQuarantineCause::kForced:
      return "forced";
  }
  return "?";
}

static_assert(
    AllEnumeratorsNamed<ShardQuarantineCause, ShardQuarantineCauseName>(
        kNumShardQuarantineCauses),
    "every ShardQuarantineCause needs a ShardQuarantineCauseName entry");

/// Machine-readable outcome of one RecoverAll pass: every shard's
/// verdict plus its store-level RecoveryReport.
struct ShardRecoveryReport {
  struct ShardOutcome {
    int shard = 0;
    ShardHealth health = ShardHealth::kHealthy;
    ShardQuarantineCause cause = ShardQuarantineCause::kNone;
    std::string detail;          ///< human detail for a quarantine
    double recovery_seconds = 0;  ///< wall clock of this shard's task
    RecoveryReport report;        ///< per-shard store recovery outcome
  };

  std::vector<ShardOutcome> shards;

  bool all_healthy() const {
    for (const auto& s : shards) {
      if (s.health != ShardHealth::kHealthy) return false;
    }
    return true;
  }
  int num_quarantined() const {
    int n = 0;
    for (const auto& s : shards) {
      if (s.health == ShardHealth::kQuarantined) ++n;
    }
    return n;
  }
  std::string ToJson() const;
};

/// Structural validation of ShardRecoveryReport::ToJson (same pattern as
/// ValidateRecoveryReportJson): well-formed JSON, every mandatory key
/// present, and every health / cause value a known enumerator name.
bool ValidateShardRecoveryReportJson(const std::string& json,
                                     std::string* error);

struct ShardedCatalogOptions {
  /// Failure domains (clamped to >= 1; 1 degenerates to an unsharded
  /// catalog behind the same interface).
  int num_shards = 4;
  /// Durability root: shard i persists at <dir>/shard_<i>. Empty = no
  /// durability (in-memory shards; RecoverAll is then a no-op rebuild).
  std::string dir;
  /// Applied to every shard's MatchingService (verify mode, quarantine
  /// thresholds, observe...).
  MatchingService::Options service;
  /// Run the InvariantAuditor over each shard's filter tree after
  /// replay; violations quarantine the shard (kAuditFailed).
  bool audit_after_recovery = true;
  /// Treat a truncated torn WAL tail as shard-level corruption
  /// (kWalCorrupt). Off by default: a torn tail is the *expected*
  /// artifact of a crash mid-append and recovery repairs it; flip this
  /// on when any truncation is suspicious (e.g. bit-rot scans).
  bool quarantine_on_wal_truncation = false;
  /// Scrub circuit breaker: a failed repair attempt doubles the wait
  /// (in ScrubTick calls) before the next one, within this window.
  int scrub_backoff_initial_ticks = 1;
  int scrub_backoff_max_ticks = 64;
  /// Shard-level observability (quarantine gauge, scrub counters,
  /// per-shard recovery-latency histograms). Independent of
  /// service.observe, which instruments the per-shard pipelines.
  ObserveOptions observe;
};

class ShardedCatalogService : public SubstituteSource {
 public:
  ShardedCatalogService(const Catalog* catalog, ShardedCatalogOptions options);
  ~ShardedCatalogService() override;

  ShardedCatalogService(const ShardedCatalogService&) = delete;
  ShardedCatalogService& operator=(const ShardedCatalogService&) = delete;

  // --- registration -------------------------------------------------------

  /// Validates, routes and registers a view on its owning shard; returns
  /// the composite global id, or kInvalidViewId with *error set. Fails
  /// (rather than silently rehoming) when the owning shard is
  /// quarantined: a view registered elsewhere would violate the routing
  /// invariant and become unreachable after readmission. Also fails —
  /// before touching the shard — when the composite id the registration
  /// would produce does not fit the ViewId type (ComposeGlobalId), so
  /// the id codec can never silently wrap near the id-type max.
  ViewId AddView(const std::string& name, SpjgQuery definition,
                 std::string* error = nullptr);

  // --- SubstituteSource ---------------------------------------------------

  /// Probes the routed shards in ascending shard order with the caller's
  /// context (serially — the budget accrues across shards), remaps local
  /// ids to global, and keeps fresh substitutes ahead of tolerated-stale
  /// ones globally. A routed-but-quarantined shard records the sticky
  /// kPartialCatalog advisory and is skipped.
  std::vector<Substitute> FindSubstitutes(const SpjgQuery& query,
                                          QueryContext& ctx) override;

  /// First union substitute found over the routed healthy shards, legs
  /// remapped to global ids. Legs never span shards (each shard only
  /// sees its own partitions) — a known sharding trade-off, documented
  /// in DESIGN.md §14. Quarantined routed shards record kPartialCatalog.
  std::optional<UnionSubstitute> FindUnionSubstitute(
      const SpjgQuery& query, QueryContext& ctx) override;

  /// Resolves a composite global id. References stay valid across scrub
  /// swaps (replaced shard services are retired, not destroyed, for the
  /// lifetime of this object).
  const ViewDefinition& ResolveView(ViewId id) const override;

  // --- recovery / durability ----------------------------------------------

  /// Parallel startup recovery: one task per shard on `pool` (null =
  /// serial), each replaying its own snapshot + WAL and auditing the
  /// rebuilt filter tree. A shard that fails is quarantined with a
  /// machine-readable cause; the rest come up and serve. Never throws.
  ShardRecoveryReport RecoverAll(ThreadPool* pool = nullptr);

  /// Checkpoints every healthy shard, isolating per-shard failures (the
  /// per-shard snapshot protocol is atomic, so a shard whose checkpoint
  /// faults keeps its WAL and stays healthy). Returns shards
  /// checkpointed.
  int CheckpointAll();

  /// One scrubber pass: for each quarantined shard past its backoff,
  /// rebuild a fresh service from the store, re-audit, and swap it in
  /// under the shard's writer lock. Returns the number readmitted; a
  /// failed attempt doubles the shard's backoff (circuit breaker).
  int ScrubTick();

  /// Administrative quarantine (operators, chaos tests, the crash
  /// driver's scrub-site arming). Resets the scrub backoff so the next
  /// ScrubTick retries immediately.
  void ForceQuarantine(int shard, ShardQuarantineCause cause,
                       const std::string& detail);

  /// Next circuit-breaker window after a failed repair attempt: doubles
  /// the current window within [initial_ticks, max_ticks]. Clamps
  /// *before* doubling, so the progression saturates at max_ticks
  /// instead of overflowing int — under the old multiply-then-clamp a
  /// long run of consecutive failures with a large configured max would
  /// shift the window past INT_MAX into undefined behavior (in practice
  /// a negative window, which disables the backoff entirely). Pure;
  /// exposed for the regression test in tests/shard_test.cc.
  static int NextScrubBackoffWindow(int current, int initial_ticks,
                                    int max_ticks);

  // --- routing / health ---------------------------------------------------

  const ShardRouter& router() const { return router_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::vector<int> RouteShards(const SpjgQuery& query) const {
    return router_.RouteQuery(query);
  }
  /// True when any shard this query routes to is quarantined — the
  /// admission-layer hook behind PartialCatalogPolicy::kShed.
  bool AnyRoutedUnhealthy(const SpjgQuery& query) const;

  ShardHealth shard_health(int shard) const {
    return shards_[static_cast<size_t>(shard)]->health.load(
        std::memory_order_acquire);
  }
  ShardQuarantineCause shard_quarantine_cause(int shard) const;

  // --- lifecycle forwarding -----------------------------------------------

  /// Wires base-table epochs into every shard (and every future
  /// scrub-rebuilt shard service). The clock must outlive the service.
  void set_epoch_clock(const TableEpochClock* clock);

  /// One revalidation tick across all healthy shards; returns the total
  /// number of views readmitted.
  int RevalidationTickAll(
      const std::function<bool(const ViewDefinition&)>& validate);

  /// Aggregated probe / verification statistics across shards.
  MatchingStats stats() const;
  VerifyStats verify_stats() const;

  // --- id codec -----------------------------------------------------------

  /// Checked composition: nullopt when local * num_shards + shard would
  /// exceed the ViewId range. AddView rejects a registration whose id
  /// would not compose, so GlobalId below never wraps in practice.
  std::optional<ViewId> ComposeGlobalId(int shard, ViewId local) const;

  ViewId GlobalId(int shard, ViewId local) const {
    return local * static_cast<ViewId>(shards_.size()) +
           static_cast<ViewId>(shard);
  }
  int ShardOfId(ViewId global) const {
    return static_cast<int>(global % static_cast<ViewId>(shards_.size()));
  }
  ViewId LocalId(ViewId global) const {
    return global / static_cast<ViewId>(shards_.size());
  }

  // --- test accessors (single-threaded use only) --------------------------

  /// The shard's live service / store. Reads the atomic live pointer, so
  /// it is safe from any thread; the reference stays valid across scrub
  /// swaps (retired services are kept alive for this object's lifetime),
  /// though after a swap it names the replaced generation.
  MatchingService& shard_service(int shard) {
    return *shards_[static_cast<size_t>(shard)]->live.load(
        std::memory_order_acquire);
  }
  CatalogStore* shard_store(int shard) {
    return shards_[static_cast<size_t>(shard)]->store.get();
  }

 private:
  struct Shard {
    /// Serializes writers: AddView delegation, the recovery/scrub swap,
    /// checkpoint and revalidation. Probes never take it — they go
    /// through the atomic `live` pointer below.
    mutable Mutex writer_mu;
    /// The owning pointer (current generation). Written only under
    /// writer_mu; probes must not touch it.
    std::unique_ptr<MatchingService> service MVOPT_GUARDED_BY(writer_mu);
    /// Lock-free probe access to the current service. Always equals
    /// service.get() after construction; a swap stores the replacement
    /// here (release) before flipping health. Loading a stale value is
    /// benign: replaced services are retired, never destroyed.
    std::atomic<MatchingService*> live{nullptr};
    /// Stable address, internally synchronized; null when dir is empty.
    std::unique_ptr<CatalogStore> store;
    std::atomic<ShardHealth> health{ShardHealth::kHealthy};
  };

  /// Scrub / quarantine bookkeeping (guarded by admin_mu_, separate from
  /// the per-shard service locks; admin_mu_ is never held across a
  /// shard-service call).
  struct ShardAdmin {
    ShardQuarantineCause cause = ShardQuarantineCause::kNone;
    std::string detail;
    int backoff_remaining = 0;  ///< ScrubTicks to skip before retrying
    int backoff_window = 0;     ///< current circuit-breaker window
  };

  /// Recovery of one shard: replay + audit into a fresh service, then
  /// swap it in or quarantine. Never throws (tasks run on a pool).
  void RecoverShard(int shard, ShardRecoveryReport::ShardOutcome* outcome);
  /// Applies a quarantine verdict to shard bookkeeping + metrics.
  void Quarantine(int shard, ShardQuarantineCause cause,
                  const std::string& detail) MVOPT_EXCLUDES(admin_mu_);
  /// Publishes a rebuilt service and marks the shard healthy.
  void Readmit(int shard, std::unique_ptr<MatchingService> fresh)
      MVOPT_EXCLUDES(admin_mu_);
  /// Audits a rebuilt (not yet published) shard service; empty string =
  /// pass.
  std::string AuditShard(MatchingService& service) const;
  void RegisterMetrics();
  void UpdateQuarantineGauge();

  const Catalog* catalog_;
  ShardedCatalogOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable Mutex admin_mu_;
  std::vector<ShardAdmin> admin_ MVOPT_GUARDED_BY(admin_mu_);
  /// Scrub-replaced services, kept alive so ResolveView references
  /// handed out before a swap never dangle.
  std::vector<std::unique_ptr<MatchingService>> retired_
      MVOPT_GUARDED_BY(admin_mu_);
  const TableEpochClock* epochs_ MVOPT_GUARDED_BY(admin_mu_) = nullptr;

  /// Cached registry instruments; all null when counters are off.
  struct ShardMetrics {
    Gauge* quarantined = nullptr;
    Counter* scrub_attempts = nullptr;
    Counter* scrub_repairs = nullptr;
    Counter* readmissions = nullptr;
    Counter* partial_probes = nullptr;
    std::vector<Histogram*> recovery_latency;  ///< one per shard
  };
  ShardMetrics metrics_;
};

}  // namespace mvopt

#endif  // MVOPT_SHARD_SHARDED_CATALOG_SERVICE_H_
