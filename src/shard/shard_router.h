// Table-signature routing for the sharded catalog (DESIGN.md §14).
//
// Shard assignment exploits the filter tree's own necessary condition
// (§4.2.2): a view can substitute into a query only if its hub — the
// tables that cannot be eliminated by cardinality-preserving joins — is
// a subset of the query's table set. So a view is owned by the shard of
// its *anchor* table, min(hub), and a probe only needs to visit the
// shards of the query's own tables: if hub(view) ⊆ tables(query) then
// anchor(view) ∈ tables(query), so the owning shard is among the probed
// ones. Views with an empty hub (every table eliminable) match queries
// over arbitrary table sets, so they live in shard 0 — the *universal
// shard* — which every probe visits unconditionally.
//
// The map from table to shard is a plain modulus: deterministic across
// runs (recovery must route a replayed view to the shard whose WAL holds
// it) and independent of catalog content. Routing never consults shard
// health — the router answers "where would it live", the service decides
// what to do about a quarantined owner.

#ifndef MVOPT_SHARD_SHARD_ROUTER_H_
#define MVOPT_SHARD_SHARD_ROUTER_H_

#include <algorithm>
#include <vector>

#include "catalog/catalog.h"
#include "query/spjg.h"
#include "query/view_def.h"
#include "rewrite/view_description.h"

namespace mvopt {

class ShardRouter {
 public:
  ShardRouter(const Catalog* catalog, int num_shards)
      : catalog_(catalog), num_shards_(num_shards < 1 ? 1 : num_shards) {}

  int num_shards() const { return num_shards_; }

  /// Shard that owns views anchored at `table`.
  int ShardOfTable(TableId table) const {
    return static_cast<int>(static_cast<uint32_t>(table) %
                            static_cast<uint32_t>(num_shards_));
  }

  /// Shard that owns a view with this definition: the shard of its
  /// anchor table min(hub), or the universal shard 0 when the hub is
  /// empty. Deterministic — the same definition always routes to the
  /// same shard, which is what lets per-shard WALs replay independently.
  int RouteView(const SpjgQuery& definition) const {
    // DescribeView computes the §4.2.2 hub; the throwaway id/name do not
    // influence it.
    const ViewDefinition probe(kInvalidViewId, "", definition);
    const ViewDescription desc = DescribeView(*catalog_, probe);
    if (desc.hub.empty()) return 0;
    // hub is sorted unique, so the anchor is its first element.
    return ShardOfTable(desc.hub.front());
  }

  /// Shards a probe for `query` must visit: the shards of the query's
  /// tables plus the universal shard, ascending and duplicate-free.
  /// Sound by the routing invariant above; complete because no other
  /// shard can hold a view whose hub is covered by this query.
  std::vector<int> RouteQuery(const SpjgQuery& query) const {
    std::vector<int> shards;
    shards.reserve(query.tables.size() + 1);
    shards.push_back(0);  // universal shard: empty-hub views
    for (const TableRef& ref : query.tables) {
      shards.push_back(ShardOfTable(ref.table));
    }
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    return shards;
  }

 private:
  const Catalog* catalog_;
  int num_shards_;
};

}  // namespace mvopt

#endif  // MVOPT_SHARD_SHARD_ROUTER_H_
