#include "shard/sharded_catalog_service.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <iterator>
#include <limits>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "observe/metrics.h"
#include "verify/invariant_auditor.h"

namespace mvopt {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

}  // namespace

// --- report --------------------------------------------------------------

std::string ShardRecoveryReport::ToJson() const {
  std::string j = "{";
  j += "\"num_shards\":" + std::to_string(shards.size());
  j += ",\"all_healthy\":" + std::string(all_healthy() ? "true" : "false");
  j += ",\"quarantined_shards\":" + std::to_string(num_quarantined());
  j += ",\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardOutcome& s = shards[i];
    if (i > 0) j += ",";
    j += "{\"shard\":" + std::to_string(s.shard);
    j += ",\"health\":\"" + std::string(ShardHealthName(s.health)) + "\"";
    j += ",\"cause\":\"" + std::string(ShardQuarantineCauseName(s.cause)) +
         "\"";
    j += ",\"detail\":\"" + JsonEscape(s.detail) + "\"";
    j += ",\"recovery_seconds\":" + FormatSeconds(s.recovery_seconds);
    j += ",\"report\":" + s.report.ToJson();
    j += "}";
  }
  j += "]}";
  return j;
}

bool ValidateShardRecoveryReportJson(const std::string& json,
                                     std::string* error) {
  if (!ValidateJson(json, error)) return false;
  static constexpr const char* kRequiredKeys[] = {
      "\"num_shards\":", "\"all_healthy\":", "\"quarantined_shards\":",
      "\"shards\":",
  };
  for (const char* key : kRequiredKeys) {
    if (json.find(key) == std::string::npos) {
      if (error != nullptr) {
        *error = std::string("missing mandatory key ") + key;
      }
      return false;
    }
  }
  // Every "health" value must be a known ShardHealth name.
  size_t pos = 0;
  while ((pos = json.find("\"health\":\"", pos)) != std::string::npos) {
    pos += 10;
    const size_t end = json.find('"', pos);
    if (end == std::string::npos) break;
    const std::string health = json.substr(pos, end - pos);
    bool known = false;
    for (int i = 0; i < kNumShardHealths; ++i) {
      if (health == ShardHealthName(static_cast<ShardHealth>(i))) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) *error = "unknown shard health: " + health;
      return false;
    }
    pos = end;
  }
  // Every "cause" value must come from a known machine-readable set —
  // shard-level causes, or entry-level ones inside the embedded
  // per-shard RecoveryReports.
  pos = 0;
  while ((pos = json.find("\"cause\":\"", pos)) != std::string::npos) {
    pos += 9;
    const size_t end = json.find('"', pos);
    if (end == std::string::npos) break;
    const std::string cause = json.substr(pos, end - pos);
    bool known = false;
    for (int i = 0; i < kNumShardQuarantineCauses; ++i) {
      if (cause ==
          ShardQuarantineCauseName(static_cast<ShardQuarantineCause>(i))) {
        known = true;
        break;
      }
    }
    for (int i = 0; !known && i < kNumEntryQuarantineCauses; ++i) {
      if (cause ==
          EntryQuarantineCauseName(static_cast<EntryQuarantineCause>(i))) {
        known = true;
      }
    }
    if (!known) {
      if (error != nullptr) *error = "unknown quarantine cause: " + cause;
      return false;
    }
    pos = end;
  }
  return true;
}

// --- service -------------------------------------------------------------

ShardedCatalogService::ShardedCatalogService(const Catalog* catalog,
                                             ShardedCatalogOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      router_(catalog, options_.num_shards < 1 ? 1 : options_.num_shards) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (!options_.dir.empty()) {
      shard->store = std::make_unique<CatalogStore>(options_.dir + "/shard_" +
                                                    std::to_string(i));
    }
    {
      MutexLock lock(shard->writer_mu);
      shard->service =
          std::make_unique<MatchingService>(catalog_, options_.service);
      if (shard->store != nullptr) {
        shard->service->AttachStore(shard->store.get());
      }
      shard->live.store(shard->service.get(), std::memory_order_release);
    }
    shards_.push_back(std::move(shard));
  }
  {
    MutexLock lock(admin_mu_);
    admin_.resize(shards_.size());
  }
  RegisterMetrics();
}

ShardedCatalogService::~ShardedCatalogService() = default;

void ShardedCatalogService::RegisterMetrics() {
  if (!options_.observe.counters_enabled()) return;
  MetricsRegistry* reg = options_.observe.registry;
  metrics_.quarantined = reg->FindOrCreateGauge(
      "mvopt_shard_quarantined", "Catalog shards currently quarantined");
  metrics_.scrub_attempts = reg->FindOrCreateCounter(
      "mvopt_shard_scrub_attempts_total",
      "Scrubber rebuild attempts on quarantined shards");
  metrics_.scrub_repairs = reg->FindOrCreateCounter(
      "mvopt_shard_scrub_repairs_total",
      "Repair checkpoints written after a shard readmission");
  metrics_.readmissions = reg->FindOrCreateCounter(
      "mvopt_shard_readmissions_total",
      "Quarantined shards returned to service by the scrubber");
  metrics_.partial_probes = reg->FindOrCreateCounter(
      "mvopt_shard_partial_probes_total",
      "Probes that skipped at least one quarantined routed shard");
  metrics_.recovery_latency.resize(shards_.size(), nullptr);
  for (size_t i = 0; i < shards_.size(); ++i) {
    metrics_.recovery_latency[i] = reg->FindOrCreateHistogram(
        "mvopt_shard_recovery_latency_seconds",
        "Per-shard recovery task wall clock",
        {{"shard", std::to_string(i)}});
  }
}

void ShardedCatalogService::UpdateQuarantineGauge() {
  if (metrics_.quarantined == nullptr) return;
  int64_t n = 0;
  for (const auto& shard : shards_) {
    if (shard->health.load(std::memory_order_acquire) ==
        ShardHealth::kQuarantined) {
      ++n;
    }
  }
  metrics_.quarantined->Set(n);
}

ViewId ShardedCatalogService::AddView(const std::string& name,
                                      SpjgQuery definition,
                                      std::string* error) {
  // Validate before routing: DescribeView assumes a well-formed view, so
  // rejection must happen first (same order a single service uses).
  if (auto why = ViewDefinition::Validate(definition)) {
    if (error != nullptr) *error = *why;
    return kInvalidViewId;
  }
  int shard_idx = 0;
  try {
    shard_idx = router_.RouteView(definition);
    MVOPT_FAILPOINT("catalog_shard.add_route");
  } catch (const FailpointTriggered& e) {
    if (error != nullptr) *error = e.what();
    return kInvalidViewId;
  }
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  // Registrations are writes at this layer: hold the shard's writer
  // mutex so the health verdict, the id-overflow check and the
  // delegation are atomic with respect to a concurrent scrub swap.
  MutexLock lock(shard.writer_mu);
  if (shard.health.load(std::memory_order_acquire) != ShardHealth::kHealthy) {
    // Registering elsewhere would break the routing invariant (the view
    // would be invisible to probes after the owner is readmitted), so
    // the owner's quarantine is a registration failure.
    if (error != nullptr) {
      *error = "owning shard " + std::to_string(shard_idx) +
               " is quarantined (" +
               ShardQuarantineCauseName(shard_quarantine_cause(shard_idx)) +
               ")";
    }
    return kInvalidViewId;
  }
  // Shards hand out dense local ids, so the id this registration would
  // get is the shard's current view count. Reject BEFORE delegating when
  // the composite id would not fit ViewId: otherwise GlobalId would wrap
  // (signed overflow, UB) and the view, though registered, would be
  // unreachable — or worse, alias another shard's id.
  const ViewId predicted_local = shard.service->views().num_views();
  std::optional<ViewId> predicted_global =
      ComposeGlobalId(shard_idx, predicted_local);
  if (!predicted_global.has_value()) {
    if (error != nullptr) {
      *error = "view id space exhausted: local id " +
               std::to_string(predicted_local) + " on shard " +
               std::to_string(shard_idx) +
               " does not compose into the ViewId range";
    }
    return kInvalidViewId;
  }
  ViewDefinition* view = shard.service->AddView(name, std::move(definition),
                                                error);
  if (view == nullptr) return kInvalidViewId;
  return GlobalId(shard_idx, view->id());
}

std::optional<ViewId> ShardedCatalogService::ComposeGlobalId(
    int shard, ViewId local) const {
  const ViewId n = static_cast<ViewId>(shards_.size());
  const ViewId s = static_cast<ViewId>(shard);
  if (local < 0 || s < 0 || s >= n) return std::nullopt;
  // local * n + s <= max  <=>  local <= (max - s) / n, checked without
  // performing the (potentially overflowing) multiplication.
  if (local > (std::numeric_limits<ViewId>::max() - s) / n) {
    return std::nullopt;
  }
  return local * n + s;
}

std::vector<Substitute> ShardedCatalogService::FindSubstitutes(
    const SpjgQuery& query, QueryContext& ctx) {
  const std::vector<int> routed = router_.RouteQuery(query);
  std::vector<Substitute> fresh;
  std::vector<Substitute> stale;
  bool partial = false;
  for (int idx : routed) {
    Shard& shard = *shards_[static_cast<size_t>(idx)];
    if (shard.health.load(std::memory_order_acquire) !=
        ShardHealth::kHealthy) {
      partial = true;
      continue;
    }
    // Lock-free: the live pointer is stable-or-retired (a concurrent
    // scrub swap retires the old service, never destroys it), and the
    // service synchronizes the probe internally via its snapshot pin.
    MatchingService* service = shard.live.load(std::memory_order_acquire);
    // The caller's context is reused serially, so the budget accrues
    // across shards exactly as it does across candidates in one shard.
    std::vector<Substitute> subs = service->FindSubstitutes(query, ctx);
    for (Substitute& sub : subs) {
      sub.view_id = GlobalId(idx, sub.view_id);
      // Keep fresh substitutes ahead of tolerated-stale ones *globally*
      // (each shard already orders its own), preserving the single-
      // service ordering contract the optimizer relies on.
      (sub.staleness_lag == 0 ? fresh : stale).push_back(std::move(sub));
    }
  }
  if (partial) {
    ctx.NoteDegradation(DegradationReason::kPartialCatalog);
    if (metrics_.partial_probes != nullptr) {
      metrics_.partial_probes->Increment();
    }
  }
  fresh.insert(fresh.end(), std::make_move_iterator(stale.begin()),
               std::make_move_iterator(stale.end()));
  return fresh;
}

std::optional<UnionSubstitute> ShardedCatalogService::FindUnionSubstitute(
    const SpjgQuery& query, QueryContext& ctx) {
  const std::vector<int> routed = router_.RouteQuery(query);
  std::optional<UnionSubstitute> result;
  bool partial = false;
  for (int idx : routed) {
    Shard& shard = *shards_[static_cast<size_t>(idx)];
    if (shard.health.load(std::memory_order_acquire) !=
        ShardHealth::kHealthy) {
      partial = true;
      continue;
    }
    if (!result.has_value()) {
      MatchingService* service = shard.live.load(std::memory_order_acquire);
      result = service->FindUnionSubstitute(query, ctx);
      if (result.has_value()) {
        for (Substitute& leg : result->legs) {
          leg.view_id = GlobalId(idx, leg.view_id);
        }
      }
    }
  }
  if (partial) {
    ctx.NoteDegradation(DegradationReason::kPartialCatalog);
    if (metrics_.partial_probes != nullptr) {
      metrics_.partial_probes->Increment();
    }
  }
  return result;
}

const ViewDefinition& ShardedCatalogService::ResolveView(ViewId id) const {
  const Shard& shard = *shards_[static_cast<size_t>(ShardOfId(id))];
  // Lock-free. The returned reference stays valid indefinitely: view
  // definitions are shared across the service's snapshot generations,
  // and replaced shard services are retired (kept alive), never
  // destroyed, for this object's lifetime.
  const MatchingService* service =
      shard.live.load(std::memory_order_acquire);
  return service->ResolveView(LocalId(id));
}

bool ShardedCatalogService::AnyRoutedUnhealthy(const SpjgQuery& query) const {
  for (int idx : router_.RouteQuery(query)) {
    if (shards_[static_cast<size_t>(idx)]->health.load(
            std::memory_order_acquire) != ShardHealth::kHealthy) {
      return true;
    }
  }
  return false;
}

ShardQuarantineCause ShardedCatalogService::shard_quarantine_cause(
    int shard) const {
  MutexLock lock(admin_mu_);
  return admin_[static_cast<size_t>(shard)].cause;
}

// --- recovery ------------------------------------------------------------

ShardRecoveryReport ShardedCatalogService::RecoverAll(ThreadPool* pool) {
  ShardRecoveryReport report;
  report.shards.resize(shards_.size());
  if (pool != nullptr && pool->num_workers() > 0 && shards_.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardRecoveryReport::ShardOutcome* out = &report.shards[i];
      const int idx = static_cast<int>(i);
      // RecoverShard absorbs every failure into a quarantine verdict —
      // pool tasks must not throw.
      tasks.emplace_back([this, idx, out] { RecoverShard(idx, out); });
    }
    pool->RunBatch(tasks);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      RecoverShard(static_cast<int>(i), &report.shards[i]);
    }
  }
  return report;
}

void ShardedCatalogService::RecoverShard(
    int shard_idx, ShardRecoveryReport::ShardOutcome* outcome) {
  outcome->shard = shard_idx;
  const auto start = std::chrono::steady_clock::now();
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  std::unique_ptr<MatchingService> fresh;
  ShardQuarantineCause cause = ShardQuarantineCause::kNone;
  std::string detail;
  try {
    MVOPT_FAILPOINT("catalog_shard.recover");
    fresh = std::make_unique<MatchingService>(catalog_, options_.service);
    if (shard.store != nullptr) {
      // A previous failed attempt may have left the WAL fd open.
      shard.store->Close();
      const RecoveryReport rep = fresh->RecoverFrom(shard.store.get());
      outcome->report = rep;
      if (!rep.snapshot_error.empty()) {
        cause = ShardQuarantineCause::kSnapshotCorrupt;
        detail = rep.snapshot_error;
      } else if (!rep.quarantined.empty()) {
        // Entry-level quarantines are survivable for a monolithic
        // catalog; under fault isolation they demote the whole shard —
        // its blast radius is small enough to sideline, and readmission
        // requires a clean rebuild.
        cause = ShardQuarantineCause::kReplayFailed;
        detail = std::to_string(rep.quarantined.size()) +
                 " durable entries unreplayable (first: " +
                 rep.quarantined.front().name + ")";
      } else if (options_.quarantine_on_wal_truncation && rep.wal_tail_torn) {
        cause = ShardQuarantineCause::kWalCorrupt;
        detail = "WAL tail torn: " +
                 std::to_string(rep.wal_bytes_truncated) + " bytes truncated";
      }
    }
    if (cause == ShardQuarantineCause::kNone &&
        options_.audit_after_recovery) {
      const std::string violations = AuditShard(*fresh);
      if (!violations.empty()) {
        cause = ShardQuarantineCause::kAuditFailed;
        detail = violations;
      }
    }
  } catch (const FailpointTriggered& e) {
    cause = ShardQuarantineCause::kFailpoint;
    detail = e.what();
  } catch (const StoreIoError& e) {
    cause = ShardQuarantineCause::kIoError;
    detail = e.what();
  } catch (const std::exception& e) {
    cause = ShardQuarantineCause::kReplayFailed;
    detail = e.what();
  }
  outcome->recovery_seconds = SecondsSince(start);
  if (static_cast<size_t>(shard_idx) < metrics_.recovery_latency.size() &&
      metrics_.recovery_latency[static_cast<size_t>(shard_idx)] != nullptr) {
    metrics_.recovery_latency[static_cast<size_t>(shard_idx)]->Observe(
        outcome->recovery_seconds);
  }
  if (cause == ShardQuarantineCause::kNone) {
    Readmit(shard_idx, std::move(fresh));
    outcome->health = ShardHealth::kHealthy;
    outcome->cause = ShardQuarantineCause::kNone;
  } else {
    // Leave the store closed so the scrubber starts from a clean fd
    // state; the files themselves are untouched (evidence preserved).
    if (shard.store != nullptr) shard.store->Close();
    Quarantine(shard_idx, cause, detail);
    outcome->health = ShardHealth::kQuarantined;
    outcome->cause = cause;
    outcome->detail = detail;
  }
}

std::string ShardedCatalogService::AuditShard(MatchingService& service) const {
  const AuditReport audit =
      InvariantAuditor().AuditFilterTree(service.filter_tree());
  return audit.ok() ? std::string() : audit.Summary();
}

void ShardedCatalogService::Quarantine(int shard_idx,
                                       ShardQuarantineCause cause,
                                       const std::string& detail) {
  shards_[static_cast<size_t>(shard_idx)]->health.store(
      ShardHealth::kQuarantined, std::memory_order_release);
  {
    MutexLock lock(admin_mu_);
    ShardAdmin& admin = admin_[static_cast<size_t>(shard_idx)];
    admin.cause = cause;
    admin.detail = detail;
    admin.backoff_window = options_.scrub_backoff_initial_ticks;
    admin.backoff_remaining = 0;  // first scrub attempt runs immediately
  }
  UpdateQuarantineGauge();
}

void ShardedCatalogService::Readmit(int shard_idx,
                                    std::unique_ptr<MatchingService> fresh) {
  const TableEpochClock* epochs = nullptr;
  {
    MutexLock lock(admin_mu_);
    epochs = epochs_;
  }
  if (epochs != nullptr) fresh->set_epoch_clock(epochs);
  std::unique_ptr<MatchingService> old;
  {
    Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
    MutexLock lock(shard.writer_mu);
    old = std::move(shard.service);
    shard.service = std::move(fresh);
    // Publish for probes before flipping health: a probe that sees
    // kHealthy must find the replacement, never the retired service.
    shard.live.store(shard.service.get(), std::memory_order_release);
  }
  shards_[static_cast<size_t>(shard_idx)]->health.store(
      ShardHealth::kHealthy, std::memory_order_release);
  {
    MutexLock lock(admin_mu_);
    admin_[static_cast<size_t>(shard_idx)] = ShardAdmin{};
    // Retire, don't destroy: ResolveView references handed out before
    // the swap must stay valid.
    if (old != nullptr) retired_.push_back(std::move(old));
  }
  UpdateQuarantineGauge();
}

int ShardedCatalogService::CheckpointAll() {
  int checkpointed = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (shard.store == nullptr) continue;
    if (shard.health.load(std::memory_order_acquire) !=
        ShardHealth::kHealthy) {
      continue;
    }
    try {
      MVOPT_FAILPOINT("catalog_shard.checkpoint");
      MutexLock lock(shard.writer_mu);
      shard.service->Checkpoint();
      ++checkpointed;
    } catch (const StoreIoError&) {
      // Per-shard isolation: the shard's snapshot protocol is atomic, so
      // a failed checkpoint leaves its WAL authoritative and the shard
      // healthy. The next CheckpointAll retries it.
    } catch (const FailpointTriggered&) {
      // Injected fault at the site: same contract.
    }
  }
  return checkpointed;
}

int ShardedCatalogService::ScrubTick() {
  int readmitted = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (shard.health.load(std::memory_order_acquire) !=
        ShardHealth::kQuarantined) {
      continue;
    }
    {
      MutexLock lock(admin_mu_);
      ShardAdmin& admin = admin_[i];
      if (admin.backoff_remaining > 0) {
        --admin.backoff_remaining;
        continue;
      }
    }
    if (metrics_.scrub_attempts != nullptr) {
      metrics_.scrub_attempts->Increment();
    }
    std::unique_ptr<MatchingService> fresh;
    ShardQuarantineCause cause = ShardQuarantineCause::kNone;
    std::string detail;
    try {
      fresh = std::make_unique<MatchingService>(catalog_, options_.service);
      if (shard.store != nullptr) {
        shard.store->Close();
        const RecoveryReport rep = fresh->RecoverFrom(shard.store.get());
        if (!rep.snapshot_error.empty()) {
          cause = ShardQuarantineCause::kSnapshotCorrupt;
          detail = rep.snapshot_error;
        } else if (!rep.quarantined.empty()) {
          cause = ShardQuarantineCause::kReplayFailed;
          detail = std::to_string(rep.quarantined.size()) +
                   " durable entries unreplayable";
        } else if (options_.quarantine_on_wal_truncation &&
                   rep.wal_tail_torn) {
          cause = ShardQuarantineCause::kWalCorrupt;
          detail = "WAL tail torn: " +
                   std::to_string(rep.wal_bytes_truncated) +
                   " bytes truncated";
        }
      }
      if (cause == ShardQuarantineCause::kNone &&
          options_.audit_after_recovery) {
        const std::string violations = AuditShard(*fresh);
        if (!violations.empty()) {
          cause = ShardQuarantineCause::kAuditFailed;
          detail = violations;
        }
      }
      if (cause == ShardQuarantineCause::kNone) {
        MVOPT_FAILPOINT("catalog_shard.scrub_swap");
      }
    } catch (const FailpointTriggered& e) {
      cause = ShardQuarantineCause::kFailpoint;
      detail = e.what();
    } catch (const StoreIoError& e) {
      cause = ShardQuarantineCause::kIoError;
      detail = e.what();
    } catch (const std::exception& e) {
      cause = ShardQuarantineCause::kReplayFailed;
      detail = e.what();
    }
    if (cause != ShardQuarantineCause::kNone) {
      // Circuit breaker: the fault persists, double the wait before the
      // next attempt so a rotting shard doesn't consume every tick.
      if (shard.store != nullptr) shard.store->Close();
      MutexLock lock(admin_mu_);
      ShardAdmin& admin = admin_[i];
      admin.cause = cause;
      admin.detail = detail;
      admin.backoff_window = NextScrubBackoffWindow(
          admin.backoff_window, options_.scrub_backoff_initial_ticks,
          options_.scrub_backoff_max_ticks);
      admin.backoff_remaining = admin.backoff_window;
      continue;
    }
    Readmit(static_cast<int>(i), std::move(fresh));
    ++readmitted;
    if (metrics_.readmissions != nullptr) metrics_.readmissions->Increment();
    if (shard.store != nullptr) {
      try {
        MVOPT_FAILPOINT("catalog_shard.scrub_checkpoint");
        MutexLock lock(shard.writer_mu);
        shard.service->Checkpoint();
        if (metrics_.scrub_repairs != nullptr) {
          metrics_.scrub_repairs->Increment();
        }
      } catch (const StoreIoError&) {
        // The WAL stays authoritative; the readmission stands and the
        // next CheckpointAll retries the repair snapshot.
      } catch (const FailpointTriggered&) {
        // Same: a fault after the swap never un-readmits the shard.
      }
    }
  }
  return readmitted;
}

void ShardedCatalogService::ForceQuarantine(int shard,
                                            ShardQuarantineCause cause,
                                            const std::string& detail) {
  Quarantine(shard, cause, detail);
}

int ShardedCatalogService::NextScrubBackoffWindow(int current,
                                                  int initial_ticks,
                                                  int max_ticks) {
  if (max_ticks < 1) max_ticks = 1;
  if (initial_ticks < 1) initial_ticks = 1;
  if (initial_ticks > max_ticks) initial_ticks = max_ticks;
  if (current <= 0) return initial_ticks;
  if (current > max_ticks / 2) return max_ticks;  // doubling would exceed
                                                  // max (or overflow int)
  return current * 2;
}

// --- lifecycle forwarding ------------------------------------------------

void ShardedCatalogService::set_epoch_clock(const TableEpochClock* clock) {
  {
    MutexLock lock(admin_mu_);
    epochs_ = clock;
  }
  // admin_mu_ is released before touching shard services (lock-order
  // rule: admin_mu_ is never held across a shard-service call).
  for (auto& shard : shards_) {
    MutexLock lock(shard->writer_mu);
    shard->service->set_epoch_clock(clock);
  }
}

int ShardedCatalogService::RevalidationTickAll(
    const std::function<bool(const ViewDefinition&)>& validate) {
  int readmitted = 0;
  for (auto& shard : shards_) {
    if (shard->health.load(std::memory_order_acquire) !=
        ShardHealth::kHealthy) {
      continue;
    }
    MutexLock lock(shard->writer_mu);
    readmitted += shard->service->RevalidationTick(validate);
  }
  return readmitted;
}

MatchingStats ShardedCatalogService::stats() const {
  MatchingStats total;
  for (const auto& shard : shards_) {
    // Lock-free read side: the service's stats() is internally
    // probe-atomic, and a racing scrub swap at worst reports the retired
    // generation's counters (which the swap resets anyway).
    total.MergeFrom(
        shard->live.load(std::memory_order_acquire)->stats());
  }
  return total;
}

VerifyStats ShardedCatalogService::verify_stats() const {
  VerifyStats total;
  for (const auto& shard : shards_) {
    const VerifyStats s =
        shard->live.load(std::memory_order_acquire)->verify_stats();
    total.checked += s.checked;
    total.proven += s.proven;
    total.rejected += s.rejected;
    total.quarantined_views += s.quarantined_views;
    for (size_t i = 0; i < total.by_code.size(); ++i) {
      total.by_code[i] += s.by_code[i];
    }
    for (const std::string& trace : s.rejection_traces) {
      if (total.rejection_traces.size() >=
          VerifyStats::kMaxRejectionTraces) {
        break;
      }
      total.rejection_traces.push_back(trace);
    }
  }
  return total;
}

}  // namespace mvopt
