// Crash-consistent persistence for the view catalog: a CRC-framed
// write-ahead log plus periodic full snapshots, with self-healing
// recovery.
//
// Layout under the store directory:
//   catalog.wal           append-only log of AddView / lifecycle events
//   catalog.snapshot      full catalog image, replaced by atomic rename
//   catalog.snapshot.tmp  in-flight snapshot (ignored at recovery)
//
// Every record is framed as
//   u32 payload_len | u32 crc32(type + payload) | u8 type | payload
// so torn writes and corruption are detected at recovery: replay stops
// at the first bad frame, truncates the torn tail (reported in the
// RecoveryReport) and keeps everything before it. A record is
// *committed* once its fsync returns; committed records are never lost,
// and a crash mid-append loses at most the uncommitted tail.
//
// The snapshot protocol is write-tmp / fsync / rename / fsync-dir, then
// the WAL is reset. A crash between rename and reset leaves records in
// the WAL that are also in the snapshot; replay is idempotent (later
// records for a name supersede earlier ones), so the overlap is
// harmless.
//
// Entries that are durable but unreplayable — SQL that no longer parses
// against the schema, definitions that fail validation — are
// *quarantined* in the RecoveryReport rather than aborting recovery;
// the rest of the catalog comes back.
//
// Failpoint sites (kill-at-every-site crash tests drive these):
//   catalog_store.wal_append      before anything is written
//   catalog_store.wal_write       torn write: half the frame, then throw
//   catalog_store.wal_fsync       frame written, fsync skipped
//   catalog_store.commit          after fsync (durable; see StoreIoError)
//   catalog_store.snapshot_write  partial snapshot tmp
//   catalog_store.snapshot_rename tmp complete, rename skipped
//   catalog_store.wal_truncate    snapshot installed, WAL reset skipped

#ifndef MVOPT_REWRITE_CATALOG_STORE_H_
#define MVOPT_REWRITE_CATALOG_STORE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/enum_coverage.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "observe/metrics.h"
#include "rewrite/view_lifecycle.h"

namespace mvopt {

/// Why a durable-but-unreplayable entry was kept out of the rebuilt
/// catalog. Machine-readable so tooling and tests assert on the cause
/// instead of string-matching the free-form detail.
enum class EntryQuarantineCause {
  kInvalidState = 0,  ///< lifecycle state byte out of range
  kUnparsableSql,     ///< definition no longer parses against the schema
  kIndexingFailed,    ///< registration / filter-tree insertion failed
};

inline constexpr int kNumEntryQuarantineCauses = 3;
static_assert(static_cast<int>(EntryQuarantineCause::kIndexingFailed) + 1 ==
                  kNumEntryQuarantineCauses,
              "kNumEntryQuarantineCauses must cover every cause");

constexpr const char* EntryQuarantineCauseName(EntryQuarantineCause cause) {
  switch (cause) {
    case EntryQuarantineCause::kInvalidState:
      return "invalid-state";
    case EntryQuarantineCause::kUnparsableSql:
      return "unparsable-sql";
    case EntryQuarantineCause::kIndexingFailed:
      return "indexing-failed";
  }
  return "?";
}

static_assert(
    AllEnumeratorsNamed<EntryQuarantineCause, EntryQuarantineCauseName>(
        kNumEntryQuarantineCauses),
    "every EntryQuarantineCause needs an EntryQuarantineCauseName entry");

/// Append-path failure. `durable()` distinguishes an *ambiguous commit*:
/// the record reached stable storage before the failure, so the caller
/// must treat the operation as committed (recovery will replay it) and
/// keep its in-memory effect.
class StoreIoError : public std::runtime_error {
 public:
  StoreIoError(const std::string& what, bool durable)
      : std::runtime_error(what), durable_(durable) {}
  bool durable() const { return durable_; }

 private:
  bool durable_;
};

/// One persisted catalog entry (the durable image of a registered view).
struct PersistedView {
  std::string name;
  std::string sql;  ///< definition, re-parsed at recovery
  ViewState state = ViewState::kFresh;
  uint64_t epoch = 0;
  uint64_t content_checksum = 0;
};

/// Machine-readable outcome of a recovery pass.
struct RecoveryReport {
  /// One durable-but-unreplayable entry, kept out of the catalog.
  struct QuarantinedEntry {
    std::string name;
    /// Machine-readable cause; `reason` carries the human detail.
    EntryQuarantineCause cause = EntryQuarantineCause::kIndexingFailed;
    std::string reason;
  };

  bool snapshot_loaded = false;
  std::string snapshot_error;  ///< empty = clean (or no snapshot)
  int64_t snapshot_views = 0;
  int64_t wal_records_replayed = 0;
  bool wal_tail_torn = false;
  int64_t wal_bytes_truncated = 0;
  int64_t views_recovered = 0;  ///< entries handed to the rebuild
  /// Filled by the catalog rebuild (MatchingService::RecoverFrom).
  std::vector<QuarantinedEntry> quarantined;
  /// Non-fatal anomalies (e.g. a lifecycle event for an unknown view).
  std::vector<std::string> anomalies;

  /// Recovery is clean: nothing quarantined, truncated or anomalous.
  bool clean() const {
    return snapshot_error.empty() && !wal_tail_torn && quarantined.empty() &&
           anomalies.empty();
  }
  std::string ToJson() const;
};

/// Structural validation of a RecoveryReport::ToJson dump (mirrors the
/// metrics-JSON pattern, observe/metrics.h): well-formed JSON with every
/// mandatory key present, and each quarantined entry carrying a known
/// machine-readable cause. Returns false and sets *error on the first
/// violation.
bool ValidateRecoveryReportJson(const std::string& json, std::string* error);

class CatalogStore {
 public:
  explicit CatalogStore(std::string dir) : dir_(std::move(dir)) {}
  CatalogStore(const CatalogStore&) = delete;
  CatalogStore& operator=(const CatalogStore&) = delete;
  ~CatalogStore();

  /// Read-only scan of snapshot + WAL. Never throws: every problem is
  /// reported (and the torn tail measured) in the report.
  struct RecoveredState {
    std::vector<PersistedView> views;  ///< registration order
    RecoveryReport report;
  };
  RecoveredState Recover() const;

  /// Prepares the store for appends: creates the directory and files on
  /// first use and physically truncates any torn WAL tail. Throws
  /// StoreIoError on I/O failure.
  void OpenForAppend() MVOPT_EXCLUDES(mu_);
  bool is_open() const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_fd_ >= 0;
  }
  void Close() MVOPT_EXCLUDES(mu_);

  /// Appends + fsyncs one record (commit point). Throws StoreIoError;
  /// durable() tells whether the record was already committed.
  void AppendAddView(const PersistedView& view) MVOPT_EXCLUDES(mu_);
  void AppendViewEvent(const std::string& name, ViewState state,
                       uint64_t epoch, uint64_t checksum) MVOPT_EXCLUDES(mu_);

  /// Atomically installs a new snapshot and resets the WAL.
  void WriteSnapshot(const std::vector<PersistedView>& views)
      MVOPT_EXCLUDES(mu_);

  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/catalog.wal"; }
  std::string snapshot_path() const { return dir_ + "/catalog.snapshot"; }
  int64_t wal_bytes() const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_offset_;
  }

  /// Observability hooks (nullptr slots are skipped). Appends count
  /// frames handed to write(2); fsyncs count successful commit-point
  /// fsyncs; failures count appends that threw (durable or not).
  struct StoreCounters {
    Counter* wal_appends = nullptr;
    Counter* wal_fsyncs = nullptr;
    Counter* wal_append_failures = nullptr;
    Counter* snapshot_writes = nullptr;
  };
  void set_counters(const StoreCounters& counters) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    counters_ = counters;
  }

 private:
  void AppendRecord(uint8_t type, const std::string& payload)
      MVOPT_REQUIRES(mu_);
  void RepairTornTail() MVOPT_REQUIRES(mu_);
  /// Best-effort immediate tail repair after a failed append (never
  /// throws; on failure the repair stays pending for the next append).
  void TryRepairNow() noexcept MVOPT_REQUIRES(mu_);

  std::string dir_;
  /// Serializes append/snapshot/close against each other and against
  /// wal_bytes()/is_open() readers. Historically the owning
  /// MatchingService's exclusive lock was the only serialization; the
  /// store now enforces its own discipline so bench/driver threads can
  /// poll it safely. Acquired after the service lock, never before it.
  mutable Mutex mu_;
  int wal_fd_ MVOPT_GUARDED_BY(mu_) = -1;
  /// End of the last committed record (append position after repair).
  int64_t wal_offset_ MVOPT_GUARDED_BY(mu_) = 0;
  /// A failed append may have left a torn frame past wal_offset_; the
  /// next append truncates it first (a crash before then leaves the tear
  /// for recovery to cut, which is equally safe).
  bool needs_repair_ MVOPT_GUARDED_BY(mu_) = false;
  StoreCounters counters_ MVOPT_GUARDED_BY(mu_);
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_CATALOG_STORE_H_
