#include "rewrite/equiv.h"

#include <cassert>

namespace mvopt {

void EquivalenceClasses::AddTableColumns(int32_t table_ref, int num_columns) {
  for (int c = 0; c < num_columns; ++c) {
    EnsureIndex(ColumnRefId{table_ref, c});
  }
}

void EquivalenceClasses::AddEquality(ColumnRefId a, ColumnRefId b) {
  int ia = EnsureIndex(a);
  int ib = EnsureIndex(b);
  Union(ia, ib);
  classes_valid_ = false;
}

void EquivalenceClasses::AddEqualities(
    const std::vector<ColumnEqualityPred>& preds) {
  for (const auto& p : preds) AddEquality(p.lhs, p.rhs);
}

int EquivalenceClasses::IndexOf(ColumnRefId col) const {
  auto it = index_.find(col);
  return it == index_.end() ? -1 : it->second;
}

int EquivalenceClasses::EnsureIndex(ColumnRefId col) {
  auto it = index_.find(col);
  if (it != index_.end()) return it->second;
  int idx = static_cast<int>(columns_.size());
  index_.emplace(col, idx);
  columns_.push_back(col);
  parent_.push_back(idx);
  classes_valid_ = false;
  return idx;
}

int EquivalenceClasses::Find(int x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void EquivalenceClasses::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra != rb) parent_[rb] = ra;
}

void EquivalenceClasses::BuildClassesIfNeeded() const {
  if (classes_valid_) return;
  root_to_class_.clear();
  classes_.clear();
  for (size_t i = 0; i < columns_.size(); ++i) {
    int root = Find(static_cast<int>(i));
    auto [it, inserted] =
        root_to_class_.emplace(root, static_cast<int>(classes_.size()));
    if (inserted) classes_.emplace_back();
    classes_[it->second].push_back(columns_[i]);
  }
  classes_valid_ = true;
}

int EquivalenceClasses::ClassOf(ColumnRefId col) const {
  int idx = IndexOf(col);
  if (idx < 0) return -1;
  BuildClassesIfNeeded();
  return root_to_class_.at(Find(idx));
}

bool EquivalenceClasses::IsTrivial(ColumnRefId col) const {
  int cls = ClassOf(col);
  assert(cls >= 0);
  return classes_[cls].size() == 1;
}

const std::vector<ColumnRefId>& EquivalenceClasses::ClassMembers(
    int class_id) const {
  BuildClassesIfNeeded();
  return classes_[class_id];
}

int EquivalenceClasses::NumClasses() const {
  BuildClassesIfNeeded();
  return static_cast<int>(classes_.size());
}

std::vector<int> EquivalenceClasses::NontrivialClasses() const {
  BuildClassesIfNeeded();
  std::vector<int> out;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].size() >= 2) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace mvopt
