#include "rewrite/view_catalog.h"

#include <algorithm>
#include <cassert>

#include "common/failpoint.h"

namespace mvopt {

ViewDefinition* ViewCatalog::AddView(const std::string& name,
                                     SpjgQuery definition,
                                     std::string* error) {
  if (MVOPT_FAILPOINT_HIT("view_catalog.add_view")) {
    if (error != nullptr) *error = "failpoint 'view_catalog.add_view'";
    return nullptr;
  }
  auto invalid = ViewDefinition::Validate(definition);
  if (invalid.has_value()) {
    if (error != nullptr) *error = *invalid;
    return nullptr;
  }
  ViewId id = static_cast<ViewId>(views_.size());
  // Build everything fallible before the commit point: a throw from the
  // definition, the description (or the failpoint standing in for one)
  // leaves all three containers untouched, so views_/descriptions_/
  // by_name_ can never disagree. The duplicate-name check is part of the
  // same transactional commit — it is decided by the by_name_ insert
  // itself, after every fallible step, so a duplicate rejection can
  // never strand rollback bookkeeping set up along the way.
  auto view = std::make_shared<ViewDefinition>(id, name, std::move(definition));
  ViewDescription description = DescribeView(*catalog_, *view);
  MVOPT_FAILPOINT("view_catalog.describe");
  if (views_.size() == views_.capacity()) {
    views_.reserve(std::max<size_t>(8, views_.size() * 2));
  }
  if (descriptions_.size() == descriptions_.capacity()) {
    descriptions_.reserve(std::max<size_t>(8, descriptions_.size() * 2));
  }
  if (programs_.size() == programs_.capacity()) {
    programs_.reserve(std::max<size_t>(8, programs_.size() * 2));
  }
  auto [it, inserted] = by_name_.emplace(name, id);  // may throw; commit point
  (void)it;
  if (!inserted) {
    if (error != nullptr) {
      *error = "view '" + name + "' is already registered";
    }
    return nullptr;  // nothing mutated: rejection needs no rollback
  }
  // Capacity reserved and both element moves are noexcept: no-throw.
  views_.push_back(std::move(view));
  descriptions_.push_back(std::move(description));
  programs_.emplace_back();  // compiled later (MatchingService), if at all
  return views_.back().get();
}

void ViewCatalog::RemoveLastView(ViewId id) {
  assert(!views_.empty() && views_.back()->id() == id &&
         "only the most recent registration can be rolled back");
  (void)id;
  by_name_.erase(views_.back()->name());
  views_.pop_back();
  descriptions_.pop_back();
  programs_.pop_back();
}

const ViewDefinition* ViewCatalog::FindView(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : views_[it->second].get();
}

}  // namespace mvopt
