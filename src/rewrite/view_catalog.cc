#include "rewrite/view_catalog.h"

namespace mvopt {

ViewDefinition* ViewCatalog::AddView(const std::string& name,
                                     SpjgQuery definition,
                                     std::string* error) {
  auto invalid = ViewDefinition::Validate(definition);
  if (invalid.has_value()) {
    if (error != nullptr) *error = *invalid;
    return nullptr;
  }
  ViewId id = static_cast<ViewId>(views_.size());
  views_.push_back(
      std::make_unique<ViewDefinition>(id, name, std::move(definition)));
  descriptions_.push_back(DescribeView(*catalog_, *views_.back()));
  return views_.back().get();
}

}  // namespace mvopt
