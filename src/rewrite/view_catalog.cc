#include "rewrite/view_catalog.h"

namespace mvopt {

ViewDefinition* ViewCatalog::AddView(const std::string& name,
                                     SpjgQuery definition,
                                     std::string* error) {
  if (by_name_.count(name) != 0) {
    if (error != nullptr) {
      *error = "view '" + name + "' is already registered";
    }
    return nullptr;
  }
  auto invalid = ViewDefinition::Validate(definition);
  if (invalid.has_value()) {
    if (error != nullptr) *error = *invalid;
    return nullptr;
  }
  ViewId id = static_cast<ViewId>(views_.size());
  views_.push_back(
      std::make_unique<ViewDefinition>(id, name, std::move(definition)));
  descriptions_.push_back(DescribeView(*catalog_, *views_.back()));
  by_name_.emplace(name, id);
  return views_.back().get();
}

const ViewDefinition* ViewCatalog::FindView(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : views_[it->second].get();
}

}  // namespace mvopt
