// The view-matching algorithm of §3: decides whether an SPJG query
// expression can be computed from a materialized SPJG view and, if so,
// constructs the substitute expression.
//
// Pipeline (per candidate table-reference mapping):
//   1. translate the view into the query's table-reference space,
//   2. eliminate the view's extra tables through cardinality-preserving
//      foreign-key joins and extend the query's equivalence classes with
//      the eliminated join conditions (§3.2),
//   3. equijoin subsumption test + compensating column-equality
//      predicates (§3.1.2),
//   4. range subsumption test + compensating range predicates,
//   5. residual subsumption test + compensating residual predicates,
//   6. route every compensating predicate and query output to view output
//      columns (§3.1.3, §3.1.4),
//   7. aggregation handling: grouping containment, count(*) -> SUM(cnt),
//      SUM rollup, AVG -> SUM/COUNT (§3.3).

#ifndef MVOPT_REWRITE_MATCHER_H_
#define MVOPT_REWRITE_MATCHER_H_

#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "common/enum_coverage.h"
#include "query/spjg.h"
#include "query/substitute.h"
#include "query/view_def.h"

namespace mvopt {

struct MatchOptions {
  /// §3.2 relaxation: accept a nullable FK column when the query has a
  /// null-rejecting predicate on it.
  bool allow_nullable_fk_with_null_rejection = true;
  /// Cap on table-reference mappings tried for self-join ambiguity.
  int max_table_mappings = 24;
  /// Allow MIN/MAX in views and queries (§7 extension).
  bool allow_min_max = true;
  /// Fold CHECK constraints into the antecedent of Wq => Wv (§3.1.2).
  bool use_check_constraints = true;
  /// §7 extension: when a column cannot be routed to a view output, allow
  /// joining the view back to a base table whose unique key the view
  /// outputs, recovering every column of that table. Off by default
  /// (paper-faithful single-table substitutes).
  bool enable_backjoins = false;
};

/// Why a view was rejected (ordered roughly by test order; used by the
/// experiment harness to report where candidates die).
enum class RejectReason {
  kNone,
  kSourceTables,            ///< view lacks tables the query needs
  kExtraTableElimination,   ///< extra tables not cardinality-preserving
  kEquijoinSubsumption,     ///< view equates columns the query does not
  kRangeSubsumption,        ///< view range does not contain query range
  kResidualSubsumption,     ///< view residual missing from query
  kCompensationNotComputable,  ///< compensating predicate column not in output
  kOutputNotComputable,     ///< query output not computable from view output
  kViewMoreAggregated,      ///< SPJ query, aggregated view
  kGroupingMismatch,        ///< query grouping not a subset of view grouping
  kAggregateNotComputable,  ///< query aggregate has no matching view output
  kStale,                   ///< view lags its base tables beyond tolerance
};

/// Number of RejectReason values, for reason-indexed count arrays
/// (mirrors kNumCheckCodes in src/verify).
inline constexpr int kNumRejectReasons = 12;
static_assert(static_cast<int>(RejectReason::kStale) + 1 ==
                  kNumRejectReasons,
              "kNumRejectReasons must cover every RejectReason");

/// Exhaustive (switch-based, no default): a new RejectReason without a
/// name is a -Wswitch error, and the static_assert below proves every
/// value maps to a real name even where that warning is demoted.
constexpr const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kSourceTables:
      return "source-tables";
    case RejectReason::kExtraTableElimination:
      return "extra-table-elimination";
    case RejectReason::kEquijoinSubsumption:
      return "equijoin-subsumption";
    case RejectReason::kRangeSubsumption:
      return "range-subsumption";
    case RejectReason::kResidualSubsumption:
      return "residual-subsumption";
    case RejectReason::kCompensationNotComputable:
      return "compensation-not-computable";
    case RejectReason::kOutputNotComputable:
      return "output-not-computable";
    case RejectReason::kViewMoreAggregated:
      return "view-more-aggregated";
    case RejectReason::kGroupingMismatch:
      return "grouping-mismatch";
    case RejectReason::kAggregateNotComputable:
      return "aggregate-not-computable";
    case RejectReason::kStale:
      return "stale-view";
  }
  return "?";
}

static_assert(
    AllEnumeratorsNamed<RejectReason, RejectReasonName>(kNumRejectReasons),
    "every RejectReason needs a RejectReasonName entry");

struct MatchResult {
  std::optional<Substitute> substitute;
  RejectReason reason = RejectReason::kNone;

  bool ok() const { return substitute.has_value(); }
};

class ViewMatcher {
 public:
  explicit ViewMatcher(const Catalog* catalog, MatchOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Tests whether `query` can be computed from `view` alone and builds
  /// the substitute. Both expressions must be in SPJG normal form with
  /// CNF conjunct lists (SpjgBuilder guarantees this).
  MatchResult Match(const SpjgQuery& query, const ViewDefinition& view) const;

 private:
  MatchResult MatchWithMapping(const SpjgQuery& query,
                               const ViewDefinition& view,
                               const std::vector<int32_t>& view_to_slot) const;

  const Catalog* catalog_;
  MatchOptions options_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_MATCHER_H_
