#include "rewrite/range.h"

#include <cassert>

namespace mvopt {

// Returns true if lower bound `a` is tighter (larger) than `b`.
bool LowerBoundTighter(const RangeBound& a, const RangeBound& b) {
  if (a.is_infinite) return false;
  if (b.is_infinite) return true;
  int c = a.value.Compare(b.value);
  if (c != 0) return c > 0;
  return !a.inclusive && b.inclusive;  // open beats closed at same value
}

// Returns true if upper bound `a` is tighter (smaller) than `b`.
bool UpperBoundTighter(const RangeBound& a, const RangeBound& b) {
  if (a.is_infinite) return false;
  if (b.is_infinite) return true;
  int c = a.value.Compare(b.value);
  if (c != 0) return c < 0;
  return !a.inclusive && b.inclusive;
}

void ValueRange::Apply(CompareOp op, const Value& bound) {
  RangeBound b;
  b.value = bound;
  b.is_infinite = false;
  switch (op) {
    case CompareOp::kEq:
      b.inclusive = true;
      if (LowerBoundTighter(b, lo)) lo = b;
      if (UpperBoundTighter(b, hi)) hi = b;
      return;
    case CompareOp::kLt:
      b.inclusive = false;
      if (UpperBoundTighter(b, hi)) hi = b;
      return;
    case CompareOp::kLe:
      b.inclusive = true;
      if (UpperBoundTighter(b, hi)) hi = b;
      return;
    case CompareOp::kGt:
      b.inclusive = false;
      if (LowerBoundTighter(b, lo)) lo = b;
      return;
    case CompareOp::kGe:
      b.inclusive = true;
      if (LowerBoundTighter(b, lo)) lo = b;
      return;
    case CompareOp::kNe:
      assert(false && "<> is a residual predicate, not a range");
      return;
  }
}

bool ValueRange::Contains(const ValueRange& other) const {
  // this.lo must be no tighter than other.lo, and same for hi.
  if (LowerBoundTighter(lo, other.lo)) return false;
  if (UpperBoundTighter(hi, other.hi)) return false;
  return true;
}

bool ValueRange::IsEmpty() const {
  if (lo.is_infinite || hi.is_infinite) return false;
  int c = lo.value.Compare(hi.value);
  if (c > 0) return true;
  if (c == 0) return !(lo.inclusive && hi.inclusive);
  return false;
}

bool ValueRange::IsPoint() const {
  return !lo.is_infinite && !hi.is_infinite && lo.inclusive &&
         hi.inclusive && lo.value == hi.value;
}

bool ValueRange::SameLowerBound(const ValueRange& other) const {
  if (lo.is_infinite != other.lo.is_infinite) return false;
  if (lo.is_infinite) return true;
  return lo.inclusive == other.lo.inclusive && lo.value == other.lo.value;
}

bool ValueRange::SameUpperBound(const ValueRange& other) const {
  if (hi.is_infinite != other.hi.is_infinite) return false;
  if (hi.is_infinite) return true;
  return hi.inclusive == other.hi.inclusive && hi.value == other.hi.value;
}

std::string ValueRange::ToString() const {
  std::string out = lo.is_infinite
                        ? "(-inf"
                        : (lo.inclusive ? "[" : "(") + lo.value.ToString();
  out += ", ";
  out += hi.is_infinite
             ? "+inf)"
             : hi.value.ToString() + (hi.inclusive ? "]" : ")");
  return out;
}

RangeMap RangeMap::Build(const std::vector<RangePred>& preds,
                         const EquivalenceClasses& classes) {
  RangeMap map;
  for (const auto& p : preds) {
    int cls = classes.ClassOf(p.column);
    assert(cls >= 0 && "range predicate on unregistered column");
    map.ranges_[cls].Apply(p.op, p.bound);
  }
  return map;
}

ValueRange RangeMap::Get(int class_id) const {
  auto it = ranges_.find(class_id);
  if (it == ranges_.end()) return ValueRange{};
  return it->second;
}

}  // namespace mvopt
