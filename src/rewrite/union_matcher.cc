#include "rewrite/union_matcher.h"

#include <algorithm>

#include "expr/classify.h"
#include "rewrite/range.h"

namespace mvopt {

namespace {

// Integer domains have no values strictly between v and v+1: an exclusive
// lower bound at v is the inclusive bound at v+1. Normalizing this way
// lets a view declared as [v+1, ...] cover the remainder after a leg that
// ended at v (adjacent integer slices).
RangeBound NormalizeLower(RangeBound b, ValueType type) {
  if (b.is_infinite || b.inclusive) return b;
  if (type == ValueType::kInt64) {
    b.value = Value::Int64(b.value.int64() + 1);
    b.inclusive = true;
  } else if (type == ValueType::kDate) {
    b.value = Value::Date(b.value.int64() + 1);
    b.inclusive = true;
  }
  return b;
}

// Equality of two upper bounds (value + openness, or both infinite).
bool SameUpper(const RangeBound& a, const RangeBound& b) {
  if (a.is_infinite != b.is_infinite) return false;
  if (a.is_infinite) return true;
  return a.inclusive == b.inclusive && a.value == b.value;
}

// The view's range on `column` of catalog table `table`, computed from
// the view's own predicates and equivalence classes. Unconstrained when
// the view does not reference the table.
ValueRange ViewRangeOn(const Catalog& catalog, const ViewDefinition& view,
                       TableId table, ColumnOrdinal column) {
  const SpjgQuery& q = view.query();
  ClassifiedPredicates preds = ClassifyConjuncts(q.conjuncts);
  EquivalenceClasses ec;
  for (int t = 0; t < q.num_tables(); ++t) {
    ec.AddTableColumns(t, catalog.table(q.tables[t].table).num_columns());
  }
  ec.AddEqualities(preds.equalities);
  RangeMap ranges = RangeMap::Build(preds.ranges, ec);
  for (int t = 0; t < q.num_tables(); ++t) {
    if (q.tables[t].table == table) {
      return ranges.Get(ec.ClassOf(ColumnRefId{t, column}));
    }
  }
  return ValueRange{};
}

}  // namespace

std::optional<UnionSubstitute> UnionMatcher::Match(
    const SpjgQuery& query, const std::vector<ViewId>& candidates,
    QueryContext* ctx) const {
  if (query.is_aggregate) return std::nullopt;  // SPJ-only (see header)
  if (candidates.size() < 2) return std::nullopt;

  // Candidate partition columns: the query's own range-constrained
  // columns, plus columns the candidate views range-partition on.
  std::vector<ColumnRefId> columns;
  auto add_column = [&](ColumnRefId c) {
    if (std::find(columns.begin(), columns.end(), c) == columns.end() &&
        static_cast<int>(columns.size()) < options_.max_partition_columns) {
      columns.push_back(c);
    }
  };
  ClassifiedPredicates query_preds = ClassifyConjuncts(query.conjuncts);
  for (const auto& p : query_preds.ranges) add_column(p.column);
  for (ViewId v : candidates) {
    const ViewDescription& d = views_->description(v);
    for (const auto& cls : d.range_constrained_classes) {
      for (uint32_t id : cls) {
        TableId table = static_cast<TableId>(id >> 12);
        ColumnOrdinal col = static_cast<ColumnOrdinal>(id & 0xfff);
        for (int t = 0; t < query.num_tables(); ++t) {
          if (query.tables[t].table == table) {
            add_column(ColumnRefId{t, col});
            break;
          }
        }
      }
    }
  }

  for (ColumnRefId column : columns) {
    if (ctx != nullptr) {
      ctx->TickDeadline();
      if (ctx->exhausted()) return std::nullopt;
    }
    auto result = TryPartitionColumn(query, column, candidates, ctx);
    if (result.has_value()) return result;
  }
  return std::nullopt;
}

std::optional<UnionSubstitute> UnionMatcher::TryPartitionColumn(
    const SpjgQuery& query, ColumnRefId column,
    const std::vector<ViewId>& candidates, QueryContext* ctx) const {
  // The query's target range on the partition column's class.
  ClassifiedPredicates preds = ClassifyConjuncts(query.conjuncts);
  EquivalenceClasses ec;
  for (int t = 0; t < query.num_tables(); ++t) {
    ec.AddTableColumns(t,
                       catalog_->table(query.tables[t].table).num_columns());
  }
  ec.AddEqualities(preds.equalities);
  RangeMap ranges = RangeMap::Build(preds.ranges, ec);
  ValueRange target = ranges.Get(ec.ClassOf(column));

  const TableId part_table = query.tables[column.table_ref].table;
  const ValueType part_type =
      catalog_->table(part_table).column(column.column).type;
  ExprPtr part_col = Expr::MakeColumn(column);

  UnionSubstitute result;
  // Lower edge of the uncovered remainder.
  RangeBound cursor = NormalizeLower(target.lo, part_type);

  for (int step = 0; step < options_.max_legs; ++step) {
    if (ctx != nullptr) {
      ctx->TickDeadline();
      if (ctx->exhausted()) return std::nullopt;
    }
    // Views whose range covers the cursor, widest reach first.
    struct Covering {
      ViewId view;
      RangeBound hi;  // assigned subinterval's upper bound
    };
    std::vector<Covering> covering;
    for (ViewId v : candidates) {
      ValueRange vrange = ViewRangeOn(*catalog_, views_->view(v),
                                      part_table, column.column);
      // The view must start at or before the cursor...
      if (LowerBoundTighter(vrange.lo, cursor)) continue;
      // ...and reach it.
      if (!cursor.is_infinite) {
        RangeBound point{cursor.value, cursor.inclusive, false};
        if (UpperBoundTighter(vrange.hi, point)) continue;
      }
      RangeBound hi =
          UpperBoundTighter(vrange.hi, target.hi) ? vrange.hi : target.hi;
      // The assigned subinterval must be non-empty (progress guarantee).
      ValueRange sub;
      sub.lo = cursor;
      sub.hi = hi;
      if (sub.IsEmpty()) continue;
      covering.push_back(Covering{v, hi});
    }
    std::sort(covering.begin(), covering.end(),
              [](const Covering& a, const Covering& b) {
                return UpperBoundTighter(b.hi, a.hi);  // widest reach first
              });

    bool advanced = false;
    for (const Covering& c : covering) {
      // Restrict the query to the assigned subinterval and run the
      // ordinary single-view matcher; its compensating predicates then
      // clip the leg exactly to the subinterval, which keeps the legs
      // disjoint even when the views overlap.
      SpjgQuery leg_query = query;
      if (!cursor.is_infinite) {
        leg_query.conjuncts.push_back(Expr::MakeCompare(
            cursor.inclusive ? CompareOp::kGe : CompareOp::kGt, part_col,
            Expr::MakeLiteral(cursor.value)));
      }
      if (!c.hi.is_infinite) {
        leg_query.conjuncts.push_back(Expr::MakeCompare(
            c.hi.inclusive ? CompareOp::kLe : CompareOp::kLt, part_col,
            Expr::MakeLiteral(c.hi.value)));
      }
      MatchResult r = matcher_.Match(leg_query, views_->view(c.view));
      if (!r.ok()) continue;
      result.legs.push_back(std::move(*r.substitute));
      if (SameUpper(c.hi, target.hi)) {
        // Full cover. A single leg means an ordinary substitute exists;
        // report only genuine unions.
        if (result.legs.size() < 2) return std::nullopt;
        return result;
      }
      // Advance: the next subinterval starts just past this leg's end.
      cursor = NormalizeLower(RangeBound{c.hi.value, !c.hi.inclusive, false},
                              part_type);
      advanced = true;
      break;
    }
    if (!advanced) return std::nullopt;  // gap in coverage
  }
  return std::nullopt;  // leg budget exhausted
}

}  // namespace mvopt
