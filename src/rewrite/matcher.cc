#include "rewrite/matcher.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "expr/classify.h"
#include "rewrite/equiv.h"
#include "rewrite/fk_graph.h"
#include "rewrite/range.h"

namespace mvopt {

namespace {

MatchResult Reject(RejectReason reason) {
  MatchResult r;
  r.reason = reason;
  return r;
}

/// Enumerates injective mappings of query table refs onto view table refs
/// with equal catalog table ids. mapping[view_ref] = query slot, or -1 for
/// unmapped (extra) view refs. Stops after `limit` mappings.
class MappingEnumerator {
 public:
  MappingEnumerator(const SpjgQuery& query, const SpjgQuery& view, int limit)
      : limit_(limit) {
    // Group refs by table id.
    std::map<TableId, std::vector<int32_t>> query_refs;
    std::map<TableId, std::vector<int32_t>> view_refs;
    for (int32_t i = 0; i < query.num_tables(); ++i) {
      query_refs[query.tables[i].table].push_back(i);
    }
    for (int32_t i = 0; i < view.num_tables(); ++i) {
      view_refs[view.tables[i].table].push_back(i);
    }
    feasible_ = true;
    for (const auto& [tid, qrefs] : query_refs) {
      auto it = view_refs.find(tid);
      if (it == view_refs.end() || it->second.size() < qrefs.size()) {
        feasible_ = false;
        return;
      }
      groups_.push_back(Group{qrefs, it->second});
    }
    num_view_refs_ = view.num_tables();
  }

  bool feasible() const { return feasible_; }

  /// All candidate mappings (capped).
  std::vector<std::vector<int32_t>> Enumerate() const {
    std::vector<std::vector<int32_t>> out;
    if (!feasible_) return out;
    std::vector<int32_t> mapping(num_view_refs_, -1);
    Recurse(0, &mapping, &out);
    return out;
  }

 private:
  struct Group {
    std::vector<int32_t> query_refs;
    std::vector<int32_t> view_refs;
  };

  void Recurse(size_t g, std::vector<int32_t>* mapping,
               std::vector<std::vector<int32_t>>* out) const {
    if (static_cast<int>(out->size()) >= limit_) return;
    if (g == groups_.size()) {
      out->push_back(*mapping);
      return;
    }
    const Group& group = groups_[g];
    // Choose an injective assignment of query_refs into view_refs.
    std::vector<int32_t> chosen(group.query_refs.size(), -1);
    AssignGroup(group, 0, &chosen, mapping, g, out);
  }

  void AssignGroup(const Group& group, size_t qi, std::vector<int32_t>* chosen,
                   std::vector<int32_t>* mapping, size_t g,
                   std::vector<std::vector<int32_t>>* out) const {
    if (static_cast<int>(out->size()) >= limit_) return;
    if (qi == group.query_refs.size()) {
      Recurse(g + 1, mapping, out);
      return;
    }
    for (int32_t vref : group.view_refs) {
      if ((*mapping)[vref] != -1) continue;
      (*mapping)[vref] = group.query_refs[qi];
      (*chosen)[qi] = vref;
      AssignGroup(group, qi + 1, chosen, mapping, g, out);
      (*mapping)[vref] = -1;
      (*chosen)[qi] = -1;
    }
  }

  std::vector<Group> groups_;
  int num_view_refs_ = 0;
  int limit_;
  bool feasible_ = false;
};

/// Shape-based expression match "taking into account column equivalences"
/// (§3.1.2): texts equal, positionally paired columns equivalent.
bool ShapesEquivalent(const ExprShape& a, const ExprShape& b,
                      const EquivalenceClasses& classes) {
  if (a.text != b.text) return false;
  if (a.columns.size() != b.columns.size()) return false;
  for (size_t i = 0; i < a.columns.size(); ++i) {
    if (!classes.AreEquivalent(a.columns[i], b.columns[i])) return false;
  }
  return true;
}

}  // namespace

MatchResult ViewMatcher::Match(const SpjgQuery& query,
                               const ViewDefinition& view) const {
  // Aggregated views cannot answer pure SPJ queries: grouping collapses
  // duplicate rows (§3.3 requirement 3).
  if (view.query().is_aggregate && !query.is_aggregate) {
    return Reject(RejectReason::kViewMoreAggregated);
  }
  MappingEnumerator enumerator(query, view.query(),
                               options_.max_table_mappings);
  if (!enumerator.feasible()) return Reject(RejectReason::kSourceTables);

  MatchResult last = Reject(RejectReason::kSourceTables);
  for (const auto& mapping : enumerator.Enumerate()) {
    MatchResult r = MatchWithMapping(query, view, mapping);
    if (r.ok()) return r;
    last = std::move(r);
  }
  return last;
}

MatchResult ViewMatcher::MatchWithMapping(
    const SpjgQuery& query, const ViewDefinition& view,
    const std::vector<int32_t>& view_to_slot) const {
  const SpjgQuery& vq = view.query();
  const int num_query_tables = query.num_tables();

  // ---- 1. Translate the view into the query's table-reference space.
  // Mapped view refs take their query slot; extra refs get fresh slots.
  std::vector<int32_t> slot_of(vq.num_tables());
  std::vector<TableRef> unified_tables = query.tables;
  std::vector<int32_t> extra_slots;
  for (int32_t v = 0; v < vq.num_tables(); ++v) {
    if (view_to_slot[v] >= 0) {
      slot_of[v] = view_to_slot[v];
    } else {
      slot_of[v] = static_cast<int32_t>(unified_tables.size());
      unified_tables.push_back(vq.tables[v]);
      extra_slots.push_back(slot_of[v]);
    }
  }

  std::vector<ExprPtr> view_conjuncts;
  view_conjuncts.reserve(vq.conjuncts.size());
  for (const auto& c : vq.conjuncts) {
    view_conjuncts.push_back(c->RemapTableRefs(slot_of));
  }
  ClassifiedPredicates view_preds = ClassifyConjuncts(view_conjuncts);
  ClassifiedPredicates query_preds = ClassifyConjuncts(query.conjuncts);

  // Check constraints (§3.1.2): constraints on the query's tables hold on
  // every row, so they strengthen the antecedent of Wq => Wv. Equalities
  // also hold on the view's rows (same base tables) and are applied to
  // both sides; ranges and residuals only strengthen the query side, and
  // are never emitted as compensating predicates (they are tautologies
  // over the view's rows). CHECKs accept NULLs, so they are not
  // null-rejecting.
  ClassifiedPredicates check_preds;
  if (options_.use_check_constraints) {
    std::vector<ExprPtr> check_conjuncts;
    for (size_t t = 0; t < unified_tables.size(); ++t) {
      for (const auto& c :
           catalog_->table(unified_tables[t].table).check_constraints()) {
        std::vector<int32_t> self = {static_cast<int32_t>(t)};
        check_conjuncts.push_back(c->RemapTableRefs(self));
      }
    }
    check_preds = ClassifyConjuncts(check_conjuncts);
  }

  // ---- 2. View equivalence classes over the unified table space.
  EquivalenceClasses view_ec;
  for (size_t t = 0; t < unified_tables.size(); ++t) {
    view_ec.AddTableColumns(static_cast<int32_t>(t),
                            catalog_->table(unified_tables[t].table)
                                .num_columns());
  }
  view_ec.AddEqualities(view_preds.equalities);
  view_ec.AddEqualities(check_preds.equalities);

  // Null-rejecting columns of the query (for the nullable-FK relaxation).
  std::vector<ColumnRefId> null_rejected;
  if (options_.allow_nullable_fk_with_null_rejection) {
    for (const auto& p : query_preds.ranges) null_rejected.push_back(p.column);
    for (const auto& p : query_preds.equalities) {
      null_rejected.push_back(p.lhs);
      null_rejected.push_back(p.rhs);
    }
    for (const auto& r : query_preds.residual) {
      std::vector<ColumnRefId> cols;
      r->CollectColumnRefs(&cols);
      for (ColumnRefId c : cols) {
        if (IsNullRejectingOn(*r, c)) null_rejected.push_back(c);
      }
    }
  }

  // ---- 3. Eliminate extra tables through cardinality-preserving joins.
  std::vector<FkJoinEdge> eliminated_edges;
  if (!extra_slots.empty()) {
    FkGraphOptions fk_options;
    fk_options.allow_nullable_fk_with_null_rejection =
        options_.allow_nullable_fk_with_null_rejection;
    FkJoinGraph graph = FkJoinGraph::Build(*catalog_, unified_tables, view_ec,
                                           fk_options, &null_rejected);
    uint64_t keep_mask = 0;
    for (int i = 0; i < num_query_tables; ++i) keep_mask |= 1ULL << i;
    auto edges = graph.EliminateAllExcept(keep_mask);
    if (!edges.has_value()) {
      return Reject(RejectReason::kExtraTableElimination);
    }
    eliminated_edges = std::move(*edges);
  }

  // ---- 4. Query equivalence classes, extended with the join conditions
  // of the eliminated edges (§3.2: "we merely simulate the addition of
  // extra tables by updating query equivalence classes").
  EquivalenceClasses query_ec;
  for (size_t t = 0; t < unified_tables.size(); ++t) {
    query_ec.AddTableColumns(static_cast<int32_t>(t),
                             catalog_->table(unified_tables[t].table)
                                 .num_columns());
  }
  query_ec.AddEqualities(query_preds.equalities);
  query_ec.AddEqualities(check_preds.equalities);
  for (const FkJoinEdge& e : eliminated_edges) {
    for (size_t k = 0; k < e.fk->fk_columns.size(); ++k) {
      query_ec.AddEquality(ColumnRefId{e.from_ref, e.fk->fk_columns[k]},
                           ColumnRefId{e.to_ref, e.fk->key_columns[k]});
    }
  }

  // ---- Output-column routing infrastructure (§3.1.3, §3.1.4).
  // Simple view outputs by their source column in unified space; complex
  // view outputs by shape for exact-expression matching.
  struct SimpleOutput {
    ColumnRefId column;
    int ordinal;
  };
  std::vector<SimpleOutput> simple_outputs;
  struct ComplexOutput {
    ExprShape shape;
    int ordinal;
  };
  std::vector<ComplexOutput> complex_outputs;
  std::vector<ExprPtr> view_outputs_unified;
  for (size_t k = 0; k < vq.outputs.size(); ++k) {
    ExprPtr e = vq.outputs[k].expr->RemapTableRefs(slot_of);
    view_outputs_unified.push_back(e);
    if (e->kind() == ExprKind::kColumnRef) {
      simple_outputs.push_back({e->column_ref(), static_cast<int>(k)});
    } else {
      complex_outputs.push_back({ComputeShape(*e), static_cast<int>(k)});
    }
  }

  // Routes `col` to a simple view output equivalent under `ec`; -1 if none.
  auto route_column = [&](ColumnRefId col,
                          const EquivalenceClasses& ec) -> int {
    for (const auto& so : simple_outputs) {
      if (ec.AreEquivalent(so.column, col)) return so.ordinal;
    }
    return -1;
  };

  // Base-table backjoins (§7 extension, options_.enable_backjoins): if a
  // unique key of a view table is routable to view outputs (through the
  // *view* equivalence classes, so the key values in the view equal the
  // contributing base row's), the view can be re-joined to that table and
  // every column of the table becomes available as {1 + backjoin, col}.
  std::vector<BackjoinSpec> backjoins;
  std::vector<int32_t> backjoined_slot;
  auto backjoin_for_slot = [&](int32_t slot) -> int {
    for (size_t j = 0; j < backjoined_slot.size(); ++j) {
      if (backjoined_slot[j] == slot) return static_cast<int>(j);
    }
    const TableDef& t = catalog_->table(unified_tables[slot].table);
    for (const auto& key : t.unique_keys()) {
      std::vector<std::pair<int, ColumnOrdinal>> key_join;
      bool ok = true;
      for (ColumnOrdinal k : key) {
        int out = route_column(ColumnRefId{slot, k}, view_ec);
        if (out < 0) {
          ok = false;
          break;
        }
        key_join.emplace_back(out, k);
      }
      if (!ok) continue;
      backjoined_slot.push_back(slot);
      backjoins.push_back(BackjoinSpec{t.id(), std::move(key_join)});
      return static_cast<int>(backjoins.size()) - 1;
    }
    return -1;
  };
  // Routes `col` to a view output or (if enabled) a backjoined base
  // column; nullptr when neither is possible.
  auto route_extended = [&](ColumnRefId col,
                            const EquivalenceClasses& ec) -> ExprPtr {
    int out = route_column(col, ec);
    if (out >= 0) return Expr::MakeColumn(0, out);
    if (!options_.enable_backjoins) return nullptr;
    int j = backjoin_for_slot(col.table_ref);
    if (j >= 0) return Expr::MakeColumn(1 + j, col.column);
    int cls = ec.ClassOf(col);
    if (cls >= 0) {
      for (ColumnRefId m : ec.ClassMembers(cls)) {
        if (m.table_ref == col.table_ref) continue;
        j = backjoin_for_slot(m.table_ref);
        if (j >= 0) return Expr::MakeColumn(1 + j, m.column);
      }
    }
    return nullptr;
  };

  std::vector<ExprPtr> compensating;

  // ---- 5. Equijoin subsumption test (§3.1.2): every nontrivial view
  // equivalence class must be a subset of some query equivalence class.
  for (int vc : view_ec.NontrivialClasses()) {
    const auto& members = view_ec.ClassMembers(vc);
    int qc = query_ec.ClassOf(members[0]);
    for (size_t i = 1; i < members.size(); ++i) {
      if (query_ec.ClassOf(members[i]) != qc) {
        return Reject(RejectReason::kEquijoinSubsumption);
      }
    }
  }

  // Compensating column-equality predicates: whenever several view
  // classes map into one query class, chain them with equality
  // predicates, each routed through *view* equivalence classes.
  for (int qc = 0; qc < query_ec.NumClasses(); ++qc) {
    const auto& members = query_ec.ClassMembers(qc);
    if (members.size() < 2) continue;
    // Distinct view classes inside this query class, discovery order.
    std::vector<int> view_classes;
    for (ColumnRefId m : members) {
      int vc = view_ec.ClassOf(m);
      if (std::find(view_classes.begin(), view_classes.end(), vc) ==
          view_classes.end()) {
        view_classes.push_back(vc);
      }
    }
    if (view_classes.size() < 2) continue;
    // Route one output column per view class.
    std::vector<ExprPtr> routed;
    for (int vc : view_classes) {
      ExprPtr out = route_extended(view_ec.ClassMembers(vc)[0], view_ec);
      if (out == nullptr) {
        return Reject(RejectReason::kCompensationNotComputable);
      }
      routed.push_back(std::move(out));
    }
    for (size_t i = 0; i + 1 < routed.size(); ++i) {
      compensating.push_back(
          Expr::MakeCompare(CompareOp::kEq, routed[i], routed[i + 1]));
    }
  }

  // ---- 6. Range subsumption test (§3.1.2).
  RangeMap view_ranges = RangeMap::Build(view_preds.ranges, view_ec);
  RangeMap query_ranges = RangeMap::Build(query_preds.ranges, query_ec);
  // Check-strengthened ranges drive subsumption; the plain query ranges
  // drive compensation (check-implied bounds hold on the view's rows
  // already and need not — indeed must not — require output routing).
  std::vector<RangePred> checked_range_preds = query_preds.ranges;
  checked_range_preds.insert(checked_range_preds.end(),
                             check_preds.ranges.begin(),
                             check_preds.ranges.end());
  RangeMap query_ranges_checked =
      RangeMap::Build(checked_range_preds, query_ec);

  // Every constrained view range must contain the corresponding query
  // range (the query class containing the view class's columns).
  for (const auto& [vc, vrange] : view_ranges.ranges()) {
    ColumnRefId col = view_ec.ClassMembers(vc)[0];
    int qc = query_ec.ClassOf(col);
    ValueRange qrange = query_ranges_checked.Get(qc);
    if (!vrange.Contains(qrange)) {
      return Reject(RejectReason::kRangeSubsumption);
    }
  }

  // Compensating range predicates: for each constrained query class,
  // compare against the effective view range (intersection of the view
  // ranges of the view classes inside the query class) and enforce any
  // differing bound. Routed through *query* equivalence classes.
  for (const auto& [qc, qrange] : query_ranges.ranges()) {
    ValueRange effective;  // unconstrained
    const auto& members = query_ec.ClassMembers(qc);
    std::set<int> seen;
    for (ColumnRefId m : members) {
      int vc = view_ec.ClassOf(m);
      if (vc < 0 || !seen.insert(vc).second) continue;
      if (!view_ranges.HasConstraint(vc)) continue;
      ValueRange vr = view_ranges.Get(vc);
      // Intersect.
      if (!vr.lo.is_infinite) {
        effective.Apply(vr.lo.inclusive ? CompareOp::kGe : CompareOp::kGt,
                        vr.lo.value);
      }
      if (!vr.hi.is_infinite) {
        effective.Apply(vr.hi.inclusive ? CompareOp::kLe : CompareOp::kLt,
                        vr.hi.value);
      }
    }
    const bool need_lo = !qrange.SameLowerBound(effective);
    const bool need_hi = !qrange.SameUpperBound(effective);
    if (!need_lo && !need_hi) continue;
    ExprPtr col = route_extended(members[0], query_ec);
    if (col == nullptr) {
      return Reject(RejectReason::kCompensationNotComputable);
    }
    if (qrange.IsPoint()) {
      compensating.push_back(Expr::MakeCompare(
          CompareOp::kEq, col, Expr::MakeLiteral(qrange.lo.value)));
      continue;
    }
    if (need_lo && !qrange.lo.is_infinite) {
      compensating.push_back(Expr::MakeCompare(
          qrange.lo.inclusive ? CompareOp::kGe : CompareOp::kGt, col,
          Expr::MakeLiteral(qrange.lo.value)));
    }
    if (need_hi && !qrange.hi.is_infinite) {
      compensating.push_back(Expr::MakeCompare(
          qrange.hi.inclusive ? CompareOp::kLe : CompareOp::kLt, col,
          Expr::MakeLiteral(qrange.hi.value)));
    }
  }

  // ---- 7. Residual subsumption test (§3.1.2): every view residual must
  // match a query residual (shallow shape matching + column equivalence).
  std::vector<ExprShape> query_residual_shapes;
  query_residual_shapes.reserve(query_preds.residual.size());
  for (const auto& r : query_preds.residual) {
    query_residual_shapes.push_back(ComputeShape(*r));
  }
  std::vector<ExprShape> check_residual_shapes;
  for (const auto& r : check_preds.residual) {
    check_residual_shapes.push_back(ComputeShape(*r));
  }
  std::vector<bool> query_residual_matched(query_preds.residual.size(),
                                           false);
  for (const auto& vr : view_preds.residual) {
    ExprShape vshape = ComputeShape(*vr);
    bool matched = false;
    for (size_t i = 0; i < query_residual_shapes.size(); ++i) {
      if (ShapesEquivalent(vshape, query_residual_shapes[i], query_ec)) {
        query_residual_matched[i] = true;
        matched = true;
      }
    }
    // A check constraint in the antecedent can also discharge a view
    // residual (the view keeps rows the constraint guarantees anyway).
    if (!matched) {
      for (const auto& cs : check_residual_shapes) {
        if (ShapesEquivalent(vshape, cs, query_ec)) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) return Reject(RejectReason::kResidualSubsumption);
  }

  // Unmatched query residuals must be applied to the view; route their
  // columns through query equivalence classes (§3.1.3 type 3; like the
  // paper's prototype we require simple column routing).
  for (size_t i = 0; i < query_preds.residual.size(); ++i) {
    if (query_residual_matched[i]) continue;
    ExprPtr routed = query_preds.residual[i]->RewriteColumns(
        [&](ColumnRefId col) -> ExprPtr {
          return route_extended(col, query_ec);
        });
    if (routed == nullptr) {
      return Reject(RejectReason::kCompensationNotComputable);
    }
    compensating.push_back(std::move(routed));
  }

  // ---- 8. Output expressions (§3.1.4). `compute_expr` rewrites a query
  // expression (aggregate-free) over the view's output columns: exact
  // match against a view output first, then per-column routing.
  auto compute_expr = [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind() == ExprKind::kLiteral) return e;
    if (e->kind() == ExprKind::kColumnRef) {
      return route_extended(e->column_ref(), query_ec);
    }
    ExprShape shape = ComputeShape(*e);
    for (const auto& co : complex_outputs) {
      if (ShapesEquivalent(shape, co.shape, query_ec)) {
        return Expr::MakeColumn(0, co.ordinal);
      }
    }
    return e->RewriteColumns([&](ColumnRefId col) -> ExprPtr {
      return route_extended(col, query_ec);
    });
  };

  Substitute sub;
  sub.view_id = view.id();
  sub.predicates = std::move(compensating);

  if (!query.is_aggregate) {
    // SPJ query from SPJ view (aggregated views were rejected up front).
    for (const auto& o : query.outputs) {
      ExprPtr routed = compute_expr(o.expr);
      if (routed == nullptr) return Reject(RejectReason::kOutputNotComputable);
      sub.outputs.push_back(OutputExpr{o.name, std::move(routed)});
    }
    sub.needs_aggregation = false;
    sub.backjoins = std::move(backjoins);
    MatchResult result;
    result.substitute = std::move(sub);
    return result;
  }

  // ---- 9. Aggregation handling (§3.3).
  const bool view_aggregated = vq.is_aggregate;
  bool regroup = true;

  // Find the count(*) output of an aggregation view.
  int count_ordinal = -1;
  // View group-by expressions in unified space + their output ordinals.
  struct ViewGrouping {
    ExprShape shape;
    int ordinal;  // view output ordinal (group-by exprs are outputs)
  };
  std::vector<ViewGrouping> view_groupings;
  // View SUM/MIN/MAX outputs by the shape of their argument.
  struct ViewAgg {
    AggKind kind;
    ExprShape arg_shape;
    int ordinal;
  };
  std::vector<ViewAgg> view_aggs;

  if (view_aggregated) {
    for (size_t k = 0; k < view_outputs_unified.size(); ++k) {
      const ExprPtr& e = view_outputs_unified[k];
      if (e->kind() == ExprKind::kAggregate) {
        if (e->agg_kind() == AggKind::kCountStar) {
          count_ordinal = static_cast<int>(k);
        } else {
          view_aggs.push_back({e->agg_kind(), ComputeShape(*e->child(0)),
                               static_cast<int>(k)});
        }
      }
    }
    for (const auto& g : vq.group_by) {
      ExprPtr unified = g->RemapTableRefs(slot_of);
      ExprShape shape = ComputeShape(*unified);
      // Locate the output ordinal carrying this grouping expression.
      int ordinal = -1;
      for (size_t k = 0; k < view_outputs_unified.size(); ++k) {
        if (view_outputs_unified[k]->Equals(*unified)) {
          ordinal = static_cast<int>(k);
          break;
        }
      }
      assert(ordinal >= 0 && "validated views output all grouping exprs");
      view_groupings.push_back({std::move(shape), ordinal});
    }

    // Grouping containment (§3.3 requirement 3): every query group-by
    // expression must match some view group-by expression. With backjoins
    // enabled, the Yan–Larson relaxation applies (§6): it suffices that
    // the view's grouping functionally determines the expression — and
    // everything routable for an aggregation view is per-group constant
    // (simple outputs are grouping columns; backjoins are keyed by them),
    // so "routable" is exactly "functionally determined".
    bool fd_extra_grouping = false;
    std::vector<bool> view_grouping_used(view_groupings.size(), false);
    for (const auto& g : query.group_by) {
      ExprShape shape = ComputeShape(*g);
      // Prefer an unused view grouping: equated grouping columns (e.g.
      // l_orderkey and o_orderkey under the join) all match the same
      // query expression, and greedily re-consuming the first would
      // force a needless regroup.
      int match = -1;
      for (size_t k = 0; k < view_groupings.size(); ++k) {
        if (ShapesEquivalent(shape, view_groupings[k].shape, query_ec)) {
          match = static_cast<int>(k);
          if (!view_grouping_used[k]) break;
        }
      }
      bool found = match >= 0;
      if (found) view_grouping_used[match] = true;
      if (!found) {
        bool determined = false;
        if (options_.enable_backjoins) {
          ExprPtr routed =
              g->RewriteColumns([&](ColumnRefId col) -> ExprPtr {
                return route_extended(col, query_ec);
              });
          determined = routed != nullptr;
        }
        if (!determined) return Reject(RejectReason::kGroupingMismatch);
        fd_extra_grouping = true;
      }
    }
    // Equal grouping lists -> no further aggregation needed.
    regroup = fd_extra_grouping;
    for (bool used : view_grouping_used) {
      if (!used) {
        regroup = true;
        break;
      }
    }
  }

  // Compensating group-by: the query's grouping expressions over view
  // outputs. Needed when the view is unaggregated or strictly coarser
  // grouping is required.
  const bool needs_aggregation = !view_aggregated || regroup;
  if (needs_aggregation) {
    for (const auto& g : query.group_by) {
      ExprPtr routed = compute_expr(g);
      if (routed == nullptr) return Reject(RejectReason::kOutputNotComputable);
      sub.group_by.push_back(std::move(routed));
    }
  }
  sub.needs_aggregation = needs_aggregation;

  // Query outputs: grouping expressions and aggregates.
  for (const auto& o : query.outputs) {
    const Expr& e = *o.expr;
    if (e.kind() != ExprKind::kAggregate) {
      ExprPtr routed = compute_expr(o.expr);
      if (routed == nullptr) return Reject(RejectReason::kOutputNotComputable);
      sub.outputs.push_back(OutputExpr{o.name, std::move(routed)});
      continue;
    }
    const AggKind kind = e.agg_kind();
    if (!options_.allow_min_max &&
        (kind == AggKind::kMin || kind == AggKind::kMax)) {
      return Reject(RejectReason::kAggregateNotComputable);
    }
    if (!view_aggregated) {
      // Compensating aggregation over an SPJ view: rewrite the argument.
      ExprPtr arg;
      if (kind != AggKind::kCountStar) {
        arg = compute_expr(e.child(0));
        if (arg == nullptr) {
          return Reject(RejectReason::kAggregateNotComputable);
        }
      }
      sub.outputs.push_back(
          OutputExpr{o.name, Expr::MakeAggregate(kind, std::move(arg))});
      continue;
    }
    // Aggregation view.
    auto find_view_agg = [&](AggKind k, const Expr& arg) -> int {
      ExprShape shape = ComputeShape(arg);
      for (const auto& va : view_aggs) {
        if (va.kind == k && ShapesEquivalent(shape, va.arg_shape, query_ec)) {
          return va.ordinal;
        }
      }
      return -1;
    };
    switch (kind) {
      case AggKind::kCountStar: {
        if (count_ordinal < 0) {
          return Reject(RejectReason::kAggregateNotComputable);
        }
        ExprPtr cnt = Expr::MakeColumn(0, count_ordinal);
        sub.outputs.push_back(OutputExpr{
            o.name, regroup ? Expr::MakeAggregate(AggKind::kSum, cnt) : cnt});
        break;
      }
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax: {
        int ordinal = find_view_agg(kind, *e.child(0));
        if (ordinal < 0) {
          return Reject(RejectReason::kAggregateNotComputable);
        }
        ExprPtr col = Expr::MakeColumn(0, ordinal);
        ExprPtr out = col;
        if (regroup) {
          // SUM rolls up with SUM; MIN/MAX with themselves.
          out = Expr::MakeAggregate(kind == AggKind::kSum ? AggKind::kSum
                                                          : kind,
                                    col);
        }
        sub.outputs.push_back(OutputExpr{o.name, std::move(out)});
        break;
      }
      case AggKind::kAvg: {
        // AVG(E) = SUM(E) / count (§3.3).
        int sum_ordinal = find_view_agg(AggKind::kSum, *e.child(0));
        if (sum_ordinal < 0 || count_ordinal < 0) {
          return Reject(RejectReason::kAggregateNotComputable);
        }
        ExprPtr sum_col = Expr::MakeColumn(0, sum_ordinal);
        ExprPtr cnt_col = Expr::MakeColumn(0, count_ordinal);
        ExprPtr out;
        if (regroup) {
          out = Expr::MakeArith(
              ArithOp::kDiv, Expr::MakeAggregate(AggKind::kSum, sum_col),
              Expr::MakeAggregate(AggKind::kSum, cnt_col));
        } else {
          out = Expr::MakeArith(ArithOp::kDiv, sum_col, cnt_col);
        }
        sub.outputs.push_back(OutputExpr{o.name, std::move(out)});
        break;
      }
    }
  }

  sub.backjoins = std::move(backjoins);
  MatchResult result;
  result.substitute = std::move(sub);
  return result;
}

}  // namespace mvopt
