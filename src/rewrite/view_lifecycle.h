// Per-view lifecycle state machine unifying freshness tracking, the
// enforce-mode quarantine and the content-checksum circuit breaker:
//
//                 base-table update          refresh (maintenance)
//        FRESH ─────────────────────▶ STALE ─────────────────────▶ FRESH
//          │                            │
//          │  verify-failure streak ≥ quarantine threshold
//          ▼                            ▼
//      QUARANTINED ◀────────────────────┘
//          │  streak ≥ disable threshold, or content-checksum mismatch
//          ▼
//       DISABLED
//          │  revalidation pass succeeds (exponential backoff between
//          ▼  attempts; also readmits QUARANTINED views)
//        FRESH
//
// FRESH views match normally. STALE views are skipped (RejectReason::
// kStale) unless the query opts into a bounded staleness tolerance, in
// which case their substitutes are down-ranked behind fresh ones.
// QUARANTINED and DISABLED views never match until readmitted.
//
// Thread-safety: the registry is *internally* synchronized. Entries are
// fixed-size chunks of atomics published through acquire/release chunk
// pointers, so every per-view read or CAS transition is lock-free and
// may run from any thread — probe threads under the service's shared
// lock, the engine-side ViewMaintainer with no service lock at all.
// Growth (EnsureSize) takes the registry's own growth mutex and
// publishes the new size last, so a concurrent reader either sees a
// fully-constructed entry or treats the id as out of range; it never
// observes a half-built chunk. (The previous design kept entries in a
// deque grown under the owning service's exclusive lock, which made
// every maintenance-side call a growth/read race — the kind of
// convention the thread-safety annotations now refuse to compile.)

#ifndef MVOPT_REWRITE_VIEW_LIFECYCLE_H_
#define MVOPT_REWRITE_VIEW_LIFECYCLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "common/enum_coverage.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "observe/metrics.h"
#include "query/view_def.h"

namespace mvopt {

enum class ViewState : uint8_t {
  kFresh = 0,
  kStale = 1,
  kQuarantined = 2,
  kDisabled = 3,
};

inline constexpr int kNumViewStates = 4;
static_assert(static_cast<int>(ViewState::kDisabled) + 1 == kNumViewStates,
              "kNumViewStates must cover every ViewState");

/// Exhaustive (switch-based, no default) so a new ViewState without a
/// name is a -Wswitch error; the static_assert below proves every value
/// maps to a real name even in builds that demote the warning.
constexpr const char* ViewStateName(ViewState state) {
  switch (state) {
    case ViewState::kFresh:
      return "fresh";
    case ViewState::kStale:
      return "stale";
    case ViewState::kQuarantined:
      return "quarantined";
    case ViewState::kDisabled:
      return "disabled";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<ViewState, ViewStateName>(kNumViewStates),
              "every ViewState needs a ViewStateName entry");

class ViewLifecycleRegistry {
 public:
  /// Value snapshot of one view's lifecycle entry.
  struct Snapshot {
    ViewState state = ViewState::kFresh;
    uint64_t epoch = 0;
    uint64_t content_checksum = 0;
    int32_t failure_streak = 0;
    int64_t next_retry_tick = 0;
    int64_t retry_backoff = 1;
  };

  ViewLifecycleRegistry() = default;
  ~ViewLifecycleRegistry();
  ViewLifecycleRegistry(const ViewLifecycleRegistry&) = delete;
  ViewLifecycleRegistry& operator=(const ViewLifecycleRegistry&) = delete;

  /// Grows the registry to cover `n` views. Safe to call concurrently
  /// with readers and with other EnsureSize calls (growth serializes on
  /// the registry's own mutex); never shrinks.
  void EnsureSize(size_t n) MVOPT_EXCLUDES(growth_mu_);
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Hard capacity (chunk directory is a fixed array so lookups stay
  /// lock-free); EnsureSize beyond this throws std::length_error.
  static constexpr size_t kMaxViews = size_t{1} << 20;

  ViewState state(ViewId id) const;
  /// Matchable without any staleness tolerance.
  bool IsFresh(ViewId id) const { return state(id) == ViewState::kFresh; }
  /// Skipped unconditionally (quarantined or disabled).
  bool IsSidelined(ViewId id) const;

  uint64_t epoch(ViewId id) const;
  uint64_t checksum(ViewId id) const;
  Snapshot snapshot(ViewId id) const;

  /// Refresh: the view's contents now reflect global epoch `epoch`.
  /// Resets the failure streak and returns the view to FRESH from FRESH
  /// or STALE (a quarantined/disabled view stays sidelined — data
  /// freshness does not clear a circuit breaker).
  void MarkFresh(ViewId id, uint64_t epoch);
  void SetChecksum(ViewId id, uint64_t checksum);

  /// Probe-side observation that the view lags its base tables
  /// (FRESH -> STALE; no-op in any other state).
  void MarkStale(ViewId id);

  /// One candidate's fate at the pipeline's prefilter stage.
  enum class ProbeGate : uint8_t {
    kAdmit = 0,    ///< fresh (or lag 0): matches normally
    kAdmitStale,   ///< lag within tolerance: match, down-rank the result
    kRejectStale,  ///< lag beyond tolerance: RejectReason::kStale
    kSidelined,    ///< quarantined/disabled: skipped unconditionally
  };

  /// The prefilter decision for one candidate, combining the sidelined
  /// screen with the staleness gate; performs the opportunistic
  /// FRESH -> STALE transition when a lag is observed. Safe under the
  /// service's shared lock from any number of probe threads.
  ProbeGate GateForProbe(ViewId id, uint64_t lag, uint64_t tolerance);

  /// Records a soundness-checker rejection. With `quarantine_threshold`
  /// > 0, a streak of that many rejections moves FRESH/STALE ->
  /// QUARANTINED; with `disable_threshold` > 0, a streak of that many
  /// moves to DISABLED. Returns true when the state changed.
  bool ReportVerifyFailure(ViewId id, int quarantine_threshold,
                           int disable_threshold);
  /// A proven substitute resets the failure streak.
  void ReportVerifySuccess(ViewId id);

  /// Content checksum mismatch: trips the circuit breaker (-> DISABLED)
  /// from any state. Returns true when the state changed.
  bool ReportChecksumMismatch(ViewId id);

  /// Forces the view out of rotation (-> DISABLED), e.g. a recovered
  /// entry whose definition replays but whose data is unavailable.
  bool Disable(ViewId id);

  /// Readmission: QUARANTINED/DISABLED -> FRESH with the given epoch;
  /// streak and backoff reset. Returns false if the view was not
  /// sidelined.
  bool Readmit(ViewId id, uint64_t epoch);

  /// Restores a recovered entry verbatim (startup only).
  void Restore(ViewId id, const Snapshot& snapshot);

  /// Exponential-backoff schedule for the revalidation pass, measured in
  /// revalidation ticks so tests replay deterministically.
  bool DueForRetry(ViewId id, int64_t tick) const;
  void RecordRetryFailure(ViewId id, int64_t tick);

  /// Gauges. Maintained incrementally by every *successful* state
  /// transition (the CAS winner adjusts exactly its from→to delta, and
  /// Restore adjusts from the exchanged-out previous state, so no
  /// interleaving can make the totals drift from the authoritative
  /// per-entry states once in-flight calls retire).
  int64_t num_quarantined() const {
    return state_counts_[static_cast<size_t>(ViewState::kQuarantined)].load(
        std::memory_order_relaxed);
  }
  int64_t num_disabled() const {
    return state_counts_[static_cast<size_t>(ViewState::kDisabled)].load(
        std::memory_order_relaxed);
  }
  /// Quarantined + disabled (the views probes skip unconditionally).
  int64_t num_sidelined() const {
    return num_quarantined() + num_disabled();
  }

  /// Authoritative count derived from the per-entry states. Safe from
  /// any thread, but only a point-in-time figure unless the caller has
  /// quiesced transitions.
  int64_t CountState(ViewState state) const;

  /// Reconciles the incremental gauges against the authoritative state
  /// map: returns true when they already agreed, false after resyncing a
  /// drifted gauge. Called (and asserted) by
  /// MatchingService::RevalidationTick under the exclusive lock, when no
  /// transition can be in flight.
  bool AuditCounters();

  /// Observability: counts every state transition on the counter of its
  /// destination state (nullptr slots are skipped). Wire before
  /// concurrent use.
  void set_transition_counters(
      const std::array<Counter*, kNumViewStates>& to_state) {
    transition_counters_ = to_state;
  }

 private:
  struct Entry {
    std::atomic<uint8_t> state{0};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> checksum{0};
    std::atomic<int32_t> failure_streak{0};
    std::atomic<int64_t> next_retry_tick{0};
    std::atomic<int64_t> retry_backoff{1};
  };
  static constexpr int64_t kMaxBackoff = 64;

  /// Entries live in fixed-size chunks so their atomics never move and a
  /// reader can reach any live entry with two acquire loads (size, then
  /// chunk pointer) and no lock.
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 256
  static constexpr size_t kMaxChunks = kMaxViews / kChunkSize;

  struct Chunk {
    std::array<Entry, kChunkSize> entries{};
  };

  /// The live entry for `id`, or nullptr when id is out of range. The
  /// publication order in EnsureSize (chunk pointer with release, then
  /// size with release) guarantees that any id below the acquired size
  /// has a fully-constructed chunk behind it.
  Entry* FindEntry(ViewId id) const;

  /// CAS transition keeping the state gauges consistent; returns true
  /// when `id` moved from `from` to `to`.
  bool Transition(Entry& e, ViewState from, ViewState to);
  void AdjustCounters(ViewState from, ViewState to);

  /// Serializes growth (chunk allocation + size publication) only; no
  /// reader or transition path ever takes it.
  Mutex growth_mu_;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
  /// Live entries per state (new entries are born FRESH).
  std::array<std::atomic<int64_t>, kNumViewStates> state_counts_{};
  std::array<Counter*, kNumViewStates> transition_counters_{};
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_VIEW_LIFECYCLE_H_
