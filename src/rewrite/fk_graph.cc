#include "rewrite/fk_graph.h"

#include <algorithm>
#include <cassert>

namespace mvopt {

FkJoinGraph FkJoinGraph::Build(const Catalog& catalog,
                               const std::vector<TableRef>& tables,
                               const EquivalenceClasses& classes,
                               const FkGraphOptions& options,
                               const std::vector<ColumnRefId>* null_rejected) {
  FkJoinGraph g;
  g.num_nodes_ = static_cast<int>(tables.size());
  assert(g.num_nodes_ <= 64);

  auto column_null_rejected = [&](ColumnRefId col) {
    if (null_rejected == nullptr) return false;
    return std::find(null_rejected->begin(), null_rejected->end(), col) !=
           null_rejected->end();
  };

  for (int i = 0; i < g.num_nodes_; ++i) {
    const TableDef& ti = catalog.table(tables[i].table);
    for (const ForeignKeyDef& fk : ti.foreign_keys()) {
      for (int j = 0; j < g.num_nodes_; ++j) {
        if (i == j || fk.referenced_table != tables[j].table) continue;
        // Referenced columns must form (cover) a unique key of Tj.
        const TableDef& tj = catalog.table(tables[j].table);
        if (!tj.CoversUniqueKey(fk.key_columns)) continue;
        // Every FK column must be non-null (or null-rejected by the
        // expression) and equated with its key column, directly or
        // transitively via equivalence classes.
        bool ok = true;
        for (size_t k = 0; k < fk.fk_columns.size(); ++k) {
          ColumnRefId fcol{i, fk.fk_columns[k]};
          ColumnRefId kcol{j, fk.key_columns[k]};
          if (!ti.column(fk.fk_columns[k]).not_null) {
            const bool relaxed =
                options.optimistic_nullable_fk ||
                (options.allow_nullable_fk_with_null_rejection &&
                 column_null_rejected(fcol));
            if (!relaxed) {
              ok = false;
              break;
            }
          }
          if (!classes.AreEquivalent(fcol, kcol)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        // Deduplicate parallel edges between the same slot pair.
        bool dup = false;
        for (const auto& e : g.edges_) {
          if (e.from_ref == i && e.to_ref == j) {
            dup = true;
            break;
          }
        }
        if (!dup) g.edges_.push_back(FkJoinEdge{i, j, &fk});
      }
    }
  }
  return g;
}

namespace {

// Shared elimination loop. Deletes any remaining node outside `keep_mask`
// that has no outgoing edges and exactly one incoming edge (both counted
// among remaining nodes); records used edges in order if `used` != null.
uint64_t RunElimination(int num_nodes, const std::vector<FkJoinEdge>& edges,
                        uint64_t keep_mask, std::vector<FkJoinEdge>* used) {
  uint64_t alive = (num_nodes >= 64) ? ~0ULL : ((1ULL << num_nodes) - 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < num_nodes; ++v) {
      uint64_t bit = 1ULL << v;
      if (!(alive & bit) || (keep_mask & bit)) continue;
      int out_deg = 0;
      int in_deg = 0;
      const FkJoinEdge* in_edge = nullptr;
      for (const auto& e : edges) {
        uint64_t from_bit = 1ULL << e.from_ref;
        uint64_t to_bit = 1ULL << e.to_ref;
        if (!(alive & from_bit) || !(alive & to_bit)) continue;
        if (e.from_ref == v) ++out_deg;
        if (e.to_ref == v) {
          ++in_deg;
          in_edge = &e;
        }
      }
      if (out_deg == 0 && in_deg == 1) {
        alive &= ~bit;
        if (used != nullptr) used->push_back(*in_edge);
        changed = true;
      }
    }
  }
  return alive;
}

}  // namespace

std::optional<std::vector<FkJoinEdge>> FkJoinGraph::EliminateAllExcept(
    uint64_t keep_mask) const {
  std::vector<FkJoinEdge> used;
  uint64_t alive = RunElimination(num_nodes_, edges_, keep_mask, &used);
  uint64_t all = (num_nodes_ >= 64) ? ~0ULL : ((1ULL << num_nodes_) - 1);
  if (alive != (keep_mask & all)) return std::nullopt;
  return used;
}

uint64_t FkJoinGraph::ComputeHub(uint64_t protect_mask) const {
  return RunElimination(num_nodes_, edges_, protect_mask, nullptr);
}

uint64_t FkJoinGraph::AliveAfterElimination(
    int num_nodes, const std::vector<FkJoinEdge>& edges, uint64_t keep_mask) {
  return RunElimination(num_nodes, edges, keep_mask, nullptr);
}

}  // namespace mvopt
