// Range intervals for the range subsumption test (§3.1.2).
//
// Each (query or view) equivalence class gets a range [lo, hi] with
// independently open/closed/infinite bounds, built by folding the range
// predicates referencing columns of the class. (Ti.Cp = c) sets both
// bounds; < / <= / > / >= tighten one side.

#ifndef MVOPT_REWRITE_RANGE_H_
#define MVOPT_REWRITE_RANGE_H_

#include <map>
#include <string>
#include <vector>

#include "expr/classify.h"
#include "rewrite/equiv.h"

namespace mvopt {

/// One endpoint of a range.
struct RangeBound {
  Value value;            ///< meaningful only when !is_infinite
  bool inclusive = true;  ///< closed endpoint?
  bool is_infinite = true;
};

/// A (possibly unbounded, possibly empty) interval.
struct ValueRange {
  RangeBound lo;
  RangeBound hi;

  bool IsUnconstrained() const { return lo.is_infinite && hi.is_infinite; }

  /// Tightens the range with `col op bound`.
  void Apply(CompareOp op, const Value& bound);

  /// True if this range contains `other` (this ⊇ other), the subsumption
  /// direction required of a view range vs. the query range.
  bool Contains(const ValueRange& other) const;

  /// True if no value can satisfy the range (contradictory predicates).
  bool IsEmpty() const;

  /// True if the range pins a single value [c, c].
  bool IsPoint() const;

  /// Bound-wise equality (same endpoints and openness).
  bool SameLowerBound(const ValueRange& other) const;
  bool SameUpperBound(const ValueRange& other) const;

  std::string ToString() const;
};

/// Bound orderings (shared with the union-substitute matcher).
/// LowerBoundTighter(a, b): a is a stricter lower bound than b.
bool LowerBoundTighter(const RangeBound& a, const RangeBound& b);
/// UpperBoundTighter(a, b): a is a stricter upper bound than b.
bool UpperBoundTighter(const RangeBound& a, const RangeBound& b);

/// Ranges keyed by equivalence-class id.
class RangeMap {
 public:
  /// Folds `preds` into per-class ranges using `classes` for lookup.
  static RangeMap Build(const std::vector<RangePred>& preds,
                        const EquivalenceClasses& classes);

  /// Range of class `class_id`; unconstrained if absent.
  ValueRange Get(int class_id) const;

  bool HasConstraint(int class_id) const {
    return ranges_.find(class_id) != ranges_.end();
  }

  /// Ordered by class id: iteration order is deterministic, which the
  /// matcher (and the compiled match programs, rewrite/match_program.h)
  /// rely on for a stable compensating-predicate emission order.
  const std::map<int, ValueRange>& ranges() const { return ranges_; }

 private:
  std::map<int, ValueRange> ranges_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_RANGE_H_
