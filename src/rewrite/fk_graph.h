// Foreign-key join graph (§3.2): recognizing cardinality-preserving joins
// so a view referencing extra tables can still answer a query.
//
// Nodes are the table references of an SPJG expression. There is an edge
// Ti -> Tj when the expression specifies (directly or transitively, via
// equivalence classes) an equijoin from a foreign key of Ti to a unique
// key of Tj satisfying all five requirements: equijoin, all key columns,
// non-null FK columns, declared foreign key, unique referenced key.
//
// The §3.2 relaxation is supported: an FK column that allows nulls is
// acceptable when the (query) expression contains a null-rejecting
// predicate on that column.

#ifndef MVOPT_REWRITE_FK_GRAPH_H_
#define MVOPT_REWRITE_FK_GRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "query/spjg.h"
#include "rewrite/equiv.h"

namespace mvopt {

/// One cardinality-preserving join edge.
struct FkJoinEdge {
  int32_t from_ref = -1;  ///< referencing table slot (the surviving side)
  int32_t to_ref = -1;    ///< referenced table slot (eliminable side)
  const ForeignKeyDef* fk = nullptr;  ///< owned by the catalog
};

/// Options controlling edge admission.
struct FkGraphOptions {
  /// Allow an FK column that permits nulls when `null_rejected_columns`
  /// marks it (paper §3.2 last paragraph, flag-guarded extension).
  bool allow_nullable_fk_with_null_rejection = false;
  /// Treat every nullable FK column as acceptable. Used when computing
  /// view hubs: the query (unknown at that point) may supply the
  /// null-rejecting predicate, and an optimistically smaller hub can only
  /// admit more candidates, never reject a valid one.
  bool optimistic_nullable_fk = false;
};

class FkJoinGraph {
 public:
  /// Builds the graph for `tables` (slots 0..n-1 of some SPJG expression)
  /// using equalities captured in `classes`. `null_rejected` (optional,
  /// same indexing as column refs) marks columns with null-rejecting
  /// predicates for the nullable-FK relaxation.
  static FkJoinGraph Build(
      const Catalog& catalog, const std::vector<TableRef>& tables,
      const EquivalenceClasses& classes, const FkGraphOptions& options = {},
      const std::vector<ColumnRefId>* null_rejected = nullptr);

  /// Tries to eliminate every node whose bit is NOT set in `keep_mask` by
  /// repeatedly deleting nodes with no outgoing edges and exactly one
  /// incoming edge. Returns the edges used, in elimination order, or
  /// nullopt if some node outside `keep_mask` could not be eliminated.
  std::optional<std::vector<FkJoinEdge>> EliminateAllExcept(
      uint64_t keep_mask) const;

  /// Runs elimination as far as possible, never eliminating nodes whose
  /// bit is set in `protect_mask`; returns the bitmask of surviving nodes
  /// (the hub, §4.2.2).
  uint64_t ComputeHub(uint64_t protect_mask) const;

  /// The surviving-node mask of the shared elimination loop over an
  /// explicit edge list (edges' `fk` payload is not consulted). The
  /// fixpoint is order- and labeling-independent — deleting a node never
  /// disables another deletion, because a node with an alive outgoing
  /// edge is itself undeletable — so callers holding edges in a
  /// different (but isomorphic) slot space get the corresponding result.
  /// Exposed for precompiled match programs (rewrite/match_program.cc).
  static uint64_t AliveAfterElimination(int num_nodes,
                                        const std::vector<FkJoinEdge>& edges,
                                        uint64_t keep_mask);

  const std::vector<FkJoinEdge>& edges() const { return edges_; }
  int num_nodes() const { return num_nodes_; }

 private:
  int num_nodes_ = 0;
  std::vector<FkJoinEdge> edges_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_FK_GRAPH_H_
