// Precomputed descriptions of views and queries (§4: "we maintain in
// memory a description of every materialized view"). Descriptions carry
// the key sets the filter tree partitions on: source tables, hubs,
// extended output/grouping column lists, residual/output/grouping
// expression texts, and range-constraint lists.
//
// Column identities are flattened to catalog granularity (table id +
// column ordinal) for indexing; per-reference precision is restored by the
// full matching tests, so the filter conditions stay necessary conditions.

#ifndef MVOPT_REWRITE_VIEW_DESCRIPTION_H_
#define MVOPT_REWRITE_VIEW_DESCRIPTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/spjg.h"
#include "query/view_def.h"

namespace mvopt {

/// Catalog-level column identity used as filter-tree key atoms.
inline uint32_t CatalogColId(TableId table, ColumnOrdinal column) {
  return (static_cast<uint32_t>(table) << 12) | static_cast<uint32_t>(column);
}

/// Per-view metadata for filtering (computed once at view registration).
struct ViewDescription {
  ViewId id = kInvalidViewId;
  bool is_aggregate = false;

  /// Sorted unique catalog ids of referenced tables (§4.2.1).
  std::vector<TableId> source_tables;
  /// The hub: tables that cannot be eliminated via cardinality-preserving
  /// joins, with the §4.2.2 refinement protecting predicate-constrained
  /// tables (sorted unique).
  std::vector<TableId> hub;
  /// Extended output column list: every column equivalent (view classes)
  /// to a simple output column (§4.2.3); sorted unique catalog ids.
  std::vector<uint32_t> extended_output_columns;
  /// Texts of non-simple output expressions, aggregates included (§4.2.7).
  std::vector<std::string> output_expr_texts;
  /// Residual predicate texts (§4.2.6).
  std::vector<std::string> residual_texts;
  /// Reduced range constraint list: catalog ids of range-constrained
  /// columns in trivial equivalence classes (§4.2.5 weak condition).
  std::vector<uint32_t> reduced_range_columns;
  /// Full range constraint list: one column set per range-constrained
  /// view equivalence class (§4.2.5 full condition).
  std::vector<std::vector<uint32_t>> range_constrained_classes;
  /// Extended grouping column list (§4.2.4); aggregation views only.
  std::vector<uint32_t> extended_grouping_columns;
  /// Grouping expression texts, "$" for plain columns (§4.2.8).
  std::vector<std::string> grouping_expr_texts;
};

/// Per-query search keys, computed once per view-matching invocation.
struct QueryDescription {
  bool is_aggregate = false;

  std::vector<TableId> source_tables;
  /// One entry per column that must be routable to a view output when the
  /// view is an SPJ view: the catalog ids of the column's query
  /// equivalence class. Covers simple outputs, simple aggregate
  /// arguments, and simple grouping expressions.
  std::vector<std::vector<uint32_t>> output_column_classes_spj;
  /// Same, for aggregation views (aggregate arguments excluded — they map
  /// to the view's aggregate outputs, not plain columns).
  std::vector<std::vector<uint32_t>> output_column_classes_agg;
  /// Texts of complex non-aggregate output expressions.
  std::vector<std::string> output_expr_texts;
  /// Normalized aggregate output texts an aggregation view must provide
  /// (SUM text for SUM and AVG; MIN/MAX texts; count(*) excluded since
  /// every materialized aggregation view carries one).
  std::vector<std::string> agg_expr_texts;
  std::vector<std::string> residual_texts;
  /// Extended range constraint list: catalog ids of every column in a
  /// range-constrained query equivalence class.
  std::vector<uint32_t> extended_range_columns;
  /// Grouping-column classes (simple grouping expressions only).
  std::vector<std::vector<uint32_t>> grouping_column_classes;
  /// All grouping expression texts.
  std::vector<std::string> grouping_expr_texts;
};

/// Computes a view's description (in the view's own reference space).
ViewDescription DescribeView(const Catalog& catalog,
                             const ViewDefinition& view);

/// Computes a query's search keys.
QueryDescription DescribeQuery(const Catalog& catalog,
                               const SpjgQuery& query);

}  // namespace mvopt

#endif  // MVOPT_REWRITE_VIEW_DESCRIPTION_H_
