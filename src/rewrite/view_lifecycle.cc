#include "rewrite/view_lifecycle.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mvopt {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

ViewLifecycleRegistry::~ViewLifecycleRegistry() {
  for (std::atomic<Chunk*>& slot : chunks_) {
    delete slot.load(kRelaxed);
  }
}

ViewLifecycleRegistry::Entry* ViewLifecycleRegistry::FindEntry(
    ViewId id) const {
  if (id < 0) return nullptr;
  const size_t index = static_cast<size_t>(id);
  if (index >= size_.load(std::memory_order_acquire)) return nullptr;
  Chunk* chunk = chunks_[index >> kChunkShift].load(std::memory_order_acquire);
  assert(chunk != nullptr);  // publication order: chunk before size
  return &chunk->entries[index & (kChunkSize - 1)];
}

void ViewLifecycleRegistry::EnsureSize(size_t n) {
  if (n > kMaxViews) {
    throw std::length_error("ViewLifecycleRegistry: capacity exceeded");
  }
  MutexLock lock(growth_mu_);
  const size_t old_size = size_.load(kRelaxed);
  if (n <= old_size) return;
  // Install every chunk needed to back [0, n) before publishing the new
  // size; a reader that acquires the size is then guaranteed to acquire
  // a fully-constructed chunk.
  const size_t last_chunk = (n - 1) >> kChunkShift;
  for (size_t c = old_size >> kChunkShift; c <= last_chunk; ++c) {
    if (chunks_[c].load(kRelaxed) == nullptr) {
      chunks_[c].store(new Chunk(), std::memory_order_release);
    }
  }
  size_.store(n, std::memory_order_release);
  state_counts_[static_cast<size_t>(ViewState::kFresh)].fetch_add(
      static_cast<int64_t>(n - old_size), kRelaxed);
}

int64_t ViewLifecycleRegistry::CountState(ViewState state) const {
  const size_t n = size_.load(std::memory_order_acquire);
  int64_t count = 0;
  for (size_t i = 0; i < n; i += kChunkSize) {
    const Chunk* chunk =
        chunks_[i >> kChunkShift].load(std::memory_order_acquire);
    const size_t limit = std::min(kChunkSize, n - i);
    for (size_t j = 0; j < limit; ++j) {
      if (static_cast<ViewState>(chunk->entries[j].state.load(kRelaxed)) ==
          state) {
        ++count;
      }
    }
  }
  return count;
}

bool ViewLifecycleRegistry::AuditCounters() {
  bool consistent = true;
  for (int s = 0; s < kNumViewStates; ++s) {
    const int64_t actual = CountState(static_cast<ViewState>(s));
    // Self-healing: resync the gauge to the authoritative state map so a
    // historical drift never stays permanent.
    if (state_counts_[s].exchange(actual, kRelaxed) != actual) {
      consistent = false;
    }
  }
  return consistent;
}

ViewState ViewLifecycleRegistry::state(ViewId id) const {
  const Entry* e = FindEntry(id);
  if (e == nullptr) return ViewState::kFresh;
  return static_cast<ViewState>(e->state.load(kRelaxed));
}

bool ViewLifecycleRegistry::IsSidelined(ViewId id) const {
  ViewState s = state(id);
  return s == ViewState::kQuarantined || s == ViewState::kDisabled;
}

uint64_t ViewLifecycleRegistry::epoch(ViewId id) const {
  const Entry* e = FindEntry(id);
  return e == nullptr ? 0 : e->epoch.load(kRelaxed);
}

uint64_t ViewLifecycleRegistry::checksum(ViewId id) const {
  const Entry* e = FindEntry(id);
  return e == nullptr ? 0 : e->checksum.load(kRelaxed);
}

ViewLifecycleRegistry::Snapshot ViewLifecycleRegistry::snapshot(
    ViewId id) const {
  Snapshot s;
  const Entry* e = FindEntry(id);
  if (e == nullptr) return s;
  s.state = static_cast<ViewState>(e->state.load(kRelaxed));
  s.epoch = e->epoch.load(kRelaxed);
  s.content_checksum = e->checksum.load(kRelaxed);
  s.failure_streak = e->failure_streak.load(kRelaxed);
  s.next_retry_tick = e->next_retry_tick.load(kRelaxed);
  s.retry_backoff = e->retry_backoff.load(kRelaxed);
  return s;
}

void ViewLifecycleRegistry::AdjustCounters(ViewState from, ViewState to) {
  if (from == to) return;
  state_counts_[static_cast<size_t>(from)].fetch_sub(1, kRelaxed);
  state_counts_[static_cast<size_t>(to)].fetch_add(1, kRelaxed);
  Counter* c = transition_counters_[static_cast<size_t>(to)];
  if (c != nullptr) c->Increment();
}

bool ViewLifecycleRegistry::Transition(Entry& e, ViewState from,
                                       ViewState to) {
  uint8_t expected = static_cast<uint8_t>(from);
  if (!e.state.compare_exchange_strong(expected, static_cast<uint8_t>(to),
                                       kRelaxed, kRelaxed)) {
    return false;
  }
  AdjustCounters(from, to);
  return true;
}

void ViewLifecycleRegistry::MarkFresh(ViewId id, uint64_t epoch) {
  Entry* e = FindEntry(id);
  assert(e != nullptr);
  if (e == nullptr) return;
  e->epoch.store(epoch, kRelaxed);
  e->failure_streak.store(0, kRelaxed);
  Transition(*e, ViewState::kStale, ViewState::kFresh);
}

void ViewLifecycleRegistry::SetChecksum(ViewId id, uint64_t checksum) {
  Entry* e = FindEntry(id);
  assert(e != nullptr);
  if (e == nullptr) return;
  e->checksum.store(checksum, kRelaxed);
}

void ViewLifecycleRegistry::MarkStale(ViewId id) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return;
  Transition(*e, ViewState::kFresh, ViewState::kStale);
}

ViewLifecycleRegistry::ProbeGate ViewLifecycleRegistry::GateForProbe(
    ViewId id, uint64_t lag, uint64_t tolerance) {
  if (IsSidelined(id)) return ProbeGate::kSidelined;
  if (lag == 0) return ProbeGate::kAdmit;
  MarkStale(id);  // opportunistic: the probe observed the lag
  return lag <= tolerance ? ProbeGate::kAdmitStale : ProbeGate::kRejectStale;
}

bool ViewLifecycleRegistry::ReportVerifyFailure(ViewId id,
                                                int quarantine_threshold,
                                                int disable_threshold) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return false;
  const int32_t streak = e->failure_streak.fetch_add(1, kRelaxed) + 1;
  bool changed = false;
  if (quarantine_threshold > 0 && streak >= quarantine_threshold) {
    changed |= Transition(*e, ViewState::kFresh, ViewState::kQuarantined);
    changed |= Transition(*e, ViewState::kStale, ViewState::kQuarantined);
  }
  if (disable_threshold > 0 && streak >= disable_threshold) {
    // Reachable from QUARANTINED (escalation) or directly from
    // FRESH/STALE when quarantine is configured off.
    changed |= Transition(*e, ViewState::kQuarantined, ViewState::kDisabled);
    changed |= Transition(*e, ViewState::kFresh, ViewState::kDisabled);
    changed |= Transition(*e, ViewState::kStale, ViewState::kDisabled);
  }
  if (changed) {
    e->next_retry_tick.store(0, kRelaxed);
    e->retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

void ViewLifecycleRegistry::ReportVerifySuccess(ViewId id) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return;
  e->failure_streak.store(0, kRelaxed);
}

bool ViewLifecycleRegistry::ReportChecksumMismatch(ViewId id) {
  return Disable(id);
}

bool ViewLifecycleRegistry::Disable(ViewId id) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return false;
  bool changed = Transition(*e, ViewState::kFresh, ViewState::kDisabled) ||
                 Transition(*e, ViewState::kStale, ViewState::kDisabled) ||
                 Transition(*e, ViewState::kQuarantined, ViewState::kDisabled);
  if (changed) {
    e->next_retry_tick.store(0, kRelaxed);
    e->retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

bool ViewLifecycleRegistry::Readmit(ViewId id, uint64_t epoch) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return false;
  bool changed = Transition(*e, ViewState::kQuarantined, ViewState::kFresh) ||
                 Transition(*e, ViewState::kDisabled, ViewState::kFresh);
  if (changed) {
    e->epoch.store(epoch, kRelaxed);
    e->failure_streak.store(0, kRelaxed);
    e->next_retry_tick.store(0, kRelaxed);
    e->retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

void ViewLifecycleRegistry::Restore(ViewId id, const Snapshot& snapshot) {
  Entry* e = FindEntry(id);
  assert(e != nullptr);
  if (e == nullptr) return;
  // Exchange, not load-then-store: the gauge delta must be computed from
  // the state this store actually replaced, or a transition racing the
  // restore would leave the gauges permanently wrong.
  ViewState before = static_cast<ViewState>(
      e->state.exchange(static_cast<uint8_t>(snapshot.state), kRelaxed));
  AdjustCounters(before, snapshot.state);
  e->epoch.store(snapshot.epoch, kRelaxed);
  e->checksum.store(snapshot.content_checksum, kRelaxed);
  e->failure_streak.store(snapshot.failure_streak, kRelaxed);
  e->next_retry_tick.store(snapshot.next_retry_tick, kRelaxed);
  e->retry_backoff.store(snapshot.retry_backoff, kRelaxed);
}

bool ViewLifecycleRegistry::DueForRetry(ViewId id, int64_t tick) const {
  const Entry* e = FindEntry(id);
  if (e == nullptr) return false;
  return e->next_retry_tick.load(kRelaxed) <= tick;
}

void ViewLifecycleRegistry::RecordRetryFailure(ViewId id, int64_t tick) {
  Entry* e = FindEntry(id);
  if (e == nullptr) return;
  int64_t backoff = e->retry_backoff.load(kRelaxed);
  e->next_retry_tick.store(tick + backoff, kRelaxed);
  e->retry_backoff.store(std::min<int64_t>(backoff * 2, kMaxBackoff),
                        kRelaxed);
}

}  // namespace mvopt
