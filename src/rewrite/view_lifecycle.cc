#include "rewrite/view_lifecycle.h"

#include <algorithm>
#include <cassert>

namespace mvopt {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

const char* ViewStateName(ViewState state) {
  switch (state) {
    case ViewState::kFresh:
      return "fresh";
    case ViewState::kStale:
      return "stale";
    case ViewState::kQuarantined:
      return "quarantined";
    case ViewState::kDisabled:
      return "disabled";
  }
  return "?";
}

void ViewLifecycleRegistry::EnsureSize(size_t n) {
  while (entries_.size() < n) {
    entries_.emplace_back();
    state_counts_[static_cast<size_t>(ViewState::kFresh)].fetch_add(1,
                                                                    kRelaxed);
  }
}

int64_t ViewLifecycleRegistry::CountState(ViewState state) const {
  int64_t n = 0;
  for (const Entry& e : entries_) {
    if (static_cast<ViewState>(e.state.load(kRelaxed)) == state) ++n;
  }
  return n;
}

bool ViewLifecycleRegistry::AuditCounters() {
  bool consistent = true;
  for (int s = 0; s < kNumViewStates; ++s) {
    const int64_t actual = CountState(static_cast<ViewState>(s));
    // Self-healing: resync the gauge to the authoritative state map so a
    // historical drift never stays permanent.
    if (state_counts_[s].exchange(actual, kRelaxed) != actual) {
      consistent = false;
    }
  }
  return consistent;
}

ViewState ViewLifecycleRegistry::state(ViewId id) const {
  if (static_cast<size_t>(id) >= entries_.size()) return ViewState::kFresh;
  return static_cast<ViewState>(entries_[id].state.load(kRelaxed));
}

bool ViewLifecycleRegistry::IsSidelined(ViewId id) const {
  ViewState s = state(id);
  return s == ViewState::kQuarantined || s == ViewState::kDisabled;
}

uint64_t ViewLifecycleRegistry::epoch(ViewId id) const {
  if (static_cast<size_t>(id) >= entries_.size()) return 0;
  return entries_[id].epoch.load(kRelaxed);
}

uint64_t ViewLifecycleRegistry::checksum(ViewId id) const {
  if (static_cast<size_t>(id) >= entries_.size()) return 0;
  return entries_[id].checksum.load(kRelaxed);
}

ViewLifecycleRegistry::Snapshot ViewLifecycleRegistry::snapshot(
    ViewId id) const {
  Snapshot s;
  if (static_cast<size_t>(id) >= entries_.size()) return s;
  const Entry& e = entries_[id];
  s.state = static_cast<ViewState>(e.state.load(kRelaxed));
  s.epoch = e.epoch.load(kRelaxed);
  s.content_checksum = e.checksum.load(kRelaxed);
  s.failure_streak = e.failure_streak.load(kRelaxed);
  s.next_retry_tick = e.next_retry_tick.load(kRelaxed);
  s.retry_backoff = e.retry_backoff.load(kRelaxed);
  return s;
}

void ViewLifecycleRegistry::AdjustCounters(ViewState from, ViewState to) {
  if (from == to) return;
  state_counts_[static_cast<size_t>(from)].fetch_sub(1, kRelaxed);
  state_counts_[static_cast<size_t>(to)].fetch_add(1, kRelaxed);
  Counter* c = transition_counters_[static_cast<size_t>(to)];
  if (c != nullptr) c->Increment();
}

bool ViewLifecycleRegistry::Transition(Entry& e, ViewState from,
                                       ViewState to) {
  uint8_t expected = static_cast<uint8_t>(from);
  if (!e.state.compare_exchange_strong(expected, static_cast<uint8_t>(to),
                                       kRelaxed, kRelaxed)) {
    return false;
  }
  AdjustCounters(from, to);
  return true;
}

void ViewLifecycleRegistry::MarkFresh(ViewId id, uint64_t epoch) {
  assert(static_cast<size_t>(id) < entries_.size());
  Entry& e = entries_[id];
  e.epoch.store(epoch, kRelaxed);
  e.failure_streak.store(0, kRelaxed);
  Transition(e, ViewState::kStale, ViewState::kFresh);
}

void ViewLifecycleRegistry::SetChecksum(ViewId id, uint64_t checksum) {
  assert(static_cast<size_t>(id) < entries_.size());
  entries_[id].checksum.store(checksum, kRelaxed);
}

void ViewLifecycleRegistry::MarkStale(ViewId id) {
  if (static_cast<size_t>(id) >= entries_.size()) return;
  Transition(entries_[id], ViewState::kFresh, ViewState::kStale);
}

ViewLifecycleRegistry::ProbeGate ViewLifecycleRegistry::GateForProbe(
    ViewId id, uint64_t lag, uint64_t tolerance) {
  if (IsSidelined(id)) return ProbeGate::kSidelined;
  if (lag == 0) return ProbeGate::kAdmit;
  MarkStale(id);  // opportunistic: the probe observed the lag
  return lag <= tolerance ? ProbeGate::kAdmitStale : ProbeGate::kRejectStale;
}

bool ViewLifecycleRegistry::ReportVerifyFailure(ViewId id,
                                                int quarantine_threshold,
                                                int disable_threshold) {
  if (static_cast<size_t>(id) >= entries_.size()) return false;
  Entry& e = entries_[id];
  const int32_t streak = e.failure_streak.fetch_add(1, kRelaxed) + 1;
  bool changed = false;
  if (quarantine_threshold > 0 && streak >= quarantine_threshold) {
    changed |= Transition(e, ViewState::kFresh, ViewState::kQuarantined);
    changed |= Transition(e, ViewState::kStale, ViewState::kQuarantined);
  }
  if (disable_threshold > 0 && streak >= disable_threshold) {
    // Reachable from QUARANTINED (escalation) or directly from
    // FRESH/STALE when quarantine is configured off.
    changed |= Transition(e, ViewState::kQuarantined, ViewState::kDisabled);
    changed |= Transition(e, ViewState::kFresh, ViewState::kDisabled);
    changed |= Transition(e, ViewState::kStale, ViewState::kDisabled);
  }
  if (changed) {
    e.next_retry_tick.store(0, kRelaxed);
    e.retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

void ViewLifecycleRegistry::ReportVerifySuccess(ViewId id) {
  if (static_cast<size_t>(id) >= entries_.size()) return;
  entries_[id].failure_streak.store(0, kRelaxed);
}

bool ViewLifecycleRegistry::ReportChecksumMismatch(ViewId id) {
  return Disable(id);
}

bool ViewLifecycleRegistry::Disable(ViewId id) {
  if (static_cast<size_t>(id) >= entries_.size()) return false;
  Entry& e = entries_[id];
  bool changed = Transition(e, ViewState::kFresh, ViewState::kDisabled) ||
                 Transition(e, ViewState::kStale, ViewState::kDisabled) ||
                 Transition(e, ViewState::kQuarantined, ViewState::kDisabled);
  if (changed) {
    e.next_retry_tick.store(0, kRelaxed);
    e.retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

bool ViewLifecycleRegistry::Readmit(ViewId id, uint64_t epoch) {
  if (static_cast<size_t>(id) >= entries_.size()) return false;
  Entry& e = entries_[id];
  bool changed = Transition(e, ViewState::kQuarantined, ViewState::kFresh) ||
                 Transition(e, ViewState::kDisabled, ViewState::kFresh);
  if (changed) {
    e.epoch.store(epoch, kRelaxed);
    e.failure_streak.store(0, kRelaxed);
    e.next_retry_tick.store(0, kRelaxed);
    e.retry_backoff.store(1, kRelaxed);
  }
  return changed;
}

void ViewLifecycleRegistry::Restore(ViewId id, const Snapshot& snapshot) {
  assert(static_cast<size_t>(id) < entries_.size());
  Entry& e = entries_[id];
  // Exchange, not load-then-store: the gauge delta must be computed from
  // the state this store actually replaced, or a transition racing the
  // restore would leave the gauges permanently wrong.
  ViewState before = static_cast<ViewState>(
      e.state.exchange(static_cast<uint8_t>(snapshot.state), kRelaxed));
  AdjustCounters(before, snapshot.state);
  e.epoch.store(snapshot.epoch, kRelaxed);
  e.checksum.store(snapshot.content_checksum, kRelaxed);
  e.failure_streak.store(snapshot.failure_streak, kRelaxed);
  e.next_retry_tick.store(snapshot.next_retry_tick, kRelaxed);
  e.retry_backoff.store(snapshot.retry_backoff, kRelaxed);
}

bool ViewLifecycleRegistry::DueForRetry(ViewId id, int64_t tick) const {
  if (static_cast<size_t>(id) >= entries_.size()) return false;
  return entries_[id].next_retry_tick.load(kRelaxed) <= tick;
}

void ViewLifecycleRegistry::RecordRetryFailure(ViewId id, int64_t tick) {
  if (static_cast<size_t>(id) >= entries_.size()) return;
  Entry& e = entries_[id];
  int64_t backoff = e.retry_backoff.load(kRelaxed);
  e.next_retry_tick.store(tick + backoff, kRelaxed);
  e.retry_backoff.store(std::min<int64_t>(backoff * 2, kMaxBackoff),
                        kRelaxed);
}

}  // namespace mvopt
