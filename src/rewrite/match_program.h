// Compiled per-view match programs: the fast tier of the two-tier
// matching core (ROADMAP item 4, DESIGN.md §16).
//
// At registration time, CompileMatchProgram lowers a view of common SPJG
// shape into a MatchProgram — a flat instruction stream over interned
// table/column/class ids plus side pools (precomputed view equivalence
// classes, output routing tables, per-class ranges, residual shapes,
// grouping/aggregate descriptors). ExecuteMatchProgram runs the stream
// with a tight switch loop against a per-probe MatchProbeContext (the
// query-side structures, built once per probe and shared by every
// compiled candidate) and a reusable MatchProgramScratch, so the check
// path performs no allocation.
//
// The compiled tier is an OPTIMIZATION, never a semantic fork: for every
// (query, view) pair it either produces the byte-identical verdict —
// same substitute expressions in the same order, same RejectReason — as
// ViewMatcher::Match, or it declines (MatchExecStatus::kFallback) and
// the caller runs the generic matcher. Shapes outside the compiled
// envelope (self-join views, backjoin mode) are tagged MatchTier::kGeneric
// at compile time by returning no program. The generic matcher is
// retained as the oracle: MatchCrossCheck replays compiled verdicts
// against it and (in enforce mode) quarantines a view whose program
// disagrees.
//
// Why the envelope is what it is: when the view has no duplicate table
// ids and its table set is contained in the query's, the mapping
// enumeration of §3.2 degenerates to the single identity-by-table-id
// mapping, and the per-candidate structures the generic matcher builds
// (unified tables, query equivalence classes, check constraints, range
// maps, residual shapes) depend only on the query — so they are hoisted
// into MatchProbeContext and built once per probe. The view-side halves
// (view equivalence classes including check equalities, output routing,
// view ranges, residual/grouping/aggregate shapes) depend only on the
// view and are precompiled into the program. Views with EXTRA tables
// compile too: their candidate foreign-key join edges are precompiled,
// so the program itself decides the common §3.2 outcome — the extra
// tables are NOT eliminable and the candidate is rejected — and falls
// back to the generic matcher only when elimination is actually
// possible and real compensation must be built.

#ifndef MVOPT_REWRITE_MATCH_PROGRAM_H_
#define MVOPT_REWRITE_MATCH_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/enum_coverage.h"
#include "expr/classify.h"
#include "query/spjg.h"
#include "query/view_def.h"
#include "rewrite/equiv.h"
#include "rewrite/fk_graph.h"
#include "rewrite/matcher.h"
#include "rewrite/range.h"

namespace mvopt {

/// Which matcher decided a candidate. kCompiled = the view's MatchProgram
/// ran to a verdict; kGeneric = the generic ViewMatcher ran (no program,
/// or the program declined at execution time).
enum class MatchTier : uint8_t {
  kCompiled,
  kGeneric,
};

inline constexpr int kNumMatchTiers = 2;
static_assert(static_cast<int>(MatchTier::kGeneric) + 1 == kNumMatchTiers,
              "kNumMatchTiers must cover every MatchTier");

constexpr const char* MatchTierName(MatchTier tier) {
  switch (tier) {
    case MatchTier::kCompiled:
      return "compiled";
    case MatchTier::kGeneric:
      return "generic";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<MatchTier, MatchTierName>(kNumMatchTiers),
              "every MatchTier needs a MatchTierName entry");

/// Compiled/generic agreement checking (mirrors VerifyMode): kOff trusts
/// compiled verdicts, kLog replays every compiled verdict against the
/// generic oracle and counts disagreements, kEnforce additionally
/// quarantines the disagreeing view through the lifecycle circuit
/// breaker and substitutes the oracle's verdict (so enforce-mode results
/// are byte-identical to the generic tier by construction).
enum class MatchCrossCheck : uint8_t {
  kOff,
  kLog,
  kEnforce,
};

inline constexpr int kNumMatchCrossChecks = 3;
static_assert(static_cast<int>(MatchCrossCheck::kEnforce) + 1 ==
                  kNumMatchCrossChecks,
              "kNumMatchCrossChecks must cover every MatchCrossCheck");

constexpr const char* MatchCrossCheckName(MatchCrossCheck mode) {
  switch (mode) {
    case MatchCrossCheck::kOff:
      return "off";
    case MatchCrossCheck::kLog:
      return "log";
    case MatchCrossCheck::kEnforce:
      return "enforce";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<MatchCrossCheck, MatchCrossCheckName>(
                  kNumMatchCrossChecks),
              "every MatchCrossCheck needs a MatchCrossCheckName entry");

/// Opcodes of the match-program instruction stream, in the exact order
/// the generic matcher performs the corresponding tests — the stream is
/// the §3.1–§3.3 pipeline unrolled per view. Check ops reject, emit ops
/// append to the substitute under construction; both may also reject
/// (e.g. an unroutable compensating column).
enum class MatchOp : uint8_t {
  kCheckAggCompat,            ///< aggregated view vs. pure SPJ query
  kCheckTableSet,             ///< table-set screen + slot binding
  kCheckExtraTables,          ///< §3.2 pre-check; decides fallback too
  kBindRouting,               ///< slot permutation + query-class routing
  kCheckEquivClass,           ///< one view class ⊆ some query class (a=class)
  kEmitEqualityCompensation,  ///< chain split view classes per query class
  kCheckRangeSubsumes,        ///< one view range ⊇ query range (a=range idx)
  kEmitRangeCompensation,     ///< enforce differing bounds per query class
  kCheckResidualSubsumes,     ///< one view residual matched (a=residual idx)
  kEmitResidualCompensation,  ///< route unmatched query residuals
  kEmitOutputs,               ///< SPJ-query outputs (no-op for aggregates)
  kCheckGrouping,             ///< grouping containment (§3.3 requirement 3)
  kEmitGroupBy,               ///< compensating group-by expressions
  kEmitAggOutputs,            ///< aggregate outputs: rollup, AVG=SUM/COUNT
  kAccept,                    ///< build the MatchResult
};

inline constexpr int kNumMatchOps = 15;
static_assert(static_cast<int>(MatchOp::kAccept) + 1 == kNumMatchOps,
              "kNumMatchOps must cover every MatchOp");

constexpr const char* MatchOpName(MatchOp op) {
  switch (op) {
    case MatchOp::kCheckAggCompat:
      return "check-agg-compat";
    case MatchOp::kCheckTableSet:
      return "check-table-set";
    case MatchOp::kCheckExtraTables:
      return "check-extra-tables";
    case MatchOp::kBindRouting:
      return "bind-routing";
    case MatchOp::kCheckEquivClass:
      return "check-equiv-class";
    case MatchOp::kEmitEqualityCompensation:
      return "emit-equality-compensation";
    case MatchOp::kCheckRangeSubsumes:
      return "check-range-subsumes";
    case MatchOp::kEmitRangeCompensation:
      return "emit-range-compensation";
    case MatchOp::kCheckResidualSubsumes:
      return "check-residual-subsumes";
    case MatchOp::kEmitResidualCompensation:
      return "emit-residual-compensation";
    case MatchOp::kEmitOutputs:
      return "emit-outputs";
    case MatchOp::kCheckGrouping:
      return "check-grouping";
    case MatchOp::kEmitGroupBy:
      return "emit-group-by";
    case MatchOp::kEmitAggOutputs:
      return "emit-agg-outputs";
    case MatchOp::kAccept:
      return "accept";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<MatchOp, MatchOpName>(kNumMatchOps),
              "every MatchOp needs a MatchOpName entry");

/// One instruction: an opcode plus an immediate operand indexing the
/// program's side pools (class id for kCheckEquivClass, range index for
/// kCheckRangeSubsumes, residual index for kCheckResidualSubsumes;
/// unused otherwise).
struct MatchInsn {
  MatchOp op;
  int32_t a = 0;
};

/// A compiled view matcher. Immutable once built; shared (shared_ptr)
/// across catalog snapshot generations, so registration compiles once
/// and the probe path never compiles. All view-side column references
/// are in VIEW slot space (slot i = the view's i-th FROM entry);
/// kBindRouting translates them into the probe's query slot space
/// through the table-id permutation.
struct MatchProgram {
  ViewId view_id = kInvalidViewId;
  bool view_is_aggregate = false;
  /// MatchOptions snapshot baked in at compile time (the program must
  /// agree with the generic matcher it was compiled against).
  bool allow_min_max = true;

  /// The view's FROM list: catalog table id and column count per view
  /// slot. Table ids are all distinct (self-join views do not compile).
  std::vector<TableId> table_of_slot;
  std::vector<int32_t> num_columns_of_slot;

  /// View equivalence classes (§3.1.1) over view slot space, including
  /// check-constraint equalities: dense class id per column, flattened
  /// slot-major (class_of[col_base[slot] + column]).
  std::vector<int32_t> col_base;
  std::vector<int32_t> class_of;
  int32_t num_classes = 0;
  /// Members of each class, dense (slot, column) order.
  std::vector<std::vector<ColumnRefId>> class_members;
  /// First simple view output ordinal per class, or -1 (the precompiled
  /// §3.1.3 routing table through view equivalences).
  std::vector<int32_t> route_of_class;

  /// View ranges (§3.1.2), ascending class id, plus the inverse lookup
  /// (index into `ranges` per class, -1 when unconstrained).
  struct ClassRange {
    int32_t cls = -1;
    ValueRange range;
  };
  std::vector<ClassRange> ranges;
  std::vector<int32_t> range_index_of_class;

  /// View residual shapes (§3.1.2), conjunct order.
  std::vector<ExprShape> residual_shapes;

  /// View outputs: simple (plain column) outputs in output order, and
  /// complex outputs by shape for exact-expression matching (§3.1.4).
  struct SimpleOutput {
    ColumnRefId column;
    int32_t ordinal = -1;
  };
  std::vector<SimpleOutput> simple_outputs;
  struct ComplexOutput {
    ExprShape shape;
    int32_t ordinal = -1;
  };
  std::vector<ComplexOutput> complex_outputs;

  /// Aggregation-view descriptors (§3.3): the count(*) ordinal, group-by
  /// shapes + their output ordinals, and SUM/MIN/MAX outputs by argument
  /// shape.
  int32_t count_ordinal = -1;
  struct Grouping {
    ExprShape shape;
    int32_t ordinal = -1;
  };
  std::vector<Grouping> groupings;
  struct Agg {
    AggKind kind = AggKind::kSum;
    ExprShape arg_shape;
    int32_t ordinal = -1;
  };
  std::vector<Agg> aggs;

  /// §3.2 pre-check side pool (kCheckExtraTables): candidate
  /// cardinality-preserving join edges between VIEW slots, from the
  /// catalog's foreign keys and the view equivalence classes — exactly
  /// the admission tests of FkJoinGraph::Build, minus the query-side
  /// nullable-FK relaxation, which is deferred: an edge with nonempty
  /// `nullable_fk_cols` is active at probe time only when the query
  /// null-rejects every listed column. When the extra view tables cannot
  /// all be eliminated even over the active edges, the program decides
  /// RejectReason::kExtraTableElimination itself — the oracle's graph
  /// over the unified tables is slot-for-slot isomorphic to this one, so
  /// the (order-independent) elimination fixpoint agrees. When they CAN
  /// be eliminated, the program declines and the generic matcher builds
  /// the real compensation.
  struct FkEdgeCandidate {
    int32_t from_slot = -1;
    int32_t to_slot = -1;
    /// FK columns (view slot space) that allow NULLs; empty means the
    /// edge is unconditional.
    std::vector<ColumnRefId> nullable_fk_cols;
  };
  std::vector<FkEdgeCandidate> fk_edge_candidates;

  /// The instruction stream executed by ExecuteMatchProgram.
  std::vector<MatchInsn> insns;
};

/// Query-side match state, built ONCE per probe and shared read-only by
/// every compiled candidate of that probe. Exactly the structures the
/// generic matcher rebuilds per candidate — valid to share because, for
/// compiled candidates (view tables ⊆ query tables, no duplicates), the
/// generic matcher's "unified" table list is the query's own FROM list.
struct MatchProbeContext {
  const SpjgQuery* query = nullptr;
  bool is_aggregate = false;
  /// Any duplicate table id in the query's FROM list? (Always infeasible
  /// against a compiled — duplicate-free — view: reject, don't fall
  /// back.)
  bool has_dup_tables = false;
  /// Query slots sorted by table id for the kCheckTableSet binary search.
  std::vector<std::pair<TableId, int32_t>> slot_by_table;

  ClassifiedPredicates query_preds;
  ClassifiedPredicates check_preds;
  EquivalenceClasses query_ec;
  /// Dense query-class lookup, flattened slot-major like the program's.
  std::vector<int32_t> col_base;
  std::vector<int32_t> class_of;
  int32_t num_classes = 0;
  RangeMap query_ranges;          ///< plain query ranges (compensation)
  RangeMap query_ranges_checked;  ///< check-strengthened (subsumption)
  std::vector<ExprShape> query_residual_shapes;
  std::vector<ExprShape> check_residual_shapes;

  /// A query expression with its routing classification precomputed, so
  /// the per-candidate §3.1.4 compute_expr needs no shape recomputation.
  struct CachedExpr {
    enum class Kind : uint8_t { kLiteral, kColumn, kComplex };
    Kind kind = Kind::kLiteral;
    ExprPtr expr;         ///< the original query expression (shared)
    ColumnRefId column;   ///< kColumn only
    ExprShape shape;      ///< kComplex only
  };
  /// One query output: either a cached plain expression or an aggregate
  /// with its argument cached (arg unset for COUNT(*)).
  struct OutputInfo {
    bool is_aggregate = false;
    AggKind agg_kind = AggKind::kCountStar;
    CachedExpr value;  ///< the output itself, or the aggregate argument
    /// Shape of the aggregate argument (for find_view_agg matching).
    ExprShape agg_arg_shape;
  };
  std::vector<OutputInfo> outputs;
  /// Query group-by expressions: shape (for containment) + cached value
  /// (for compensating group-by emission).
  std::vector<CachedExpr> group_by;
  std::vector<ExprShape> group_by_shapes;

  /// Columns (query slot space) with null-rejecting query predicates —
  /// the §3.2 nullable-FK relaxation set, built exactly as the generic
  /// matcher builds it per candidate. Empty when the relaxation is off.
  std::vector<ColumnRefId> null_rejected;

  int32_t QueryClassOf(ColumnRefId col) const {
    return class_of[col_base[col.table_ref] + col.column];
  }
};

/// Reusable per-thread scratch for ExecuteMatchProgram: sized on first
/// use, reset by generation stamps — the reject path allocates nothing
/// after warm-up.
struct MatchProgramScratch {
  /// Query slot of each view slot and back (the identity-by-table-id
  /// mapping bound by kBindRouting).
  std::vector<int32_t> qslot_of_vslot;
  std::vector<int32_t> vslot_of_qslot;
  /// First simple view output ordinal per QUERY class (§3.1.3 routing
  /// through query equivalences), stamp-reset.
  std::vector<int32_t> route_of_qclass;
  std::vector<uint32_t> route_stamp;
  uint32_t stamp = 0;
  /// Dedup of view classes (range compensation), stamp-reset with its
  /// own counter (bumped per query class, not per candidate).
  std::vector<uint32_t> vclass_stamp;
  uint32_t vclass_counter = 0;
  /// Discovery-ordered distinct view classes within one query class.
  std::vector<int32_t> dist_vclasses;
  std::vector<ExprPtr> routed;
  /// Query residuals discharged by view residuals (§3.1.2).
  std::vector<char> query_residual_matched;
  /// Used-flags of the grouping-containment test (§3.3).
  std::vector<char> grouping_used;
  /// kCheckExtraTables workspace: the probe-active FK edges (dedup'd per
  /// slot pair, fk payload unused) and the dedup bitmasks.
  std::vector<FkJoinEdge> fk_edges;
  std::vector<uint64_t> fk_active_to;
};

/// Execution verdict: decided (matched/rejected, `result` is the
/// byte-identical MatchResult) or declined (run the generic matcher).
enum class MatchExecStatus : uint8_t { kDecided, kFallback };

struct MatchExecResult {
  MatchExecStatus status = MatchExecStatus::kFallback;
  MatchResult result;
};

/// Builds the query-side context for one probe. `options` must be the
/// same MatchOptions the candidate programs were compiled with.
MatchProbeContext BuildMatchProbeContext(const Catalog& catalog,
                                         const SpjgQuery& query,
                                         const MatchOptions& options);

/// Compiles `view` into a match program, or returns nullptr when the
/// view is outside the compiled envelope (self-join FROM list, backjoin
/// mode, or a zero mapping budget) — such views match through the
/// generic tier. Deterministic and side-effect free; called under the
/// catalog writer lock at registration/recovery, never on a probe.
std::shared_ptr<const MatchProgram> CompileMatchProgram(
    const Catalog& catalog, const ViewDefinition& view,
    const MatchOptions& options);

/// Runs `program` against one probe's context. Returns kFallback when
/// the candidate needs generic machinery (extra view tables requiring
/// foreign-key elimination); otherwise the MatchResult is byte-identical
/// to ViewMatcher::Match on the same pair.
MatchExecResult ExecuteMatchProgram(const MatchProgram& program,
                                    const MatchProbeContext& ctx,
                                    MatchProgramScratch& scratch);

}  // namespace mvopt

#endif  // MVOPT_REWRITE_MATCH_PROGRAM_H_
