// Column equivalence classes (§3.1.1).
//
// Knowledge about column equality predicates is captured as a set of
// equivalence classes over column references, computed by union-find.
// Every column of every referenced table starts in its own (trivial)
// class; each (Ti.Cp = Tj.Cq) predicate merges two classes.

#ifndef MVOPT_REWRITE_EQUIV_H_
#define MVOPT_REWRITE_EQUIV_H_

#include <unordered_map>
#include <vector>

#include "expr/classify.h"
#include "expr/expr.h"

namespace mvopt {

class EquivalenceClasses {
 public:
  /// Registers all `num_columns` columns of table slot `table_ref` as
  /// trivial classes (idempotent per slot).
  void AddTableColumns(int32_t table_ref, int num_columns);

  /// Merges the classes of `a` and `b` (registering them if needed).
  void AddEquality(ColumnRefId a, ColumnRefId b);

  /// Applies every equality predicate in `preds`.
  void AddEqualities(const std::vector<ColumnEqualityPred>& preds);

  /// Dense id of the class containing `col`; -1 if the column was never
  /// registered. Ids are stable between mutations only for lookups made
  /// after the last AddEquality.
  int ClassOf(ColumnRefId col) const;

  bool AreEquivalent(ColumnRefId a, ColumnRefId b) const {
    int ca = ClassOf(a);
    return ca >= 0 && ca == ClassOf(b);
  }

  /// True if the column's class has exactly one member.
  bool IsTrivial(ColumnRefId col) const;

  /// Members of the class with dense id `class_id`.
  const std::vector<ColumnRefId>& ClassMembers(int class_id) const;

  /// Number of classes (trivial included).
  int NumClasses() const;

  /// Dense ids of all classes with >= 2 members.
  std::vector<int> NontrivialClasses() const;

 private:
  // Union-find over dense column indices.
  int Find(int x) const;
  void Union(int a, int b);
  int IndexOf(ColumnRefId col) const;
  int EnsureIndex(ColumnRefId col);
  void BuildClassesIfNeeded() const;

  std::unordered_map<ColumnRefId, int, ColumnRefIdHash> index_;
  std::vector<ColumnRefId> columns_;  // dense index -> column
  mutable std::vector<int> parent_;
  // Lazily rebuilt class enumeration.
  mutable bool classes_valid_ = false;
  mutable std::unordered_map<int, int> root_to_class_;
  mutable std::vector<std::vector<ColumnRefId>> classes_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_EQUIV_H_
