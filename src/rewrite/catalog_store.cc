#include "rewrite/catalog_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/crc32.h"
#include "common/failpoint.h"

namespace mvopt {

namespace {

constexpr char kWalMagic[8] = {'M', 'V', 'W', 'A', 'L', '0', '0', '1'};
constexpr char kSnapMagic[8] = {'M', 'V', 'S', 'N', 'A', 'P', '0', '1'};
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameHeader = 4 + 4 + 1;  // len + crc + type

constexpr uint8_t kRecordAddView = 1;
constexpr uint8_t kRecordViewEvent = 2;

// --- little-endian buffer codec -------------------------------------------

void PutU32(std::string* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf->push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (size - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (size - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool GetU8(uint8_t* v) {
    if (size - pos < 1) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool GetStr(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (size - pos < n) return false;
    s->assign(data + pos, n);
    pos += n;
    return true;
  }
};

std::string EncodeAddView(const PersistedView& v) {
  std::string payload;
  PutStr(&payload, v.name);
  PutStr(&payload, v.sql);
  payload.push_back(static_cast<char>(v.state));
  PutU64(&payload, v.epoch);
  PutU64(&payload, v.content_checksum);
  return payload;
}

bool DecodeAddView(const std::string& payload, PersistedView* v) {
  Cursor c{payload.data(), payload.size()};
  uint8_t state;
  return c.GetStr(&v->name) && c.GetStr(&v->sql) && c.GetU8(&state) &&
         (v->state = static_cast<ViewState>(state), c.GetU64(&v->epoch)) &&
         c.GetU64(&v->content_checksum) && c.pos == payload.size();
}

std::string EncodeViewEvent(const std::string& name, ViewState state,
                            uint64_t epoch, uint64_t checksum) {
  std::string payload;
  PutStr(&payload, name);
  payload.push_back(static_cast<char>(state));
  PutU64(&payload, epoch);
  PutU64(&payload, checksum);
  return payload;
}

bool DecodeViewEvent(const std::string& payload, std::string* name,
                     ViewState* state, uint64_t* epoch, uint64_t* checksum) {
  Cursor c{payload.data(), payload.size()};
  uint8_t s;
  return c.GetStr(name) && c.GetU8(&s) &&
         (*state = static_cast<ViewState>(s), c.GetU64(epoch)) &&
         c.GetU64(checksum) && c.pos == payload.size();
}

std::string FrameRecord(uint8_t type, const std::string& payload) {
  std::string body;
  body.push_back(static_cast<char>(type));
  body.append(payload);
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(body.data(), body.size()));
  frame.append(body);
  return frame;
}

/// Decodes one frame at `pos`; returns false on a bad/torn frame.
bool ReadFrame(const std::string& file, size_t* pos, uint8_t* type,
               std::string* payload) {
  Cursor c{file.data(), file.size(), *pos};
  uint32_t len, crc;
  if (!c.GetU32(&len) || !c.GetU32(&crc)) return false;
  if (file.size() - c.pos < static_cast<size_t>(len) + 1) return false;
  const char* body = file.data() + c.pos;
  if (Crc32(body, len + 1) != crc) return false;
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body + 1, len);
  *pos = c.pos + len + 1;
  return true;
}

bool ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return n >= 0;
}

void WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreIoError(std::string("write failed: ") + std::strerror(errno),
                         /*durable=*/false);
    }
    written += static_cast<size_t>(n);
  }
}

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);  // best effort: rename durability
    ::close(fd);
  }
}

}  // namespace

std::string RecoveryReport::ToJson() const {
  std::string j = "{";
  j += "\"snapshot_loaded\":" + std::string(snapshot_loaded ? "true" : "false");
  j += ",\"snapshot_error\":\"" + JsonEscape(snapshot_error) + "\"";
  j += ",\"snapshot_views\":" + std::to_string(snapshot_views);
  j += ",\"wal_records_replayed\":" + std::to_string(wal_records_replayed);
  j += ",\"wal_tail_torn\":" + std::string(wal_tail_torn ? "true" : "false");
  j += ",\"wal_bytes_truncated\":" + std::to_string(wal_bytes_truncated);
  j += ",\"views_recovered\":" + std::to_string(views_recovered);
  j += ",\"quarantined\":[";
  for (size_t i = 0; i < quarantined.size(); ++i) {
    if (i > 0) j += ",";
    j += "{\"name\":\"" + JsonEscape(quarantined[i].name) + "\",\"cause\":\"" +
         EntryQuarantineCauseName(quarantined[i].cause) + "\",\"reason\":\"" +
         JsonEscape(quarantined[i].reason) + "\"}";
  }
  j += "],\"anomalies\":[";
  for (size_t i = 0; i < anomalies.size(); ++i) {
    if (i > 0) j += ",";
    j += "\"" + JsonEscape(anomalies[i]) + "\"";
  }
  j += "],\"clean\":" + std::string(clean() ? "true" : "false");
  j += "}";
  return j;
}

bool ValidateRecoveryReportJson(const std::string& json, std::string* error) {
  if (!ValidateJson(json, error)) return false;
  static constexpr const char* kRequiredKeys[] = {
      "\"snapshot_loaded\":", "\"snapshot_error\":",
      "\"snapshot_views\":",  "\"wal_records_replayed\":",
      "\"wal_tail_torn\":",   "\"wal_bytes_truncated\":",
      "\"views_recovered\":", "\"quarantined\":",
      "\"anomalies\":",       "\"clean\":",
  };
  for (const char* key : kRequiredKeys) {
    if (json.find(key) == std::string::npos) {
      if (error != nullptr) {
        *error = std::string("missing mandatory key ") + key;
      }
      return false;
    }
  }
  // Every quarantined entry must carry a cause from the known set (the
  // machine-readable contract tests assert on).
  size_t pos = 0;
  while ((pos = json.find("\"cause\":\"", pos)) != std::string::npos) {
    pos += 9;
    const size_t end = json.find('"', pos);
    if (end == std::string::npos) break;  // ValidateJson would have caught it
    const std::string cause = json.substr(pos, end - pos);
    bool known = false;
    for (int i = 0; i < kNumEntryQuarantineCauses; ++i) {
      if (cause ==
          EntryQuarantineCauseName(static_cast<EntryQuarantineCause>(i))) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) *error = "unknown quarantine cause: " + cause;
      return false;
    }
    pos = end;
  }
  return true;
}

CatalogStore::~CatalogStore() { Close(); }

void CatalogStore::Close() {
  MutexLock lock(mu_);
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

CatalogStore::RecoveredState CatalogStore::Recover() const {
  RecoveredState out;
  RecoveryReport& report = out.report;
  // Registration order is the recovery order; `index` dedups by name so
  // a snapshot/WAL overlap (crash between snapshot rename and WAL reset)
  // replays idempotently.
  std::vector<PersistedView> views;
  std::unordered_map<std::string, size_t> index;
  auto upsert = [&](PersistedView&& v) {
    auto it = index.find(v.name);
    if (it == index.end()) {
      index.emplace(v.name, views.size());
      views.push_back(std::move(v));
    } else {
      views[it->second] = std::move(v);
    }
  };

  std::string file;
  if (ReadWholeFile(snapshot_path(), &file)) {
    if (file.size() < kMagicSize ||
        std::memcmp(file.data(), kSnapMagic, kMagicSize) != 0) {
      report.snapshot_error = "snapshot: bad magic";
    } else {
      report.snapshot_loaded = true;
      size_t pos = kMagicSize;
      uint8_t type;
      std::string payload;
      while (pos < file.size()) {
        if (!ReadFrame(file, &pos, &type, &payload)) {
          report.snapshot_error =
              "snapshot: corrupt record at offset " + std::to_string(pos);
          break;
        }
        PersistedView v;
        if (type != kRecordAddView || !DecodeAddView(payload, &v)) {
          report.snapshot_error =
              "snapshot: undecodable record at offset " + std::to_string(pos);
          break;
        }
        upsert(std::move(v));
        ++report.snapshot_views;
      }
    }
  }

  if (ReadWholeFile(wal_path(), &file)) {
    size_t pos = 0;
    if (file.size() < kMagicSize ||
        std::memcmp(file.data(), kWalMagic, kMagicSize) != 0) {
      if (!file.empty()) {
        report.wal_tail_torn = true;
        report.wal_bytes_truncated = static_cast<int64_t>(file.size());
      }
    } else {
      pos = kMagicSize;
      uint8_t type;
      std::string payload;
      while (pos < file.size()) {
        if (!ReadFrame(file, &pos, &type, &payload)) {
          // Torn or corrupt tail: everything before it is intact.
          report.wal_tail_torn = true;
          report.wal_bytes_truncated = static_cast<int64_t>(file.size() - pos);
          break;
        }
        ++report.wal_records_replayed;
        if (type == kRecordAddView) {
          PersistedView v;
          if (DecodeAddView(payload, &v)) {
            upsert(std::move(v));
          } else {
            report.anomalies.push_back("wal: undecodable add-view record");
          }
        } else if (type == kRecordViewEvent) {
          std::string name;
          ViewState state;
          uint64_t epoch, checksum;
          if (DecodeViewEvent(payload, &name, &state, &epoch, &checksum)) {
            auto it = index.find(name);
            if (it != index.end()) {
              views[it->second].state = state;
              views[it->second].epoch = epoch;
              views[it->second].content_checksum = checksum;
            } else {
              report.anomalies.push_back("wal: event for unknown view '" +
                                         name + "'");
            }
          } else {
            report.anomalies.push_back("wal: undecodable view event");
          }
        } else {
          report.anomalies.push_back("wal: unknown record type " +
                                     std::to_string(type));
        }
      }
    }
  }

  report.views_recovered = static_cast<int64_t>(views.size());
  out.views = std::move(views);
  return out;
}

void CatalogStore::OpenForAppend() {
  MutexLock lock(mu_);
  if (wal_fd_ >= 0) return;
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw StoreIoError("mkdir " + dir_ + ": " + std::strerror(errno), false);
  }
  // Find the committed prefix so a torn tail from a previous crash is
  // physically cut before new appends land behind it.
  int64_t good = 0;
  std::string file;
  if (ReadWholeFile(wal_path(), &file) && file.size() >= kMagicSize &&
      std::memcmp(file.data(), kWalMagic, kMagicSize) == 0) {
    size_t pos = kMagicSize;
    uint8_t type;
    std::string payload;
    while (pos < file.size() && ReadFrame(file, &pos, &type, &payload)) {
    }
    good = static_cast<int64_t>(pos);
  }

  int fd = ::open(wal_path().c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    throw StoreIoError("open " + wal_path() + ": " + std::strerror(errno),
                       false);
  }
  if (good == 0) {
    // Fresh (or unreadably corrupt) log: start over with a clean header.
    if (::ftruncate(fd, 0) != 0) {
      ::close(fd);
      throw StoreIoError("ftruncate: " + std::string(std::strerror(errno)),
                         false);
    }
    try {
      WriteAll(fd, kWalMagic, kMagicSize);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::fsync(fd);
    good = static_cast<int64_t>(kMagicSize);
  } else if (good < static_cast<int64_t>(file.size())) {
    if (::ftruncate(fd, good) != 0) {
      ::close(fd);
      throw StoreIoError("ftruncate: " + std::string(std::strerror(errno)),
                         false);
    }
  }
  if (::lseek(fd, good, SEEK_SET) < 0) {
    ::close(fd);
    throw StoreIoError("lseek: " + std::string(std::strerror(errno)), false);
  }
  wal_fd_ = fd;
  wal_offset_ = good;
  needs_repair_ = false;
}

void CatalogStore::RepairTornTail() {
  if (!needs_repair_) return;
  if (::ftruncate(wal_fd_, wal_offset_) != 0 ||
      ::lseek(wal_fd_, wal_offset_, SEEK_SET) < 0) {
    throw StoreIoError("torn-tail repair failed: " +
                           std::string(std::strerror(errno)),
                       false);
  }
  needs_repair_ = false;
}

void CatalogStore::TryRepairNow() noexcept {
  // Eager best-effort cut of a failed append's bytes. The caller rolls
  // the registration back on a non-durable failure, and a fully-written
  // but unfsynced frame is perfectly readable — left in place it would
  // resurrect the rolled-back view at the next recovery. If the truncate
  // itself fails the repair stays pending for the next append, and
  // recovery's CRC scan still cuts any *partial* frame.
  if (!needs_repair_) return;
  if (::ftruncate(wal_fd_, wal_offset_) == 0 &&
      ::lseek(wal_fd_, wal_offset_, SEEK_SET) >= 0) {
    (void)::fsync(wal_fd_);
    needs_repair_ = false;
  }
}

void CatalogStore::AppendRecord(uint8_t type, const std::string& payload) {
  if (wal_fd_ < 0) {
    throw StoreIoError("catalog store is not open for appends", false);
  }
  RepairTornTail();
  const std::string frame = FrameRecord(type, payload);
  if (counters_.wal_appends != nullptr) counters_.wal_appends->Increment();
  try {
    MVOPT_FAILPOINT("catalog_store.wal_append");
    if (MVOPT_FAILPOINT_HIT("catalog_store.wal_write")) {
      // Deterministic torn write: half the frame reaches the file.
      WriteAll(wal_fd_, frame.data(), frame.size() / 2);
      throw StoreIoError("failpoint 'catalog_store.wal_write' (torn frame)",
                         false);
    }
    WriteAll(wal_fd_, frame.data(), frame.size());
    MVOPT_FAILPOINT("catalog_store.wal_fsync");
    if (::fsync(wal_fd_) != 0) {
      throw StoreIoError("fsync: " + std::string(std::strerror(errno)), false);
    }
    if (counters_.wal_fsyncs != nullptr) counters_.wal_fsyncs->Increment();
  } catch (const StoreIoError&) {
    if (counters_.wal_append_failures != nullptr) {
      counters_.wal_append_failures->Increment();
    }
    needs_repair_ = true;
    TryRepairNow();
    throw;
  } catch (const std::exception& e) {
    if (counters_.wal_append_failures != nullptr) {
      counters_.wal_append_failures->Increment();
    }
    needs_repair_ = true;
    TryRepairNow();
    throw StoreIoError(e.what(), /*durable=*/false);
  }
  // Commit point passed: the record is durable no matter what follows.
  wal_offset_ += static_cast<int64_t>(frame.size());
  if (MVOPT_FAILPOINT_HIT("catalog_store.commit")) {
    throw StoreIoError("failpoint 'catalog_store.commit' (after fsync)",
                       /*durable=*/true);
  }
}

void CatalogStore::AppendAddView(const PersistedView& view) {
  MutexLock lock(mu_);
  AppendRecord(kRecordAddView, EncodeAddView(view));
}

void CatalogStore::AppendViewEvent(const std::string& name, ViewState state,
                                   uint64_t epoch, uint64_t checksum) {
  MutexLock lock(mu_);
  AppendRecord(kRecordViewEvent, EncodeViewEvent(name, state, epoch, checksum));
}

void CatalogStore::WriteSnapshot(const std::vector<PersistedView>& views) {
  MutexLock lock(mu_);
  if (wal_fd_ < 0) {
    throw StoreIoError("catalog store is not open for appends", false);
  }
  const std::string tmp = dir_ + "/catalog.snapshot.tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw StoreIoError("open " + tmp + ": " + std::strerror(errno), false);
  }
  try {
    WriteAll(fd, kSnapMagic, kMagicSize);
    MVOPT_FAILPOINT("catalog_store.snapshot_write");
    for (const PersistedView& v : views) {
      const std::string frame = FrameRecord(kRecordAddView, EncodeAddView(v));
      WriteAll(fd, frame.data(), frame.size());
    }
    if (::fsync(fd) != 0) {
      throw StoreIoError("fsync: " + std::string(std::strerror(errno)), false);
    }
    MVOPT_FAILPOINT("catalog_store.snapshot_rename");
  } catch (const StoreIoError&) {
    ::close(fd);
    throw;
  } catch (const std::exception& e) {
    ::close(fd);
    throw StoreIoError(e.what(), false);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    throw StoreIoError("rename: " + std::string(std::strerror(errno)), false);
  }
  FsyncDir(dir_);
  // Snapshot installed; from here the operation is durably committed
  // even if the WAL reset below never happens (replay dedups).
  if (counters_.snapshot_writes != nullptr) {
    counters_.snapshot_writes->Increment();
  }
  try {
    MVOPT_FAILPOINT("catalog_store.wal_truncate");
  } catch (const std::exception& e) {
    throw StoreIoError(e.what(), /*durable=*/true);
  }
  if (::ftruncate(wal_fd_, 0) != 0 ||
      ::lseek(wal_fd_, 0, SEEK_SET) < 0) {
    throw StoreIoError("wal reset: " + std::string(std::strerror(errno)),
                       /*durable=*/true);
  }
  WriteAll(wal_fd_, kWalMagic, kMagicSize);
  ::fsync(wal_fd_);
  wal_offset_ = static_cast<int64_t>(kMagicSize);
  needs_repair_ = false;
}

}  // namespace mvopt
