// SubstituteSource: the seam between the optimizer's view-matching rule
// and whatever maintains the catalog/matching state behind it. Two
// implementations exist:
//
//   - MatchingService (index/matching_service.h): one catalog, one
//     filter tree — the paper's single-store configuration;
//   - ShardedCatalogService (shard/sharded_catalog_service.h): the state
//     partitioned into independent failure domains, probed per shard and
//     merged deterministically, with quarantined shards skipped and
//     reported as a DegradationReason::kPartialCatalog advisory.
//
// The optimizer is programmed against this interface only: it probes for
// substitutes per memo group and resolves a substitute's view id back to
// its definition when implementing the view scan. View ids are opaque to
// the optimizer — whatever id space FindSubstitutes emits, ResolveView
// must accept (the sharded implementation hands out composite global
// ids; the single-store one hands out catalog ordinals).
//
// Concurrency: FindSubstitutes / FindUnionSubstitute follow the
// implementation's probe contract (MatchingService allows concurrent
// probes under its shared lock). ResolveView hands out a reference into
// implementation-owned structure; like ViewCatalog accessors it must not
// race a registration that could grow the underlying containers — the
// optimizer resolves only ids returned by a probe of the same source.

#ifndef MVOPT_REWRITE_SUBSTITUTE_SOURCE_H_
#define MVOPT_REWRITE_SUBSTITUTE_SOURCE_H_

#include <optional>
#include <vector>

#include "common/query_context.h"
#include "query/spjg.h"
#include "query/substitute.h"
#include "query/view_def.h"
#include "rewrite/union_matcher.h"

namespace mvopt {

class SubstituteSource {
 public:
  virtual ~SubstituteSource() = default;

  /// All substitutes for `query` (the view-matching rule body). The
  /// context supplies the budget, staleness tolerance and match-stage
  /// pool; results are deterministic for a fixed catalog state.
  virtual std::vector<Substitute> FindSubstitutes(const SpjgQuery& query,
                                                  QueryContext& ctx) = 0;

  /// §7 union substitute over range-partitioned views, or nullopt.
  virtual std::optional<UnionSubstitute> FindUnionSubstitute(
      const SpjgQuery& query, QueryContext& ctx) = 0;

  /// The definition behind a view id previously emitted by
  /// FindSubstitutes / FindUnionSubstitute of this same source.
  virtual const ViewDefinition& ResolveView(ViewId id) const = 0;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_SUBSTITUTE_SOURCE_H_
