// Union substitutes (§7): "Union substitutes cover the case when all rows
// needed are not available from a single view but can be collected from
// several views. Overlapping views together with SQL's bag semantics
// complicate the issue."
//
// This implementation is restricted to SPJ queries (the precedent set by
// Srivastava et al. [15], who considered unions "but only for SPJ views")
// and partitions the query's rows by *disjoint* subintervals of one
// column's range: each leg is compensated down to its assigned
// subinterval, so every query row is produced by exactly one leg and bag
// semantics are preserved even when the views overlap.
//
// Algorithm: pick a partition column, sweep the query's range on it from
// the lower end, at each step choosing a view whose range covers the
// current cursor and extends furthest; the leg is verified by running the
// ordinary single-view matcher on the query restricted to the assigned
// subinterval.

#ifndef MVOPT_REWRITE_UNION_MATCHER_H_
#define MVOPT_REWRITE_UNION_MATCHER_H_

#include <optional>
#include <vector>

#include "common/query_context.h"
#include "rewrite/matcher.h"
#include "rewrite/view_catalog.h"

namespace mvopt {

/// A union of single-view substitutes producing disjoint row sets whose
/// union equals the query's result.
struct UnionSubstitute {
  std::vector<Substitute> legs;
};

struct UnionMatchOptions {
  int max_legs = 8;
  int max_partition_columns = 6;
  MatchOptions match;
};

class UnionMatcher {
 public:
  UnionMatcher(const Catalog* catalog, const ViewCatalog* views,
               UnionMatchOptions options = UnionMatchOptions())
      : catalog_(catalog),
        views_(views),
        options_(options),
        matcher_(catalog, options.match) {}

  /// Attempts a union substitute for an SPJ `query` over the candidate
  /// view ids (pass every view, or a pre-filtered set). Returns nullopt
  /// when no disjoint cover exists. With a `ctx`, the sweep checks the
  /// query's deadline at every partition column and leg boundary and
  /// gives up early (returning nullopt) on exhaustion, and records one
  /// verdict per attempted leg into the context's trace.
  std::optional<UnionSubstitute> Match(const SpjgQuery& query,
                                       const std::vector<ViewId>& candidates,
                                       QueryContext* ctx = nullptr) const;

 private:
  std::optional<UnionSubstitute> TryPartitionColumn(
      const SpjgQuery& query, ColumnRefId column,
      const std::vector<ViewId>& candidates, QueryContext* ctx) const;

  const Catalog* catalog_;
  const ViewCatalog* views_;
  UnionMatchOptions options_;
  ViewMatcher matcher_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_UNION_MATCHER_H_
