#include "rewrite/view_description.h"

#include <algorithm>
#include <set>

#include "expr/classify.h"
#include "rewrite/equiv.h"
#include "rewrite/fk_graph.h"
#include "rewrite/range.h"

namespace mvopt {

namespace {

template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Catalog ids of every member of `col`'s equivalence class.
std::vector<uint32_t> ClassCatalogIds(const SpjgQuery& q,
                                      const EquivalenceClasses& ec,
                                      ColumnRefId col) {
  std::vector<uint32_t> out;
  int cls = ec.ClassOf(col);
  for (ColumnRefId m : ec.ClassMembers(cls)) {
    out.push_back(CatalogColId(q.tables[m.table_ref].table, m.column));
  }
  SortUnique(&out);
  return out;
}

// Shared analysis: classified predicates + equivalence classes + ranges.
struct Analysis {
  ClassifiedPredicates preds;
  EquivalenceClasses ec;
  RangeMap ranges;
};

Analysis Analyze(const Catalog& catalog, const SpjgQuery& q,
                 bool include_checks) {
  Analysis a;
  std::vector<ExprPtr> conjuncts = q.conjuncts;
  if (include_checks) {
    // Query-side search keys include check constraints, mirroring their
    // role in the matcher's antecedent (§3.1.2) so the filter conditions
    // stay necessary conditions.
    for (int t = 0; t < q.num_tables(); ++t) {
      for (const auto& c : catalog.table(q.tables[t].table)
                               .check_constraints()) {
        std::vector<int32_t> self = {t};
        conjuncts.push_back(c->RemapTableRefs(self));
      }
    }
  }
  a.preds = ClassifyConjuncts(conjuncts);
  for (int t = 0; t < q.num_tables(); ++t) {
    a.ec.AddTableColumns(t, catalog.table(q.tables[t].table).num_columns());
  }
  a.ec.AddEqualities(a.preds.equalities);
  a.ranges = RangeMap::Build(a.preds.ranges, a.ec);
  return a;
}

}  // namespace

ViewDescription DescribeView(const Catalog& catalog,
                             const ViewDefinition& view) {
  const SpjgQuery& q = view.query();
  Analysis a = Analyze(catalog, q, /*include_checks=*/false);

  ViewDescription d;
  d.id = view.id();
  d.is_aggregate = q.is_aggregate;

  for (const auto& tr : q.tables) d.source_tables.push_back(tr.table);
  SortUnique(&d.source_tables);

  // Hub (§4.2.2): eliminate as far as possible, protecting tables with a
  // range or residual predicate on a column in a trivial equivalence
  // class. Nullable FKs are treated optimistically (see FkGraphOptions).
  uint64_t protect = 0;
  auto protect_column = [&](ColumnRefId col) {
    if (a.ec.IsTrivial(col)) protect |= 1ULL << col.table_ref;
  };
  for (const auto& p : a.preds.ranges) protect_column(p.column);
  for (const auto& r : a.preds.residual) {
    std::vector<ColumnRefId> cols;
    r->CollectColumnRefs(&cols);
    for (ColumnRefId c : cols) protect_column(c);
  }
  FkGraphOptions fk_options;
  fk_options.optimistic_nullable_fk = true;
  FkJoinGraph graph =
      FkJoinGraph::Build(catalog, q.tables, a.ec, fk_options, nullptr);
  uint64_t hub_mask = graph.ComputeHub(protect);
  for (int t = 0; t < q.num_tables(); ++t) {
    if (hub_mask & (1ULL << t)) d.hub.push_back(q.tables[t].table);
  }
  SortUnique(&d.hub);

  // Output columns / expressions (§4.2.3, §4.2.7).
  for (const auto& o : q.outputs) {
    if (o.expr->kind() == ExprKind::kColumnRef) {
      auto ids = ClassCatalogIds(q, a.ec, o.expr->column_ref());
      d.extended_output_columns.insert(d.extended_output_columns.end(),
                                       ids.begin(), ids.end());
    } else {
      d.output_expr_texts.push_back(ComputeShape(*o.expr).text);
    }
  }
  SortUnique(&d.extended_output_columns);
  SortUnique(&d.output_expr_texts);

  // Residual texts (§4.2.6).
  for (const auto& r : a.preds.residual) {
    d.residual_texts.push_back(ComputeShape(*r).text);
  }
  SortUnique(&d.residual_texts);

  // Range constraint lists (§4.2.5).
  for (const auto& [cls, range] : a.ranges.ranges()) {
    (void)range;
    const auto& members = a.ec.ClassMembers(cls);
    std::vector<uint32_t> ids;
    for (ColumnRefId m : members) {
      ids.push_back(CatalogColId(q.tables[m.table_ref].table, m.column));
    }
    SortUnique(&ids);
    if (members.size() == 1) d.reduced_range_columns.push_back(ids[0]);
    d.range_constrained_classes.push_back(std::move(ids));
  }
  SortUnique(&d.reduced_range_columns);

  // Grouping lists (§4.2.4, §4.2.8).
  if (q.is_aggregate) {
    for (const auto& g : q.group_by) {
      d.grouping_expr_texts.push_back(ComputeShape(*g).text);
      if (g->kind() == ExprKind::kColumnRef) {
        auto ids = ClassCatalogIds(q, a.ec, g->column_ref());
        d.extended_grouping_columns.insert(d.extended_grouping_columns.end(),
                                           ids.begin(), ids.end());
      }
    }
    SortUnique(&d.extended_grouping_columns);
    SortUnique(&d.grouping_expr_texts);
  }
  return d;
}

QueryDescription DescribeQuery(const Catalog& catalog,
                               const SpjgQuery& query) {
  Analysis a = Analyze(catalog, query, /*include_checks=*/true);

  QueryDescription d;
  d.is_aggregate = query.is_aggregate;
  for (const auto& tr : query.tables) d.source_tables.push_back(tr.table);
  SortUnique(&d.source_tables);

  auto add_class = [&](ColumnRefId col,
                       std::vector<std::vector<uint32_t>>* into) {
    into->push_back(ClassCatalogIds(query, a.ec, col));
  };

  for (const auto& o : query.outputs) {
    const Expr& e = *o.expr;
    if (e.kind() == ExprKind::kColumnRef) {
      add_class(e.column_ref(), &d.output_column_classes_spj);
      add_class(e.column_ref(), &d.output_column_classes_agg);
      continue;
    }
    if (e.kind() == ExprKind::kAggregate) {
      // Normalized aggregate text requirement for aggregation views.
      switch (e.agg_kind()) {
        case AggKind::kCountStar:
          break;  // every aggregation view has count(*)
        case AggKind::kSum:
        case AggKind::kAvg:
          d.agg_expr_texts.push_back("sum(" +
                                     ComputeShape(*e.child(0)).text + ")");
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          d.agg_expr_texts.push_back(ComputeShape(e).text);
          break;
      }
      // SPJ views compute the aggregate by compensation; a simple column
      // argument must then be routable.
      if (e.agg_kind() != AggKind::kCountStar &&
          e.child(0)->kind() == ExprKind::kColumnRef) {
        add_class(e.child(0)->column_ref(), &d.output_column_classes_spj);
      }
      continue;
    }
    // Complex non-aggregate output: paper-faithful textual condition.
    d.output_expr_texts.push_back(ComputeShape(e).text);
  }
  for (const auto& g : query.group_by) {
    d.grouping_expr_texts.push_back(ComputeShape(*g).text);
    if (g->kind() == ExprKind::kColumnRef) {
      add_class(g->column_ref(), &d.output_column_classes_spj);
      add_class(g->column_ref(), &d.output_column_classes_agg);
      add_class(g->column_ref(), &d.grouping_column_classes);
    }
  }
  SortUnique(&d.output_expr_texts);
  SortUnique(&d.agg_expr_texts);
  SortUnique(&d.grouping_expr_texts);

  for (const auto& r : a.preds.residual) {
    d.residual_texts.push_back(ComputeShape(*r).text);
  }
  SortUnique(&d.residual_texts);

  for (const auto& [cls, range] : a.ranges.ranges()) {
    (void)range;
    for (ColumnRefId m : a.ec.ClassMembers(cls)) {
      d.extended_range_columns.push_back(
          CatalogColId(query.tables[m.table_ref].table, m.column));
    }
  }
  SortUnique(&d.extended_range_columns);
  return d;
}

}  // namespace mvopt
