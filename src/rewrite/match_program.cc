#include "rewrite/match_program.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mvopt {

namespace {

/// The §3.1.2 decomposition of a table's check constraints, remapped onto
/// slot `t` (constraints are written against table_ref 0).
void AppendCheckConjuncts(const Catalog& catalog, TableId table, int32_t slot,
                          std::vector<ExprPtr>* out) {
  for (const auto& c : catalog.table(table).check_constraints()) {
    std::vector<int32_t> self = {slot};
    out->push_back(c->RemapTableRefs(self));
  }
}

MatchProbeContext::CachedExpr CacheExpr(const ExprPtr& e) {
  MatchProbeContext::CachedExpr cached;
  cached.expr = e;
  if (e->kind() == ExprKind::kLiteral) {
    cached.kind = MatchProbeContext::CachedExpr::Kind::kLiteral;
  } else if (e->kind() == ExprKind::kColumnRef) {
    cached.kind = MatchProbeContext::CachedExpr::Kind::kColumn;
    cached.column = e->column_ref();
  } else {
    cached.kind = MatchProbeContext::CachedExpr::Kind::kComplex;
    cached.shape = ComputeShape(*e);
  }
  return cached;
}

}  // namespace

MatchProbeContext BuildMatchProbeContext(const Catalog& catalog,
                                         const SpjgQuery& query,
                                         const MatchOptions& options) {
  MatchProbeContext ctx;
  ctx.query = &query;
  ctx.is_aggregate = query.is_aggregate;

  const int32_t num_slots = query.num_tables();
  ctx.slot_by_table.reserve(static_cast<size_t>(num_slots));
  for (int32_t t = 0; t < num_slots; ++t) {
    ctx.slot_by_table.emplace_back(query.tables[t].table, t);
  }
  std::sort(ctx.slot_by_table.begin(), ctx.slot_by_table.end());
  for (size_t i = 1; i < ctx.slot_by_table.size(); ++i) {
    if (ctx.slot_by_table[i].first == ctx.slot_by_table[i - 1].first) {
      ctx.has_dup_tables = true;
      break;
    }
  }

  // The predicate decomposition and equivalence classes the generic
  // matcher builds per candidate (matcher.cc step 4) — for compiled
  // candidates the unified table list IS the query's FROM list, so one
  // copy serves every candidate of the probe.
  ctx.query_preds = ClassifyConjuncts(query.conjuncts);
  if (options.use_check_constraints) {
    std::vector<ExprPtr> check_conjuncts;
    for (int32_t t = 0; t < num_slots; ++t) {
      AppendCheckConjuncts(catalog, query.tables[t].table, t,
                           &check_conjuncts);
    }
    ctx.check_preds = ClassifyConjuncts(check_conjuncts);
  }
  for (int32_t t = 0; t < num_slots; ++t) {
    ctx.query_ec.AddTableColumns(t,
                                 catalog.table(query.tables[t].table)
                                     .num_columns());
  }
  ctx.query_ec.AddEqualities(ctx.query_preds.equalities);
  ctx.query_ec.AddEqualities(ctx.check_preds.equalities);

  ctx.col_base.resize(static_cast<size_t>(num_slots));
  int32_t base = 0;
  for (int32_t t = 0; t < num_slots; ++t) {
    ctx.col_base[static_cast<size_t>(t)] = base;
    base += catalog.table(query.tables[t].table).num_columns();
  }
  ctx.class_of.resize(static_cast<size_t>(base));
  for (int32_t t = 0; t < num_slots; ++t) {
    const int32_t ncols = catalog.table(query.tables[t].table).num_columns();
    for (int32_t c = 0; c < ncols; ++c) {
      ctx.class_of[static_cast<size_t>(ctx.col_base[static_cast<size_t>(t)] +
                                       c)] =
          ctx.query_ec.ClassOf(ColumnRefId{t, c});
    }
  }
  ctx.num_classes = ctx.query_ec.NumClasses();

  ctx.query_ranges = RangeMap::Build(ctx.query_preds.ranges, ctx.query_ec);
  std::vector<RangePred> checked = ctx.query_preds.ranges;
  checked.insert(checked.end(), ctx.check_preds.ranges.begin(),
                 ctx.check_preds.ranges.end());
  ctx.query_ranges_checked = RangeMap::Build(checked, ctx.query_ec);

  ctx.query_residual_shapes.reserve(ctx.query_preds.residual.size());
  for (const auto& r : ctx.query_preds.residual) {
    ctx.query_residual_shapes.push_back(ComputeShape(*r));
  }
  for (const auto& r : ctx.check_preds.residual) {
    ctx.check_residual_shapes.push_back(ComputeShape(*r));
  }

  // The §3.2 nullable-FK relaxation set, built exactly as the generic
  // matcher builds it (matcher.cc step 2) — query predicate columns are
  // in query slot space there too, so membership carries over verbatim.
  if (options.allow_nullable_fk_with_null_rejection) {
    for (const auto& p : ctx.query_preds.ranges) {
      ctx.null_rejected.push_back(p.column);
    }
    for (const auto& p : ctx.query_preds.equalities) {
      ctx.null_rejected.push_back(p.lhs);
      ctx.null_rejected.push_back(p.rhs);
    }
    for (const auto& r : ctx.query_preds.residual) {
      std::vector<ColumnRefId> cols;
      r->CollectColumnRefs(&cols);
      for (ColumnRefId c : cols) {
        if (IsNullRejectingOn(*r, c)) ctx.null_rejected.push_back(c);
      }
    }
  }

  ctx.outputs.reserve(query.outputs.size());
  for (const auto& o : query.outputs) {
    MatchProbeContext::OutputInfo info;
    // Aggregate outputs only exist in aggregate queries (SpjgBuilder
    // invariant); for SPJ queries every output goes through the plain
    // compute_expr path, exactly like the generic matcher.
    if (query.is_aggregate && o.expr->kind() == ExprKind::kAggregate) {
      info.is_aggregate = true;
      info.agg_kind = o.expr->agg_kind();
      if (info.agg_kind != AggKind::kCountStar) {
        info.value = CacheExpr(o.expr->child(0));
        info.agg_arg_shape = ComputeShape(*o.expr->child(0));
      }
    } else {
      info.value = CacheExpr(o.expr);
    }
    ctx.outputs.push_back(std::move(info));
  }
  ctx.group_by.reserve(query.group_by.size());
  ctx.group_by_shapes.reserve(query.group_by.size());
  for (const auto& g : query.group_by) {
    ctx.group_by.push_back(CacheExpr(g));
    ctx.group_by_shapes.push_back(ComputeShape(*g));
  }
  return ctx;
}

std::shared_ptr<const MatchProgram> CompileMatchProgram(
    const Catalog& catalog, const ViewDefinition& view,
    const MatchOptions& options) {
  // The compiled envelope. Backjoin mode routes columns through base-
  // table re-joins the program does not model; a self-join FROM list
  // reintroduces the mapping enumeration the envelope removes; and a
  // zero mapping budget makes the generic matcher reject every pair
  // (Enumerate() returns nothing), which the program must not outrun.
  if (options.enable_backjoins) return nullptr;
  if (options.max_table_mappings < 1) return nullptr;
  const SpjgQuery& vq = view.query();
  // The §3.2 pre-check manipulates slot bitmasks (as FkJoinGraph does).
  if (vq.num_tables() > 64) return nullptr;
  {
    std::vector<TableId> ids;
    ids.reserve(vq.tables.size());
    for (const TableRef& t : vq.tables) ids.push_back(t.table);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
      return nullptr;
    }
  }

  auto program = std::make_shared<MatchProgram>();
  program->view_id = view.id();
  program->view_is_aggregate = vq.is_aggregate;
  program->allow_min_max = options.allow_min_max;

  const int32_t num_slots = vq.num_tables();
  program->table_of_slot.reserve(static_cast<size_t>(num_slots));
  program->num_columns_of_slot.reserve(static_cast<size_t>(num_slots));
  for (const TableRef& t : vq.tables) {
    program->table_of_slot.push_back(t.table);
    program->num_columns_of_slot.push_back(
        catalog.table(t.table).num_columns());
  }

  // View-side §3.1 structures in view slot space (the identity mapping;
  // kBindRouting permutes them into query slots at probe time). Check
  // equalities join the view classes exactly as in matcher.cc: the
  // constraints hold on the view's rows too.
  ClassifiedPredicates view_preds = ClassifyConjuncts(vq.conjuncts);
  ClassifiedPredicates check_preds;
  if (options.use_check_constraints) {
    std::vector<ExprPtr> check_conjuncts;
    for (int32_t t = 0; t < num_slots; ++t) {
      AppendCheckConjuncts(catalog, vq.tables[t].table, t, &check_conjuncts);
    }
    check_preds = ClassifyConjuncts(check_conjuncts);
  }
  EquivalenceClasses view_ec;
  for (int32_t t = 0; t < num_slots; ++t) {
    view_ec.AddTableColumns(t, program->num_columns_of_slot[
                                   static_cast<size_t>(t)]);
  }
  view_ec.AddEqualities(view_preds.equalities);
  view_ec.AddEqualities(check_preds.equalities);

  int32_t base = 0;
  program->col_base.resize(static_cast<size_t>(num_slots));
  for (int32_t t = 0; t < num_slots; ++t) {
    program->col_base[static_cast<size_t>(t)] = base;
    base += program->num_columns_of_slot[static_cast<size_t>(t)];
  }
  program->class_of.resize(static_cast<size_t>(base));
  for (int32_t t = 0; t < num_slots; ++t) {
    const int32_t ncols = program->num_columns_of_slot[static_cast<size_t>(t)];
    for (int32_t c = 0; c < ncols; ++c) {
      program->class_of[static_cast<size_t>(
          program->col_base[static_cast<size_t>(t)] + c)] =
          view_ec.ClassOf(ColumnRefId{t, c});
    }
  }
  program->num_classes = view_ec.NumClasses();
  program->class_members.reserve(static_cast<size_t>(program->num_classes));
  for (int32_t cls = 0; cls < program->num_classes; ++cls) {
    program->class_members.push_back(view_ec.ClassMembers(cls));
  }

  // Outputs and the §3.1.3 routing table: first simple output per view
  // class, in output order — identical to route_column's first-match
  // scan under view equivalences.
  program->route_of_class.assign(static_cast<size_t>(program->num_classes),
                                 -1);
  for (size_t k = 0; k < vq.outputs.size(); ++k) {
    const ExprPtr& e = vq.outputs[k].expr;
    if (e->kind() == ExprKind::kColumnRef) {
      program->simple_outputs.push_back(
          {e->column_ref(), static_cast<int32_t>(k)});
      int32_t& route =
          program->route_of_class[static_cast<size_t>(program->class_of[
              static_cast<size_t>(program->col_base[static_cast<size_t>(
                                      e->column_ref().table_ref)] +
                                  e->column_ref().column)])];
      if (route < 0) route = static_cast<int32_t>(k);
    } else {
      program->complex_outputs.push_back(
          {ComputeShape(*e), static_cast<int32_t>(k)});
    }
  }

  RangeMap view_ranges = RangeMap::Build(view_preds.ranges, view_ec);
  program->range_index_of_class.assign(
      static_cast<size_t>(program->num_classes), -1);
  for (const auto& [cls, range] : view_ranges.ranges()) {
    program->range_index_of_class[static_cast<size_t>(cls)] =
        static_cast<int32_t>(program->ranges.size());
    program->ranges.push_back({cls, range});
  }

  program->residual_shapes.reserve(view_preds.residual.size());
  for (const auto& r : view_preds.residual) {
    program->residual_shapes.push_back(ComputeShape(*r));
  }

  if (vq.is_aggregate) {
    for (size_t k = 0; k < vq.outputs.size(); ++k) {
      const ExprPtr& e = vq.outputs[k].expr;
      if (e->kind() != ExprKind::kAggregate) continue;
      if (e->agg_kind() == AggKind::kCountStar) {
        program->count_ordinal = static_cast<int32_t>(k);
      } else {
        program->aggs.push_back({e->agg_kind(), ComputeShape(*e->child(0)),
                                 static_cast<int32_t>(k)});
      }
    }
    for (const auto& g : vq.group_by) {
      int32_t ordinal = -1;
      for (size_t k = 0; k < vq.outputs.size(); ++k) {
        if (vq.outputs[k].expr->Equals(*g)) {
          ordinal = static_cast<int32_t>(k);
          break;
        }
      }
      assert(ordinal >= 0 && "validated views output all grouping exprs");
      program->groupings.push_back({ComputeShape(*g), ordinal});
    }
  }

  // §3.2 pre-check pool: candidate FK join edges between view slots,
  // admitted by the same five tests as FkJoinGraph::Build — declared
  // foreign key, referenced columns cover a unique key, every FK column
  // equated with its key column under the view equivalence classes —
  // except non-nullness, which is deferred per column: the edge becomes
  // probe-active only when the query null-rejects each nullable FK
  // column (the relaxation the oracle applies with the query in hand).
  // With the relaxation off, nullable-FK candidates can never activate
  // and are dropped here, exactly as Build drops them.
  for (int32_t i = 0; i < num_slots; ++i) {
    const TableDef& ti = catalog.table(vq.tables[i].table);
    for (const ForeignKeyDef& fk : ti.foreign_keys()) {
      for (int32_t j = 0; j < num_slots; ++j) {
        if (i == j || fk.referenced_table != vq.tables[j].table) continue;
        const TableDef& tj = catalog.table(vq.tables[j].table);
        if (!tj.CoversUniqueKey(fk.key_columns)) continue;
        MatchProgram::FkEdgeCandidate cand;
        cand.from_slot = i;
        cand.to_slot = j;
        bool ok = true;
        for (size_t k = 0; k < fk.fk_columns.size(); ++k) {
          const ColumnRefId fcol{i, fk.fk_columns[k]};
          const ColumnRefId kcol{j, fk.key_columns[k]};
          if (!view_ec.AreEquivalent(fcol, kcol)) {
            ok = false;
            break;
          }
          if (!ti.column(fk.fk_columns[k]).not_null) {
            if (!options.allow_nullable_fk_with_null_rejection) {
              ok = false;
              break;
            }
            cand.nullable_fk_cols.push_back(fcol);
          }
        }
        if (ok) program->fk_edge_candidates.push_back(std::move(cand));
      }
    }
  }

  // The instruction stream: the generic matcher's test order, unrolled
  // per view class / range / residual.
  program->insns.push_back({MatchOp::kCheckAggCompat});
  program->insns.push_back({MatchOp::kCheckTableSet});
  program->insns.push_back({MatchOp::kCheckExtraTables});
  program->insns.push_back({MatchOp::kBindRouting});
  for (int cls : view_ec.NontrivialClasses()) {
    program->insns.push_back({MatchOp::kCheckEquivClass, cls});
  }
  program->insns.push_back({MatchOp::kEmitEqualityCompensation});
  for (size_t i = 0; i < program->ranges.size(); ++i) {
    program->insns.push_back(
        {MatchOp::kCheckRangeSubsumes, static_cast<int32_t>(i)});
  }
  program->insns.push_back({MatchOp::kEmitRangeCompensation});
  for (size_t i = 0; i < program->residual_shapes.size(); ++i) {
    program->insns.push_back(
        {MatchOp::kCheckResidualSubsumes, static_cast<int32_t>(i)});
  }
  program->insns.push_back({MatchOp::kEmitResidualCompensation});
  program->insns.push_back({MatchOp::kEmitOutputs});
  program->insns.push_back({MatchOp::kCheckGrouping});
  program->insns.push_back({MatchOp::kEmitGroupBy});
  program->insns.push_back({MatchOp::kEmitAggOutputs});
  program->insns.push_back({MatchOp::kAccept});
  return program;
}

namespace {

/// Executor state threaded through the switch loop.
struct ExecState {
  const MatchProgram& program;
  const MatchProbeContext& ctx;
  MatchProgramScratch& scratch;
  Substitute sub;
  bool regroup = true;
  bool needs_aggregation = true;

  ExecState(const MatchProgram& p, const MatchProbeContext& c,
            MatchProgramScratch& s)
      : program(p), ctx(c), scratch(s) {}

  /// The query-slot image of a view-space column reference.
  ColumnRefId ToQuery(ColumnRefId view_col) const {
    return ColumnRefId{scratch.qslot_of_vslot[static_cast<size_t>(
                           view_col.table_ref)],
                       view_col.column};
  }

  /// Dense view-class id of a query-space column.
  int32_t ViewClassOf(ColumnRefId query_col) const {
    const int32_t vslot =
        scratch.vslot_of_qslot[static_cast<size_t>(query_col.table_ref)];
    return program.class_of[static_cast<size_t>(
        program.col_base[static_cast<size_t>(vslot)] + query_col.column)];
  }

  /// route_column through QUERY equivalences (§3.1.3): first simple view
  /// output whose query class matches, via the kBindRouting table.
  int32_t RouteQuery(ColumnRefId query_col) const {
    const int32_t qc = ctx.QueryClassOf(query_col);
    if (scratch.route_stamp[static_cast<size_t>(qc)] != scratch.stamp) {
      return -1;
    }
    return scratch.route_of_qclass[static_cast<size_t>(qc)];
  }

  /// ShapesEquivalent with `a` in query space and `b` in view space.
  bool ShapesEquivalentViewB(const ExprShape& a, const ExprShape& b) const {
    if (a.text != b.text) return false;
    if (a.columns.size() != b.columns.size()) return false;
    for (size_t i = 0; i < a.columns.size(); ++i) {
      if (ctx.QueryClassOf(a.columns[i]) !=
          ctx.QueryClassOf(ToQuery(b.columns[i]))) {
        return false;
      }
    }
    return true;
  }

  /// compute_expr (§3.1.4) over a cached query expression: literal
  /// shared, column routed, complex matched against complex view outputs
  /// then routed per column.
  ExprPtr ComputeExpr(const MatchProbeContext::CachedExpr& e) const {
    using Kind = MatchProbeContext::CachedExpr::Kind;
    switch (e.kind) {
      case Kind::kLiteral:
        return e.expr;
      case Kind::kColumn: {
        const int32_t out = RouteQuery(e.column);
        return out >= 0 ? Expr::MakeColumn(0, out) : nullptr;
      }
      case Kind::kComplex:
        break;
    }
    for (const auto& co : program.complex_outputs) {
      if (ShapesEquivalentViewB(e.shape, co.shape)) {
        return Expr::MakeColumn(0, co.ordinal);
      }
    }
    return e.expr->RewriteColumns([this](ColumnRefId col) -> ExprPtr {
      const int32_t out = RouteQuery(col);
      return out >= 0 ? Expr::MakeColumn(0, out) : nullptr;
    });
  }

  /// find_view_agg (§3.3): first view aggregate of `kind` whose argument
  /// shape matches under query equivalences.
  int32_t FindViewAgg(AggKind kind, const ExprShape& arg_shape) const {
    for (const auto& va : program.aggs) {
      if (va.kind == kind && ShapesEquivalentViewB(arg_shape, va.arg_shape)) {
        return va.ordinal;
      }
    }
    return -1;
  }
};

MatchExecResult Decided(RejectReason reason) {
  MatchExecResult r;
  r.status = MatchExecStatus::kDecided;
  r.result.reason = reason;
  return r;
}

}  // namespace

MatchExecResult ExecuteMatchProgram(const MatchProgram& program,
                                    const MatchProbeContext& ctx,
                                    MatchProgramScratch& scratch) {
  ExecState st(program, ctx, scratch);
  const SpjgQuery& query = *ctx.query;
  st.sub.view_id = program.view_id;

  for (const MatchInsn& insn : program.insns) {
    switch (insn.op) {
      case MatchOp::kCheckAggCompat: {
        // Aggregated views cannot answer pure SPJ queries (§3.3
        // requirement 3) — checked before anything else, like Match().
        if (program.view_is_aggregate && !ctx.is_aggregate) {
          return Decided(RejectReason::kViewMoreAggregated);
        }
        break;
      }

      case MatchOp::kCheckTableSet: {
        // The feasibility screen of the mapping enumerator: every query
        // table id needs at least as many view references. A compiled
        // view has one reference per id, so any duplicate query id — or
        // any query id the view lacks — is infeasible. Extra view tables
        // are legal; kCheckExtraTables rules on them next.
        if (ctx.has_dup_tables) return Decided(RejectReason::kSourceTables);
        const size_t num_vslots = program.table_of_slot.size();
        const size_t num_qslots = ctx.slot_by_table.size();
        scratch.qslot_of_vslot.assign(num_vslots, -1);
        scratch.vslot_of_qslot.assign(num_qslots, -1);
        for (const auto& [tid, qslot] : ctx.slot_by_table) {
          int32_t vslot = -1;
          for (size_t v = 0; v < num_vslots; ++v) {
            if (program.table_of_slot[v] == tid) {
              vslot = static_cast<int32_t>(v);
              break;
            }
          }
          if (vslot < 0) return Decided(RejectReason::kSourceTables);
          scratch.qslot_of_vslot[static_cast<size_t>(vslot)] = qslot;
          scratch.vslot_of_qslot[static_cast<size_t>(qslot)] = vslot;
        }
        break;
      }

      case MatchOp::kCheckExtraTables: {
        // §3.2: extra view tables must be eliminable through
        // cardinality-preserving joins, or the candidate is dead. The
        // elimination fixpoint runs here over the precompiled edge pool
        // (edges conditioned on nullable FK columns activate only when
        // the probe null-rejects them); its verdict equals the oracle's
        // because the oracle's unified-space graph is isomorphic to the
        // view-space one and the fixpoint is labeling-independent. Only
        // the eliminable minority — needing real §3.2 compensation —
        // still falls back to the generic tier.
        const size_t num_vslots = program.table_of_slot.size();
        if (num_vslots == ctx.slot_by_table.size()) break;
        uint64_t keep = 0;
        for (size_t v = 0; v < num_vslots; ++v) {
          if (scratch.qslot_of_vslot[v] >= 0) keep |= 1ULL << v;
        }
        scratch.fk_edges.clear();
        scratch.fk_active_to.assign(num_vslots, 0);
        for (const auto& cand : program.fk_edge_candidates) {
          uint64_t& row =
              scratch.fk_active_to[static_cast<size_t>(cand.from_slot)];
          const uint64_t to_bit = 1ULL << cand.to_slot;
          if (row & to_bit) continue;  // slot pair already active
          bool active = true;
          for (ColumnRefId c : cand.nullable_fk_cols) {
            const int32_t q =
                scratch.qslot_of_vslot[static_cast<size_t>(c.table_ref)];
            // Extra-slot FK columns (q < 0) can never be null-rejected
            // by the query; the oracle reaches the same conclusion.
            const ColumnRefId qcol{q, c.column};
            if (q < 0 ||
                std::find(ctx.null_rejected.begin(), ctx.null_rejected.end(),
                          qcol) == ctx.null_rejected.end()) {
              active = false;
              break;
            }
          }
          if (!active) continue;
          row |= to_bit;
          scratch.fk_edges.push_back(
              FkJoinEdge{cand.from_slot, cand.to_slot, nullptr});
        }
        const uint64_t alive = FkJoinGraph::AliveAfterElimination(
            static_cast<int>(num_vslots), scratch.fk_edges, keep);
        if (alive != keep) {
          return Decided(RejectReason::kExtraTableElimination);
        }
        return MatchExecResult{};  // kFallback: real compensation needed
      }

      case MatchOp::kBindRouting: {
        // Per-candidate routing table: first simple view output per
        // QUERY equivalence class, in output order — route_column's
        // first-match scan under query equivalences, inverted.
        if (scratch.route_stamp.size() <
            static_cast<size_t>(ctx.num_classes)) {
          scratch.route_stamp.resize(static_cast<size_t>(ctx.num_classes), 0);
          scratch.route_of_qclass.resize(static_cast<size_t>(ctx.num_classes),
                                         -1);
        }
        if (++scratch.stamp == 0) {
          std::fill(scratch.route_stamp.begin(), scratch.route_stamp.end(),
                    0u);
          scratch.stamp = 1;
        }
        for (const auto& so : program.simple_outputs) {
          const int32_t qc = ctx.QueryClassOf(st.ToQuery(so.column));
          uint32_t& seen = scratch.route_stamp[static_cast<size_t>(qc)];
          if (seen != scratch.stamp) {
            seen = scratch.stamp;
            scratch.route_of_qclass[static_cast<size_t>(qc)] = so.ordinal;
          }
        }
        scratch.query_residual_matched.assign(
            ctx.query_residual_shapes.size(), 0);
        if (scratch.vclass_stamp.size() <
            static_cast<size_t>(program.num_classes)) {
          scratch.vclass_stamp.resize(static_cast<size_t>(program.num_classes),
                                      0);
        }
        break;
      }

      case MatchOp::kCheckEquivClass: {
        // §3.1.2 equijoin subsumption: this (nontrivial) view class must
        // lie inside one query class.
        const auto& members =
            program.class_members[static_cast<size_t>(insn.a)];
        const int32_t qc = ctx.QueryClassOf(st.ToQuery(members[0]));
        for (size_t i = 1; i < members.size(); ++i) {
          if (ctx.QueryClassOf(st.ToQuery(members[i])) != qc) {
            return Decided(RejectReason::kEquijoinSubsumption);
          }
        }
        break;
      }

      case MatchOp::kEmitEqualityCompensation: {
        // Chain view classes split inside one query class, each routed
        // through VIEW equivalences (the precompiled route_of_class).
        for (int32_t qc = 0; qc < ctx.num_classes; ++qc) {
          const auto& members = ctx.query_ec.ClassMembers(qc);
          if (members.size() < 2) continue;
          scratch.dist_vclasses.clear();
          for (ColumnRefId m : members) {
            const int32_t vc = st.ViewClassOf(m);
            if (std::find(scratch.dist_vclasses.begin(),
                          scratch.dist_vclasses.end(),
                          vc) == scratch.dist_vclasses.end()) {
              scratch.dist_vclasses.push_back(vc);
            }
          }
          if (scratch.dist_vclasses.size() < 2) continue;
          scratch.routed.clear();
          for (int32_t vc : scratch.dist_vclasses) {
            const int32_t out =
                program.route_of_class[static_cast<size_t>(vc)];
            if (out < 0) {
              return Decided(RejectReason::kCompensationNotComputable);
            }
            scratch.routed.push_back(Expr::MakeColumn(0, out));
          }
          for (size_t i = 0; i + 1 < scratch.routed.size(); ++i) {
            st.sub.predicates.push_back(Expr::MakeCompare(
                CompareOp::kEq, scratch.routed[i], scratch.routed[i + 1]));
          }
        }
        break;
      }

      case MatchOp::kCheckRangeSubsumes: {
        // §3.1.2 range subsumption: the view range must contain the
        // check-strengthened query range of the enclosing query class.
        const MatchProgram::ClassRange& cr =
            program.ranges[static_cast<size_t>(insn.a)];
        const ColumnRefId col =
            program.class_members[static_cast<size_t>(cr.cls)][0];
        const int32_t qc = ctx.QueryClassOf(st.ToQuery(col));
        const ValueRange qrange = ctx.query_ranges_checked.Get(qc);
        if (!cr.range.Contains(qrange)) {
          return Decided(RejectReason::kRangeSubsumption);
        }
        break;
      }

      case MatchOp::kEmitRangeCompensation: {
        // Per constrained query class (ascending class id — RangeMap is
        // ordered): intersect the view ranges of the distinct view
        // classes inside it, enforce any differing bound, routed through
        // query equivalences.
        for (const auto& [qc, qrange] : ctx.query_ranges.ranges()) {
          ValueRange effective;  // unconstrained
          const auto& members = ctx.query_ec.ClassMembers(qc);
          if (++scratch.vclass_counter == 0) {
            std::fill(scratch.vclass_stamp.begin(),
                      scratch.vclass_stamp.end(), 0u);
            scratch.vclass_counter = 1;
          }
          for (ColumnRefId m : members) {
            const int32_t vc = st.ViewClassOf(m);
            uint32_t& seen = scratch.vclass_stamp[static_cast<size_t>(vc)];
            if (seen == scratch.vclass_counter) continue;
            seen = scratch.vclass_counter;
            const int32_t idx =
                program.range_index_of_class[static_cast<size_t>(vc)];
            if (idx < 0) continue;
            const ValueRange& vr =
                program.ranges[static_cast<size_t>(idx)].range;
            if (!vr.lo.is_infinite) {
              effective.Apply(
                  vr.lo.inclusive ? CompareOp::kGe : CompareOp::kGt,
                  vr.lo.value);
            }
            if (!vr.hi.is_infinite) {
              effective.Apply(
                  vr.hi.inclusive ? CompareOp::kLe : CompareOp::kLt,
                  vr.hi.value);
            }
          }
          const bool need_lo = !qrange.SameLowerBound(effective);
          const bool need_hi = !qrange.SameUpperBound(effective);
          if (!need_lo && !need_hi) continue;
          const int32_t out = st.RouteQuery(members[0]);
          if (out < 0) {
            return Decided(RejectReason::kCompensationNotComputable);
          }
          ExprPtr col = Expr::MakeColumn(0, out);
          if (qrange.IsPoint()) {
            st.sub.predicates.push_back(Expr::MakeCompare(
                CompareOp::kEq, col, Expr::MakeLiteral(qrange.lo.value)));
            continue;
          }
          if (need_lo && !qrange.lo.is_infinite) {
            st.sub.predicates.push_back(Expr::MakeCompare(
                qrange.lo.inclusive ? CompareOp::kGe : CompareOp::kGt, col,
                Expr::MakeLiteral(qrange.lo.value)));
          }
          if (need_hi && !qrange.hi.is_infinite) {
            st.sub.predicates.push_back(Expr::MakeCompare(
                qrange.hi.inclusive ? CompareOp::kLe : CompareOp::kLt, col,
                Expr::MakeLiteral(qrange.hi.value)));
          }
        }
        break;
      }

      case MatchOp::kCheckResidualSubsumes: {
        // §3.1.2 residual subsumption: this view residual must match a
        // query residual (marking every match) or a check residual.
        const ExprShape& vshape =
            program.residual_shapes[static_cast<size_t>(insn.a)];
        bool matched = false;
        for (size_t i = 0; i < ctx.query_residual_shapes.size(); ++i) {
          if (st.ShapesEquivalentViewB(ctx.query_residual_shapes[i],
                                       vshape)) {
            scratch.query_residual_matched[i] = 1;
            matched = true;
          }
        }
        if (!matched) {
          for (const ExprShape& cs : ctx.check_residual_shapes) {
            if (st.ShapesEquivalentViewB(cs, vshape)) {
              matched = true;
              break;
            }
          }
        }
        if (!matched) return Decided(RejectReason::kResidualSubsumption);
        break;
      }

      case MatchOp::kEmitResidualCompensation: {
        // Unmatched query residuals are applied to the view, columns
        // routed through query equivalences.
        for (size_t i = 0; i < ctx.query_preds.residual.size(); ++i) {
          if (scratch.query_residual_matched[i]) continue;
          ExprPtr routed = ctx.query_preds.residual[i]->RewriteColumns(
              [&st](ColumnRefId col) -> ExprPtr {
                const int32_t out = st.RouteQuery(col);
                return out >= 0 ? Expr::MakeColumn(0, out) : nullptr;
              });
          if (routed == nullptr) {
            return Decided(RejectReason::kCompensationNotComputable);
          }
          st.sub.predicates.push_back(std::move(routed));
        }
        break;
      }

      case MatchOp::kEmitOutputs: {
        // SPJ-query outputs (§3.1.4); aggregate queries emit through
        // kEmitGroupBy/kEmitAggOutputs instead.
        if (ctx.is_aggregate) break;
        for (size_t k = 0; k < ctx.outputs.size(); ++k) {
          ExprPtr routed = st.ComputeExpr(ctx.outputs[k].value);
          if (routed == nullptr) {
            return Decided(RejectReason::kOutputNotComputable);
          }
          st.sub.outputs.push_back(
              OutputExpr{query.outputs[k].name, std::move(routed)});
        }
        st.sub.needs_aggregation = false;
        break;
      }

      case MatchOp::kCheckGrouping: {
        // §3.3 requirement 3: every query grouping expression matches a
        // view grouping expression, preferring unused ones so equated
        // grouping columns do not force a needless regroup.
        if (!ctx.is_aggregate) break;
        st.regroup = true;
        if (program.view_is_aggregate) {
          scratch.grouping_used.assign(program.groupings.size(), 0);
          for (const ExprShape& shape : ctx.group_by_shapes) {
            int match = -1;
            for (size_t k = 0; k < program.groupings.size(); ++k) {
              if (st.ShapesEquivalentViewB(shape,
                                           program.groupings[k].shape)) {
                match = static_cast<int>(k);
                if (!scratch.grouping_used[k]) break;
              }
            }
            if (match < 0) {
              return Decided(RejectReason::kGroupingMismatch);
            }
            scratch.grouping_used[static_cast<size_t>(match)] = 1;
          }
          st.regroup = false;
          for (char used : scratch.grouping_used) {
            if (!used) {
              st.regroup = true;
              break;
            }
          }
        }
        st.needs_aggregation = !program.view_is_aggregate || st.regroup;
        break;
      }

      case MatchOp::kEmitGroupBy: {
        if (!ctx.is_aggregate) break;
        if (st.needs_aggregation) {
          for (const auto& g : ctx.group_by) {
            ExprPtr routed = st.ComputeExpr(g);
            if (routed == nullptr) {
              return Decided(RejectReason::kOutputNotComputable);
            }
            st.sub.group_by.push_back(std::move(routed));
          }
        }
        st.sub.needs_aggregation = st.needs_aggregation;
        break;
      }

      case MatchOp::kEmitAggOutputs: {
        // §3.3 output emission: count(*) -> SUM(cnt) rollup, SUM/MIN/MAX
        // rollup, AVG = SUM/COUNT.
        if (!ctx.is_aggregate) break;
        for (size_t k = 0; k < ctx.outputs.size(); ++k) {
          const MatchProbeContext::OutputInfo& oi = ctx.outputs[k];
          const std::string& name = query.outputs[k].name;
          if (!oi.is_aggregate) {
            ExprPtr routed = st.ComputeExpr(oi.value);
            if (routed == nullptr) {
              return Decided(RejectReason::kOutputNotComputable);
            }
            st.sub.outputs.push_back(OutputExpr{name, std::move(routed)});
            continue;
          }
          const AggKind kind = oi.agg_kind;
          if (!program.allow_min_max &&
              (kind == AggKind::kMin || kind == AggKind::kMax)) {
            return Decided(RejectReason::kAggregateNotComputable);
          }
          if (!program.view_is_aggregate) {
            // Compensating aggregation over an SPJ view.
            ExprPtr arg;
            if (kind != AggKind::kCountStar) {
              arg = st.ComputeExpr(oi.value);
              if (arg == nullptr) {
                return Decided(RejectReason::kAggregateNotComputable);
              }
            }
            st.sub.outputs.push_back(OutputExpr{
                name, Expr::MakeAggregate(kind, std::move(arg))});
            continue;
          }
          switch (kind) {
            case AggKind::kCountStar: {
              if (program.count_ordinal < 0) {
                return Decided(RejectReason::kAggregateNotComputable);
              }
              ExprPtr cnt = Expr::MakeColumn(0, program.count_ordinal);
              st.sub.outputs.push_back(OutputExpr{
                  name, st.regroup ? Expr::MakeAggregate(AggKind::kSum, cnt)
                                   : cnt});
              break;
            }
            case AggKind::kSum:
            case AggKind::kMin:
            case AggKind::kMax: {
              const int32_t ordinal =
                  st.FindViewAgg(kind, oi.agg_arg_shape);
              if (ordinal < 0) {
                return Decided(RejectReason::kAggregateNotComputable);
              }
              ExprPtr col = Expr::MakeColumn(0, ordinal);
              ExprPtr out = col;
              if (st.regroup) {
                out = Expr::MakeAggregate(
                    kind == AggKind::kSum ? AggKind::kSum : kind, col);
              }
              st.sub.outputs.push_back(OutputExpr{name, std::move(out)});
              break;
            }
            case AggKind::kAvg: {
              const int32_t sum_ordinal =
                  st.FindViewAgg(AggKind::kSum, oi.agg_arg_shape);
              if (sum_ordinal < 0 || program.count_ordinal < 0) {
                return Decided(RejectReason::kAggregateNotComputable);
              }
              ExprPtr sum_col = Expr::MakeColumn(0, sum_ordinal);
              ExprPtr cnt_col = Expr::MakeColumn(0, program.count_ordinal);
              ExprPtr out;
              if (st.regroup) {
                out = Expr::MakeArith(
                    ArithOp::kDiv,
                    Expr::MakeAggregate(AggKind::kSum, sum_col),
                    Expr::MakeAggregate(AggKind::kSum, cnt_col));
              } else {
                out = Expr::MakeArith(ArithOp::kDiv, sum_col, cnt_col);
              }
              st.sub.outputs.push_back(OutputExpr{name, std::move(out)});
              break;
            }
          }
        }
        break;
      }

      case MatchOp::kAccept: {
        MatchExecResult out;
        out.status = MatchExecStatus::kDecided;
        out.result.substitute = std::move(st.sub);
        return out;
      }
    }
  }
  // A well-formed program always ends in kAccept; an instruction stream
  // that falls off the end (a corrupted program) declines to the oracle.
  return MatchExecResult{};
}

}  // namespace mvopt
