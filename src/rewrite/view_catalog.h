// Registry of materialized views: validated definitions plus their
// precomputed descriptions (§4). Exhaustive (no-index) candidate
// enumeration lives here; the filter tree in src/index builds on the same
// descriptions.

#ifndef MVOPT_REWRITE_VIEW_CATALOG_H_
#define MVOPT_REWRITE_VIEW_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/view_def.h"
#include "rewrite/view_description.h"

namespace mvopt {

struct MatchProgram;

class ViewCatalog {
 public:
  explicit ViewCatalog(const Catalog* catalog) : catalog_(catalog) {}

  /// Snapshot clone (the immutable-catalog publication path, DESIGN.md
  /// §15): the per-snapshot containers — descriptions, name index — are
  /// copied, but the ViewDefinition objects themselves are SHARED with
  /// the source. Sharing is load-bearing twice over: mutable_view()
  /// state (materialization results) stays visible across snapshot
  /// generations, and references handed out by ResolveView/view() stay
  /// valid after the snapshot that produced them is reclaimed, because
  /// every later snapshot still holds the same definitions (published
  /// catalogs grow append-only; RemoveLastView only ever runs on
  /// unpublished clones being rolled back).
  ViewCatalog(const ViewCatalog& other)
      : catalog_(other.catalog_),
        views_(other.views_),
        descriptions_(other.descriptions_),
        programs_(other.programs_),
        by_name_(other.by_name_) {}
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Validates and registers a view. Returns the definition, or nullptr
  /// with `*error` set when the view is not indexable or the name is
  /// already registered (re-registering a name is a hard error).
  /// Strongly exception-safe: everything fallible (validation,
  /// description, allocation, failpoints) happens before the first
  /// container mutation, so a throw leaves the catalog untouched.
  ViewDefinition* AddView(const std::string& name, SpjgQuery definition,
                          std::string* error = nullptr);

  /// Rolls back the most recent successful AddView (`id` must be the id
  /// it returned). Used by MatchingService's transactional AddView when
  /// a later step — indexing the view — fails.
  void RemoveLastView(ViewId id);

  /// The registered view with `name`, or nullptr.
  const ViewDefinition* FindView(const std::string& name) const;

  int num_views() const { return static_cast<int>(views_.size()); }
  const ViewDefinition& view(ViewId id) const { return *views_[id]; }
  ViewDefinition& mutable_view(ViewId id) { return *views_[id]; }
  const ViewDescription& description(ViewId id) const {
    return descriptions_[id];
  }
  const std::vector<ViewDescription>& descriptions() const {
    return descriptions_;
  }

  /// Compiled match program of `id`, or nullptr (generic tier). Programs
  /// are immutable and shared across snapshot generations like the
  /// definitions: compiled once under the writer lock at registration or
  /// recovery (MatchingService), never on the probe path.
  const std::shared_ptr<const MatchProgram>& program(ViewId id) const {
    return programs_[id];
  }
  /// Installs (or clears) the compiled program of `id`. Only called on
  /// unpublished clones, mirroring the rest of the clone-mutate-publish
  /// discipline.
  void SetProgram(ViewId id, std::shared_ptr<const MatchProgram> program) {
    programs_[id] = std::move(program);
  }

  const Catalog& catalog() const { return *catalog_; }

 private:
  const Catalog* catalog_;
  /// shared_ptr, not unique_ptr: snapshot clones share the definition
  /// objects (see the copy constructor), so a definition lives as long
  /// as ANY snapshot generation references it.
  std::vector<std::shared_ptr<ViewDefinition>> views_;
  std::vector<ViewDescription> descriptions_;
  /// Per-view compiled match programs (nullptr = generic tier), parallel
  /// to views_. shared_ptr for the same lifetime reason as views_.
  std::vector<std::shared_ptr<const MatchProgram>> programs_;
  std::unordered_map<std::string, ViewId> by_name_;
};

}  // namespace mvopt

#endif  // MVOPT_REWRITE_VIEW_CATALOG_H_
