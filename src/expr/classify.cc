#include "expr/classify.h"

namespace mvopt {

namespace {

bool IsRangeOp(CompareOp op) { return op != CompareOp::kNe; }

}  // namespace

ClassifiedPredicates ClassifyConjuncts(
    const std::vector<ExprPtr>& conjuncts) {
  ClassifiedPredicates out;
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kComparison) {
      const Expr& lhs = *c->child(0);
      const Expr& rhs = *c->child(1);
      // Column = column.
      if (c->compare_op() == CompareOp::kEq &&
          lhs.kind() == ExprKind::kColumnRef &&
          rhs.kind() == ExprKind::kColumnRef) {
        out.equalities.push_back({lhs.column_ref(), rhs.column_ref()});
        continue;
      }
      // Column op constant (either orientation).
      if (IsRangeOp(c->compare_op())) {
        if (lhs.kind() == ExprKind::kColumnRef &&
            rhs.kind() == ExprKind::kLiteral && !rhs.literal().is_null()) {
          out.ranges.push_back(
              {lhs.column_ref(), c->compare_op(), rhs.literal()});
          continue;
        }
        if (rhs.kind() == ExprKind::kColumnRef &&
            lhs.kind() == ExprKind::kLiteral && !lhs.literal().is_null()) {
          out.ranges.push_back({rhs.column_ref(),
                                FlipCompare(c->compare_op()), lhs.literal()});
          continue;
        }
      }
    }
    out.residual.push_back(c);
  }
  return out;
}

bool IsNullRejectingOn(const Expr& conjunct, ColumnRefId column) {
  switch (conjunct.kind()) {
    case ExprKind::kIsNotNull:
      return conjunct.child(0)->kind() == ExprKind::kColumnRef &&
             conjunct.child(0)->column_ref() == column;
    case ExprKind::kComparison: {
      // Any comparison evaluating to UNKNOWN on null rejects the row; it
      // null-rejects `column` if the column appears on either side and the
      // comparison is not against another expression that could hide it.
      std::vector<ColumnRefId> cols;
      conjunct.CollectColumnRefs(&cols);
      for (ColumnRefId c : cols) {
        if (c == column) return true;
      }
      return false;
    }
    case ExprKind::kLike: {
      std::vector<ColumnRefId> cols;
      conjunct.CollectColumnRefs(&cols);
      for (ColumnRefId c : cols) {
        if (c == column) return true;
      }
      return false;
    }
    default:
      // OR / NOT / other shapes: be conservative.
      return false;
  }
}

}  // namespace mvopt
