// Conversion of predicates to conjunctive normal form. The paper assumes
// "the selection predicates of view and query expressions have been
// converted into CNF" (§3); this module performs that conversion:
// NOT-pushdown (De Morgan + comparison negation), AND flattening, and
// OR-over-AND distribution with a size guard (oversized disjunctions are
// kept whole as a single conjunct — they become residual predicates, which
// matches the prototype's "no ORs in ranges" stance).

#ifndef MVOPT_EXPR_CNF_H_
#define MVOPT_EXPR_CNF_H_

#include <vector>

#include "expr/expr.h"

namespace mvopt {

/// Returns the conjuncts of `pred` in CNF. The result is a bag: duplicate
/// conjuncts are removed (structural equality).
std::vector<ExprPtr> ToCnf(const ExprPtr& pred);

/// Negation of a comparison operator (NOT (a < b) == a >= b).
CompareOp NegateCompare(CompareOp op);

}  // namespace mvopt

#endif  // MVOPT_EXPR_CNF_H_
