#include "expr/cnf.h"

#include <unordered_set>

namespace mvopt {

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

namespace {

// Maximum number of conjuncts a distribution step may produce before we
// give up and keep the disjunction opaque.
constexpr size_t kDistributionLimit = 64;

// Pushes negations down to atoms. `negated` indicates whether the current
// subtree is under an odd number of NOTs.
ExprPtr PushNot(const ExprPtr& e, bool negated) {
  switch (e->kind()) {
    case ExprKind::kNot:
      return PushNot(e->child(0), !negated);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> kids;
      kids.reserve(e->num_children());
      for (const auto& c : e->children()) kids.push_back(PushNot(c, negated));
      const bool is_and = (e->kind() == ExprKind::kAnd) != negated;
      return is_and ? Expr::MakeAnd(std::move(kids))
                    : Expr::MakeOr(std::move(kids));
    }
    case ExprKind::kComparison:
      if (negated) {
        return Expr::MakeCompare(NegateCompare(e->compare_op()), e->child(0),
                                 e->child(1));
      }
      return e;
    default:
      // Atom (literal boolean, LIKE, IS NOT NULL, ...): wrap if negated.
      return negated ? Expr::MakeNot(e) : e;
  }
}

// CNF of a NOT-normalized expression, as a list of conjuncts.
std::vector<ExprPtr> CnfConjuncts(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kAnd: {
      std::vector<ExprPtr> out;
      for (const auto& c : e->children()) {
        auto sub = CnfConjuncts(c);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case ExprKind::kOr: {
      // Distribute: CNF(a) x CNF(b) x ... -> one conjunct per pick,
      // each a disjunction of the picked conjuncts.
      std::vector<std::vector<ExprPtr>> child_cnfs;
      size_t product = 1;
      for (const auto& c : e->children()) {
        child_cnfs.push_back(CnfConjuncts(c));
        product *= child_cnfs.back().size();
        if (product > kDistributionLimit) return {e};  // keep opaque
      }
      std::vector<ExprPtr> out;
      std::vector<size_t> pick(child_cnfs.size(), 0);
      while (true) {
        std::vector<ExprPtr> disj;
        for (size_t i = 0; i < child_cnfs.size(); ++i) {
          disj.push_back(child_cnfs[i][pick[i]]);
        }
        out.push_back(Expr::MakeOr(std::move(disj)));
        size_t i = 0;
        for (; i < pick.size(); ++i) {
          if (++pick[i] < child_cnfs[i].size()) break;
          pick[i] = 0;
        }
        if (i == pick.size()) break;
      }
      return out;
    }
    default:
      return {e};
  }
}

}  // namespace

std::vector<ExprPtr> ToCnf(const ExprPtr& pred) {
  if (pred == nullptr) return {};
  std::vector<ExprPtr> conjuncts = CnfConjuncts(PushNot(pred, false));
  // Deduplicate structurally.
  std::vector<ExprPtr> out;
  for (const auto& c : conjuncts) {
    bool dup = false;
    for (const auto& kept : out) {
      if (kept->Equals(*c)) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(c);
  }
  return out;
}

}  // namespace mvopt
