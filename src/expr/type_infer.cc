#include "expr/type_infer.h"

namespace mvopt {

ValueType InferType(
    const Expr& expr,
    const std::function<ValueType(ColumnRefId)>& column_type) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return column_type(expr.column_ref());
    case ExprKind::kLiteral:
      return expr.literal().type();
    case ExprKind::kArithmetic: {
      ValueType lhs = InferType(*expr.child(0), column_type);
      ValueType rhs = InferType(*expr.child(1), column_type);
      if (expr.arith_op() == ArithOp::kDiv) return ValueType::kDouble;
      if (lhs == ValueType::kDouble || rhs == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return ValueType::kInt64;
    }
    case ExprKind::kComparison:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kIsNotNull:
      return ValueType::kInt64;  // boolean as 0/1
    case ExprKind::kAggregate:
      switch (expr.agg_kind()) {
        case AggKind::kCountStar:
          return ValueType::kInt64;
        case AggKind::kAvg:
          return ValueType::kDouble;
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          return InferType(*expr.child(0), column_type);
      }
  }
  return ValueType::kInt64;
}

}  // namespace mvopt
