// Splits a CNF conjunct list into the three components of §3.1.2:
//
//   PE — column-equality predicates (Ti.Cp = Tj.Cq),
//   PR — range predicates (Ti.Cp op c, op in {<, <=, =, >=, >}),
//   PU — the residual (everything else).
//
// Constant-on-the-left comparisons are flipped; <> goes to the residual.

#ifndef MVOPT_EXPR_CLASSIFY_H_
#define MVOPT_EXPR_CLASSIFY_H_

#include <vector>

#include "expr/expr.h"

namespace mvopt {

/// One (Ti.Cp = Tj.Cq) conjunct.
struct ColumnEqualityPred {
  ColumnRefId lhs;
  ColumnRefId rhs;
};

/// One (Ti.Cp op c) conjunct, normalized so the column is on the left.
struct RangePred {
  ColumnRefId column;
  CompareOp op = CompareOp::kEq;  // kEq, kLt, kLe, kGt, kGe
  Value bound;
};

/// The PE / PR / PU decomposition of a predicate.
struct ClassifiedPredicates {
  std::vector<ColumnEqualityPred> equalities;
  std::vector<RangePred> ranges;
  std::vector<ExprPtr> residual;
};

ClassifiedPredicates ClassifyConjuncts(const std::vector<ExprPtr>& conjuncts);

/// True if `conjunct` is a null-rejecting predicate on exactly the given
/// column: a range or equality or IS NOT NULL mentioning it (used by the
/// §3.2 nullable-foreign-key relaxation).
bool IsNullRejectingOn(const Expr& conjunct, ColumnRefId column);

}  // namespace mvopt

#endif  // MVOPT_EXPR_CLASSIFY_H_
