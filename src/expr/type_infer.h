// Result-type inference for expressions, used when registering a
// materialized view's output schema and by the execution engine.

#ifndef MVOPT_EXPR_TYPE_INFER_H_
#define MVOPT_EXPR_TYPE_INFER_H_

#include <functional>

#include "catalog/catalog.h"
#include "expr/expr.h"

namespace mvopt {

/// Infers the value type of `expr`. `column_type(ref)` supplies the type
/// of each column reference. Booleans are reported as kInt64 (0/1).
ValueType InferType(
    const Expr& expr,
    const std::function<ValueType(ColumnRefId)>& column_type);

}  // namespace mvopt

#endif  // MVOPT_EXPR_TYPE_INFER_H_
