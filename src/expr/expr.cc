#include "expr/expr.h"

#include <cassert>

#include "common/hash_util.h"

namespace mvopt {

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kNe:
      return "<>";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> NewExpr() {
  struct Maker : Expr {};
  // Expr's constructor is private; use a derived accessor-free trick via
  // placement of a friend-like local. Simpler: allocate through a local
  // subclass that exposes the default constructor.
  return std::make_shared<Maker>();
}
}  // namespace

ExprPtr Expr::MakeColumn(ColumnRefId ref) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kColumnRef;
  e->column_ref_ = ref;
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kArithmetic;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kComparison;
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = NewExpr();
  e->kind_ = ExprKind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = NewExpr();
  e->kind_ = ExprKind::kOr;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeLike(ExprPtr input, std::string pattern) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kLike;
  e->like_pattern_ = std::move(pattern);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::MakeIsNotNull(ExprPtr child) {
  auto e = NewExpr();
  e->kind_ = ExprKind::kIsNotNull;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeAggregate(AggKind kind, ExprPtr arg) {
  assert((kind == AggKind::kCountStar) == (arg == nullptr));
  auto e = NewExpr();
  e->kind_ = ExprKind::kAggregate;
  e->agg_kind_ = kind;
  if (arg != nullptr) e->children_ = {std::move(arg)};
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind_ == ExprKind::kAggregate) return true;
  for (const auto& c : children_) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectColumnRefs(std::vector<ColumnRefId>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(column_ref_);
    return;
  }
  for (const auto& c : children_) c->CollectColumnRefs(out);
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumnRef:
      if (column_ref_ != other.column_ref_) return false;
      break;
    case ExprKind::kLiteral:
      if (literal_.type() != other.literal_.type() ||
          literal_ != other.literal_) {
        return false;
      }
      break;
    case ExprKind::kArithmetic:
      if (arith_op_ != other.arith_op_) return false;
      break;
    case ExprKind::kComparison:
      if (compare_op_ != other.compare_op_) return false;
      break;
    case ExprKind::kLike:
      if (like_pattern_ != other.like_pattern_) return false;
      break;
    case ExprKind::kAggregate:
      if (agg_kind_ != other.agg_kind_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t Expr::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x1000193u;
  switch (kind_) {
    case ExprKind::kColumnRef:
      HashCombineRaw(&h, ColumnRefIdHash()(column_ref_));
      break;
    case ExprKind::kLiteral:
      HashCombineRaw(&h, literal_.Hash());
      break;
    case ExprKind::kArithmetic:
      HashCombine(&h, static_cast<int>(arith_op_));
      break;
    case ExprKind::kComparison:
      HashCombine(&h, static_cast<int>(compare_op_));
      break;
    case ExprKind::kLike:
      HashCombine(&h, like_pattern_);
      break;
    case ExprKind::kAggregate:
      HashCombine(&h, static_cast<int>(agg_kind_));
      break;
    default:
      break;
  }
  for (const auto& c : children_) HashCombineRaw(&h, c->Hash());
  return h;
}

ExprPtr Expr::RemapTableRefs(const std::vector<int32_t>& mapping) const {
  return RewriteColumns([&mapping](ColumnRefId ref) -> ExprPtr {
    assert(ref.table_ref >= 0 &&
           ref.table_ref < static_cast<int32_t>(mapping.size()));
    int32_t mapped = mapping[ref.table_ref];
    assert(mapped >= 0 && "table ref not covered by mapping");
    return MakeColumn(ColumnRefId{mapped, ref.column});
  });
}

namespace {

void Render(const Expr& e,
            const std::function<std::string(ColumnRefId)>* name_fn,
            bool shape_mode, std::string* out,
            std::vector<ColumnRefId>* cols) {
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      if (shape_mode) {
        *out += "$";
        cols->push_back(e.column_ref());
      } else if (name_fn != nullptr) {
        *out += (*name_fn)(e.column_ref());
      } else {
        *out += "t" + std::to_string(e.column_ref().table_ref) + ".c" +
                std::to_string(e.column_ref().column);
      }
      return;
    case ExprKind::kLiteral:
      *out += e.literal().ToString();
      return;
    case ExprKind::kArithmetic:
      *out += "(";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      *out += " ";
      *out += ArithOpName(e.arith_op());
      *out += " ";
      Render(*e.child(1), name_fn, shape_mode, out, cols);
      *out += ")";
      return;
    case ExprKind::kComparison:
      *out += "(";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      *out += " ";
      *out += CompareOpName(e.compare_op());
      *out += " ";
      Render(*e.child(1), name_fn, shape_mode, out, cols);
      *out += ")";
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = e.kind() == ExprKind::kAnd ? " AND " : " OR ";
      *out += "(";
      for (size_t i = 0; i < e.num_children(); ++i) {
        if (i > 0) *out += sep;
        Render(*e.child(i), name_fn, shape_mode, out, cols);
      }
      *out += ")";
      return;
    }
    case ExprKind::kNot:
      *out += "NOT ";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      return;
    case ExprKind::kLike:
      *out += "(";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      *out += " LIKE '" + e.like_pattern() + "')";
      return;
    case ExprKind::kIsNotNull:
      *out += "(";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      *out += " IS NOT NULL)";
      return;
    case ExprKind::kAggregate:
      if (e.agg_kind() == AggKind::kCountStar) {
        *out += "count(*)";
        return;
      }
      *out += AggKindName(e.agg_kind());
      *out += "(";
      Render(*e.child(0), name_fn, shape_mode, out, cols);
      *out += ")";
      return;
  }
}

}  // namespace

std::string Expr::ToString(
    const std::function<std::string(ColumnRefId)>* name_fn) const {
  std::string out;
  std::vector<ColumnRefId> cols;
  Render(*this, name_fn, /*shape_mode=*/false, &out, &cols);
  return out;
}

ExprShape ComputeShape(const Expr& expr) {
  ExprShape shape;
  Render(expr, nullptr, /*shape_mode=*/true, &shape.text, &shape.columns);
  return shape;
}

}  // namespace mvopt
