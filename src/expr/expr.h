// Scalar expression trees.
//
// Expressions reference columns positionally: a ColumnRefId names a table
// *reference* (an index into the enclosing SPJG expression's FROM list, so
// self-joins are unambiguous) plus a column ordinal within that table.
// Expression nodes are immutable and shared via ExprPtr.
//
// The module also provides the textual "shape" representation the paper's
// shallow matcher uses (§3.1.2): the expression rendered to text with
// column references factored out, plus the ordered list of references.

#ifndef MVOPT_EXPR_EXPR_H_
#define MVOPT_EXPR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/value.h"

namespace mvopt {

/// A column reference: table reference slot + column ordinal.
struct ColumnRefId {
  int32_t table_ref = -1;
  ColumnOrdinal column = -1;

  bool operator==(const ColumnRefId& o) const {
    return table_ref == o.table_ref && column == o.column;
  }
  bool operator!=(const ColumnRefId& o) const { return !(*this == o); }
  bool operator<(const ColumnRefId& o) const {
    if (table_ref != o.table_ref) return table_ref < o.table_ref;
    return column < o.column;
  }
};

struct ColumnRefIdHash {
  size_t operator()(const ColumnRefId& c) const {
    return static_cast<size_t>(c.table_ref) * 1315423911u +
           static_cast<size_t>(c.column);
  }
};

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kArithmetic,  // + - * /
  kComparison,  // = < <= > >= <>
  kAnd,
  kOr,
  kNot,
  kLike,       // column-bearing expr LIKE pattern-literal
  kIsNotNull,  // null-rejecting unary predicate
  kAggregate,  // appears only at the top of output expressions
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

enum class CompareOp { kEq, kLt, kLe, kGt, kGe, kNe };

/// Mirror image: a op b  ==  b Flip(op) a.
CompareOp FlipCompare(CompareOp op);
const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

enum class AggKind { kCountStar, kSum, kMin, kMax, kAvg };
const char* AggKindName(AggKind kind);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Construct through the static factories.
class Expr {
 public:
  static ExprPtr MakeColumn(ColumnRefId ref);
  static ExprPtr MakeColumn(int32_t table_ref, ColumnOrdinal column) {
    return MakeColumn(ColumnRefId{table_ref, column});
  }
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr MakeLike(ExprPtr input, std::string pattern);
  static ExprPtr MakeIsNotNull(ExprPtr child);
  /// COUNT(*): arg == nullptr. SUM/MIN/MAX/AVG take an argument.
  static ExprPtr MakeAggregate(AggKind kind, ExprPtr arg);

  ExprKind kind() const { return kind_; }
  bool is(ExprKind k) const { return kind_ == k; }

  // Payload accessors; preconditions follow the kind.
  ColumnRefId column_ref() const { return column_ref_; }
  const Value& literal() const { return literal_; }
  ArithOp arith_op() const { return arith_op_; }
  CompareOp compare_op() const { return compare_op_; }
  AggKind agg_kind() const { return agg_kind_; }
  const std::string& like_pattern() const { return like_pattern_; }

  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }

  /// True if any node in the tree is an aggregate.
  bool ContainsAggregate() const;

  /// Appends every column reference, in left-to-right textual order
  /// (aggregate arguments included).
  void CollectColumnRefs(std::vector<ColumnRefId>* out) const;

  /// Structural equality (exact: same kinds, ops, literals, column refs).
  bool Equals(const Expr& other) const;
  size_t Hash() const;

  /// Rebuilds the tree with each column's table_ref replaced by
  /// mapping[table_ref]. Every referenced slot must be mapped (>= 0).
  ExprPtr RemapTableRefs(const std::vector<int32_t>& mapping) const;

  /// Rebuilds the tree replacing each column ref through `fn`; `fn` may
  /// return a full expression (used when routing refs to view outputs).
  template <typename Fn>
  ExprPtr RewriteColumns(Fn&& fn) const;

  /// Renders to SQL-ish text. `name_fn(ref)` supplies the printed name of
  /// a column reference; pass nullptr to print as tN.cM.
  std::string ToString(
      const std::function<std::string(ColumnRefId)>* name_fn = nullptr) const;

 protected:
  Expr() = default;

 private:
  ExprKind kind_ = ExprKind::kLiteral;
  ColumnRefId column_ref_;
  Value literal_;
  ArithOp arith_op_ = ArithOp::kAdd;
  CompareOp compare_op_ = CompareOp::kEq;
  AggKind agg_kind_ = AggKind::kCountStar;
  std::string like_pattern_;
  std::vector<ExprPtr> children_;
};

/// The paper's shallow expression representation: the textual version of
/// the expression with column references omitted (rendered as '$'), plus
/// the ordered list of references. Two expressions "match" when the texts
/// are equal and positionally corresponding columns are equivalent.
struct ExprShape {
  std::string text;
  std::vector<ColumnRefId> columns;

  bool operator==(const ExprShape& o) const {
    return text == o.text && columns == o.columns;
  }
};

ExprShape ComputeShape(const Expr& expr);

template <typename Fn>
ExprPtr Expr::RewriteColumns(Fn&& fn) const {
  if (kind_ == ExprKind::kColumnRef) return fn(column_ref_);
  if (children_.empty()) {
    // Leaf without columns: share the node. Requires a copy because we
    // only have *this; reconstruct cheaply by kind.
    if (kind_ == ExprKind::kLiteral) return MakeLiteral(literal_);
  }
  std::vector<ExprPtr> new_children;
  new_children.reserve(children_.size());
  for (const auto& c : children_) {
    ExprPtr nc = c->RewriteColumns(fn);
    if (nc == nullptr) return nullptr;
    new_children.push_back(std::move(nc));
  }
  switch (kind_) {
    case ExprKind::kArithmetic:
      return MakeArith(arith_op_, new_children[0], new_children[1]);
    case ExprKind::kComparison:
      return MakeCompare(compare_op_, new_children[0], new_children[1]);
    case ExprKind::kAnd:
      return MakeAnd(std::move(new_children));
    case ExprKind::kOr:
      return MakeOr(std::move(new_children));
    case ExprKind::kNot:
      return MakeNot(new_children[0]);
    case ExprKind::kLike:
      return MakeLike(new_children[0], like_pattern_);
    case ExprKind::kIsNotNull:
      return MakeIsNotNull(new_children[0]);
    case ExprKind::kAggregate:
      return MakeAggregate(agg_kind_,
                           new_children.empty() ? nullptr : new_children[0]);
    case ExprKind::kLiteral:
      return MakeLiteral(literal_);
    case ExprKind::kColumnRef:
      break;  // handled above
  }
  return nullptr;
}

}  // namespace mvopt

#endif  // MVOPT_EXPR_EXPR_H_
