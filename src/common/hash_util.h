// Small hash-combining helpers shared across modules.

#ifndef MVOPT_COMMON_HASH_UTIL_H_
#define MVOPT_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <functional>

namespace mvopt {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
inline void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>()(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// Mixes an already-computed hash value into `seed`.
inline void HashCombineRaw(size_t* seed, size_t h) {
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace mvopt

#endif  // MVOPT_COMMON_HASH_UTIL_H_
