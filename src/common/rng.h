// Deterministic random number generator used by data and workload
// generators. A thin wrapper around std::mt19937_64 with the handful of
// draws the generators need, so every experiment is reproducible from a
// seed (the paper generated views and queries "in the same way but with a
// different seed").

#ifndef MVOPT_COMMON_RNG_H_
#define MVOPT_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace mvopt {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Index drawn from unnormalized weights. Precondition: sum > 0.
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_RNG_H_
