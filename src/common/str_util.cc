#include "common/str_util.h"

namespace mvopt {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

bool LikeMatch(const char* t, const char* te, const char* p, const char* pe) {
  while (p != pe) {
    if (*p == '%') {
      ++p;
      if (p == pe) return true;
      for (const char* s = t; s <= te; ++s) {
        if (LikeMatch(s, te, p, pe)) return true;
      }
      return false;
    }
    if (t == te) return false;
    if (*p != '_' && *p != *t) return false;
    ++p;
    ++t;
  }
  return t == te;
}

}  // namespace

bool SqlLike(const std::string& text, const std::string& pattern) {
  return LikeMatch(text.data(), text.data() + text.size(), pattern.data(),
                   pattern.data() + pattern.size());
}

}  // namespace mvopt
