// Annotated mutex types: thin wrappers over std::mutex /
// std::shared_mutex carrying the Clang Thread Safety Analysis
// capability attributes (common/thread_annotations.h), so that
// MVOPT_GUARDED_BY declarations on shared state are actually enforced —
// the std types are invisible to the analysis.
//
// The wrappers add no state and no behavior beyond the std primitives;
// a release build compiles them away entirely. Condition-variable waits
// go through CondVar, whose Wait takes the scoped MutexLock so the wait
// is only expressible with the lock held. Predicate waits are written
// as explicit `while (!cond) cv.Wait(lock);` loops in the caller — the
// analysis cannot see through a predicate lambda, and the loop keeps
// every guarded access inside the annotated function body.
//
// Lock-ordering rules for the repo's mutexes are documented in
// DESIGN.md §12 and, where two locks are owned by one class, declared
// with MVOPT_ACQUIRED_BEFORE so the gate enforces them.

#ifndef MVOPT_COMMON_MUTEX_H_
#define MVOPT_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mvopt {

class CondVar;

/// Plain exclusive mutex (annotated std::mutex).
class MVOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MVOPT_ACQUIRE() { mu_.lock(); }
  void Unlock() MVOPT_RELEASE() { mu_.unlock(); }
  bool TryLock() MVOPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader-writer mutex (annotated std::shared_mutex).
class MVOPT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MVOPT_ACQUIRE() { mu_.lock(); }
  void Unlock() MVOPT_RELEASE() { mu_.unlock(); }
  void LockShared() MVOPT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MVOPT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class ReaderLock;
  friend class WriterLock;
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over a Mutex (the std::lock_guard analogue;
/// also the handle CondVar::Wait requires).
class MVOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MVOPT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MVOPT_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped shared (reader) lock over a SharedMutex.
class MVOPT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MVOPT_ACQUIRE_SHARED(mu)
      : lock_(mu.mu_) {}
  ~ReaderLock() MVOPT_RELEASE() = default;

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

/// Scoped exclusive (writer) lock over a SharedMutex.
class MVOPT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MVOPT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterLock() MVOPT_RELEASE() = default;

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Condition variable bound to Mutex/MutexLock. Wait releases the lock
/// while blocked and reacquires it before returning, so from the
/// analysis' point of view the capability is held across the call —
/// which is exactly the contract the caller's `while` loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_MUTEX_H_
