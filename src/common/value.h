// Value: the runtime scalar type used throughout mvopt.
//
// Values flow through predicate analysis (range bounds are Values), the
// expression evaluator, and the execution engine (rows are vectors of
// Values). The variant covers the types needed by the TPC-H schema used in
// the paper's evaluation: 64-bit integers, doubles, strings, dates (stored
// as days since 1970-01-01), and SQL NULL.

#ifndef MVOPT_COMMON_VALUE_H_
#define MVOPT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace mvopt {

/// Scalar type tags. `kDate` is represented as int64 days internally but
/// kept distinct so schema/type checking and printing behave sensibly.
enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Returns a human-readable name ("int64", "date", ...).
const char* ValueTypeName(ValueType type);

/// A runtime scalar. Copyable; totally ordered within a type family
/// (numeric types compare cross-type, NULL sorts first for index purposes
/// but comparisons against NULL via SQL semantics are handled by the
/// evaluator, not by operator<).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(ValueType::kInt64, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.data_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.data_ = std::move(v);
    return out;
  }
  /// A date as days since the epoch.
  static Value Date(int64_t days) { return Value(ValueType::kDate, days); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble ||
           type_ == ValueType::kDate;
  }

  /// Accessors. Precondition: matching type (kDate also answers int64()).
  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (int64/date/double). Precondition:
  /// is_numeric().
  double AsDouble() const;

  /// Total-order comparison used for ranges and index keys. NULL < any
  /// non-null; numeric types compare by numeric value; strings
  /// lexicographically. Comparing a string with a number is a programming
  /// error and asserts in debug builds (returns type ordering otherwise).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Renders the value for SQL-ish printing ('abc', 42, 3.5, NULL).
  std::string ToString() const;

  /// Stable hash combining type and payload.
  size_t Hash() const;

 private:
  Value(ValueType type, int64_t v) : type_(type), data_(v) {}

  ValueType type_;
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_VALUE_H_
