// String helpers used by printers and the shape matcher.

#ifndef MVOPT_COMMON_STR_UTIL_H_
#define MVOPT_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace mvopt {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// SQL LIKE with % (any run) and _ (single char) wildcards; no escapes.
bool SqlLike(const std::string& text, const std::string& pattern);

}  // namespace mvopt

#endif  // MVOPT_COMMON_STR_UTIL_H_
