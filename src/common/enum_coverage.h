// Compile-time exhaustiveness checking for enum/name-table pairs.
//
// The repo's convention for a reportable enum is a `kNum<Enum>s`
// constant (for reason-indexed count arrays) plus a `<Enum>Name`
// function built on a default-less switch. Two static_asserts guard
// each pair:
//
//   static_assert(static_cast<int>(Enum::kLast) + 1 == kNumEnums, ...);
//   static_assert(AllEnumeratorsNamed<Enum, EnumName>(kNumEnums), ...);
//
// The first catches a new enumerator that the count (and every array
// indexed by it) missed; the second walks every value through the name
// function at compile time and fails if any falls through to the "?"
// fallback — so adding an enumerator without naming it breaks the build
// even where -Wswitch is demoted. Requires the name function to be
// constexpr.

#ifndef MVOPT_COMMON_ENUM_COVERAGE_H_
#define MVOPT_COMMON_ENUM_COVERAGE_H_

namespace mvopt {

/// True when NameFn maps every enumerator in [0, n) to a real name
/// (non-null, not the "?" fallback).
template <typename Enum, auto NameFn>
constexpr bool AllEnumeratorsNamed(int n) {
  for (int i = 0; i < n; ++i) {
    const char* name = NameFn(static_cast<Enum>(i));
    if (name == nullptr || name[0] == '?') return false;
  }
  return true;
}

}  // namespace mvopt

#endif  // MVOPT_COMMON_ENUM_COVERAGE_H_
