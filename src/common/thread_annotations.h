// Clang Thread Safety Analysis annotations, making the repo's lock
// discipline machine-checked instead of comment-checked: every shared
// mutable member declares which capability (mutex) guards it, and every
// function that assumes a caller-held lock says so in its signature.
// Under Clang with -Wthread-safety (the MVOPT_THREAD_SAFETY CMake
// option turns it into -Werror=thread-safety), violating a declaration
// — reading a MVOPT_GUARDED_BY member without its lock, forgetting an
// unlock on one path, acquiring two mutexes against their declared
// MVOPT_ACQUIRED_BEFORE order — is a compile error. Under GCC (and any
// compiler without the attributes) every macro expands to nothing, so
// the annotations are free documentation.
//
// The annotated capability types the rest of the tree uses (Mutex,
// SharedMutex, MutexLock, ReaderLock, WriterLock, CondVar) live in
// common/mutex.h; raw std::mutex / std::shared_mutex members are
// invisible to the analysis and should not be used for shared state.
//
// tools/ci/run_static_analysis.sh builds the tree with the gate on and
// additionally proves the gate *bites* via a negative-compile harness
// (tools/ci/negative_compile) that seeds one violation of each class
// and asserts the compiler rejects it.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef MVOPT_COMMON_THREAD_ANNOTATIONS_H_
#define MVOPT_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define MVOPT_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define MVOPT_THREAD_ANNOTATION_(x) 0
#endif

#if MVOPT_THREAD_ANNOTATION_(guarded_by)
#define MVOPT_TSA_(x) __attribute__((x))
#else
#define MVOPT_TSA_(x)  // no-op outside Clang
#endif

// --- capability types ------------------------------------------------------

/// Marks a type as a capability (lockable). `x` names the capability
/// kind in diagnostics, e.g. MVOPT_CAPABILITY("mutex").
#define MVOPT_CAPABILITY(x) MVOPT_TSA_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock, ReaderLock, ...).
#define MVOPT_SCOPED_CAPABILITY MVOPT_TSA_(scoped_lockable)

// --- data annotations ------------------------------------------------------

/// The member may only be touched while holding `x` (read: at least
/// shared; write: exclusive).
#define MVOPT_GUARDED_BY(x) MVOPT_TSA_(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define MVOPT_PT_GUARDED_BY(x) MVOPT_TSA_(pt_guarded_by(x))

/// Declared lock-ordering edges: this capability must be acquired
/// before / after the listed ones. An acquisition violating the order
/// is a compile error under the gate.
#define MVOPT_ACQUIRED_BEFORE(...) MVOPT_TSA_(acquired_before(__VA_ARGS__))
#define MVOPT_ACQUIRED_AFTER(...) MVOPT_TSA_(acquired_after(__VA_ARGS__))

// --- function annotations --------------------------------------------------

/// The caller must already hold the capability exclusively / shared.
#define MVOPT_REQUIRES(...) MVOPT_TSA_(requires_capability(__VA_ARGS__))
#define MVOPT_REQUIRES_SHARED(...) \
  MVOPT_TSA_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define MVOPT_ACQUIRE(...) MVOPT_TSA_(acquire_capability(__VA_ARGS__))
#define MVOPT_ACQUIRE_SHARED(...) \
  MVOPT_TSA_(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller held on entry.
#define MVOPT_RELEASE(...) MVOPT_TSA_(release_capability(__VA_ARGS__))
#define MVOPT_RELEASE_SHARED(...) \
  MVOPT_TSA_(release_shared_capability(__VA_ARGS__))

/// Conditional acquisition: holds the capability iff the function
/// returned `b`.
#define MVOPT_TRY_ACQUIRE(...) MVOPT_TSA_(try_acquire_capability(__VA_ARGS__))
#define MVOPT_TRY_ACQUIRE_SHARED(...) \
  MVOPT_TSA_(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the capability held (it will
/// acquire it itself — the reentrance / self-deadlock guard).
#define MVOPT_EXCLUDES(...) MVOPT_TSA_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no static proof).
#define MVOPT_ASSERT_CAPABILITY(x) MVOPT_TSA_(assert_capability(x))

/// The function returns a reference to the given capability.
#define MVOPT_RETURN_CAPABILITY(x) MVOPT_TSA_(lock_returned(x))

/// Escape hatch for functions deliberately outside the analysis —
/// documented single-threaded accessors and test seams. Every use
/// carries a comment saying why the exemption is sound.
#define MVOPT_NO_THREAD_SAFETY_ANALYSIS \
  MVOPT_TSA_(no_thread_safety_analysis)

#endif  // MVOPT_COMMON_THREAD_ANNOTATIONS_H_
