#include "common/failpoint.h"

namespace mvopt {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::Enable(const std::string& name,
                               FailpointConfig config) {
  MutexLock lock(mu_);
  Point& p = points_[name];
  p.config = config;
  p.hits = 0;
  p.fired = 0;
  p.rng = config.seed | 1;  // xorshift state must be non-zero
  num_enabled_.store(static_cast<int>(points_.size()),
                     std::memory_order_relaxed);
}

void FailpointRegistry::Disable(const std::string& name) {
  MutexLock lock(mu_);
  points_.erase(name);
  num_enabled_.store(static_cast<int>(points_.size()),
                     std::memory_order_relaxed);
}

void FailpointRegistry::DisableAll() {
  MutexLock lock(mu_);
  points_.clear();
  num_enabled_.store(0, std::memory_order_relaxed);
}

bool FailpointRegistry::ShouldFail(const char* name) {
  if (num_enabled_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  Point& p = it->second;
  const int64_t hit = p.hits++;
  if (hit < p.config.skip) return false;
  if (p.config.count >= 0 && p.fired >= p.config.count) return false;
  if (p.config.probability < 1.0) {
    // xorshift64* — deterministic for a given seed.
    p.rng ^= p.rng >> 12;
    p.rng ^= p.rng << 25;
    p.rng ^= p.rng >> 27;
    const uint64_t r = p.rng * 0x2545f4914f6cdd1dull;
    const double u =
        static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    if (u >= p.config.probability) return false;
  }
  ++p.fired;
  return true;
}

int64_t FailpointRegistry::HitCount(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::FireCount(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

std::vector<std::string> FailpointRegistry::EnabledNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) out.push_back(name);
  return out;
}

}  // namespace mvopt
