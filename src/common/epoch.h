// Base-table update epochs: a global monotonic counter advanced on every
// base-table mutation, plus the per-table epoch of its latest change.
// A materialized view records the global epoch as of its last refresh;
// the view is *stale* when any of its source tables has changed since
// (table epoch > view epoch), and its staleness lag is the number of
// global updates it is behind.
//
// Thread-safety: Advance is serialized by the engine's write path; reads
// (OfTable / LatestOf / now) may run concurrently from probe threads.
// The table-slot deque is guarded by mu_ (growth on first Advance of a
// new id would otherwise race concurrent lookups); the per-slot values
// and the global counter are atomics, so the epoch loads themselves are
// lock-free once the slot address is in hand.

#ifndef MVOPT_COMMON_EPOCH_H_
#define MVOPT_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mvopt {

class TableEpochClock {
 public:
  TableEpochClock() = default;
  TableEpochClock(const TableEpochClock&) = delete;
  TableEpochClock& operator=(const TableEpochClock&) = delete;

  /// Records a mutation of `table`; returns the new global epoch.
  uint64_t Advance(int32_t table) MVOPT_EXCLUDES(mu_) {
    std::atomic<uint64_t>* slot = SlotFor(table);
    uint64_t epoch = global_.fetch_add(1, std::memory_order_acq_rel) + 1;
    slot->store(epoch, std::memory_order_release);
    return epoch;
  }

  /// Epoch of `table`'s latest mutation (0 = never mutated).
  uint64_t OfTable(int32_t table) const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (table < 0 || static_cast<size_t>(table) >= epochs_.size()) return 0;
    return epochs_[table].load(std::memory_order_acquire);
  }

  /// Latest mutation epoch across `tables` (0 = none mutated).
  uint64_t LatestOf(const std::vector<int32_t>& tables) const
      MVOPT_EXCLUDES(mu_) {
    uint64_t latest = 0;
    MutexLock lock(mu_);
    for (int32_t t : tables) {
      if (t < 0 || static_cast<size_t>(t) >= epochs_.size()) continue;
      uint64_t e = epochs_[t].load(std::memory_order_acquire);
      if (e > latest) latest = e;
    }
    return latest;
  }

  /// The current global epoch (total mutations recorded).
  uint64_t now() const { return global_.load(std::memory_order_acquire); }

 private:
  /// Returns the (stable) slot for `table`, growing the deque on first
  /// use. The returned pointer outlives the lock: deque growth never
  /// moves existing atomics, and the slot value itself is atomic.
  std::atomic<uint64_t>* SlotFor(int32_t table) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (epochs_.size() <= static_cast<size_t>(table)) {
      epochs_.emplace_back(0);
    }
    return &epochs_[table];
  }

  std::atomic<uint64_t> global_{0};
  mutable Mutex mu_;
  /// Deque: growth never moves existing atomics.
  std::deque<std::atomic<uint64_t>> epochs_ MVOPT_GUARDED_BY(mu_);
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_EPOCH_H_
