#include "common/value.h"

#include <cassert>
#include <cstdio>
#include <functional>

namespace mvopt {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "?";
}

double Value::AsDouble() const {
  assert(is_numeric());
  if (type_ == ValueType::kDouble) return std::get<double>(data_);
  return static_cast<double>(std::get<int64_t>(data_));
}

int Value::Compare(const Value& other) const {
  const bool lhs_null = is_null();
  const bool rhs_null = other.is_null();
  if (lhs_null || rhs_null) {
    if (lhs_null && rhs_null) return 0;
    return lhs_null ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    // Compare exactly when both sides are integer-backed; otherwise widen.
    if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
      const int64_t a = int64();
      const int64_t b = other.int64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    const int c = str().compare(other.str());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed string/number: fall back to type ordering so containers stay
  // consistent; the analyzer never produces such comparisons.
  assert(false && "comparing values of incompatible types");
  return static_cast<int>(type_) - static_cast<int>(other.type_);
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDate: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "DATE(%lld)",
                    static_cast<long long>(int64()));
      return buf;
    }
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", dbl());
      return buf;
    }
    case ValueType::kString:
      return "'" + str() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type_) * 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case ValueType::kNull:
      return seed;
    case ValueType::kInt64:
    case ValueType::kDate:
      return seed ^ std::hash<int64_t>()(int64());
    case ValueType::kDouble:
      return seed ^ std::hash<double>()(dbl());
    case ValueType::kString:
      return seed ^ std::hash<std::string>()(str());
  }
  return seed;
}

}  // namespace mvopt
