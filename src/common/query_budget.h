// Per-query resource governance: a wall-clock deadline plus caps on the
// work the matching pipeline and the optimizer's memo expansion may
// perform. The budget is checked cooperatively — the filter tree, the
// matching service and the optimizer call the Tick/Consume methods at
// loop boundaries — and exhaustion is *sticky*: once any limit trips,
// every later check reports exhausted and records the first reason, so
// all layers wind down together and the optimizer can return the best
// plan found so far instead of throwing or hanging.
//
// A budget is per-query state and is NOT thread-safe; give each
// concurrent optimization its own instance. Passing no budget (nullptr
// throughout the APIs) keeps every code path byte-identical to the
// ungoverned behavior.

#ifndef MVOPT_COMMON_QUERY_BUDGET_H_
#define MVOPT_COMMON_QUERY_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <limits>

#include "common/enum_coverage.h"

namespace mvopt {

/// Why an optimization was degraded (first limit that tripped).
/// kStaleViewsOnly and kPartialCatalog are *advisory*: they never
/// exhaust the budget. kStaleViewsOnly reports that every matching view
/// was skipped for staleness; kPartialCatalog reports that a catalog
/// shard the query routed to was quarantined, so the answer — while
/// correct — may be missing substitutes that shard would have offered.
enum class DegradationReason {
  kNone = 0,
  kDeadlineExceeded,     ///< wall-clock deadline passed
  kCandidateCapReached,  ///< filter-tree candidate cap hit
  kMemoGroupCapReached,  ///< memo group cap hit
  kMemoExprCapReached,   ///< memo expression cap hit
  kStaleViewsOnly,       ///< only stale view candidates existed
  kPartialCatalog,       ///< a routed catalog shard was unavailable
};

inline constexpr int kNumDegradationReasons = 7;
static_assert(static_cast<int>(DegradationReason::kPartialCatalog) + 1 ==
                  kNumDegradationReasons,
              "kNumDegradationReasons must cover every DegradationReason");

/// Exhaustive (switch-based, no default): a new DegradationReason
/// without a name is a -Wswitch error, and the static_assert below
/// proves every value maps to a real name even where that warning is
/// demoted.
constexpr const char* DegradationReasonName(DegradationReason reason) {
  switch (reason) {
    case DegradationReason::kNone:
      return "none";
    case DegradationReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case DegradationReason::kCandidateCapReached:
      return "candidate-cap";
    case DegradationReason::kMemoGroupCapReached:
      return "memo-group-cap";
    case DegradationReason::kMemoExprCapReached:
      return "memo-expr-cap";
    case DegradationReason::kStaleViewsOnly:
      return "stale-views-only";
    case DegradationReason::kPartialCatalog:
      return "partial-catalog";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<DegradationReason, DegradationReasonName>(
                  kNumDegradationReasons),
              "every DegradationReason needs a DegradationReasonName entry");

class QueryBudget {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();
  /// Clock reads are amortized: one per this many TickDeadline calls
  /// (the first call always reads, so an already-expired deadline trips
  /// immediately).
  static constexpr int64_t kDeadlineCheckStride = 16;

  QueryBudget() = default;  // unlimited in every dimension

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    // Re-arm the amortization stride: the first TickDeadline after a
    // deadline is (re)set must read the clock, or an already-expired
    // deadline installed mid-stride would coast for up to
    // kDeadlineCheckStride-1 further ticks before tripping.
    ticks_ = 0;
  }
  void set_deadline_after(Clock::duration d) { set_deadline(Clock::now() + d); }
  void set_candidate_cap(int64_t cap) { candidate_cap_ = cap; }
  void set_memo_group_cap(int64_t cap) { memo_group_cap_ = cap; }
  void set_memo_expr_cap(int64_t cap) { memo_expr_cap_ = cap; }

  /// Staleness tolerance: a view whose contents lag its base tables by
  /// at most this many update epochs may still be substituted (its
  /// substitutes are down-ranked behind fresh ones). 0 = fresh only.
  void set_max_staleness(uint64_t epochs) { max_staleness_ = epochs; }
  uint64_t max_staleness() const { return max_staleness_; }

  bool has_deadline() const { return has_deadline_; }
  /// The absolute deadline (meaningful only when has_deadline()). The
  /// parallel match stage snapshots this so worker threads can compare
  /// against the clock without touching the (non-thread-safe) budget.
  Clock::time_point deadline() const { return deadline_; }
  bool exhausted() const { return reason_ != DegradationReason::kNone; }
  DegradationReason reason() const {
    return reason_ != DegradationReason::kNone ? reason_ : advisory_;
  }

  /// Records an advisory degradation (reported by reason() when no hard
  /// limit tripped) without exhausting the budget. First advisory wins,
  /// with one priority exception: kPartialCatalog replaces any other
  /// advisory, so "a routed shard was unavailable" is reported iff it
  /// happened — even when a stale-views advisory landed first (the
  /// partial-availability contract in shard/sharded_catalog_service.h
  /// depends on this).
  void NoteDegradation(DegradationReason reason) {
    if (advisory_ == DegradationReason::kNone ||
        (reason == DegradationReason::kPartialCatalog &&
         advisory_ != DegradationReason::kPartialCatalog)) {
      advisory_ = reason;
    }
  }

  /// Hard-exhausts the budget with `reason` (first reason wins, like any
  /// other limit). Used by the parallel match stage to charge, after the
  /// workers join, a deadline its workers observed mid-stage — the
  /// budget itself is never touched off the owning thread.
  void MarkExhausted(DegradationReason reason) {
    if (reason_ == DegradationReason::kNone) reason_ = reason;
  }

  /// Clears the sticky degradation state and the per-query usage
  /// counters so one budget can govern a sequence of Optimize() calls
  /// (caps are per query; the wall-clock deadline, being absolute, is
  /// kept). Called by the optimizer at optimization entry. Resetting
  /// ticks_ also re-arms the deadline-check stride, so the first tick of
  /// the next query always reads the clock — an already-expired deadline
  /// trips immediately instead of up to kDeadlineCheckStride-1 ticks
  /// later (the deadline-overshoot regression in query_budget_test).
  void ResetForQuery() {
    reason_ = DegradationReason::kNone;
    advisory_ = DegradationReason::kNone;
    ticks_ = 0;
    candidates_used_ = 0;
    memo_groups_used_ = 0;
    memo_exprs_used_ = 0;
  }

  /// Cooperative deadline check; call at loop boundaries. Returns
  /// exhausted() so call sites can bail with one branch.
  bool TickDeadline() {
    if (exhausted()) return true;
    if (!has_deadline_) return false;
    if (ticks_++ % kDeadlineCheckStride == 0 && Clock::now() >= deadline_) {
      reason_ = DegradationReason::kDeadlineExceeded;
    }
    return exhausted();
  }

  /// Charges one filter-tree candidate. Returns exhausted(); when true
  /// the candidate must NOT be emitted.
  bool ConsumeCandidate() {
    if (exhausted()) return true;
    if (++candidates_used_ > candidate_cap_) {
      reason_ = DegradationReason::kCandidateCapReached;
    }
    return exhausted();
  }

  /// Charges one memo group / expression. The optimizer still creates
  /// the structure it needs for a complete plan after exhaustion; these
  /// only stop *optional* alternatives.
  bool ConsumeMemoGroup() {
    if (exhausted()) return true;
    if (++memo_groups_used_ > memo_group_cap_) {
      reason_ = DegradationReason::kMemoGroupCapReached;
    }
    return exhausted();
  }
  bool ConsumeMemoExpr() {
    if (exhausted()) return true;
    if (++memo_exprs_used_ > memo_expr_cap_) {
      reason_ = DegradationReason::kMemoExprCapReached;
    }
    return exhausted();
  }

  int64_t candidates_used() const { return candidates_used_; }
  int64_t memo_groups_used() const { return memo_groups_used_; }
  int64_t memo_exprs_used() const { return memo_exprs_used_; }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  int64_t candidate_cap_ = kUnlimited;
  int64_t memo_group_cap_ = kUnlimited;
  int64_t memo_expr_cap_ = kUnlimited;
  uint64_t max_staleness_ = 0;

  int64_t ticks_ = 0;
  int64_t candidates_used_ = 0;
  int64_t memo_groups_used_ = 0;
  int64_t memo_exprs_used_ = 0;
  DegradationReason reason_ = DegradationReason::kNone;
  DegradationReason advisory_ = DegradationReason::kNone;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_QUERY_BUDGET_H_
