// A small fixed thread pool for the matching pipeline's batched match
// stage (and any future intra-query parallelism: sharded catalog probes,
// batched workloads). Design goals, in order:
//
//   1. Determinism stays the caller's property: the pool only runs the
//      closures it is given; callers assign each work item its own
//      output slot, so results are merged in item order regardless of
//      which worker ran what.
//   2. Batches from concurrent callers interleave safely: RunBatch may
//      be invoked from many threads against one shared pool; each batch
//      tracks its own completion, and the calling thread participates
//      in its own batch (so a pool with zero workers still makes
//      progress and degenerates to serial execution).
//   3. No surprises under sanitizers or the thread-safety gate: all
//      cross-thread communication is annotated-mutex / condition-
//      variable / atomic based (every guarded member carries its
//      MVOPT_GUARDED_BY); tasks must not throw (wrap fallible work, as
//      the match stage does per candidate).
//
// Lock order: the pool-wide mu_ and a batch's Batch::mu are never held
// together — queue operations take mu_, completion accounting takes the
// batch's own lock after mu_ is dropped.
//
// The pool is intentionally minimal — no futures, no stealing, no
// priorities. It exists to be the seam `QueryContext::match_pool` plugs
// into, not a general executor.

#ifndef MVOPT_COMMON_THREAD_POOL_H_
#define MVOPT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mvopt {

class ThreadPool {
 public:
  /// Starts `num_workers` threads (0 is allowed: RunBatch then executes
  /// everything on the calling thread).
  explicit ThreadPool(int num_workers) {
    if (num_workers < 0) num_workers = 0;
    workers_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  /// Stops the workers and joins them. Idempotent and safe to call from
  /// several threads (the first caller joins; later callers wait until
  /// the join is done). Workers finish any batches already queued before
  /// exiting, and RunBatch stays usable after shutdown: the caller
  /// participates in its own batch, so every batch — including one
  /// racing the stop — still completes, just on the submitting thread.
  /// This is the property the serving layer's drain path leans on.
  void Shutdown() MVOPT_EXCLUDES(mu_) {
    bool do_join = false;
    {
      MutexLock lock(mu_);
      stop_ = true;
      if (!join_started_) {
        join_started_ = true;
        do_join = true;
      }
    }
    cv_.NotifyAll();
    if (do_join) {
      for (std::thread& w : workers_) w.join();
      {
        MutexLock lock(mu_);
        join_done_ = true;
      }
      joined_cv_.NotifyAll();
    } else {
      MutexLock lock(mu_);
      while (!join_done_) joined_cv_.Wait(lock);
    }
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs every task across the workers and the calling thread; returns
  /// when all of them have completed. Tasks must not throw. Safe to call
  /// from multiple threads concurrently.
  void RunBatch(const std::vector<std::function<void()>>& tasks)
      MVOPT_EXCLUDES(mu_) {
    if (tasks.empty()) return;
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->size = tasks.size();
    {
      MutexLock lock(mu_);
      batches_.push_back(batch);
    }
    cv_.NotifyAll();
    // The caller participates: claim and run tasks until none are left.
    DrainBatch(*batch);
    RetireBatch(batch);
    MutexLock lock(batch->mu);
    while (batch->completed != batch->size) batch->done_cv.Wait(lock);
  }

 private:
  struct Batch {
    const std::vector<std::function<void()>>* tasks = nullptr;
    size_t size = 0;
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar done_cv;
    size_t completed MVOPT_GUARDED_BY(mu) = 0;
  };

  /// Claims and runs tasks from `batch` until every index is taken.
  /// Runs the closures unlocked; only the completion count takes the
  /// batch lock.
  void DrainBatch(Batch& batch) MVOPT_EXCLUDES(mu_) {
    for (;;) {
      const size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size) return;
      (*batch.tasks)[i]();
      bool all_done = false;
      {
        MutexLock lock(batch.mu);
        all_done = ++batch.completed == batch.size;
      }
      if (all_done) batch.done_cv.NotifyAll();
    }
  }

  /// Removes a fully claimed batch from the shared queue (idempotent).
  void RetireBatch(const std::shared_ptr<Batch>& batch) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (auto it = batches_.begin(); it != batches_.end(); ++it) {
      if (*it == batch) {
        batches_.erase(it);
        return;
      }
    }
  }

  void WorkerLoop() MVOPT_EXCLUDES(mu_) {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        MutexLock lock(mu_);
        while (!stop_ && batches_.empty()) cv_.Wait(lock);
        if (batches_.empty()) {
          if (stop_) return;
          continue;
        }
        batch = batches_.front();
      }
      if (batch->next.load(std::memory_order_relaxed) >= batch->size) {
        // Fully claimed (tasks may still be running on other threads);
        // retire it so waiters stop rediscovering it.
        RetireBatch(batch);
        continue;
      }
      DrainBatch(*batch);
      RetireBatch(batch);
    }
  }

  Mutex mu_;
  CondVar cv_;
  CondVar joined_cv_;
  std::deque<std::shared_ptr<Batch>> batches_ MVOPT_GUARDED_BY(mu_);
  bool stop_ MVOPT_GUARDED_BY(mu_) = false;
  /// Shutdown state: exactly one caller joins the workers; others wait
  /// on joined_cv_ until the join completes.
  bool join_started_ MVOPT_GUARDED_BY(mu_) = false;
  bool join_done_ MVOPT_GUARDED_BY(mu_) = false;
  /// Started in the constructor, joined in the destructor, immutable in
  /// between — no guard needed (num_workers() reads only the size).
  std::vector<std::thread> workers_;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_THREAD_POOL_H_
