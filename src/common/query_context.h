// QueryContext: the single per-query object threaded through every layer
// of the matching/optimization pipeline (FilterTree probes →
// MatchingService stages → RewriteChecker → Optimizer). Four PRs of
// growth each added a loose cross-cutting parameter (QueryBudget*,
// QueryTrace*, staleness tolerance, failpoint/observe knobs); the
// context replaces the bundle with one handle that owns or borrows:
//
//   - the resource budget (deadline, candidate/memo caps, degradation
//     state — see common/query_budget.h),
//   - the per-query trace recorder (observe/trace.h, borrowed; common/
//     stays below observe/ so only the pointer lives here),
//   - an observe hook invoked at every pipeline stage boundary (how the
//     golden-order tests watch the staged pipeline without a registry),
//   - the staleness tolerance (merged with the budget's, maximum wins),
//   - the query's RNG seed (deterministic tie-breaking / sampling for
//     layers that need randomness; never consult a global generator),
//   - the match-stage parallelism knobs (a borrowed ThreadPool and the
//     minimum candidate count that justifies fanning out).
//
// A context is per-query state and is NOT thread-safe; give each
// concurrent optimization its own instance (the pool it borrows may be
// shared — ThreadPool::RunBatch is). A default-constructed context is
// byte-for-byte equivalent to the legacy no-budget/no-trace call paths:
// no deadline, fresh-views-only, serial matching.

#ifndef MVOPT_COMMON_QUERY_CONTEXT_H_
#define MVOPT_COMMON_QUERY_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/query_budget.h"

namespace mvopt {

class QueryTrace;  // observe/trace.h (layered above common/)
class ThreadPool;  // common/thread_pool.h

class QueryContext {
 public:
  /// Stage-boundary observe hook: (stage name, stage wall-clock seconds).
  /// Invoked by the pipeline even when no trace/registry is attached.
  using StageHook = std::function<void(const char* stage, double seconds)>;

  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- budget -------------------------------------------------------------

  /// Installs an owned budget (replacing any borrowed one) and returns
  /// it for configuration.
  QueryBudget& EmplaceBudget() {
    owned_budget_ = std::make_unique<QueryBudget>();
    budget_ = owned_budget_.get();
    return *budget_;
  }
  /// Borrows an external budget (may be null = ungoverned). The legacy
  /// pointer-parameter overloads funnel through this.
  void BorrowBudget(QueryBudget* budget) {
    owned_budget_.reset();
    budget_ = budget;
  }
  QueryBudget* budget() { return budget_; }
  const QueryBudget* budget() const { return budget_; }

  /// Cooperative deadline check (no-op without a budget). Returns true
  /// when the query should wind down.
  bool TickDeadline() {
    return budget_ != nullptr && budget_->TickDeadline();
  }
  bool exhausted() const { return budget_ != nullptr && budget_->exhausted(); }

  // --- degradation --------------------------------------------------------

  /// Records an advisory degradation. Routed into the budget when one is
  /// attached (so OptimizationResult::degradation reports it); kept
  /// locally otherwise so ungoverned callers can still inspect it. The
  /// local path mirrors the budget's priority rule: first advisory wins
  /// except kPartialCatalog, which replaces any other advisory.
  void NoteDegradation(DegradationReason reason) {
    if (budget_ != nullptr) {
      budget_->NoteDegradation(reason);
    } else if (advisory_ == DegradationReason::kNone ||
               (reason == DegradationReason::kPartialCatalog &&
                advisory_ != DegradationReason::kPartialCatalog)) {
      advisory_ = reason;
    }
  }
  DegradationReason degradation() const {
    return budget_ != nullptr ? budget_->reason() : advisory_;
  }

  // --- trace / observe hooks ----------------------------------------------

  /// Borrows a per-query trace recorder (not thread-safe; one probe at a
  /// time). The optimizer attaches one automatically in full-trace mode.
  void set_trace(QueryTrace* trace) { trace_ = trace; }
  QueryTrace* trace() const { return trace_; }

  void set_stage_hook(StageHook hook) { stage_hook_ = std::move(hook); }
  bool has_stage_hook() const { return static_cast<bool>(stage_hook_); }
  void NotifyStage(const char* stage, double seconds) const {
    if (stage_hook_) stage_hook_(stage, seconds);
  }

  /// Whether the pipeline should read clocks / record stage boundaries
  /// for this query even if the service's counters are off.
  bool observing() const { return trace_ != nullptr || has_stage_hook(); }

  /// Per-query trace suppression: when set, the optimizer must not
  /// attach its own full-mode trace to this query (a caller-installed
  /// trace still wins). The serving layer's degradation tiers use this
  /// to shed tracing cost under overload without reconfiguring the
  /// optimizer for every other query in flight.
  void set_suppress_trace(bool suppress) { suppress_trace_ = suppress; }
  bool suppress_trace() const { return suppress_trace_; }

  // --- staleness ----------------------------------------------------------

  /// Staleness tolerance in update epochs; the effective tolerance is
  /// the maximum of this and the budget's (0 = fresh views only).
  void set_max_staleness(uint64_t epochs) { max_staleness_ = epochs; }
  uint64_t max_staleness() const {
    const uint64_t b = budget_ != nullptr ? budget_->max_staleness() : 0;
    return max_staleness_ > b ? max_staleness_ : b;
  }

  // --- randomness ---------------------------------------------------------

  /// Per-query RNG seed: any layer needing randomness derives a private
  /// stream from this so runs replay exactly. Defaults to the golden
  /// ratio constant used across the repo's deterministic generators.
  void set_rng_seed(uint64_t seed) { rng_seed_ = seed; }
  uint64_t rng_seed() const { return rng_seed_; }

  // --- match-stage parallelism --------------------------------------------

  /// Borrows a thread pool for the match stage. Null (the default) keeps
  /// the stage serial — plans and substitute ordering byte-identical to
  /// the pre-pipeline implementation. The pool may be shared across
  /// concurrent queries and must outlive every context borrowing it.
  void set_match_pool(ThreadPool* pool) { match_pool_ = pool; }
  ThreadPool* match_pool() const { return match_pool_; }

  /// Candidate count below which the match stage stays serial even with
  /// a pool attached (dispatch overhead beats the win on tiny sets —
  /// with the filter tree at the paper's prune ratios most probes leave
  /// a handful of candidates).
  void set_min_parallel_candidates(int n) { min_parallel_candidates_ = n; }
  int min_parallel_candidates() const { return min_parallel_candidates_; }

 private:
  QueryBudget* budget_ = nullptr;
  std::unique_ptr<QueryBudget> owned_budget_;
  DegradationReason advisory_ = DegradationReason::kNone;
  QueryTrace* trace_ = nullptr;
  StageHook stage_hook_;
  bool suppress_trace_ = false;
  uint64_t max_staleness_ = 0;
  uint64_t rng_seed_ = 0x9e3779b97f4a7c15ull;
  ThreadPool* match_pool_ = nullptr;
  int min_parallel_candidates_ = 4;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_QUERY_CONTEXT_H_
