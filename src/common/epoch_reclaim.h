// Epoch-based reclamation for immutable snapshot objects published via
// an atomic pointer swap (the RCU-style probe path of DESIGN.md §15).
//
// Readers pin the domain (EpochPin), load the current snapshot pointer
// and use it lock-free; writers publish a replacement snapshot with a
// plain atomic exchange and Retire() the old one. A retired snapshot is
// freed only once every pin that could possibly have observed it has
// been released — no hazard pointers are needed because snapshots are
// monolithic: one pointer covers the whole structure a probe walks.
//
// Protocol. The domain keeps a global epoch counter and a fixed array of
// cache-line-padded slots. Pin claims a free slot (starting from a
// per-thread home position, so a steady-state thread re-claims the same
// slot and never ping-pongs another reader's cache line) and stores the
// current global epoch into it; Unpin stores the quiescent sentinel and
// releases the claim. Retire stamps the object with the pre-increment
// value of the global epoch and bumps the counter; TryReclaim frees
// every retired object whose stamp is below the minimum epoch found in
// any active slot.
//
// Why that is safe (seq_cst argument): a reader's slot store precedes
// its pointer load, and the writer's pointer exchange precedes its epoch
// bump, which precedes its slot scan. So if a reader obtained the OLD
// pointer, its pin was published before the writer's scan, holding an
// epoch no larger than the retired object's stamp — and the scan keeps
// the object alive. A reader whose pin carries a stale epoch merely
// delays reclamation by one publication; it never unblocks a free early.
//
// Thread-safety annotations: the domain itself is a capability. EpochPin
// is the scoped handle acquiring it shared; accessors that hand out
// pointers into a pinned snapshot declare MVOPT_REQUIRES_SHARED(domain),
// so re-fetching a snapshot pointer after Unpin is a compile error under
// the MVOPT_THREAD_SAFETY gate (tools/ci/negative_compile/
// pinned_snapshot_escape.cc proves the gate bites).
//
// The destructor frees everything still retired; the caller guarantees
// no pins are live by then (the owning service is being destroyed).

#ifndef MVOPT_COMMON_EPOCH_RECLAIM_H_
#define MVOPT_COMMON_EPOCH_RECLAIM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mvopt {

class MVOPT_CAPABILITY("epoch_domain") EpochDomain {
 public:
  /// Slot value meaning "not pinned"; compares above every real epoch.
  static constexpr uint64_t kQuiescent = ~uint64_t{0};
  /// Fixed slot count: far above any realistic concurrent-pin count
  /// (probes pin for microseconds), small enough to scan on every
  /// reclaim. Pins beyond this spin-wait for a slot to free.
  static constexpr size_t kNumSlots = 256;

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  ~EpochDomain() {
    // No pins can be live: the owner is tearing down. Everything still
    // retired is freed unconditionally.
    MutexLock lock(retire_mu_);
    for (RetiredObject& r : retired_) r.deleter(r.ptr);
    retired_.clear();
  }

  /// Claims a slot and publishes the current epoch into it. Returns the
  /// slot index (pass it to Unpin). Raw protocol, deliberately without
  /// TSA annotations: the scoped EpochPin is the annotated acquisition
  /// point (annotating both would read as a double acquire — the same
  /// reason MutexLock touches the raw std::mutex).
  size_t Pin() {
    const size_t home = std::hash<std::thread::id>{}(
                            std::this_thread::get_id()) %
                        kNumSlots;
    for (size_t probe = 0;; ++probe) {
      Slot& slot = slots_[(home + probe) % kNumSlots];
      bool expected = false;
      if (slot.claimed.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire)) {
        // The store must be seq_cst: it has to precede this thread's
        // subsequent snapshot-pointer load in the single total order the
        // safety argument above relies on.
        slot.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
        return (home + probe) % kNumSlots;
      }
      if (probe >= kNumSlots) std::this_thread::yield();
    }
  }

  void Unpin(size_t slot) {
    slots_[slot].epoch.store(kQuiescent, std::memory_order_seq_cst);
    slots_[slot].claimed.store(false, std::memory_order_release);
  }

  /// Hands `ptr` to the domain for deferred deletion once no pin taken
  /// before this call can still reference it, then opportunistically
  /// reclaims. Writer-path only (cheap relative to snapshot building).
  template <typename T>
  void Retire(T* ptr) MVOPT_EXCLUDES(retire_mu_) {
    RetireErased(ptr, [](void* p) { delete static_cast<T*>(p); });
  }

  /// Frees every retired object no active pin can reference. Returns the
  /// number freed.
  size_t TryReclaim() MVOPT_EXCLUDES(retire_mu_) {
    const uint64_t min_active = MinActiveEpoch();
    std::vector<RetiredObject> free_now;
    {
      MutexLock lock(retire_mu_);
      size_t kept = 0;
      for (RetiredObject& r : retired_) {
        if (r.epoch < min_active) {
          free_now.push_back(r);
        } else {
          retired_[kept++] = r;
        }
      }
      retired_.resize(kept);
      retired_count_.store(static_cast<int64_t>(kept),
                           std::memory_order_relaxed);
    }
    // Deleters run outside the lock: a deleter may be arbitrarily heavy
    // (a whole catalog snapshot) and must not extend the critical
    // section writers pass through.
    for (RetiredObject& r : free_now) r.deleter(r.ptr);
    return free_now.size();
  }

  /// Retired-but-not-yet-freed object count (exported as the
  /// mvopt_snapshot_retired gauge).
  int64_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  /// Current global epoch (monotone; one bump per retirement).
  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  struct RetiredObject {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  /// One reader slot per concurrent pin, padded to its own cache line so
  /// pin/unpin traffic from different threads never ping-pongs.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kQuiescent};
    std::atomic<bool> claimed{false};
  };

  void RetireErased(void* ptr, void (*deleter)(void*))
      MVOPT_EXCLUDES(retire_mu_) {
    // fetch_add returns the pre-bump epoch: every pin published before
    // this call holds an epoch <= that stamp, so the `<` reclaim test
    // keeps the object alive for all of them.
    const uint64_t stamp = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexLock lock(retire_mu_);
      retired_.push_back(RetiredObject{ptr, deleter, stamp});
      retired_count_.store(static_cast<int64_t>(retired_.size()),
                           std::memory_order_relaxed);
    }
    TryReclaim();
  }

  uint64_t MinActiveEpoch() const {
    uint64_t min_epoch = kQuiescent;
    for (const Slot& slot : slots_) {
      const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e < min_epoch) min_epoch = e;
    }
    return min_epoch;
  }

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kNumSlots];
  mutable Mutex retire_mu_;
  std::vector<RetiredObject> retired_ MVOPT_GUARDED_BY(retire_mu_);
  std::atomic<int64_t> retired_count_{0};
};

/// Scoped pin: holds the domain shared from construction until Unpin()
/// or destruction. While held, snapshot pointers obtained from accessors
/// annotated MVOPT_REQUIRES_SHARED(domain) are safe to dereference;
/// obtaining one after Unpin fails the thread-safety gate.
class MVOPT_SCOPED_CAPABILITY EpochPin {
 public:
  explicit EpochPin(EpochDomain& domain) MVOPT_ACQUIRE_SHARED(domain)
      : domain_(&domain), slot_(domain.Pin()), pinned_(true) {}
  ~EpochPin() MVOPT_RELEASE() {
    if (pinned_) domain_->Unpin(slot_);
  }

  /// Early release (the snapshot must not be touched afterwards).
  void Unpin() MVOPT_RELEASE() {
    domain_->Unpin(slot_);
    pinned_ = false;
  }

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  EpochDomain* domain_;
  size_t slot_;
  bool pinned_;
};

}  // namespace mvopt

#endif  // MVOPT_COMMON_EPOCH_RECLAIM_H_
