// CRC-32 (IEEE 802.3 polynomial, reflected) for the durable catalog's
// record framing. Every WAL/snapshot record carries a checksum so torn
// writes and bit rot are detected at recovery instead of being replayed
// into the catalog.

#ifndef MVOPT_COMMON_CRC32_H_
#define MVOPT_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace mvopt {

namespace crc32_internal {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

/// Incremental update: feed `crc` = 0 for a fresh computation, or the
/// previous return value to extend it over more bytes.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = crc32_internal::Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace mvopt

#endif  // MVOPT_COMMON_CRC32_H_
