// Deterministic fault-injection framework. A failpoint is a named site
// compiled into the library (see kFailpointSites); tests arm sites at
// runtime with a deterministic trigger (skip N hits, then fire M times)
// or a seeded-probabilistic one (fire with probability p, driven by a
// private xorshift stream so runs replay exactly).
//
// Sites are compiled in only when MVOPT_FAILPOINTS is defined (the
// default CMake configuration defines it; release/production builds
// configure with -DMVOPT_FAILPOINTS=OFF and every site folds to
// nothing). The registry itself is always compiled so tests link in
// either configuration.
//
// Two site macros:
//   MVOPT_FAILPOINT(name)      throws FailpointTriggered when armed —
//                              for sites whose natural failure is an
//                              exception (allocation, internal error).
//   MVOPT_FAILPOINT_HIT(name)  evaluates to true when armed — for sites
//                              whose natural failure is an error return.
//
// The registry is thread-safe; the disarmed fast path is a single
// relaxed atomic load.

#ifndef MVOPT_COMMON_FAILPOINT_H_
#define MVOPT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mvopt {

class FailpointTriggered : public std::runtime_error {
 public:
  explicit FailpointTriggered(const std::string& name)
      : std::runtime_error("failpoint '" + name + "' triggered"),
        name_(name) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

struct FailpointConfig {
  /// Hits to let pass before the site arms.
  int64_t skip = 0;
  /// Firings after arming; -1 = fire on every armed hit.
  int64_t count = 1;
  /// Chance an armed hit actually fires (1.0 = deterministic).
  double probability = 1.0;
  /// Seed of the per-site random stream (probabilistic triggers replay
  /// exactly for a given seed).
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  void Enable(const std::string& name, FailpointConfig config = {})
      MVOPT_EXCLUDES(mu_);
  void Disable(const std::string& name) MVOPT_EXCLUDES(mu_);
  void DisableAll() MVOPT_EXCLUDES(mu_);

  /// Site-side check: records a hit on an enabled site and decides
  /// whether it fires. Disabled/unknown names never fire.
  bool ShouldFail(const char* name) MVOPT_EXCLUDES(mu_);

  /// Hits / firings observed since Enable (0 for disabled names).
  int64_t HitCount(const std::string& name) const MVOPT_EXCLUDES(mu_);
  int64_t FireCount(const std::string& name) const MVOPT_EXCLUDES(mu_);
  std::vector<std::string> EnabledNames() const MVOPT_EXCLUDES(mu_);

 private:
  FailpointRegistry() = default;

  struct Point {
    FailpointConfig config;
    int64_t hits = 0;
    int64_t fired = 0;
    uint64_t rng = 0;
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Point> points_ MVOPT_GUARDED_BY(mu_);
  /// Disarmed fast path: number of enabled sites, mirrored from
  /// points_.size() on every mutation so ShouldFail can bail without
  /// the lock.
  std::atomic<int> num_enabled_{0};
};

/// Every failpoint site compiled into the library, for suites that
/// exercise each one. Keep in sync with the MVOPT_FAILPOINT* call sites.
inline constexpr const char* kFailpointSites[] = {
    "view_catalog.add_view",              // error-return, pre-mutation
    "view_catalog.describe",              // throws before the commit point
    "filter_tree.add_view",               // throws before any tree mutation
    "filter_tree.insert_leaf",            // throws mid-insert (undo path)
    "matching_service.find_substitutes",  // throws at probe entry
    "matcher.match",                      // throws per candidate
    "match_program.compile",              // throws inside AddView/recovery
    "rewrite_checker.check",              // forces a checker rejection
    "plan_exec.execute",                  // throws at execution entry
    // Durable catalog sites (see rewrite/catalog_store.h): one between
    // every step of the WAL-append and snapshot protocols, so crash
    // tests can kill the process at each point and recover.
    "catalog_store.wal_append",           // before anything is written
    "catalog_store.wal_write",            // torn write: half frame, throw
    "catalog_store.wal_fsync",            // frame written, fsync skipped
    "catalog_store.commit",               // after fsync (durable error)
    "catalog_store.snapshot_write",       // partial snapshot tmp file
    "catalog_store.snapshot_rename",      // tmp durable, rename skipped
    "catalog_store.wal_truncate",         // snapshot installed, WAL kept
    // Serving front-end sites (see serve/serving_service.h): one at
    // every point a query could be lost or double-completed, so the
    // chaos-soak suite can prove exactly-one-terminal-outcome delivery.
    "serving.admit",                      // forces a shed-overload verdict
    "serving.enqueue",                    // throws between admit and enqueue
    "serving.dequeue",                    // throws after a worker pops
    "serving.execute",                    // worker crash mid-query
    "serving.result_publish",             // primary publish path fails
    "serving.drain",                      // throws inside Drain
    // Sharded-catalog sites (see shard/sharded_catalog_service.h): one
    // per step of the shard lifecycle — parallel recovery, routed
    // registration, fleet checkpoint, and the two-phase scrub/readmit
    // protocol — so the crash matrix can kill the process inside each.
    "catalog_shard.recover",              // per-shard recovery task entry
    "catalog_shard.add_route",            // after routing, before delegation
    "catalog_shard.checkpoint",           // per-shard checkpoint entry
    "catalog_shard.scrub_swap",           // rebuilt shard, before the swap
    "catalog_shard.scrub_checkpoint",     // readmitted, repair checkpoint
};

}  // namespace mvopt

#ifdef MVOPT_FAILPOINTS
#define MVOPT_FAILPOINT_HIT(name) \
  (::mvopt::FailpointRegistry::Instance().ShouldFail(name))
#define MVOPT_FAILPOINT(name)                   \
  do {                                          \
    if (MVOPT_FAILPOINT_HIT(name)) {            \
      throw ::mvopt::FailpointTriggered(name);  \
    }                                           \
  } while (0)
#else
#define MVOPT_FAILPOINT_HIT(name) (false)
#define MVOPT_FAILPOINT(name) \
  do {                        \
  } while (0)
#endif

#endif  // MVOPT_COMMON_FAILPOINT_H_
