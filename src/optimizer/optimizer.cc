#include "optimizer/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "expr/classify.h"

namespace mvopt {

namespace {

int PopCount(uint32_t x) { return __builtin_popcount(x); }

// Distinct column references of `expr` restricted to refs in `mask`.
void CollectMaskedColumns(const ExprPtr& expr, uint32_t mask,
                          std::vector<ColumnRefId>* out) {
  std::vector<ColumnRefId> cols;
  expr->CollectColumnRefs(&cols);
  for (ColumnRefId c : cols) {
    if (c.table_ref >= kSyntheticRefBase) continue;
    if (!(mask & (1u << c.table_ref))) continue;
    if (std::find(out->begin(), out->end(), c) == out->end()) {
      out->push_back(c);
    }
  }
}

constexpr int kJoinedAggKeyBase = 100000;

}  // namespace

struct Optimizer::Context {
  const SpjgQuery* query = nullptr;
  QueryContext* qctx = nullptr;   // the caller's per-query context
  QueryBudget* budget = nullptr;  // == qctx->budget(); may be null
  uint32_t full_mask = 0;
  std::vector<uint32_t> conjunct_mask;  // per query conjunct
  std::map<std::pair<uint32_t, int>, int> group_index;
  std::vector<Group> groups;
  std::vector<AggSpec> agg_specs;
  std::map<uint32_t, double> card_cache;
  OptimizerMetrics metrics;
  QueryTrace* trace = nullptr;  // full-trace mode only

  uint32_t MaskOf(const ExprPtr& e) const {
    std::vector<ColumnRefId> cols;
    e->CollectColumnRefs(&cols);
    uint32_t m = 0;
    for (ColumnRefId c : cols) {
      if (c.table_ref < kSyntheticRefBase) m |= 1u << c.table_ref;
    }
    return m;
  }

  // Conjunct indices fully inside `mask`.
  std::vector<int> ConjunctsWithin(uint32_t mask) const {
    std::vector<int> out;
    for (size_t i = 0; i < conjunct_mask.size(); ++i) {
      if ((conjunct_mask[i] & ~mask) == 0) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  // Conjunct indices crossing the (a, b) partition.
  std::vector<int> ConjunctsCrossing(uint32_t a, uint32_t b) const {
    std::vector<int> out;
    for (size_t i = 0; i < conjunct_mask.size(); ++i) {
      uint32_t m = conjunct_mask[i];
      if ((m & a) != 0 && (m & b) != 0 && (m & ~(a | b)) == 0) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }
};

Optimizer::Optimizer(const Catalog* catalog, SubstituteSource* matching,
                     OptimizerOptions options)
    : catalog_(catalog),
      matching_(matching),
      options_(options),
      estimator_(catalog) {
  RegisterMetrics();
}

void Optimizer::RegisterMetrics() {
  if (!options_.observe.counters_enabled()) return;
  MetricsRegistry* r = options_.observe.registry;
  metrics_.optimizations = r->FindOrCreateCounter(
      "mvopt_optimize_total", "Optimize calls completed");
  metrics_.memo_groups = r->FindOrCreateCounter(
      "mvopt_memo_groups_total", "Memo groups created");
  metrics_.memo_exprs = r->FindOrCreateCounter(
      "mvopt_memo_exprs_total", "Memo logical expressions generated");
  metrics_.view_matching_invocations = r->FindOrCreateCounter(
      "mvopt_view_matching_invocations_total",
      "View-matching rule invocations");
  metrics_.view_matching_failures = r->FindOrCreateCounter(
      "mvopt_view_matching_failures_total",
      "View-matching probes that raised and were isolated");
  for (int i = 0; i < kNumDegradationReasons; ++i) {
    const auto reason = static_cast<DegradationReason>(i);
    if (reason == DegradationReason::kNone) continue;
    metrics_.degradations[i] = r->FindOrCreateCounter(
        "mvopt_budget_degradations_total",
        "Optimizations degraded by a budget limit, by first tripped reason",
        {{"reason", DegradationReasonName(reason)}});
  }
  metrics_.optimize_latency = r->FindOrCreateHistogram(
      "mvopt_optimize_latency_seconds", "Optimize wall-clock latency");
}

SpjgQuery Optimizer::GroupSignature(const Context& ctx,
                                    const Group& group) const {
  const SpjgQuery& q = *ctx.query;
  SpjgQuery sig;
  std::vector<int32_t> remap(q.num_tables(), -1);
  for (int t = 0; t < q.num_tables(); ++t) {
    if (group.mask & (1u << t)) {
      remap[t] = static_cast<int32_t>(sig.tables.size());
      sig.tables.push_back(q.tables[t]);
    }
  }
  for (int ci : ctx.ConjunctsWithin(group.mask)) {
    sig.conjuncts.push_back(q.conjuncts[ci]->RemapTableRefs(remap));
  }
  if (group.agg_spec < 0) {
    for (size_t i = 0; i < group.required_columns.size(); ++i) {
      ColumnRefId c = group.required_columns[i];
      sig.outputs.push_back(OutputExpr{
          "o" + std::to_string(i),
          Expr::MakeColumn(remap[c.table_ref], c.column)});
    }
    sig.is_aggregate = false;
  } else {
    const AggSpec& spec = ctx.agg_specs[group.agg_spec];
    for (const auto& g : spec.group_by) {
      sig.group_by.push_back(g->RemapTableRefs(remap));
    }
    for (const auto& o : spec.outputs) {
      sig.outputs.push_back(OutputExpr{o.name, o.expr->RemapTableRefs(remap)});
    }
    sig.is_aggregate = true;
  }
  return sig;
}

void Optimizer::ApplyViewMatching(Context* ctx, int group_id) {
  Group& group = ctx->groups[group_id];
  if (group.matched) return;
  group.matched = true;
  if (!options_.enable_view_matching || matching_ == nullptr) return;
  // Substitutes are optional alternatives: an exhausted budget skips the
  // rule entirely (the group keeps its base-table expressions).
  if (ctx->budget != nullptr && ctx->budget->TickDeadline()) return;

  SpjgQuery sig = GroupSignature(*ctx, group);
  auto start = std::chrono::steady_clock::now();
  std::vector<Substitute> subs;
  try {
    subs = matching_->FindSubstitutes(sig, *ctx->qctx);
  } catch (const std::exception&) {
    // Fault isolation: a failing matching service degrades the plan (no
    // substitutes for this group), never the optimization.
    ++ctx->metrics.view_matching_failures;
  }
  auto end = std::chrono::steady_clock::now();
  ctx->metrics.view_matching_seconds +=
      std::chrono::duration<double>(end - start).count();
  ++ctx->metrics.view_matching_invocations;
  ctx->metrics.substitutes_produced += static_cast<int64_t>(subs.size());
  if (!options_.produce_substitutes) return;

  for (Substitute& sub : subs) {
    LogicalExpr e;
    e.kind = ExprKindL::kViewGet;
    e.substitute = std::move(sub);
    ctx->groups[group_id].exprs.push_back(std::move(e));
    ++ctx->metrics.expressions_generated;
  }
}

int Optimizer::MakeSpjGroup(Context* ctx, uint32_t mask) {
  auto key = std::make_pair(mask, -1);
  auto it = ctx->group_index.find(key);
  if (it != ctx->group_index.end()) return it->second;

  int gid = static_cast<int>(ctx->groups.size());
  ctx->group_index[key] = gid;
  ctx->groups.push_back(Group{});
  ++ctx->metrics.groups_created;
  // Charge the budget for the group; creation itself always proceeds
  // (the memo needs the group for a complete plan), but once the cap
  // trips every group is built minimally below.
  if (ctx->budget != nullptr) ctx->budget->ConsumeMemoGroup();
  {
    Group& g = ctx->groups[gid];
    g.mask = mask;
    g.agg_spec = -1;
    // Required columns: every column of the group's tables referenced
    // anywhere in the query (predicates, outputs, grouping).
    std::vector<ColumnRefId> required;
    for (const auto& c : ctx->query->conjuncts) {
      CollectMaskedColumns(c, mask, &required);
    }
    for (const auto& o : ctx->query->outputs) {
      CollectMaskedColumns(o.expr, mask, &required);
    }
    for (const auto& gb : ctx->query->group_by) {
      CollectMaskedColumns(gb, mask, &required);
    }
    std::sort(required.begin(), required.end());
    g.required_columns = std::move(required);
  }

  if (PopCount(mask) == 1) {
    LogicalExpr e;
    e.kind = ExprKindL::kGet;
    e.table_ref = static_cast<int32_t>(__builtin_ctz(mask));
    ctx->groups[gid].exprs.push_back(e);
    ++ctx->metrics.expressions_generated;
  } else {
    // All binary splits; prefer splits where both sides are internally
    // connected and linked to each other by a crossing conjunct, falling
    // back to every split for disconnected queries (cross joins).
    auto internally_connected = [ctx](uint32_t m) {
      uint32_t reached = m & (~m + 1);  // lowest bit
      bool grew = true;
      while (grew && reached != m) {
        grew = false;
        for (uint32_t cm : ctx->conjunct_mask) {
          if ((cm & ~m) == 0 && (cm & reached) != 0 &&
              (cm & m & ~reached) != 0) {
            reached |= cm & m;
            grew = true;
          }
        }
      }
      return reached == m;
    };
    std::vector<uint32_t> connected;
    std::vector<uint32_t> all;
    for (uint32_t s = (mask - 1) & mask; s != 0; s = (s - 1) & mask) {
      all.push_back(s);
      if (!ctx->ConjunctsCrossing(s, mask & ~s).empty() &&
          internally_connected(s) && internally_connected(mask & ~s)) {
        connected.push_back(s);
      }
    }
    const std::vector<uint32_t>& splits = connected.empty() ? all : connected;
    for (uint32_t s : splits) {
      // Graceful degradation: the first split always materializes (its
      // recursion gives every group at least one complete alternative,
      // so a plan always exists); further splits stop once the budget is
      // exhausted.
      if (ctx->budget != nullptr && !ctx->groups[gid].exprs.empty()) {
        ctx->budget->TickDeadline();
        ctx->budget->ConsumeMemoExpr();
        if (ctx->budget->exhausted()) break;
      }
      int left = MakeSpjGroup(ctx, s);
      int right = MakeSpjGroup(ctx, mask & ~s);
      LogicalExpr e;
      e.kind = ExprKindL::kJoin;
      e.children[0] = left;
      e.children[1] = right;
      ctx->groups[gid].exprs.push_back(e);
      ++ctx->metrics.expressions_generated;
    }
  }
  ApplyViewMatching(ctx, gid);
  return gid;
}

int Optimizer::MakeAggGroup(Context* ctx, uint32_t mask, int agg_spec) {
  auto key = std::make_pair(mask, agg_spec);
  auto it = ctx->group_index.find(key);
  if (it != ctx->group_index.end()) return it->second;
  int gid = static_cast<int>(ctx->groups.size());
  ctx->group_index[key] = gid;
  ctx->groups.push_back(Group{});
  ++ctx->metrics.groups_created;
  ctx->groups[gid].mask = mask;
  ctx->groups[gid].agg_spec = agg_spec;

  int child = MakeSpjGroup(ctx, mask);
  LogicalExpr e;
  e.kind = ExprKindL::kAggregate;
  e.children[0] = child;
  e.child_agg_spec = agg_spec;  // compute spec == group spec
  ctx->groups[gid].exprs.push_back(e);
  ++ctx->metrics.expressions_generated;
  ApplyViewMatching(ctx, gid);
  return gid;
}

void Optimizer::ApplyPreAggregation(Context* ctx, int root_group) {
  const SpjgQuery& q = *ctx->query;
  Group& root = ctx->groups[root_group];
  const uint32_t mask = root.mask;
  if (PopCount(mask) < 2) return;
  const AggSpec spec0 = ctx->agg_specs[root.agg_spec];

  ClassifiedPredicates all_preds = ClassifyConjuncts(q.conjuncts);

  for (int r = 0; r < q.num_tables(); ++r) {
    // Pre-aggregation alternatives are pure gravy — stop on exhaustion.
    if (ctx->budget != nullptr &&
        (ctx->budget->TickDeadline() || ctx->budget->exhausted())) {
      break;
    }
    const uint32_t rbit = 1u << r;
    if (!(mask & rbit)) continue;
    const uint32_t inner_mask = mask & ~rbit;

    // (a) No aggregate argument may reference the pushed-over table.
    bool aggs_ok = true;
    for (const auto& o : spec0.outputs) {
      if (o.expr->kind() != ExprKind::kAggregate) continue;
      if (o.expr->num_children() == 1 &&
          (ctx->MaskOf(o.expr->child(0)) & rbit) != 0) {
        aggs_ok = false;
        break;
      }
    }
    if (!aggs_ok) continue;

    // (b) The crossing predicates must be column equalities whose r-side
    // columns cover a unique key of r's table (each inner row then joins
    // at most one r row, so pre-aggregated sums stay correct).
    std::vector<int> crossing = ctx->ConjunctsCrossing(inner_mask, rbit);
    if (crossing.empty()) continue;
    std::vector<ColumnOrdinal> r_cols;
    std::vector<ColumnRefId> inner_join_cols;
    bool equalities_ok = true;
    for (int ci : crossing) {
      const Expr& e = *q.conjuncts[ci];
      if (e.kind() != ExprKind::kComparison ||
          e.compare_op() != CompareOp::kEq ||
          e.child(0)->kind() != ExprKind::kColumnRef ||
          e.child(1)->kind() != ExprKind::kColumnRef) {
        equalities_ok = false;
        break;
      }
      ColumnRefId a = e.child(0)->column_ref();
      ColumnRefId b = e.child(1)->column_ref();
      if (a.table_ref == r) std::swap(a, b);
      if (b.table_ref != r || a.table_ref == r) {
        equalities_ok = false;
        break;
      }
      r_cols.push_back(b.column);
      inner_join_cols.push_back(a);
    }
    if (!equalities_ok) continue;
    if (!catalog_->table(q.tables[r].table).CoversUniqueKey(r_cols)) {
      continue;
    }

    // Inner grouping: join columns + all inner-side columns referenced by
    // the outer grouping expressions.
    std::vector<ColumnRefId> inner_group_cols = inner_join_cols;
    for (const auto& g : spec0.group_by) {
      CollectMaskedColumns(g, inner_mask, &inner_group_cols);
    }
    std::sort(inner_group_cols.begin(), inner_group_cols.end());
    inner_group_cols.erase(
        std::unique(inner_group_cols.begin(), inner_group_cols.end()),
        inner_group_cols.end());

    // Build the inner aggregation spec.
    AggSpec inner;
    for (size_t i = 0; i < inner_group_cols.size(); ++i) {
      ExprPtr col = Expr::MakeColumn(inner_group_cols[i]);
      inner.group_by.push_back(col);
      inner.outputs.push_back(OutputExpr{"pg" + std::to_string(i), col});
    }
    const int count_ordinal = static_cast<int>(inner.outputs.size());
    inner.outputs.push_back(OutputExpr{
        "pcnt", Expr::MakeAggregate(AggKind::kCountStar, nullptr)});
    // One pushed aggregate per outer aggregate (AVG contributes a SUM).
    struct PushedAgg {
      size_t outer_index;  // index into spec0.outputs
      int inner_ordinal;
      AggKind kind;
    };
    std::vector<PushedAgg> pushed;
    bool push_ok = true;
    for (size_t i = 0; i < spec0.outputs.size(); ++i) {
      const Expr& oe = *spec0.outputs[i].expr;
      if (oe.kind() != ExprKind::kAggregate) continue;
      switch (oe.agg_kind()) {
        case AggKind::kCountStar:
          pushed.push_back({i, count_ordinal, AggKind::kCountStar});
          break;
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax: {
          int ord = static_cast<int>(inner.outputs.size());
          inner.outputs.push_back(OutputExpr{
              "pa" + std::to_string(i),
              Expr::MakeAggregate(oe.agg_kind(), oe.child(0))});
          pushed.push_back({i, ord, oe.agg_kind()});
          break;
        }
        case AggKind::kAvg: {
          int ord = static_cast<int>(inner.outputs.size());
          inner.outputs.push_back(OutputExpr{
              "pa" + std::to_string(i),
              Expr::MakeAggregate(AggKind::kSum, oe.child(0))});
          pushed.push_back({i, ord, AggKind::kAvg});
          break;
        }
      }
    }
    if (!push_ok) continue;
    inner.scalar = inner.group_by.empty();

    const int inner_spec_id = static_cast<int>(ctx->agg_specs.size());
    ctx->agg_specs.push_back(inner);
    const int32_t syn = kSyntheticRefBase + inner_spec_id;

    // Outer spec: original grouping; aggregates roll up over synthetics.
    AggSpec outer;
    outer.group_by = spec0.group_by;
    outer.scalar = spec0.scalar;
    outer.outputs = spec0.outputs;
    ExprPtr syn_cnt = Expr::MakeColumn(syn, count_ordinal);
    for (const PushedAgg& p : pushed) {
      ExprPtr syn_col = Expr::MakeColumn(syn, p.inner_ordinal);
      ExprPtr rewritten;
      switch (p.kind) {
        case AggKind::kCountStar:
          rewritten = Expr::MakeAggregate(AggKind::kSum, syn_cnt);
          break;
        case AggKind::kSum:
          rewritten = Expr::MakeAggregate(AggKind::kSum, syn_col);
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          rewritten = Expr::MakeAggregate(p.kind, syn_col);
          break;
        case AggKind::kAvg:
          rewritten = Expr::MakeArith(
              ArithOp::kDiv, Expr::MakeAggregate(AggKind::kSum, syn_col),
              Expr::MakeAggregate(AggKind::kSum, syn_cnt));
          break;
      }
      outer.outputs[p.outer_index].expr = rewritten;
    }
    const int outer_spec_id = static_cast<int>(ctx->agg_specs.size());
    ctx->agg_specs.push_back(std::move(outer));

    // Memo wiring: inner agg group, the join-above-aggregate group, and
    // the alternative root expression.
    int inner_gid = MakeAggGroup(ctx, inner_mask, inner_spec_id);
    auto jkey = std::make_pair(mask, kJoinedAggKeyBase + inner_spec_id);
    int join_gid;
    auto jit = ctx->group_index.find(jkey);
    if (jit != ctx->group_index.end()) {
      join_gid = jit->second;
    } else {
      join_gid = static_cast<int>(ctx->groups.size());
      ctx->group_index[jkey] = join_gid;
      ctx->groups.push_back(Group{});
      ++ctx->metrics.groups_created;
      ctx->groups[join_gid].mask = mask;
      ctx->groups[join_gid].agg_spec = kJoinedAggKeyBase + inner_spec_id;
      ctx->groups[join_gid].matched = true;  // not an SPJG expression
      int r_gid = MakeSpjGroup(ctx, rbit);
      LogicalExpr je;
      je.kind = ExprKindL::kJoin;
      je.children[0] = inner_gid;
      je.children[1] = r_gid;
      ctx->groups[join_gid].exprs.push_back(je);
      ++ctx->metrics.expressions_generated;
    }
    LogicalExpr re;
    re.kind = ExprKindL::kAggregate;
    re.children[0] = join_gid;
    re.child_agg_spec = outer_spec_id;
    ctx->groups[root_group].exprs.push_back(re);
    ++ctx->metrics.expressions_generated;
  }
}

double Optimizer::SpjCardinality(Context* ctx, uint32_t mask) {
  auto it = ctx->card_cache.find(mask);
  if (it != ctx->card_cache.end()) return it->second;
  Group tmp;
  tmp.mask = mask;
  tmp.agg_spec = -1;
  SpjgQuery sig = GroupSignature(*ctx, tmp);
  double card = estimator_.EstimateSpj(sig);
  ctx->card_cache[mask] = card;
  return card;
}

PhysPlanPtr Optimizer::ImplementGet(Context* ctx, const Group& group,
                                    const LogicalExpr& expr) {
  const SpjgQuery& q = *ctx->query;
  const int32_t ref = expr.table_ref;
  const TableId tid = q.tables[ref].table;
  const TableDef& def = catalog_->table(tid);
  const double base_rows = std::max<int64_t>(1, def.row_count());
  const double out_rows = std::max(1.0, SpjCardinality(ctx, group.mask));

  std::vector<ExprPtr> filters;
  for (int ci : ctx->ConjunctsWithin(group.mask)) {
    filters.push_back(q.conjuncts[ci]);
  }

  auto scan = std::make_shared<PhysPlan>();
  scan->kind = PhysKind::kTableScan;
  scan->table = tid;
  scan->table_ref = ref;
  scan->filter = filters;
  scan->rows = out_rows;
  scan->cost = base_rows + out_rows;

  PhysPlanPtr best = scan;
  if (options_.enable_index_scans && !def.unique_keys().empty()) {
    // Consider the primary index when a range predicate constrains its
    // leading column.
    ClassifiedPredicates preds = ClassifyConjuncts(filters);
    const ColumnOrdinal lead = def.unique_keys()[0][0];
    ValueRange range;
    bool constrained = false;
    for (const auto& p : preds.ranges) {
      if (p.column.column == lead) {
        range.Apply(p.op, p.bound);
        constrained = true;
      }
    }
    if (constrained) {
      double sel = 1.0;
      if (!range.lo.is_infinite) {
        sel = estimator_.RangeSelectivity(
            def, lead, range.lo.inclusive ? CompareOp::kGe : CompareOp::kGt,
            range.lo.value);
      }
      if (!range.hi.is_infinite) {
        double s2 = estimator_.RangeSelectivity(
            def, lead, range.hi.inclusive ? CompareOp::kLe : CompareOp::kLt,
            range.hi.value);
        sel = std::max(0.0, sel + s2 - 1.0);
      }
      auto idx = std::make_shared<PhysPlan>();
      idx->kind = PhysKind::kIndexRangeScan;
      idx->table = tid;
      idx->table_ref = ref;
      idx->index_name = def.name() + "_pk";
      idx->index_column = lead;
      idx->index_range = range;
      idx->filter = filters;
      idx->rows = out_rows;
      idx->cost = sel * base_rows + std::log2(base_rows + 2) + out_rows;
      if (idx->cost < best->cost) best = idx;
    }
  }
  return best;
}

PhysPlanPtr Optimizer::ImplementJoin(Context* ctx, const Group& group,
                                     const LogicalExpr& expr) {
  PhysPlanPtr left = OptimizeGroup(ctx, expr.children[0]);
  PhysPlanPtr right = OptimizeGroup(ctx, expr.children[1]);
  if (left == nullptr || right == nullptr) return nullptr;

  const Group& lg = ctx->groups[expr.children[0]];
  const Group& rg = ctx->groups[expr.children[1]];
  std::vector<ExprPtr> crossing;
  for (int ci : ctx->ConjunctsCrossing(lg.mask, rg.mask)) {
    crossing.push_back(ctx->query->conjuncts[ci]);
  }

  double out_rows;
  if (group.agg_spec >= kJoinedAggKeyBase) {
    // Join of a pre-aggregated child with a unique-key side: cardinality
    // is bounded by the aggregated child's rows.
    out_rows = left->rows;
  } else {
    out_rows = std::max(1.0, SpjCardinality(ctx, group.mask));
  }

  auto join = std::make_shared<PhysPlan>();
  join->kind = PhysKind::kHashJoin;
  join->children = {left, right};
  join->filter = crossing;
  join->rows = out_rows;
  join->cost = left->cost + right->cost + left->rows + right->rows +
               out_rows;
  return join;
}

PhysPlanPtr Optimizer::ImplementAggregate(Context* ctx, const Group& group,
                                          const LogicalExpr& expr) {
  (void)group;  // semantics are fully described by the expression's spec
  PhysPlanPtr child = OptimizeGroup(ctx, expr.children[0]);
  if (child == nullptr) return nullptr;
  const AggSpec& spec = ctx->agg_specs[expr.child_agg_spec];

  double groups_estimate = 1.0;
  for (const auto& g : spec.group_by) {
    double d = 100.0;
    if (g->kind() == ExprKind::kColumnRef &&
        g->column_ref().table_ref < kSyntheticRefBase) {
      const TableDef& t =
          catalog_->table(ctx->query->tables[g->column_ref().table_ref]
                              .table);
      int64_t nd = t.column(g->column_ref().column).stats.distinct;
      if (nd > 0) d = static_cast<double>(nd);
    }
    groups_estimate *= d;
  }
  groups_estimate = std::min(groups_estimate, std::max(1.0, child->rows));

  auto agg = std::make_shared<PhysPlan>();
  agg->kind = PhysKind::kHashAggregate;
  agg->children = {child};
  agg->group_by = spec.group_by;
  agg->outputs = spec.outputs;
  agg->agg_spec_id = expr.child_agg_spec;
  agg->rows = groups_estimate;
  agg->cost = child->cost + child->rows + groups_estimate;
  return agg;
}

std::vector<PhysPlanPtr> Optimizer::ImplementViewGet(
    Context* ctx, const Group& group, const LogicalExpr& expr) {
  std::vector<PhysPlanPtr> out;
  const Substitute& sub = expr.substitute;
  const ViewDefinition& view = matching_->ResolveView(sub.view_id);

  // View size: actual row count when materialized, estimated otherwise.
  double view_rows;
  TableId vt = view.materialized_table();
  if (vt != kInvalidTableId) {
    view_rows = std::max<int64_t>(1, catalog_->table(vt).row_count());
  } else {
    view_rows = std::max(1.0, estimator_.EstimateResult(view.query()));
  }

  // Selectivity of the compensating predicates (coarse: per-predicate
  // defaults; real systems use view statistics, which we have when the
  // view is materialized but the classifier works on view-output columns
  // whose stats live in the view's table definition).
  ClassifiedPredicates preds = ClassifyConjuncts(sub.predicates);
  double sel = 1.0;
  for (const auto& p : preds.ranges) {
    if (vt != kInvalidTableId) {
      sel *= estimator_.RangeSelectivity(catalog_->table(vt),
                                         p.column.column, p.op, p.bound);
    } else {
      sel *= (p.op == CompareOp::kEq) ? 0.05 : (1.0 / 3.0);
    }
  }
  for (size_t i = 0; i < preds.equalities.size() + preds.residual.size();
       ++i) {
    sel *= 1.0 / 3.0;
  }
  double selected_rows = std::max(1.0, view_rows * sel);
  double final_rows = selected_rows;
  double agg_cost = 0;
  if (sub.needs_aggregation) {
    final_rows = std::max(1.0, selected_rows / 2);
    agg_cost = selected_rows;
  }

  double backjoin_cost = 0;
  for (const auto& bj : sub.backjoins) {
    backjoin_cost +=
        std::max<int64_t>(1, catalog_->table(bj.table).row_count());
  }

  auto scan = std::make_shared<PhysPlan>();
  scan->kind = PhysKind::kViewScan;
  scan->table = vt;
  scan->view = sub.view_id;
  scan->view_name = view.name();
  scan->substitute = sub;
  if (group.agg_spec < 0) {
    scan->provides = group.required_columns;
  } else {
    // Aggregation groups expose their spec outputs: grouping columns keep
    // their global identity, aggregates get synthetic references.
    const AggSpec& spec = ctx->agg_specs[group.agg_spec];
    for (size_t i = 0; i < spec.outputs.size(); ++i) {
      const Expr& oe = *spec.outputs[i].expr;
      if (oe.kind() == ExprKind::kColumnRef &&
          oe.column_ref().table_ref < kSyntheticRefBase) {
        scan->provides.push_back(oe.column_ref());
      } else {
        scan->provides.push_back(
            ColumnRefId{kSyntheticRefBase + group.agg_spec,
                        static_cast<ColumnOrdinal>(i)});
      }
    }
  }
  scan->rows = final_rows;
  scan->cost =
      view_rows + backjoin_cost + selected_rows + agg_cost + final_rows;
  out.push_back(scan);

  if (options_.enable_index_scans && sub.backjoins.empty()) {
    // Secondary (and clustered) indexes on the view are considered
    // automatically: any index whose leading output column carries a
    // compensating range or point predicate becomes an index range scan.
    std::vector<const IndexDef*> indexes;
    if (view.has_clustered_index()) indexes.push_back(&view.clustered_index());
    for (const auto& si : view.secondary_indexes()) indexes.push_back(&si);
    for (const IndexDef* idx : indexes) {
      if (idx->key_columns.empty()) continue;
      const int lead = idx->key_columns[0];
      ValueRange range;
      bool constrained = false;
      for (const auto& p : preds.ranges) {
        if (p.column.column == lead) {
          range.Apply(p.op, p.bound);
          constrained = true;
        }
      }
      if (!constrained) continue;
      double isel = 0.3;
      if (vt != kInvalidTableId) {
        const TableDef& vdef = catalog_->table(vt);
        isel = 1.0;
        if (!range.lo.is_infinite) {
          isel = estimator_.RangeSelectivity(
              vdef, lead,
              range.lo.inclusive ? CompareOp::kGe : CompareOp::kGt,
              range.lo.value);
        }
        if (!range.hi.is_infinite) {
          double s2 = estimator_.RangeSelectivity(
              vdef, lead,
              range.hi.inclusive ? CompareOp::kLe : CompareOp::kLt,
              range.hi.value);
          isel = std::max(0.0, isel + s2 - 1.0);
        }
      }
      auto iscan = std::make_shared<PhysPlan>(*scan);
      iscan->kind = PhysKind::kViewIndexScan;
      iscan->index_name = idx->name;
      iscan->index_column = lead;
      iscan->index_range = range;
      iscan->cost = isel * view_rows + std::log2(view_rows + 2) +
                    selected_rows + agg_cost + final_rows;
      out.push_back(iscan);
    }
  }
  return out;
}

PhysPlanPtr Optimizer::OptimizeGroup(Context* ctx, int group_id) {
  {
    Group& group = ctx->groups[group_id];
    if (group.costed) return group.best;
    group.costed = true;
  }
  PhysPlanPtr best;
  // Note: expression list may grow while iterating (children recursion
  // does not add to this group, but be defensive with index iteration).
  for (size_t i = 0; i < ctx->groups[group_id].exprs.size(); ++i) {
    LogicalExpr expr = ctx->groups[group_id].exprs[i];
    const Group& group = ctx->groups[group_id];
    std::vector<PhysPlanPtr> candidates;
    switch (expr.kind) {
      case ExprKindL::kGet:
        candidates.push_back(ImplementGet(ctx, group, expr));
        break;
      case ExprKindL::kJoin:
        candidates.push_back(ImplementJoin(ctx, group, expr));
        break;
      case ExprKindL::kAggregate:
        candidates.push_back(ImplementAggregate(ctx, group, expr));
        break;
      case ExprKindL::kViewGet:
        candidates = ImplementViewGet(ctx, group, expr);
        break;
    }
    for (const auto& c : candidates) {
      if (c == nullptr) continue;
      if (best == nullptr || c->cost < best->cost) best = c;
    }
  }
  Group& group = ctx->groups[group_id];
  group.best = best;
  group.best_cost = best != nullptr ? best->cost : 0;
  return best;
}

OptimizationResult Optimizer::Optimize(const SpjgQuery& query,
                                       QueryBudget* budget) {
  QueryContext qctx;
  qctx.BorrowBudget(budget);
  OptimizationResult result = Optimize(query, qctx);
  if (budget == nullptr) {
    // The loose form never reported advisory degradations without a
    // budget to carry them; keep that contract exact.
    result.degradation = DegradationReason::kNone;
  }
  return result;
}

OptimizationResult Optimizer::Optimize(const SpjgQuery& query,
                                       QueryContext& qctx) {
  assert(query.num_tables() <= 30);
  QueryBudget* budget = qctx.budget();
  // A budget object may be reused across queries; per-query outcome
  // state (degradation reason, tick/candidate counters) must not leak
  // from one optimization into the next. Limits and the wall-clock
  // deadline are preserved.
  if (budget != nullptr) budget->ResetForQuery();
  Context ctx;
  ctx.query = &query;
  ctx.qctx = &qctx;
  ctx.budget = budget;
  ctx.full_mask = query.num_tables() >= 32
                      ? 0xffffffffu
                      : ((1u << query.num_tables()) - 1);
  for (const auto& c : query.conjuncts) {
    ctx.conjunct_mask.push_back(ctx.MaskOf(c));
  }

  const bool counters = metrics_.optimizations != nullptr;
  // Tracing: a trace already on the context (caller-owned) wins;
  // otherwise full-trace mode attaches an optimizer-owned one for the
  // duration of this call and hands it back in the result — unless the
  // context suppresses tracing for this query (serving-tier degradation).
  QueryTrace* const caller_trace = qctx.trace();
  std::shared_ptr<QueryTrace> trace;
  if (caller_trace != nullptr) {
    ctx.trace = caller_trace;
  } else if (options_.observe.trace_enabled() && !qctx.suppress_trace()) {
    trace = std::make_shared<QueryTrace>();
    trace->set_query(query.ToSql(*catalog_));
    ctx.trace = trace.get();
    qctx.set_trace(trace.get());
  }
  const bool observing = counters || ctx.trace != nullptr;
  std::chrono::steady_clock::time_point t_start{};
  if (observing) t_start = std::chrono::steady_clock::now();

  int root;
  if (query.is_aggregate) {
    AggSpec spec0;
    spec0.group_by = query.group_by;
    spec0.outputs = query.outputs;
    spec0.scalar = query.group_by.empty();
    ctx.agg_specs.push_back(std::move(spec0));
    root = MakeAggGroup(&ctx, ctx.full_mask, 0);
    if (options_.enable_preaggregation) {
      ApplyPreAggregation(&ctx, root);
    }
  } else {
    root = MakeSpjGroup(&ctx, ctx.full_mask);
  }

  std::chrono::steady_clock::time_point t_memo{};
  if (observing) t_memo = std::chrono::steady_clock::now();

  PhysPlanPtr plan = OptimizeGroup(&ctx, root);
  OptimizationResult result;
  if (plan != nullptr && !query.is_aggregate) {
    // Top projection computing the query's output expressions.
    auto project = std::make_shared<PhysPlan>();
    project->kind = PhysKind::kProject;
    project->children = {plan};
    project->outputs = query.outputs;
    project->rows = plan->rows;
    project->cost = plan->cost + plan->rows;
    plan = project;
  }
  result.plan = plan;
  result.cost = plan != nullptr ? plan->cost : 0;
  result.uses_view = plan != nullptr && plan->UsesView();
  result.degradation = qctx.degradation();
  result.metrics = ctx.metrics;

  if (observing) {
    const auto t_end = std::chrono::steady_clock::now();
    // Memo exploration nests the view-matching probes; the probes record
    // their own stages (filter probe, match tests), so subtract them to
    // keep the four stage spans additive.
    const double memo_seconds = std::max(
        0.0, std::chrono::duration<double>(t_memo - t_start).count() -
                 ctx.metrics.view_matching_seconds);
    const double costing_seconds =
        std::chrono::duration<double>(t_end - t_memo).count();
    if (ctx.trace != nullptr) {
      ctx.trace->AddStageSeconds(QueryTrace::Stage::kMemoExploration,
                                 memo_seconds);
      ctx.trace->AddStageSeconds(QueryTrace::Stage::kCosting,
                                 costing_seconds);
      ctx.trace->AddCount("memo_groups", ctx.metrics.groups_created);
      ctx.trace->AddCount("memo_exprs", ctx.metrics.expressions_generated);
      ctx.trace->AddCount("view_matching_invocations",
                          ctx.metrics.view_matching_invocations);
      ctx.trace->AddCount("substitutes_produced",
                          ctx.metrics.substitutes_produced);
      if (trace != nullptr) result.trace = std::move(trace);
    }
    if (counters) {
      metrics_.optimizations->Increment();
      metrics_.optimize_latency->Observe(
          std::chrono::duration<double>(t_end - t_start).count());
      if (ctx.metrics.groups_created != 0) {
        metrics_.memo_groups->Increment(ctx.metrics.groups_created);
      }
      if (ctx.metrics.expressions_generated != 0) {
        metrics_.memo_exprs->Increment(ctx.metrics.expressions_generated);
      }
      if (ctx.metrics.view_matching_invocations != 0) {
        metrics_.view_matching_invocations->Increment(
            ctx.metrics.view_matching_invocations);
      }
      if (ctx.metrics.view_matching_failures != 0) {
        metrics_.view_matching_failures->Increment(
            ctx.metrics.view_matching_failures);
      }
      Counter* degraded =
          metrics_.degradations[static_cast<size_t>(result.degradation)];
      if (degraded != nullptr) degraded->Increment();
    }
  }
  if (options_.audit_memo) {
    std::vector<MemoGroupRecord> records;
    records.reserve(ctx.groups.size());
    for (const Group& g : ctx.groups) {
      MemoGroupRecord rec;
      rec.mask = g.mask;
      rec.agg_spec = g.agg_spec;
      for (const LogicalExpr& e : g.exprs) {
        MemoExprRecord er;
        switch (e.kind) {
          case ExprKindL::kGet:
            er.kind = MemoExprRecord::Kind::kGet;
            break;
          case ExprKindL::kJoin:
            er.kind = MemoExprRecord::Kind::kJoin;
            break;
          case ExprKindL::kAggregate:
            er.kind = MemoExprRecord::Kind::kAggregate;
            break;
          case ExprKindL::kViewGet:
            er.kind = MemoExprRecord::Kind::kViewGet;
            break;
        }
        er.table_ref = e.table_ref;
        er.child0 = e.children[0];
        er.child1 = e.children[1];
        er.view_id =
            e.kind == ExprKindL::kViewGet ? e.substitute.view_id : -1;
        rec.exprs.push_back(er);
      }
      records.push_back(std::move(rec));
    }
    result.memo_audit = InvariantAuditor().AuditMemo(
        records, ctx.full_mask, static_cast<int>(ctx.agg_specs.size()),
        kJoinedAggKeyBase);
  }
  // Detach an optimizer-owned trace from the caller's context: the
  // result owns it now, and the context outlives this call.
  if (qctx.trace() != caller_trace) qctx.set_trace(caller_trace);
  return result;
}

}  // namespace mvopt
