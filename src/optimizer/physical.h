// Physical plans. Nodes carry everything the plan executor needs plus the
// estimated cost/cardinality the optimizer used to pick them.
//
// Column addressing: scans of base tables expose the query's global
// column references (table_ref = the query's FROM slot). Aggregations
// introduce synthetic references {kSyntheticRefBase + spec_id, ordinal}
// for their aggregate outputs. View scans expose the global columns
// listed in `provides`.

#ifndef MVOPT_OPTIMIZER_PHYSICAL_H_
#define MVOPT_OPTIMIZER_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "query/spjg.h"
#include "query/substitute.h"
#include "query/view_def.h"
#include "rewrite/range.h"

namespace mvopt {

/// Table-ref base for synthetic columns produced by aggregation nodes.
inline constexpr int32_t kSyntheticRefBase = 1000;

enum class PhysKind {
  kTableScan,
  kIndexRangeScan,
  kHashJoin,
  kHashAggregate,
  kProject,
  kViewScan,       ///< scan of a materialized view + compensations
  kViewIndexScan,  ///< same, driven by an index range on the view
};

const char* PhysKindName(PhysKind kind);

struct PhysPlan;
using PhysPlanPtr = std::shared_ptr<const PhysPlan>;

struct PhysPlan {
  PhysKind kind = PhysKind::kTableScan;
  std::vector<PhysPlanPtr> children;

  // Scans (table or view).
  TableId table = kInvalidTableId;  ///< base table or view's table
  int32_t table_ref = -1;           ///< global FROM slot (base scans)

  // Index scans: index name + leading-column range.
  std::string index_name;
  ColumnOrdinal index_column = -1;
  ValueRange index_range;

  /// Residual filter applied after the scan / join / view compensations.
  /// Base scans and joins: query-space expressions. View scans:
  /// substitute-space (view-output) expressions.
  std::vector<ExprPtr> filter;

  // Hash join equi-keys (query-space column pairs, left/right).
  std::vector<std::pair<ColumnRefId, ColumnRefId>> join_keys;

  // Aggregation / projection payload (query-space expressions;
  // aggregation outputs may introduce synthetic refs via `agg_spec_id`).
  std::vector<ExprPtr> group_by;
  std::vector<OutputExpr> outputs;
  int agg_spec_id = -1;

  // View scans.
  ViewId view = kInvalidViewId;
  /// The view's registered name, preferred by ToString over the raw id:
  /// ids are an implementation detail of the substitute source (the
  /// sharded catalog hands out composite global ids), so rendering the
  /// name keeps plan text comparable across id spaces — the property the
  /// sharded-vs-unsharded byte-identity checks rely on.
  std::string view_name;
  Substitute substitute;
  /// Global column reference provided by each substitute output position
  /// (empty when the node is a root producing final query outputs).
  std::vector<ColumnRefId> provides;

  // Estimates.
  double cost = 0;
  double rows = 0;

  /// True if this subtree reads any materialized view.
  bool UsesView() const;

  /// Indented one-node-per-line rendering for examples and debugging.
  std::string ToString(const Catalog& catalog, int indent = 0) const;
};

}  // namespace mvopt

#endif  // MVOPT_OPTIMIZER_PHYSICAL_H_
