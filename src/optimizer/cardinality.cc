#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "expr/classify.h"
#include "rewrite/equiv.h"

namespace mvopt {

namespace {

constexpr double kDefaultResidualSelectivity = 1.0 / 3.0;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kMinSelectivity = 1e-9;
/// Estimates are clamped into [kMinCardinality, kMaxCardinality]: a NaN
/// or Inf estimate poisons every best-plan `<` comparison downstream
/// (NaN compares false both ways, so an unusable plan can survive as
/// "best"), and an underflowed 0 makes every alternative look free.
constexpr double kMinCardinality = 1e-6;
constexpr double kMaxCardinality = 1e18;

double Clamp01(double x) {
  if (std::isnan(x)) return kMinSelectivity;
  return std::max(kMinSelectivity, std::min(1.0, x));
}

double ClampCardinality(double card) {
  if (std::isnan(card)) return kMaxCardinality;  // pessimistic, but finite
  return std::max(kMinCardinality, std::min(kMaxCardinality, card));
}

}  // namespace

double CardinalityEstimator::RangeSelectivity(const TableDef& table,
                                              ColumnOrdinal column,
                                              CompareOp op,
                                              const Value& bound) const {
  const ColumnStats& stats = table.column(column).stats;
  if (op == CompareOp::kEq) {
    if (stats.distinct > 0) return Clamp01(1.0 / stats.distinct);
    return Clamp01(kDefaultRangeSelectivity / 10);
  }
  if (stats.min.is_null() || stats.max.is_null() || !bound.is_numeric() ||
      !stats.min.is_numeric()) {
    return kDefaultRangeSelectivity;
  }
  const double lo = stats.min.AsDouble();
  const double hi = stats.max.AsDouble();
  const double b = bound.AsDouble();
  // Degenerate stats or bound (NaN, +-Inf, collapsed range): the
  // interpolation below would produce NaN or a meaningless 0/1.
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(b) ||
      hi <= lo) {
    return kDefaultRangeSelectivity;
  }
  double frac = (b - lo) / (hi - lo);
  frac = std::max(0.0, std::min(1.0, frac));
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return Clamp01(frac);
    case CompareOp::kGt:
    case CompareOp::kGe:
      return Clamp01(1.0 - frac);
    default:
      return kDefaultRangeSelectivity;
  }
}

double CardinalityEstimator::EstimateSpj(const SpjgQuery& query) const {
  double card = 1.0;
  for (const auto& tr : query.tables) {
    card *= std::max<int64_t>(1, catalog_->table(tr.table).row_count());
  }

  ClassifiedPredicates preds = ClassifyConjuncts(query.conjuncts);

  // Equijoins: one selectivity per nontrivial equivalence class — divide
  // by every distinct count except the largest (containment assumption).
  EquivalenceClasses ec;
  for (int t = 0; t < query.num_tables(); ++t) {
    ec.AddTableColumns(t, catalog_->table(query.tables[t].table)
                              .num_columns());
  }
  ec.AddEqualities(preds.equalities);
  for (int cls : ec.NontrivialClasses()) {
    std::vector<double> ndvs;
    for (ColumnRefId m : ec.ClassMembers(cls)) {
      const TableDef& t = catalog_->table(query.tables[m.table_ref].table);
      int64_t d = t.column(m.column).stats.distinct;
      ndvs.push_back(d > 0 ? static_cast<double>(d) : 100.0);
    }
    std::sort(ndvs.begin(), ndvs.end());
    // All but the largest.
    for (size_t i = 0; i + 1 < ndvs.size(); ++i) card /= std::max(1.0,
                                                                  ndvs[i]);
  }

  // Ranges: fold per-column predicates into intervals per column and take
  // interval selectivity (avoids double-counting between a>5 and a<9).
  struct ColKey {
    int t;
    int c;
  };
  std::unordered_map<uint64_t, std::vector<RangePred>> by_column;
  for (const auto& p : preds.ranges) {
    uint64_t key = (static_cast<uint64_t>(p.column.table_ref) << 32) |
                   static_cast<uint32_t>(p.column.column);
    by_column[key].push_back(p);
  }
  for (const auto& [key, plist] : by_column) {
    int t = static_cast<int>(key >> 32);
    ColumnOrdinal c = static_cast<ColumnOrdinal>(key & 0xffffffffu);
    const TableDef& table = catalog_->table(query.tables[t].table);
    // A non-empty interval selects at least one value: floor the interval
    // selectivity at one distinct value (degenerate ranges like
    // ">= 6 AND <= 6" otherwise estimate to zero).
    const int64_t distinct = table.column(c).stats.distinct;
    const double eq_sel = distinct > 0 ? 1.0 / distinct : 0.01;
    double sel = 1.0;
    bool has_eq = false;
    double lo_sel = 1.0;  // selectivity of the > side
    double hi_sel = 1.0;  // selectivity of the < side
    for (const auto& p : plist) {
      if (p.op == CompareOp::kEq) {
        sel = std::min(sel, RangeSelectivity(table, c, p.op, p.bound));
        has_eq = true;
      } else if (p.op == CompareOp::kGt || p.op == CompareOp::kGe) {
        lo_sel = std::min(lo_sel, RangeSelectivity(table, c, p.op, p.bound));
      } else {
        hi_sel = std::min(hi_sel, RangeSelectivity(table, c, p.op, p.bound));
      }
    }
    if (!has_eq) {
      sel = Clamp01(std::max(lo_sel + hi_sel - 1.0, eq_sel));
      if (lo_sel == 1.0 && hi_sel == 1.0) sel = 1.0;
    }
    card *= sel;
  }

  for (size_t i = 0; i < preds.residual.size(); ++i) {
    card *= kDefaultResidualSelectivity;
  }
  return ClampCardinality(card);
}

double CardinalityEstimator::EstimateResult(const SpjgQuery& query) const {
  double spj = EstimateSpj(query);
  if (!query.is_aggregate) return spj;
  if (query.group_by.empty()) return 1.0;
  // Distinct groups: product of grouping-column distinct counts, capped
  // by the SPJ cardinality.
  double groups = 1.0;
  for (const auto& g : query.group_by) {
    double d = 100.0;
    if (g->kind() == ExprKind::kColumnRef) {
      const TableDef& t =
          catalog_->table(query.tables[g->column_ref().table_ref].table);
      int64_t nd = t.column(g->column_ref().column).stats.distinct;
      if (nd > 0) d = static_cast<double>(nd);
    }
    groups *= d;
  }
  return ClampCardinality(std::min(groups, spj));
}

}  // namespace mvopt
