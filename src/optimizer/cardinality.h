// Statistics-based cardinality estimation for SPJG expressions. Classic
// System-R style: per-table base cardinalities, independence across
// predicates, equijoin selectivity from distinct counts (via equivalence
// classes, so transitive join chains are handled once per class), range
// selectivity from min/max interpolation.
//
// Used by the cost model and by the §5 workload generator, which tunes
// random range predicates until "the estimated cardinality of the SPJ
// part of the result was within 25-75% of the largest table included".

#ifndef MVOPT_OPTIMIZER_CARDINALITY_H_
#define MVOPT_OPTIMIZER_CARDINALITY_H_

#include "catalog/catalog.h"
#include "query/spjg.h"

namespace mvopt {

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Estimated row count of the SPJ part of `query` (grouping ignored).
  double EstimateSpj(const SpjgQuery& query) const;

  /// Estimated row count including a final group-by (distinct groups).
  double EstimateResult(const SpjgQuery& query) const;

  /// Selectivity of one range predicate against column statistics.
  double RangeSelectivity(const TableDef& table, ColumnOrdinal column,
                          CompareOp op, const Value& bound) const;

 private:
  const Catalog* catalog_;
};

}  // namespace mvopt

#endif  // MVOPT_OPTIMIZER_CARDINALITY_H_
