// Executes physical plans against the in-memory database. Materialized
// (batch) execution: every node produces its full result plus a slot map
// from the global column references it exposes to row positions.

#ifndef MVOPT_OPTIMIZER_PLAN_EXEC_H_
#define MVOPT_OPTIMIZER_PLAN_EXEC_H_

#include <vector>

#include "engine/database.h"
#include "engine/eval.h"
#include "optimizer/physical.h"

namespace mvopt {

class PlanExecutor {
 public:
  explicit PlanExecutor(const Database* db) : db_(db) {}

  /// Executes `root` and returns the final output rows (column order =
  /// the root node's output order, which the optimizer aligns with the
  /// original query's output list).
  std::vector<Row> Execute(const PhysPlanPtr& root);

 private:
  struct Result {
    std::vector<Row> rows;
    SlotMap slots;
    int width = 0;
  };

  Result Run(const PhysPlan& plan);
  Result RunScan(const PhysPlan& plan);
  Result RunViewScan(const PhysPlan& plan);
  Result RunJoin(const PhysPlan& plan);
  Result RunAggregate(const PhysPlan& plan);
  Result RunProject(const PhysPlan& plan);

  const Database* db_;
};

}  // namespace mvopt

#endif  // MVOPT_OPTIMIZER_PLAN_EXEC_H_
