#include "optimizer/physical.h"

#include <cstdio>

namespace mvopt {

const char* PhysKindName(PhysKind kind) {
  switch (kind) {
    case PhysKind::kTableScan:
      return "TableScan";
    case PhysKind::kIndexRangeScan:
      return "IndexRangeScan";
    case PhysKind::kHashJoin:
      return "HashJoin";
    case PhysKind::kHashAggregate:
      return "HashAggregate";
    case PhysKind::kProject:
      return "Project";
    case PhysKind::kViewScan:
      return "ViewScan";
    case PhysKind::kViewIndexScan:
      return "ViewIndexScan";
  }
  return "?";
}

bool PhysPlan::UsesView() const {
  if (kind == PhysKind::kViewScan || kind == PhysKind::kViewIndexScan) {
    return true;
  }
  for (const auto& c : children) {
    if (c->UsesView()) return true;
  }
  return false;
}

std::string PhysPlan::ToString(const Catalog& catalog, int indent) const {
  std::string pad(indent * 2, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (rows=%.0f cost=%.0f)", rows, cost);
  std::string line = pad + PhysKindName(kind);
  // A view picked by the optimizer need not be materialized as a catalog
  // table (optimizer-only pipelines leave `table` invalid), and a plan
  // should always be printable — fall back to the view/table id.
  auto scan_target = [&catalog, this]() -> std::string {
    if (table >= 0 && table < catalog.num_tables()) {
      return catalog.table(table).name();
    }
    // Prefer the registered name over the raw id: ids depend on the
    // substitute source's id space (sharded catalogs use composite
    // global ids), names do not.
    if (!view_name.empty()) return view_name;
    if (view != kInvalidViewId) return "view#" + std::to_string(view);
    return "table#" + std::to_string(table);
  };
  switch (kind) {
    case PhysKind::kTableScan:
    case PhysKind::kViewScan:
      line += "(" + scan_target() + ")";
      break;
    case PhysKind::kIndexRangeScan:
    case PhysKind::kViewIndexScan:
      line += "(" + scan_target() + "." + index_name + " " +
              index_range.ToString() + ")";
      break;
    case PhysKind::kHashJoin: {
      line += "(";
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i > 0) line += ", ";
        line += "t" + std::to_string(join_keys[i].first.table_ref) + ".c" +
                std::to_string(join_keys[i].first.column) + "=t" +
                std::to_string(join_keys[i].second.table_ref) + ".c" +
                std::to_string(join_keys[i].second.column);
      }
      line += ")";
      break;
    }
    case PhysKind::kHashAggregate:
      line += "(groups=" + std::to_string(group_by.size()) + ")";
      break;
    case PhysKind::kProject:
      line += "(" + std::to_string(outputs.size()) + " cols)";
      break;
  }
  if (!filter.empty()) {
    line += " filter[" + std::to_string(filter.size()) + "]";
  }
  line += buf;
  line += "\n";
  for (const auto& c : children) line += c->ToString(catalog, indent + 1);
  return line;
}

}  // namespace mvopt
