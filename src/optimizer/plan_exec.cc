#include "optimizer/plan_exec.h"

#include <cassert>
#include <unordered_map>

#include "common/failpoint.h"

namespace mvopt {

std::vector<Row> PlanExecutor::Execute(const PhysPlanPtr& root) {
  assert(root != nullptr);
  MVOPT_FAILPOINT("plan_exec.execute");
  return Run(*root).rows;
}

PlanExecutor::Result PlanExecutor::Run(const PhysPlan& plan) {
  switch (plan.kind) {
    case PhysKind::kTableScan:
    case PhysKind::kIndexRangeScan:
      return RunScan(plan);
    case PhysKind::kViewScan:
    case PhysKind::kViewIndexScan:
      return RunViewScan(plan);
    case PhysKind::kHashJoin:
      return RunJoin(plan);
    case PhysKind::kHashAggregate:
      return RunAggregate(plan);
    case PhysKind::kProject:
      return RunProject(plan);
  }
  return Result{};
}

PlanExecutor::Result PlanExecutor::RunScan(const PhysPlan& plan) {
  const TableData* data = db_->table(plan.table);
  assert(data != nullptr && "table not loaded");
  Result out;
  out.width = data->num_columns();
  for (int c = 0; c < data->num_columns(); ++c) {
    out.slots[ColumnRefId{plan.table_ref, c}] = c;
  }
  std::vector<ExprPtr> bound;
  for (const auto& f : plan.filter) {
    ExprPtr b = BindToSlots(f, out.slots);
    assert(b != nullptr);
    bound.push_back(std::move(b));
  }
  auto passes = [&bound](const Row& row) {
    for (const auto& p : bound) {
      if (!EvalPredicate(*p, row)) return false;
    }
    return true;
  };
  if (plan.kind == PhysKind::kIndexRangeScan) {
    const OrderedIndex* index = nullptr;
    for (const auto& idx : data->indexes()) {
      if (idx.name == plan.index_name) index = &idx;
    }
    assert(index != nullptr && "index not built");
    auto [begin, end] = data->IndexRange(*index, plan.index_range);
    for (size_t i = begin; i < end; ++i) {
      const Row& row = data->rows()[index->order[i]];
      if (passes(row)) out.rows.push_back(row);
    }
  } else {
    for (const Row& row : data->rows()) {
      if (passes(row)) out.rows.push_back(row);
    }
  }
  return out;
}

PlanExecutor::Result PlanExecutor::RunViewScan(const PhysPlan& plan) {
  assert(plan.table != kInvalidTableId && "view must be materialized");
  const TableData* data = db_->table(plan.table);
  assert(data != nullptr);
  const Substitute& sub = plan.substitute;

  if (!sub.backjoins.empty()) {
    // Backjoin substitutes reference base tables; delegate to the
    // reference executor over the substitute's SPJG form.
    Result out;
    out.rows = db_->ExecuteSpjg(sub.ToQueryOverView(plan.table));
    out.width = static_cast<int>(sub.outputs.size());
    for (size_t i = 0; i < plan.provides.size(); ++i) {
      out.slots[plan.provides[i]] = static_cast<int>(i);
    }
    return out;
  }

  // Compensating predicates and outputs are already in view-output space
  // ({0, ordinal}), i.e., directly evaluable over raw view rows.
  auto passes = [&sub](const Row& row) {
    for (const auto& p : sub.predicates) {
      if (!EvalPredicate(*p, row)) return false;
    }
    return true;
  };
  std::vector<Row> selected;
  if (plan.kind == PhysKind::kViewIndexScan) {
    const OrderedIndex* index = nullptr;
    for (const auto& idx : data->indexes()) {
      if (idx.name == plan.index_name) index = &idx;
    }
    assert(index != nullptr && "view index not built");
    auto [begin, end] = data->IndexRange(*index, plan.index_range);
    for (size_t i = begin; i < end; ++i) {
      const Row& row = data->rows()[index->order[i]];
      if (passes(row)) selected.push_back(row);
    }
  } else {
    for (const Row& row : data->rows()) {
      if (passes(row)) selected.push_back(row);
    }
  }

  std::vector<ExprPtr> outputs;
  for (const auto& o : sub.outputs) outputs.push_back(o.expr);
  Result out;
  out.rows = ProjectAndAggregate(selected, outputs, sub.group_by,
                                 sub.needs_aggregation);
  out.width = static_cast<int>(outputs.size());
  for (size_t i = 0; i < plan.provides.size(); ++i) {
    out.slots[plan.provides[i]] = static_cast<int>(i);
  }
  return out;
}

PlanExecutor::Result PlanExecutor::RunJoin(const PhysPlan& plan) {
  Result left = Run(*plan.children[0]);
  Result right = Run(*plan.children[1]);

  // Split the crossing predicates into hash keys (column equalities with
  // one side per input) and residual filters.
  std::vector<std::pair<int, int>> key_slots;  // (left slot, right slot)
  std::vector<ExprPtr> residual;
  for (const auto& f : plan.filter) {
    bool is_key = false;
    if (f->kind() == ExprKind::kComparison &&
        f->compare_op() == CompareOp::kEq &&
        f->child(0)->kind() == ExprKind::kColumnRef &&
        f->child(1)->kind() == ExprKind::kColumnRef) {
      ColumnRefId a = f->child(0)->column_ref();
      ColumnRefId b = f->child(1)->column_ref();
      auto la = left.slots.find(a);
      auto rb = right.slots.find(b);
      if (la != left.slots.end() && rb != right.slots.end()) {
        key_slots.emplace_back(la->second, rb->second);
        is_key = true;
      } else {
        auto lb = left.slots.find(b);
        auto ra = right.slots.find(a);
        if (lb != left.slots.end() && ra != right.slots.end()) {
          key_slots.emplace_back(lb->second, ra->second);
          is_key = true;
        }
      }
    }
    if (!is_key) residual.push_back(f);
  }

  Result out;
  out.width = left.width + right.width;
  out.slots = left.slots;
  for (const auto& [ref, slot] : right.slots) {
    out.slots[ref] = slot + left.width;
  }
  std::vector<ExprPtr> bound_residual;
  for (const auto& f : residual) {
    ExprPtr b = BindToSlots(f, out.slots);
    assert(b != nullptr);
    bound_residual.push_back(std::move(b));
  }

  auto emit = [&](const Row& l, const Row& r) {
    Row combined;
    combined.reserve(out.width);
    combined.insert(combined.end(), l.begin(), l.end());
    combined.insert(combined.end(), r.begin(), r.end());
    for (const auto& p : bound_residual) {
      if (!EvalPredicate(*p, combined)) return;
    }
    out.rows.push_back(std::move(combined));
  };

  if (key_slots.empty()) {
    // Cross product with residual filters.
    for (const Row& l : left.rows) {
      for (const Row& r : right.rows) emit(l, r);
    }
    return out;
  }

  // Hash join; SQL equality — null keys never match.
  std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> table;
  for (const Row& r : right.rows) {
    Row key;
    key.reserve(key_slots.size());
    bool has_null = false;
    for (const auto& [ls, rs] : key_slots) {
      (void)ls;
      if (r[rs].is_null()) {
        has_null = true;
        break;
      }
      key.push_back(r[rs]);
    }
    if (!has_null) table[std::move(key)].push_back(&r);
  }
  for (const Row& l : left.rows) {
    Row key;
    key.reserve(key_slots.size());
    bool has_null = false;
    for (const auto& [ls, rs] : key_slots) {
      (void)rs;
      if (l[ls].is_null()) {
        has_null = true;
        break;
      }
      key.push_back(l[ls]);
    }
    if (has_null) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Row* r : it->second) emit(l, *r);
  }
  return out;
}

PlanExecutor::Result PlanExecutor::RunAggregate(const PhysPlan& plan) {
  Result child = Run(*plan.children[0]);
  std::vector<ExprPtr> bound_outputs;
  for (const auto& o : plan.outputs) {
    ExprPtr b = BindToSlots(o.expr, child.slots);
    assert(b != nullptr);
    bound_outputs.push_back(std::move(b));
  }
  std::vector<ExprPtr> bound_group_by;
  for (const auto& g : plan.group_by) {
    ExprPtr b = BindToSlots(g, child.slots);
    assert(b != nullptr);
    bound_group_by.push_back(std::move(b));
  }
  Result out;
  out.rows = ProjectAndAggregate(child.rows, bound_outputs, bound_group_by,
                                 /*is_aggregate=*/true);
  out.width = static_cast<int>(plan.outputs.size());
  for (size_t i = 0; i < plan.outputs.size(); ++i) {
    const Expr& oe = *plan.outputs[i].expr;
    if (oe.kind() == ExprKind::kColumnRef &&
        oe.column_ref().table_ref < kSyntheticRefBase) {
      out.slots[oe.column_ref()] = static_cast<int>(i);
    } else {
      out.slots[ColumnRefId{kSyntheticRefBase + plan.agg_spec_id,
                            static_cast<ColumnOrdinal>(i)}] =
          static_cast<int>(i);
    }
  }
  return out;
}

PlanExecutor::Result PlanExecutor::RunProject(const PhysPlan& plan) {
  Result child = Run(*plan.children[0]);
  Result out;
  out.width = static_cast<int>(plan.outputs.size());
  std::vector<ExprPtr> bound;
  for (const auto& o : plan.outputs) {
    ExprPtr b = BindToSlots(o.expr, child.slots);
    assert(b != nullptr);
    bound.push_back(std::move(b));
  }
  out.rows.reserve(child.rows.size());
  for (const Row& row : child.rows) {
    Row projected;
    projected.reserve(bound.size());
    for (const auto& e : bound) projected.push_back(EvalScalar(*e, row));
    out.rows.push_back(std::move(projected));
  }
  for (size_t i = 0; i < plan.outputs.size(); ++i) {
    const Expr& oe = *plan.outputs[i].expr;
    if (oe.kind() == ExprKind::kColumnRef &&
        oe.column_ref().table_ref < kSyntheticRefBase) {
      out.slots[oe.column_ref()] = static_cast<int>(i);
    }
  }
  return out;
}

}  // namespace mvopt
