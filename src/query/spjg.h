// The SPJG normal form: the relational expression class handled by the
// paper (§2) — selections, inner joins, and an optional final group-by.
//
// An SpjgQuery holds a FROM list of table references, a WHERE predicate as
// a list of CNF conjuncts, an output list of named expressions, and an
// optional GROUP BY list. Column references inside expressions use
// (table_ref slot, column ordinal) addressing into the FROM list.

#ifndef MVOPT_QUERY_SPJG_H_
#define MVOPT_QUERY_SPJG_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expr.h"

namespace mvopt {

/// One FROM-list entry.
struct TableRef {
  TableId table = kInvalidTableId;
  std::string alias;  // for printing; empty -> table name
};

/// One named output expression.
struct OutputExpr {
  std::string name;
  ExprPtr expr;
};

/// An SPJG expression. Plain data; invariants (CNF conjuncts, aggregates
/// only at output-expression roots, group-by exprs aggregate-free) are
/// established by SpjgBuilder / ViewDefinition validation.
struct SpjgQuery {
  std::vector<TableRef> tables;
  std::vector<ExprPtr> conjuncts;
  std::vector<OutputExpr> outputs;
  std::vector<ExprPtr> group_by;
  /// True when the expression has group-by semantics. A scalar aggregate
  /// (no GROUP BY clause) has is_aggregate=true and empty group_by.
  bool is_aggregate = false;

  int num_tables() const { return static_cast<int>(tables.size()); }

  /// Renders SQL-ish text (SELECT ... FROM ... WHERE ... GROUP BY ...).
  /// `catalog` supplies table/column names.
  std::string ToSql(const Catalog& catalog) const;

  /// Name of a column reference as "alias.column".
  std::string ColumnName(const Catalog& catalog, ColumnRefId ref) const;
};

/// Convenience builder producing a normalized SpjgQuery: the WHERE
/// predicate is converted to CNF, aliases are defaulted, and simple-column
/// outputs are auto-named.
class SpjgBuilder {
 public:
  explicit SpjgBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Adds a FROM entry; returns its table_ref slot.
  int32_t AddTable(const std::string& table_name, std::string alias = "");
  int32_t AddTableId(TableId id, std::string alias = "");

  /// Column expression by name within a previously added table ref.
  ExprPtr Col(int32_t table_ref, const std::string& column_name) const;

  /// Adds one WHERE conjunct (converted to CNF on Build).
  void Where(ExprPtr pred) { predicates_.push_back(std::move(pred)); }

  /// Adds an output expression; empty name auto-derives from columns.
  void Output(ExprPtr expr, std::string name = "");

  /// Adds a GROUP BY expression (also marks the query aggregate).
  void GroupBy(ExprPtr expr);

  /// Marks aggregate semantics without grouping columns (scalar agg).
  void SetAggregate() { is_aggregate_ = true; }

  SpjgQuery Build() const;

  const Catalog& catalog() const { return *catalog_; }

 private:
  const Catalog* catalog_;
  std::vector<TableRef> tables_;
  std::vector<ExprPtr> predicates_;
  std::vector<OutputExpr> outputs_;
  std::vector<ExprPtr> group_by_;
  bool is_aggregate_ = false;
};

}  // namespace mvopt

#endif  // MVOPT_QUERY_SPJG_H_
