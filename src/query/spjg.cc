#include "query/spjg.h"

#include <cassert>

#include "common/str_util.h"
#include "expr/cnf.h"

namespace mvopt {

std::string SpjgQuery::ColumnName(const Catalog& catalog,
                                  ColumnRefId ref) const {
  assert(ref.table_ref >= 0 && ref.table_ref < num_tables());
  const TableRef& tr = tables[ref.table_ref];
  const TableDef& t = catalog.table(tr.table);
  const std::string& prefix = tr.alias.empty() ? t.name() : tr.alias;
  return prefix + "." + t.column(ref.column).name;
}

std::string SpjgQuery::ToSql(const Catalog& catalog) const {
  std::function<std::string(ColumnRefId)> namer =
      [&](ColumnRefId ref) { return ColumnName(catalog, ref); };

  std::vector<std::string> select_items;
  for (const auto& o : outputs) {
    std::string item = o.expr->ToString(&namer);
    if (!o.name.empty()) item += " AS " + o.name;
    select_items.push_back(std::move(item));
  }
  std::vector<std::string> from_items;
  for (const auto& tr : tables) {
    const TableDef& t = catalog.table(tr.table);
    std::string item = t.name();
    if (!tr.alias.empty() && tr.alias != t.name()) item += " " + tr.alias;
    from_items.push_back(std::move(item));
  }
  std::string sql = "SELECT " + Join(select_items, ", ") + "\nFROM " +
                    Join(from_items, ", ");
  if (!conjuncts.empty()) {
    std::vector<std::string> where_items;
    for (const auto& c : conjuncts) where_items.push_back(c->ToString(&namer));
    sql += "\nWHERE " + Join(where_items, " AND ");
  }
  if (is_aggregate && !group_by.empty()) {
    std::vector<std::string> gb_items;
    for (const auto& g : group_by) gb_items.push_back(g->ToString(&namer));
    sql += "\nGROUP BY " + Join(gb_items, ", ");
  }
  return sql;
}

int32_t SpjgBuilder::AddTable(const std::string& table_name,
                              std::string alias) {
  const TableDef* t = catalog_->FindTable(table_name);
  assert(t != nullptr && "unknown table");
  return AddTableId(t->id(), std::move(alias));
}

int32_t SpjgBuilder::AddTableId(TableId id, std::string alias) {
  tables_.push_back(TableRef{id, std::move(alias)});
  return static_cast<int32_t>(tables_.size()) - 1;
}

ExprPtr SpjgBuilder::Col(int32_t table_ref,
                         const std::string& column_name) const {
  assert(table_ref >= 0 && table_ref < static_cast<int32_t>(tables_.size()));
  const TableDef& t = catalog_->table(tables_[table_ref].table);
  auto ord = t.FindColumn(column_name);
  assert(ord.has_value() && "unknown column");
  return Expr::MakeColumn(table_ref, *ord);
}

void SpjgBuilder::Output(ExprPtr expr, std::string name) {
  if (name.empty() && expr->kind() == ExprKind::kColumnRef) {
    const TableDef& t =
        catalog_->table(tables_[expr->column_ref().table_ref].table);
    name = t.column(expr->column_ref().column).name;
  }
  if (name.empty()) {
    name = "expr" + std::to_string(outputs_.size());
  }
  outputs_.push_back(OutputExpr{std::move(name), std::move(expr)});
}

void SpjgBuilder::GroupBy(ExprPtr expr) {
  assert(!expr->ContainsAggregate());
  group_by_.push_back(std::move(expr));
  is_aggregate_ = true;
}

SpjgQuery SpjgBuilder::Build() const {
  SpjgQuery q;
  q.tables = tables_;
  for (const auto& p : predicates_) {
    for (const auto& c : ToCnf(p)) {
      bool dup = false;
      for (const auto& kept : q.conjuncts) {
        if (kept->Equals(*c)) {
          dup = true;
          break;
        }
      }
      if (!dup) q.conjuncts.push_back(c);
    }
  }
  q.outputs = outputs_;
  q.group_by = group_by_;
  q.is_aggregate = is_aggregate_;
  return q;
}

}  // namespace mvopt
