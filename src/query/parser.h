// A small SQL parser for the SPJG dialect the library handles (§2):
//
//   SELECT <expr> [AS name], ...
//   FROM   <table> [alias], ...
//   [WHERE <predicate>]
//   [GROUP BY <expr>, ...]
//
// Expressions: column references (qualified "t.col" or bare), integer /
// floating / 'string' literals, DATE n, + - * /, comparisons
// (= <> < <= > >=), BETWEEN ... AND ..., LIKE 'pattern', IS NOT NULL,
// AND / OR / NOT, and the aggregates COUNT(*), COUNT_BIG(*), SUM, MIN,
// MAX, AVG. Keywords are case-insensitive. The WHERE clause is converted
// to CNF by the builder, so the result is a normalized SpjgQuery ready
// for the matcher and optimizer.

#ifndef MVOPT_QUERY_PARSER_H_
#define MVOPT_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/spjg.h"

namespace mvopt {

/// Parses `sql` against `catalog`. On failure returns nullopt and sets
/// `*error` (position-annotated message) if provided.
std::optional<SpjgQuery> ParseSpjg(const Catalog& catalog,
                                   const std::string& sql,
                                   std::string* error = nullptr);

}  // namespace mvopt

#endif  // MVOPT_QUERY_PARSER_H_
