// Substitute expressions: the output of view matching (§3). A substitute
// evaluates the matched query expression from a single materialized view:
//
//   SELECT <outputs> FROM <view> WHERE <compensating predicates>
//   [GROUP BY <compensating group-by>]
//
// All column references inside a Substitute use table_ref 0 = the view,
// with column ordinals indexing the view's output list.

#ifndef MVOPT_QUERY_SUBSTITUTE_H_
#define MVOPT_QUERY_SUBSTITUTE_H_

#include <string>
#include <vector>

#include "query/spjg.h"
#include "query/view_def.h"

namespace mvopt {

/// A base-table backjoin (§7 extension): the view lacks some columns but
/// outputs a unique key of `table`, so joining the view back to the base
/// table recovers every column of the contributing row. In substitute
/// expressions the backjoined table occupies table_ref 1 + its index.
struct BackjoinSpec {
  TableId table = kInvalidTableId;
  /// Equi-join terms: view output ordinal = backjoined table's column.
  std::vector<std::pair<int, ColumnOrdinal>> key_join;
};

struct Substitute {
  ViewId view_id = kInvalidViewId;
  /// Base tables joined back to recover missing columns (usually empty).
  std::vector<BackjoinSpec> backjoins;
  /// Compensating predicates over view outputs (column-equality, range and
  /// residual compensation, in that order of construction).
  std::vector<ExprPtr> predicates;
  /// Output expressions over view outputs; positionally and by name
  /// aligned with the matched query's output list.
  std::vector<OutputExpr> outputs;
  /// Compensating group-by over view outputs; empty when no further
  /// aggregation is needed.
  std::vector<ExprPtr> group_by;
  bool needs_aggregation = false;
  /// Cost annotation (pipeline stage `cost-annotate`): how many update
  /// epochs the view lagged its base tables when matched. 0 = fresh;
  /// nonzero only for tolerated-stale substitutes, which the pipeline
  /// orders after fresh ones. Advisory — plan costing ignores it, so
  /// plans stay byte-identical with or without a staleness tolerance.
  uint64_t staleness_lag = 0;

  /// Converts to an ordinary SpjgQuery over the view's materialized table,
  /// ready for execution or memo insertion. Requires the view to have been
  /// registered as a table (`view_table`).
  SpjgQuery ToQueryOverView(TableId view_table,
                            const std::string& view_alias = "") const;
};

}  // namespace mvopt

#endif  // MVOPT_QUERY_SUBSTITUTE_H_
