#include "query/substitute.h"

namespace mvopt {

SpjgQuery Substitute::ToQueryOverView(TableId view_table,
                                      const std::string& view_alias) const {
  SpjgQuery q;
  q.tables.push_back(TableRef{view_table, view_alias});
  for (size_t j = 0; j < backjoins.size(); ++j) {
    q.tables.push_back(TableRef{backjoins[j].table,
                                "bj" + std::to_string(j)});
    for (const auto& [view_ordinal, column] : backjoins[j].key_join) {
      q.conjuncts.push_back(Expr::MakeCompare(
          CompareOp::kEq, Expr::MakeColumn(0, view_ordinal),
          Expr::MakeColumn(static_cast<int32_t>(1 + j), column)));
    }
  }
  q.conjuncts.insert(q.conjuncts.end(), predicates.begin(),
                     predicates.end());
  q.outputs = outputs;
  q.group_by = group_by;
  q.is_aggregate = needs_aggregation;
  return q;
}

}  // namespace mvopt
