#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace mvopt {

namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  kSymbol,  // punctuation / operators
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // uppercased for idents/symbols
  std::string raw;   // original spelling
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Tokenize(); }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::vector<Token>& tokens() const { return tokens_; }

 private:
  void Tokenize() {
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token tok;
      tok.pos = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                         input_[j] == '_')) {
          ++j;
        }
        tok.kind = TokKind::kIdent;
        tok.raw = input_.substr(i, j - i);
        tok.text = Upper(tok.raw);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        bool is_float = false;
        while (j < n && (std::isdigit(static_cast<unsigned char>(input_[j])) ||
                         input_[j] == '.')) {
          if (input_[j] == '.') is_float = true;
          ++j;
        }
        tok.kind = is_float ? TokKind::kFloat : TokKind::kInt;
        tok.raw = tok.text = input_.substr(i, j - i);
        i = j;
      } else if (c == '\'') {
        size_t j = i + 1;
        std::string value;
        while (j < n && input_[j] != '\'') value += input_[j++];
        if (j >= n) {
          error_ = "unterminated string literal at position " +
                   std::to_string(i);
          return;
        }
        tok.kind = TokKind::kString;
        tok.text = tok.raw = value;
        i = j + 1;
      } else {
        // Multi-char operators first.
        static const char* const kOps[] = {"<=", ">=", "<>", "!="};
        std::string two = input_.substr(i, 2);
        bool matched = false;
        for (const char* op : kOps) {
          if (two == op) {
            tok.kind = TokKind::kSymbol;
            tok.text = tok.raw = (two == "!=") ? "<>" : two;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          tok.kind = TokKind::kSymbol;
          tok.text = tok.raw = std::string(1, c);
          ++i;
        }
      }
      tokens_.push_back(std::move(tok));
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.pos = n;
    tokens_.push_back(end);
  }

  static std::string Upper(const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
    return out;
  }

  const std::string& input_;
  std::vector<Token> tokens_;
  std::string error_;
};

class Parser {
 public:
  Parser(const Catalog& catalog, const std::string& sql)
      : catalog_(catalog), lexer_(sql), builder_(&catalog) {}

  std::optional<SpjgQuery> Parse(std::string* error) {
    if (!lexer_.ok()) {
      if (error != nullptr) *error = lexer_.error();
      return std::nullopt;
    }
    std::optional<SpjgQuery> result = ParseQuery();
    if (!result.has_value() && error != nullptr) *error = error_;
    return result;
  }

 private:
  struct SelectItem {
    // Deferred: parsed after FROM so column names resolve; store token
    // positions instead. Simpler: we pre-scan FROM first (see
    // ParseQuery).
  };

  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= lexer_.tokens().size()) i = lexer_.tokens().size() - 1;
    return lexer_.tokens()[i];
  }
  const Token& Advance() { return lexer_.tokens()[pos_++]; }
  bool Accept(const std::string& text) {
    if (Peek().text == text && Peek().kind != TokKind::kString) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(const std::string& text) {
    if (Accept(text)) return true;
    Fail("expected '" + text + "'");
    return false;
  }
  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at position " + std::to_string(Peek().pos) +
               " (near '" + Peek().raw + "')";
    }
  }

  std::optional<SpjgQuery> ParseQuery() {
    if (!Expect("SELECT")) return std::nullopt;
    // The FROM clause must be parsed before expressions can resolve
    // column names, so locate and parse it first.
    size_t select_start = pos_;
    int depth = 0;
    while (Peek().kind != TokKind::kEnd &&
           !(depth == 0 && Peek().text == "FROM" &&
             Peek().kind == TokKind::kIdent)) {
      if (Peek().text == "(") ++depth;
      if (Peek().text == ")") --depth;
      ++pos_;
    }
    if (Peek().kind == TokKind::kEnd) {
      Fail("missing FROM clause");
      return std::nullopt;
    }
    size_t from_pos = pos_;
    ++pos_;  // consume FROM
    if (!ParseFromList()) return std::nullopt;
    size_t after_from = pos_;

    // Now parse the select list.
    pos_ = select_start;
    if (!ParseSelectList(from_pos)) return std::nullopt;
    pos_ = after_from;

    if (Accept("WHERE")) {
      ExprPtr pred = ParseOr();
      if (pred == nullptr) return std::nullopt;
      builder_.Where(std::move(pred));
    }
    if (Accept("GROUP")) {
      if (!Expect("BY")) return std::nullopt;
      do {
        ExprPtr g = ParseAdditive();
        if (g == nullptr) return std::nullopt;
        builder_.GroupBy(std::move(g));
      } while (Accept(","));
      has_group_by_ = true;
    }
    if (Peek().kind != TokKind::kEnd) {
      Fail("unexpected trailing input");
      return std::nullopt;
    }
    if (saw_aggregate_ && !has_group_by_) builder_.SetAggregate();
    return builder_.Build();
  }

  bool ParseFromList() {
    do {
      if (Peek().kind != TokKind::kIdent) {
        Fail("expected table name");
        return false;
      }
      std::string name = Advance().raw;
      const TableDef* table = catalog_.FindTable(name);
      if (table == nullptr) {
        Fail("unknown table '" + name + "'");
        return false;
      }
      std::string alias = name;
      if (Peek().kind == TokKind::kIdent && !IsKeyword(Peek().text)) {
        alias = Advance().raw;
      }
      int32_t slot = builder_.AddTableId(table->id(), alias);
      scopes_.push_back(Scope{alias, table, slot});
    } while (Accept(","));
    return true;
  }

  bool ParseSelectList(size_t stop_pos) {
    do {
      ExprPtr e = ParseAdditive();
      if (e == nullptr) return false;
      std::string name;
      if (Accept("AS")) {
        if (Peek().kind != TokKind::kIdent) {
          Fail("expected output name after AS");
          return false;
        }
        name = Advance().raw;
      }
      builder_.Output(std::move(e), std::move(name));
    } while (Accept(",") && pos_ < stop_pos);
    if (pos_ != stop_pos) {
      Fail("malformed select list");
      return false;
    }
    return true;
  }

  // predicate := and (OR and)*
  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    if (lhs == nullptr) return nullptr;
    std::vector<ExprPtr> terms{lhs};
    while (Accept("OR")) {
      ExprPtr rhs = ParseAnd();
      if (rhs == nullptr) return nullptr;
      terms.push_back(std::move(rhs));
    }
    return terms.size() == 1 ? terms[0] : Expr::MakeOr(std::move(terms));
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    if (lhs == nullptr) return nullptr;
    std::vector<ExprPtr> terms{lhs};
    while (Accept("AND")) {
      ExprPtr rhs = ParseNot();
      if (rhs == nullptr) return nullptr;
      terms.push_back(std::move(rhs));
    }
    return terms.size() == 1 ? terms[0] : Expr::MakeAnd(std::move(terms));
  }

  ExprPtr ParseNot() {
    if (Accept("NOT")) {
      ExprPtr inner = ParseNot();
      if (inner == nullptr) return nullptr;
      return Expr::MakeNot(std::move(inner));
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    if (lhs == nullptr) return nullptr;
    // BETWEEN a AND b
    if (Accept("BETWEEN")) {
      ExprPtr lo = ParseAdditive();
      if (lo == nullptr) return nullptr;
      if (!Expect("AND")) return nullptr;
      ExprPtr hi = ParseAdditive();
      if (hi == nullptr) return nullptr;
      return Expr::MakeAnd(
          {Expr::MakeCompare(CompareOp::kGe, lhs, std::move(lo)),
           Expr::MakeCompare(CompareOp::kLe, lhs, std::move(hi))});
    }
    if (Accept("LIKE")) {
      if (Peek().kind != TokKind::kString) {
        Fail("expected pattern string after LIKE");
        return nullptr;
      }
      return Expr::MakeLike(std::move(lhs), Advance().raw);
    }
    if (Accept("IS")) {
      if (!Expect("NOT")) return nullptr;
      if (!Expect("NULL")) return nullptr;
      return Expr::MakeIsNotNull(std::move(lhs));
    }
    static const struct {
      const char* text;
      CompareOp op;
    } kCmp[] = {{"=", CompareOp::kEq},  {"<>", CompareOp::kNe},
                {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
                {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& c : kCmp) {
      if (Accept(c.text)) {
        ExprPtr rhs = ParseAdditive();
        if (rhs == nullptr) return nullptr;
        return Expr::MakeCompare(c.op, std::move(lhs), std::move(rhs));
      }
    }
    // A bare expression in predicate position is not boolean SQL we
    // support; but allow parenthesized predicates to fall through here.
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    if (lhs == nullptr) return nullptr;
    while (true) {
      if (Accept("+")) {
        ExprPtr rhs = ParseMultiplicative();
        if (rhs == nullptr) return nullptr;
        lhs = Expr::MakeArith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Accept("-")) {
        ExprPtr rhs = ParseMultiplicative();
        if (rhs == nullptr) return nullptr;
        lhs = Expr::MakeArith(ArithOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParsePrimary();
    if (lhs == nullptr) return nullptr;
    while (true) {
      if (Accept("*")) {
        ExprPtr rhs = ParsePrimary();
        if (rhs == nullptr) return nullptr;
        lhs = Expr::MakeArith(ArithOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Accept("/")) {
        ExprPtr rhs = ParsePrimary();
        if (rhs == nullptr) return nullptr;
        lhs = Expr::MakeArith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  ExprPtr ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kInt) {
      Advance();
      return Expr::MakeLiteral(Value::Int64(std::atoll(tok.text.c_str())));
    }
    if (tok.kind == TokKind::kFloat) {
      Advance();
      return Expr::MakeLiteral(Value::Double(std::atof(tok.text.c_str())));
    }
    if (tok.kind == TokKind::kString) {
      Advance();
      return Expr::MakeLiteral(Value::String(tok.raw));
    }
    if (Accept("(")) {
      ExprPtr inner = ParseOr();
      if (inner == nullptr) return nullptr;
      if (!Expect(")")) return nullptr;
      return inner;
    }
    if (tok.kind == TokKind::kIdent) {
      // DATE n  or  DATE(n) (the printer's spelling)
      if (tok.text == "DATE" &&
          (Peek(1).kind == TokKind::kInt || Peek(1).text == "(")) {
        Advance();
        bool parens = Accept("(");
        if (Peek().kind != TokKind::kInt) {
          Fail("expected integer after DATE");
          return nullptr;
        }
        const Token& n = Advance();
        if (parens && !Expect(")")) return nullptr;
        return Expr::MakeLiteral(Value::Date(std::atoll(n.text.c_str())));
      }
      // Aggregates.
      if ((tok.text == "COUNT" || tok.text == "COUNT_BIG") &&
          Peek(1).text == "(") {
        Advance();
        Expect("(");
        if (!Expect("*")) return nullptr;
        if (!Expect(")")) return nullptr;
        saw_aggregate_ = true;
        return Expr::MakeAggregate(AggKind::kCountStar, nullptr);
      }
      static const struct {
        const char* name;
        AggKind kind;
      } kAggs[] = {{"SUM", AggKind::kSum},
                   {"MIN", AggKind::kMin},
                   {"MAX", AggKind::kMax},
                   {"AVG", AggKind::kAvg}};
      for (const auto& a : kAggs) {
        if (tok.text == a.name && Peek(1).text == "(") {
          Advance();
          Expect("(");
          ExprPtr arg = ParseAdditive();
          if (arg == nullptr) return nullptr;
          if (!Expect(")")) return nullptr;
          saw_aggregate_ = true;
          return Expr::MakeAggregate(a.kind, std::move(arg));
        }
      }
      return ParseColumnRef();
    }
    Fail("expected expression");
    return nullptr;
  }

  ExprPtr ParseColumnRef() {
    std::string first = Advance().raw;
    if (Accept(".")) {
      if (Peek().kind != TokKind::kIdent) {
        Fail("expected column name after '.'");
        return nullptr;
      }
      std::string column = Advance().raw;
      for (const Scope& s : scopes_) {
        if (s.alias == first) {
          auto ord = s.table->FindColumn(column);
          if (!ord.has_value()) {
            Fail("table '" + first + "' has no column '" + column + "'");
            return nullptr;
          }
          return Expr::MakeColumn(s.slot, *ord);
        }
      }
      Fail("unknown table or alias '" + first + "'");
      return nullptr;
    }
    // Bare column: resolve against all tables; must be unambiguous.
    ExprPtr found;
    for (const Scope& s : scopes_) {
      auto ord = s.table->FindColumn(first);
      if (ord.has_value()) {
        if (found != nullptr) {
          Fail("ambiguous column '" + first + "'");
          return nullptr;
        }
        found = Expr::MakeColumn(s.slot, *ord);
      }
    }
    if (found == nullptr) {
      Fail("unknown column '" + first + "'");
      return nullptr;
    }
    return found;
  }

  static bool IsKeyword(const std::string& upper) {
    static const char* const kKeywords[] = {
        "SELECT", "FROM", "WHERE", "GROUP", "BY",  "AND", "OR",
        "NOT",    "AS",   "LIKE",  "IS",    "NULL", "BETWEEN"};
    for (const char* k : kKeywords) {
      if (upper == k) return true;
    }
    return false;
  }

  struct Scope {
    std::string alias;
    const TableDef* table;
    int32_t slot;
  };

  const Catalog& catalog_;
  Lexer lexer_;
  SpjgBuilder builder_;
  std::vector<Scope> scopes_;
  size_t pos_ = 0;
  bool saw_aggregate_ = false;
  bool has_group_by_ = false;
  std::string error_;
};

}  // namespace

std::optional<SpjgQuery> ParseSpjg(const Catalog& catalog,
                                   const std::string& sql,
                                   std::string* error) {
  Parser parser(catalog, sql);
  return parser.Parse(error);
}

}  // namespace mvopt
