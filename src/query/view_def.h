// Materialized view definitions (the paper's "indexed views", §2).
//
// A view is an SPJG expression plus physical metadata: a clustered index
// and optional secondary indexes over the view's output columns. The class
// of indexable views is validated here: single-level SPJG over base
// tables; aggregation views must output every grouping expression plus a
// count(*) column, and may additionally contain only SUM (and, as the §7
// extension, MIN/MAX) aggregates.

#ifndef MVOPT_QUERY_VIEW_DEF_H_
#define MVOPT_QUERY_VIEW_DEF_H_

#include <optional>
#include <string>
#include <vector>

#include "query/spjg.h"

namespace mvopt {

using ViewId = int32_t;
inline constexpr ViewId kInvalidViewId = -1;

/// An index over a view's (or table's) output columns, by output ordinal.
struct IndexDef {
  std::string name;
  std::vector<int> key_columns;
  bool unique = false;
};

/// A validated materialized view definition.
class ViewDefinition {
 public:
  /// Validates `query` as an indexable view. Returns nullopt on success or
  /// a human-readable reason for rejection.
  static std::optional<std::string> Validate(const SpjgQuery& query,
                                             bool allow_min_max = true);

  ViewDefinition(ViewId id, std::string name, SpjgQuery query)
      : id_(id), name_(std::move(name)), query_(std::move(query)) {}

  ViewId id() const { return id_; }
  const std::string& name() const { return name_; }
  const SpjgQuery& query() const { return query_; }

  void set_clustered_index(IndexDef index) {
    clustered_ = std::move(index);
    has_clustered_ = true;
  }
  bool has_clustered_index() const { return has_clustered_; }
  const IndexDef& clustered_index() const { return clustered_; }

  void AddSecondaryIndex(IndexDef index) {
    secondary_.push_back(std::move(index));
  }
  const std::vector<IndexDef>& secondary_indexes() const {
    return secondary_;
  }

  /// For aggregation views: ordinal of the count(*) output, or -1.
  int CountColumnOrdinal() const;

  /// Ordinal of the output whose expression structurally equals `expr`,
  /// or -1 if absent.
  int FindOutput(const Expr& expr) const;

  /// The table id this view was registered under once materialized
  /// (kInvalidTableId before materialization). See Engine::MaterializeView.
  TableId materialized_table() const { return materialized_table_; }
  void set_materialized_table(TableId id) { materialized_table_ = id; }

 private:
  ViewId id_;
  std::string name_;
  SpjgQuery query_;
  bool has_clustered_ = false;
  IndexDef clustered_;
  std::vector<IndexDef> secondary_;
  TableId materialized_table_ = kInvalidTableId;
};

}  // namespace mvopt

#endif  // MVOPT_QUERY_VIEW_DEF_H_
