#include "query/view_def.h"

namespace mvopt {

std::optional<std::string> ViewDefinition::Validate(const SpjgQuery& query,
                                                    bool allow_min_max) {
  if (query.tables.empty()) return "view must reference at least one table";
  if (query.outputs.empty()) return "view must have output columns";

  if (!query.is_aggregate) {
    for (const auto& o : query.outputs) {
      if (o.expr->ContainsAggregate()) {
        return "non-aggregate view contains aggregate output";
      }
    }
    return std::nullopt;
  }

  // Aggregation view: every group-by expression must be an output.
  for (const auto& g : query.group_by) {
    bool found = false;
    for (const auto& o : query.outputs) {
      if (o.expr->Equals(*g)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return "aggregation view must output every grouping expression";
    }
  }
  // Outputs: either a grouping expression or an allowed aggregate.
  bool has_count = false;
  for (const auto& o : query.outputs) {
    if (o.expr->kind() == ExprKind::kAggregate) {
      switch (o.expr->agg_kind()) {
        case AggKind::kCountStar:
          has_count = true;
          break;
        case AggKind::kSum:
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          if (!allow_min_max) {
            return "min/max aggregates not allowed in materialized views";
          }
          break;
        case AggKind::kAvg:
          return "avg not allowed in materialized views (store sum+count)";
      }
      if (o.expr->num_children() == 1 &&
          o.expr->child(0)->ContainsAggregate()) {
        return "nested aggregates are not allowed";
      }
      continue;
    }
    if (o.expr->ContainsAggregate()) {
      return "aggregates must be top-level output expressions";
    }
    bool is_grouping = false;
    for (const auto& g : query.group_by) {
      if (o.expr->Equals(*g)) {
        is_grouping = true;
        break;
      }
    }
    if (!is_grouping) {
      return "aggregation view output '" + o.name +
             "' is neither a grouping expression nor an aggregate";
    }
  }
  if (!has_count) {
    return "aggregation view must contain a count(*) output "
           "(incremental-maintenance requirement)";
  }
  return std::nullopt;
}

int ViewDefinition::CountColumnOrdinal() const {
  for (size_t i = 0; i < query_.outputs.size(); ++i) {
    const Expr& e = *query_.outputs[i].expr;
    if (e.kind() == ExprKind::kAggregate &&
        e.agg_kind() == AggKind::kCountStar) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ViewDefinition::FindOutput(const Expr& expr) const {
  for (size_t i = 0; i < query_.outputs.size(); ++i) {
    if (query_.outputs[i].expr->Equals(expr)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mvopt
