// Row representation for the in-memory execution engine.

#ifndef MVOPT_ENGINE_ROW_H_
#define MVOPT_ENGINE_ROW_H_

#include <vector>

#include "common/hash_util.h"
#include "common/value.h"

namespace mvopt {

using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x811c9dc5u;
    for (const Value& v : row) HashCombineRaw(&h, v.Hash());
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      // NULL == NULL here: grouping treats nulls as equal.
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && a[i] != b[i]) return false;
    }
    return true;
  }
};

}  // namespace mvopt

#endif  // MVOPT_ENGINE_ROW_H_
