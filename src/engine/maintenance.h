// Incremental maintenance of materialized views.
//
// §2's requirements exist to make this possible: the unique clustered key
// lets changed groups be located, and the mandatory count_big(*) column
// lets deletions be handled incrementally — "when the count becomes zero,
// the group is empty and the row must be deleted".
//
// The maintainer propagates per-table deltas:
//   SPJ view      ΔV = Q(T1, ..., ΔTi, ..., Tn), appended or removed
//   aggregation   the delta is aggregated and merged into matching
//                 groups; counts and sums add/subtract, empty groups die
//
// Limitations (documented): views referencing the changed table more than
// once (self-joins) and deletions against MIN/MAX views fall back to full
// recomputation — the classic non-incremental cases.
//
// Thread-safety: the maintainer serializes its own passes on an internal
// mutex, so Insert / Delete / Repair / RegisterView may be issued from
// different threads (e.g. a loader thread and a revalidation thread)
// without external locking. The Database it maintains is mutated only
// under that mutex; callers that read the Database directly while a
// maintainer is live must coordinate with the maintenance passes
// themselves (the engine's usual arrangement: probes read views through
// the matching side, not the raw tables).

#ifndef MVOPT_ENGINE_MAINTENANCE_H_
#define MVOPT_ENGINE_MAINTENANCE_H_

#include <vector>

#include "common/epoch.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/database.h"
#include "observe/metrics.h"
#include "rewrite/view_lifecycle.h"

namespace mvopt {

class ViewMaintainer {
 public:
  explicit ViewMaintainer(Database* db) : db_(db) {}

  /// Registers a materialized view for maintenance.
  void RegisterView(ViewDefinition* view) MVOPT_EXCLUDES(mu_);

  /// Wires the base-table epoch clock: Insert/Delete advance the mutated
  /// table's epoch, and maintained views are stamped with the resulting
  /// global epoch (the staleness source the matching side reads).
  void set_epoch_clock(TableEpochClock* clock) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    epochs_ = clock;
  }
  /// Wires the view-lifecycle registry: after every maintenance pass the
  /// registered views are marked FRESH at the current epoch and their
  /// content checksums republished.
  void set_lifecycle(ViewLifecycleRegistry* lifecycle) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    lifecycle_ = lifecycle;
  }

  /// Recomputes `view`'s definition and compares its checksum against the
  /// stored contents — the revalidation probe for the circuit breaker.
  /// Takes the maintenance mutex: the recomputation must not interleave
  /// with a pass mutating the tables it reads.
  bool Validate(const ViewDefinition& view) const MVOPT_EXCLUDES(mu_);

  /// Self-healing: recomputes `view` from its definition and republishes
  /// its lifecycle entry (FRESH at the current epoch, new checksum).
  void Repair(ViewDefinition* view) MVOPT_EXCLUDES(mu_);

  /// Inserts `rows` into `table` and maintains every registered view.
  void Insert(TableId table, std::vector<Row> rows) MVOPT_EXCLUDES(mu_);

  /// Deletes rows from `table` (each must equal an existing row; one
  /// occurrence is removed per delta row) and maintains every view.
  void Delete(TableId table, const std::vector<Row>& rows)
      MVOPT_EXCLUDES(mu_);

  /// Statistics for tests/benches.
  int64_t incremental_updates() const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return incremental_updates_;
  }
  int64_t full_recomputations() const MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return full_recomputations_;
  }

  /// Observability hooks (nullptr slots are skipped): refreshes counts
  /// per-view FRESH publications after a maintenance pass; the other two
  /// mirror the local statistics above.
  struct MaintenanceCounters {
    Counter* refreshes = nullptr;
    Counter* incremental_updates = nullptr;
    Counter* full_recomputations = nullptr;
  };
  void set_counters(const MaintenanceCounters& counters) MVOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    counters_ = counters;
  }

 private:
  enum class DeltaKind { kInsert, kDelete };

  /// Returns false if the view needs full recomputation after the base
  /// change is applied (self-join on the changed table; MIN/MAX delete).
  bool Maintain(ViewDefinition* view, TableId table,
                const std::vector<Row>& delta_rows, DeltaKind kind)
      MVOPT_REQUIRES(mu_);
  void MaintainSpj(ViewDefinition* view, const std::vector<Row>& delta_out,
                   DeltaKind kind) MVOPT_REQUIRES(mu_);
  void MaintainAggregate(ViewDefinition* view,
                         const std::vector<Row>& delta_out, DeltaKind kind)
      MVOPT_REQUIRES(mu_);
  void Recompute(ViewDefinition* view) MVOPT_REQUIRES(mu_);
  /// Marks every registered view FRESH at the current epoch with its
  /// current content checksum (no-op without a lifecycle registry).
  void PublishRefreshAll() MVOPT_REQUIRES(mu_);

  /// Serializes maintenance passes and guards the registration list,
  /// wiring pointers and statistics. Acquired before nothing: the
  /// lifecycle registry and epoch clock called under it are internally
  /// synchronized and never call back in.
  mutable Mutex mu_;
  Database* db_;
  std::vector<ViewDefinition*> views_ MVOPT_GUARDED_BY(mu_);
  TableEpochClock* epochs_ MVOPT_GUARDED_BY(mu_) = nullptr;
  ViewLifecycleRegistry* lifecycle_ MVOPT_GUARDED_BY(mu_) = nullptr;
  int64_t incremental_updates_ MVOPT_GUARDED_BY(mu_) = 0;
  int64_t full_recomputations_ MVOPT_GUARDED_BY(mu_) = 0;
  MaintenanceCounters counters_ MVOPT_GUARDED_BY(mu_);
};

}  // namespace mvopt

#endif  // MVOPT_ENGINE_MAINTENANCE_H_
