// Incremental maintenance of materialized views.
//
// §2's requirements exist to make this possible: the unique clustered key
// lets changed groups be located, and the mandatory count_big(*) column
// lets deletions be handled incrementally — "when the count becomes zero,
// the group is empty and the row must be deleted".
//
// The maintainer propagates per-table deltas:
//   SPJ view      ΔV = Q(T1, ..., ΔTi, ..., Tn), appended or removed
//   aggregation   the delta is aggregated and merged into matching
//                 groups; counts and sums add/subtract, empty groups die
//
// Limitations (documented): views referencing the changed table more than
// once (self-joins) and deletions against MIN/MAX views fall back to full
// recomputation — the classic non-incremental cases.

#ifndef MVOPT_ENGINE_MAINTENANCE_H_
#define MVOPT_ENGINE_MAINTENANCE_H_

#include <vector>

#include "common/epoch.h"
#include "engine/database.h"
#include "observe/metrics.h"
#include "rewrite/view_lifecycle.h"

namespace mvopt {

class ViewMaintainer {
 public:
  explicit ViewMaintainer(Database* db) : db_(db) {}

  /// Registers a materialized view for maintenance.
  void RegisterView(ViewDefinition* view);

  /// Wires the base-table epoch clock: Insert/Delete advance the mutated
  /// table's epoch, and maintained views are stamped with the resulting
  /// global epoch (the staleness source the matching side reads).
  void set_epoch_clock(TableEpochClock* clock) { epochs_ = clock; }
  /// Wires the view-lifecycle registry: after every maintenance pass the
  /// registered views are marked FRESH at the current epoch and their
  /// content checksums republished.
  void set_lifecycle(ViewLifecycleRegistry* lifecycle) {
    lifecycle_ = lifecycle;
  }

  /// Recomputes `view`'s definition and compares its checksum against the
  /// stored contents — the revalidation probe for the circuit breaker.
  bool Validate(const ViewDefinition& view) const;

  /// Self-healing: recomputes `view` from its definition and republishes
  /// its lifecycle entry (FRESH at the current epoch, new checksum).
  void Repair(ViewDefinition* view);

  /// Inserts `rows` into `table` and maintains every registered view.
  void Insert(TableId table, std::vector<Row> rows);

  /// Deletes rows from `table` (each must equal an existing row; one
  /// occurrence is removed per delta row) and maintains every view.
  void Delete(TableId table, const std::vector<Row>& rows);

  /// Statistics for tests/benches.
  int64_t incremental_updates() const { return incremental_updates_; }
  int64_t full_recomputations() const { return full_recomputations_; }

  /// Observability hooks (nullptr slots are skipped): refreshes counts
  /// per-view FRESH publications after a maintenance pass; the other two
  /// mirror the local statistics above.
  struct MaintenanceCounters {
    Counter* refreshes = nullptr;
    Counter* incremental_updates = nullptr;
    Counter* full_recomputations = nullptr;
  };
  void set_counters(const MaintenanceCounters& counters) {
    counters_ = counters;
  }

 private:
  enum class DeltaKind { kInsert, kDelete };

  /// Returns false if the view needs full recomputation after the base
  /// change is applied (self-join on the changed table; MIN/MAX delete).
  bool Maintain(ViewDefinition* view, TableId table,
                const std::vector<Row>& delta_rows, DeltaKind kind);
  void MaintainSpj(ViewDefinition* view, const std::vector<Row>& delta_out,
                   DeltaKind kind);
  void MaintainAggregate(ViewDefinition* view,
                         const std::vector<Row>& delta_out, DeltaKind kind);
  void Recompute(ViewDefinition* view);
  /// Marks every registered view FRESH at the current epoch with its
  /// current content checksum (no-op without a lifecycle registry).
  void PublishRefreshAll();

  Database* db_;
  std::vector<ViewDefinition*> views_;
  TableEpochClock* epochs_ = nullptr;
  ViewLifecycleRegistry* lifecycle_ = nullptr;
  int64_t incremental_updates_ = 0;
  int64_t full_recomputations_ = 0;
  MaintenanceCounters counters_;
};

}  // namespace mvopt

#endif  // MVOPT_ENGINE_MAINTENANCE_H_
