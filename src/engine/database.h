// The in-memory database: table storage, a reference SPJG executor, and
// view materialization. The reference executor is deliberately simple
// (incremental nested loops + hash aggregation) — it is the correctness
// oracle the rewrite tests compare against, and the engine that populates
// materialized views.

#ifndef MVOPT_ENGINE_DATABASE_H_
#define MVOPT_ENGINE_DATABASE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/table_data.h"
#include "query/spjg.h"
#include "query/view_def.h"

namespace mvopt {

class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates (empty) storage for a catalog table.
  TableData* AddTable(TableId id);

  TableData* table(TableId id);
  const TableData* table(TableId id) const;

  Catalog* catalog() { return catalog_; }
  const Catalog& catalog() const { return *catalog_; }

  /// Executes an SPJG query and returns its result rows (bag semantics;
  /// row order unspecified).
  std::vector<Row> ExecuteSpjg(const SpjgQuery& query) const;

  /// Executes `query` with table reference `delta_ref` reading from
  /// `delta_rows` instead of its stored table. Used for incremental view
  /// maintenance: V ⊕ Q(T1, ..., ΔTi, ..., Tn).
  std::vector<Row> ExecuteSpjgWithDelta(
      const SpjgQuery& query, int32_t delta_ref,
      const std::vector<Row>& delta_rows) const;

  /// Materializes `view`: executes its definition, registers the result
  /// as a table in the catalog (with statistics), stores the rows, and
  /// builds the clustered and secondary indexes. Returns the new table id
  /// and records it in the view definition.
  TableId MaterializeView(ViewDefinition* view);

  /// Refreshes per-column statistics of `id` from the stored rows.
  void RefreshStatistics(TableId id);

 private:
  std::vector<Row> ExecuteSpjgImpl(const SpjgQuery& query, int32_t delta_ref,
                                   const std::vector<Row>* delta_rows) const;

  Catalog* catalog_;
  std::unordered_map<TableId, std::unique_ptr<TableData>> tables_;
};

/// Applies projection / aggregation semantics to joined rows: evaluates
/// `outputs` (bound expressions, possibly containing aggregate nodes) per
/// group of `group_by` keys. With is_aggregate=false this is a plain
/// projection. A scalar aggregate (is_aggregate, empty group_by) over
/// zero rows yields one row (count 0, other aggregates NULL).
std::vector<Row> ProjectAndAggregate(const std::vector<Row>& input,
                                     const std::vector<ExprPtr>& outputs,
                                     const std::vector<ExprPtr>& group_by,
                                     bool is_aggregate);

}  // namespace mvopt

#endif  // MVOPT_ENGINE_DATABASE_H_
