#include "engine/table_data.h"

#include <algorithm>

namespace mvopt {

bool TableData::RemoveOneMatching(const Row& row) {
  RowEq eq;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (eq(rows_[i], row)) {
      RemoveRowAt(i);
      return true;
    }
  }
  return false;
}

void TableData::RemoveRowAt(size_t i) {
  rows_[i] = std::move(rows_.back());
  rows_.pop_back();
}

void TableData::RebuildIndexes() {
  std::vector<OrderedIndex> old = std::move(indexes_);
  indexes_.clear();
  for (auto& idx : old) {
    BuildIndex(idx.name, idx.key_columns, idx.unique);
  }
}

const OrderedIndex& TableData::BuildIndex(
    const std::string& name, std::vector<ColumnOrdinal> key_columns,
    bool unique) {
  OrderedIndex index;
  index.name = name;
  index.key_columns = std::move(key_columns);
  index.unique = unique;
  index.order.resize(rows_.size());
  for (uint32_t i = 0; i < rows_.size(); ++i) index.order[i] = i;
  std::sort(index.order.begin(), index.order.end(),
            [this, &index](uint32_t a, uint32_t b) {
              for (ColumnOrdinal c : index.key_columns) {
                int cmp = rows_[a][c].Compare(rows_[b][c]);
                if (cmp != 0) return cmp < 0;
              }
              return a < b;
            });
  indexes_.push_back(std::move(index));
  return indexes_.back();
}

const OrderedIndex* TableData::FindIndexOnLeadingColumn(
    ColumnOrdinal column) const {
  for (const auto& idx : indexes_) {
    if (!idx.key_columns.empty() && idx.key_columns[0] == column) {
      return &idx;
    }
  }
  return nullptr;
}

std::pair<size_t, size_t> TableData::IndexRange(
    const OrderedIndex& index, const ValueRange& range) const {
  const ColumnOrdinal lead = index.key_columns[0];
  auto key_less_than_bound = [&](uint32_t pos, const RangeBound& b,
                                 bool or_equal) {
    int c = rows_[pos][lead].Compare(b.value);
    return or_equal ? c <= 0 : c < 0;
  };
  size_t begin = 0;
  size_t end = index.order.size();
  if (!range.lo.is_infinite) {
    // First position with key >= lo (or > lo when exclusive).
    begin = std::partition_point(
                index.order.begin(), index.order.end(),
                [&](uint32_t pos) {
                  return key_less_than_bound(pos, range.lo,
                                             /*or_equal=*/!range.lo.inclusive);
                }) -
            index.order.begin();
  }
  if (!range.hi.is_infinite) {
    end = std::partition_point(
              index.order.begin(), index.order.end(),
              [&](uint32_t pos) {
                return key_less_than_bound(pos, range.hi,
                                           /*or_equal=*/range.hi.inclusive);
              }) -
          index.order.begin();
  }
  if (end < begin) end = begin;
  return {begin, end};
}

}  // namespace mvopt
