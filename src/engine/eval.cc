#include "engine/eval.h"

#include <cassert>

#include "common/str_util.h"

namespace mvopt {

ExprPtr BindToSlots(const ExprPtr& expr, const SlotMap& slots) {
  return expr->RewriteColumns([&slots](ColumnRefId ref) -> ExprPtr {
    auto it = slots.find(ref);
    if (it == slots.end()) return nullptr;
    return Expr::MakeColumn(0, it->second);
  });
}

Value ApplyArith(ArithOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  assert(lhs.is_numeric() && rhs.is_numeric());
  if (op == ArithOp::kDiv) {
    double d = rhs.AsDouble();
    if (d == 0.0) return Value::Null();
    return Value::Double(lhs.AsDouble() / d);
  }
  const bool integral = lhs.type() != ValueType::kDouble &&
                        rhs.type() != ValueType::kDouble;
  if (integral) {
    int64_t a = lhs.int64();
    int64_t b = rhs.int64();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        break;  // handled above
    }
  }
  double a = lhs.AsDouble();
  double b = rhs.AsDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      break;
  }
  return Value::Null();
}

Value ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  int c = lhs.Compare(rhs);
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Int64(result ? 1 : 0);
}

Value EvalScalar(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      const ColumnRefId ref = expr.column_ref();
      assert(ref.table_ref == 0 && "expression must be bound to slots");
      assert(ref.column >= 0 && static_cast<size_t>(ref.column) < row.size());
      return row[ref.column];
    }
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kArithmetic:
      return ApplyArith(expr.arith_op(), EvalScalar(*expr.child(0), row),
                        EvalScalar(*expr.child(1), row));
    case ExprKind::kComparison:
      return ApplyCompare(expr.compare_op(), EvalScalar(*expr.child(0), row),
                          EvalScalar(*expr.child(1), row));
    case ExprKind::kAnd: {
      // SQL AND: false dominates, then null, then true.
      bool saw_null = false;
      for (const auto& c : expr.children()) {
        Value v = EvalScalar(*c, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.int64() == 0) {
          return Value::Int64(0);
        }
      }
      return saw_null ? Value::Null() : Value::Int64(1);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const auto& c : expr.children()) {
        Value v = EvalScalar(*c, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (v.int64() != 0) {
          return Value::Int64(1);
        }
      }
      return saw_null ? Value::Null() : Value::Int64(0);
    }
    case ExprKind::kNot: {
      Value v = EvalScalar(*expr.child(0), row);
      if (v.is_null()) return Value::Null();
      return Value::Int64(v.int64() == 0 ? 1 : 0);
    }
    case ExprKind::kLike: {
      Value v = EvalScalar(*expr.child(0), row);
      if (v.is_null()) return Value::Null();
      assert(v.type() == ValueType::kString);
      return Value::Int64(SqlLike(v.str(), expr.like_pattern()) ? 1 : 0);
    }
    case ExprKind::kIsNotNull: {
      Value v = EvalScalar(*expr.child(0), row);
      return Value::Int64(v.is_null() ? 0 : 1);
    }
    case ExprKind::kAggregate:
      assert(false && "aggregates must be evaluated by the aggregator");
      return Value::Null();
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& expr, const Row& row) {
  Value v = EvalScalar(expr, row);
  return !v.is_null() && v.int64() != 0;
}

}  // namespace mvopt
