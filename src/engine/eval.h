// Scalar expression evaluation over rows, with SQL three-valued logic for
// predicates (NULL comparisons are unknown; filters treat unknown as
// false). Expressions are evaluated against a single flat row; column
// references must have been *bound* first: table_ref 0 and column = slot
// index into the row (see BindToSlots).

#ifndef MVOPT_ENGINE_EVAL_H_
#define MVOPT_ENGINE_EVAL_H_

#include <unordered_map>

#include "engine/row.h"
#include "expr/expr.h"

namespace mvopt {

/// Maps original column references to flat row slots.
using SlotMap = std::unordered_map<ColumnRefId, int, ColumnRefIdHash>;

/// Rewrites `expr` so every column reference becomes {0, slot}. Returns
/// nullptr if a reference has no slot.
ExprPtr BindToSlots(const ExprPtr& expr, const SlotMap& slots);

/// Evaluates a bound, aggregate-free expression. Aggregate nodes assert.
Value EvalScalar(const Expr& expr, const Row& row);

/// Evaluates a bound predicate with SQL semantics: true only if the value
/// is non-null and non-zero.
bool EvalPredicate(const Expr& expr, const Row& row);

/// Arithmetic on values: NULL-propagating, int64 preserved when both
/// sides are integer (except division, always double). Division by zero
/// yields NULL.
Value ApplyArith(ArithOp op, const Value& lhs, const Value& rhs);

/// Three-valued comparison: NULL operand -> NULL result, else 0/1.
Value ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs);

}  // namespace mvopt

#endif  // MVOPT_ENGINE_EVAL_H_
