#include "engine/database.h"

#include <algorithm>
#include <cassert>

#include "engine/eval.h"
#include "expr/type_infer.h"

namespace mvopt {

namespace {

// Collects the distinct aggregate subexpressions of `expr` (structural
// equality) into `out`.
void CollectAggregates(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kAggregate) {
    for (const auto& existing : *out) {
      if (existing->Equals(*expr)) return;
    }
    out->push_back(expr);
    return;
  }
  for (const auto& c : expr->children()) CollectAggregates(c, out);
}

// Per-aggregate accumulator.
struct AggState {
  int64_t count = 0;       // count(*) / avg denominator (non-null args)
  Value sum;               // running sum (NULL until first non-null)
  Value min;
  Value max;

  void Accumulate(AggKind kind, const Value& arg) {
    switch (kind) {
      case AggKind::kCountStar:
        ++count;
        return;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (arg.is_null()) return;
        ++count;
        sum = sum.is_null() ? arg : ApplyArith(ArithOp::kAdd, sum, arg);
        return;
      case AggKind::kMin:
        if (arg.is_null()) return;
        if (min.is_null() || arg < min) min = arg;
        return;
      case AggKind::kMax:
        if (arg.is_null()) return;
        if (max.is_null() || arg > max) max = arg;
        return;
    }
  }

  Value Result(AggKind kind) const {
    switch (kind) {
      case AggKind::kCountStar:
        return Value::Int64(count);
      case AggKind::kSum:
        return sum;
      case AggKind::kAvg:
        if (count == 0 || sum.is_null()) return Value::Null();
        return Value::Double(sum.AsDouble() / static_cast<double>(count));
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
    }
    return Value::Null();
  }
};

// Evaluates `expr` over `row`, substituting computed aggregate values.
Value EvalWithAggregates(const Expr& expr,
                         const std::vector<ExprPtr>& agg_exprs,
                         const std::vector<Value>& agg_values,
                         const Row& row) {
  if (expr.kind() == ExprKind::kAggregate) {
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      if (agg_exprs[i]->Equals(expr)) return agg_values[i];
    }
    assert(false && "aggregate not collected");
    return Value::Null();
  }
  switch (expr.kind()) {
    case ExprKind::kArithmetic:
      return ApplyArith(
          expr.arith_op(),
          EvalWithAggregates(*expr.child(0), agg_exprs, agg_values, row),
          EvalWithAggregates(*expr.child(1), agg_exprs, agg_values, row));
    case ExprKind::kComparison:
      return ApplyCompare(
          expr.compare_op(),
          EvalWithAggregates(*expr.child(0), agg_exprs, agg_values, row),
          EvalWithAggregates(*expr.child(1), agg_exprs, agg_values, row));
    default:
      return EvalScalar(expr, row);
  }
}

}  // namespace

std::vector<Row> ProjectAndAggregate(const std::vector<Row>& input,
                                     const std::vector<ExprPtr>& outputs,
                                     const std::vector<ExprPtr>& group_by,
                                     bool is_aggregate) {
  std::vector<Row> result;
  if (!is_aggregate) {
    result.reserve(input.size());
    for (const Row& row : input) {
      Row out;
      out.reserve(outputs.size());
      for (const auto& e : outputs) out.push_back(EvalScalar(*e, row));
      result.push_back(std::move(out));
    }
    return result;
  }

  std::vector<ExprPtr> agg_exprs;
  for (const auto& e : outputs) CollectAggregates(e, &agg_exprs);

  struct Group {
    Row representative;
    std::vector<AggState> states;
  };
  std::unordered_map<Row, Group, RowHash, RowEq> groups;
  for (const Row& row : input) {
    Row key;
    key.reserve(group_by.size());
    for (const auto& g : group_by) key.push_back(EvalScalar(*g, row));
    auto [it, inserted] = groups.emplace(std::move(key), Group{});
    if (inserted) {
      it->second.representative = row;
      it->second.states.resize(agg_exprs.size());
    }
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      const Expr& agg = *agg_exprs[i];
      Value arg;
      if (agg.agg_kind() != AggKind::kCountStar) {
        arg = EvalScalar(*agg.child(0), row);
      }
      it->second.states[i].Accumulate(agg.agg_kind(), arg);
    }
  }
  // A scalar aggregate over the empty input still produces one row.
  if (groups.empty() && group_by.empty()) {
    groups.emplace(Row{}, Group{Row{}, std::vector<AggState>(
                                           agg_exprs.size())});
  }
  for (const auto& [key, group] : groups) {
    (void)key;
    std::vector<Value> agg_values;
    agg_values.reserve(agg_exprs.size());
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      agg_values.push_back(group.states[i].Result(agg_exprs[i]->agg_kind()));
    }
    Row out;
    out.reserve(outputs.size());
    for (const auto& e : outputs) {
      out.push_back(
          EvalWithAggregates(*e, agg_exprs, agg_values,
                             group.representative));
    }
    result.push_back(std::move(out));
  }
  return result;
}

TableData* Database::AddTable(TableId id) {
  auto data =
      std::make_unique<TableData>(id, catalog_->table(id).num_columns());
  TableData* ptr = data.get();
  tables_[id] = std::move(data);
  return ptr;
}

TableData* Database::table(TableId id) {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableData* Database::table(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<Row> Database::ExecuteSpjg(const SpjgQuery& query) const {
  return ExecuteSpjgImpl(query, -1, nullptr);
}

std::vector<Row> Database::ExecuteSpjgWithDelta(
    const SpjgQuery& query, int32_t delta_ref,
    const std::vector<Row>& delta_rows) const {
  return ExecuteSpjgImpl(query, delta_ref, &delta_rows);
}

std::vector<Row> Database::ExecuteSpjgImpl(
    const SpjgQuery& query, int32_t delta_ref,
    const std::vector<Row>* delta_rows) const {
  const int n = query.num_tables();
  // Flat slot layout: table ref t occupies [offset[t], offset[t]+width).
  std::vector<int> offset(n + 1, 0);
  SlotMap slots;
  for (int t = 0; t < n; ++t) {
    const TableDef& def = catalog_->table(query.tables[t].table);
    offset[t + 1] = offset[t] + def.num_columns();
    for (int c = 0; c < def.num_columns(); ++c) {
      slots[ColumnRefId{t, static_cast<ColumnOrdinal>(c)}] = offset[t] + c;
    }
  }

  // Pick a join order greedily: always extend the prefix with a table
  // that is connected to it by some conjunct (preferring the smallest),
  // so the nested-loop evaluation below avoids cross products whenever
  // the query graph allows it.
  std::vector<uint32_t> conjunct_masks;
  for (const auto& c : query.conjuncts) {
    std::vector<ColumnRefId> cols;
    c->CollectColumnRefs(&cols);
    uint32_t m = 0;
    for (ColumnRefId col : cols) m |= 1u << col.table_ref;
    conjunct_masks.push_back(m);
  }
  std::vector<int> order;
  {
    std::vector<bool> used(n, false);
    for (int step = 0; step < n; ++step) {
      uint32_t chosen_mask = 0;
      for (int t : order) chosen_mask |= 1u << t;
      int best = -1;
      bool best_connected = false;
      int64_t best_rows = 0;
      for (int t = 0; t < n; ++t) {
        if (used[t]) continue;
        bool connected = false;
        for (uint32_t m : conjunct_masks) {
          if ((m & (1u << t)) && (m & chosen_mask)) connected = true;
        }
        int64_t rows = catalog_->table(query.tables[t].table).row_count();
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected && rows < best_rows)) {
          best = t;
          best_connected = connected;
          best_rows = rows;
        }
      }
      used[best] = true;
      order.push_back(best);
    }
  }

  // Bind conjuncts and schedule each at the deepest position (in the
  // chosen order) that covers all its tables.
  std::vector<int> position(n, 0);
  for (int i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<std::vector<ExprPtr>> conjuncts_at(n);
  for (const auto& c : query.conjuncts) {
    std::vector<ColumnRefId> cols;
    c->CollectColumnRefs(&cols);
    int depth = 0;
    for (ColumnRefId col : cols) {
      depth = std::max(depth, position[col.table_ref]);
    }
    ExprPtr bound = BindToSlots(c, slots);
    assert(bound != nullptr);
    conjuncts_at[depth].push_back(std::move(bound));
  }

  std::vector<Row> joined;
  Row current(offset[n]);
  // Incremental nested-loop join with early predicate application.
  std::function<void(int)> recurse = [&](int i) {
    if (i == n) {
      joined.push_back(current);
      return;
    }
    const int t = order[i];
    const std::vector<Row>* rows = delta_rows;
    if (t != delta_ref) {
      const TableData* data = table(query.tables[t].table);
      assert(data != nullptr && "table has no storage");
      rows = &data->rows();
    }
    for (const Row& row : *rows) {
      std::copy(row.begin(), row.end(), current.begin() + offset[t]);
      bool pass = true;
      for (const auto& pred : conjuncts_at[i]) {
        if (!EvalPredicate(*pred, current)) {
          pass = false;
          break;
        }
      }
      if (pass) recurse(i + 1);
    }
  };
  recurse(0);

  std::vector<ExprPtr> bound_outputs;
  for (const auto& o : query.outputs) {
    ExprPtr bound = BindToSlots(o.expr, slots);
    assert(bound != nullptr);
    bound_outputs.push_back(std::move(bound));
  }
  std::vector<ExprPtr> bound_group_by;
  for (const auto& g : query.group_by) {
    ExprPtr bound = BindToSlots(g, slots);
    assert(bound != nullptr);
    bound_group_by.push_back(std::move(bound));
  }
  return ProjectAndAggregate(joined, bound_outputs, bound_group_by,
                             query.is_aggregate);
}

TableId Database::MaterializeView(ViewDefinition* view) {
  std::vector<Row> rows = ExecuteSpjg(view->query());
  const SpjgQuery& q = view->query();

  // Register the view result as a table (SQL Server stores indexed views
  // as clustered indexes; secondary indexes behave as for base tables).
  TableDef* t = catalog_->CreateTable(view->name());
  auto column_type = [&](ColumnRefId ref) {
    return catalog_->table(q.tables[ref.table_ref].table)
        .column(ref.column)
        .type;
  };
  for (const auto& o : q.outputs) {
    t->AddColumn(o.name, InferType(*o.expr, column_type), false);
  }
  t->set_row_count(static_cast<int64_t>(rows.size()));

  TableData* data = AddTable(t->id());
  data->Reserve(rows.size());
  for (auto& r : rows) data->AppendRow(std::move(r));

  if (view->has_clustered_index()) {
    const IndexDef& ci = view->clustered_index();
    data->BuildIndex(ci.name, std::vector<ColumnOrdinal>(
                                  ci.key_columns.begin(),
                                  ci.key_columns.end()),
                     ci.unique);
    if (ci.unique) {
      t->AddUniqueKey(std::vector<ColumnOrdinal>(ci.key_columns.begin(),
                                                 ci.key_columns.end()));
    }
  }
  for (const IndexDef& si : view->secondary_indexes()) {
    data->BuildIndex(si.name,
                     std::vector<ColumnOrdinal>(si.key_columns.begin(),
                                                si.key_columns.end()),
                     si.unique);
  }
  RefreshStatistics(t->id());
  view->set_materialized_table(t->id());
  return t->id();
}

void Database::RefreshStatistics(TableId id) {
  TableDef& def = catalog_->mutable_table(id);
  const TableData* data = table(id);
  if (data == nullptr) return;
  def.set_row_count(data->num_rows());
  for (int c = 0; c < def.num_columns(); ++c) {
    ColumnStats& stats = def.mutable_column(c).stats;
    stats.min = Value::Null();
    stats.max = Value::Null();
    std::unordered_map<Value, int, ValueHash> distinct;
    for (const Row& row : data->rows()) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      if (stats.min.is_null() || v < stats.min) stats.min = v;
      if (stats.max.is_null() || v > stats.max) stats.max = v;
      if (distinct.size() < 100000) distinct[v] = 1;
    }
    stats.distinct = static_cast<int64_t>(distinct.size());
  }
}

}  // namespace mvopt
