// In-memory table storage with ordered indexes. Materialized views are
// stored exactly like base tables (SQL Server's "indexed views" are
// clustered indexes over the view result; see §2).

#ifndef MVOPT_ENGINE_TABLE_DATA_H_
#define MVOPT_ENGINE_TABLE_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/row.h"
#include "rewrite/range.h"

namespace mvopt {

/// An ordered index: row positions sorted by the key columns.
struct OrderedIndex {
  std::string name;
  std::vector<ColumnOrdinal> key_columns;
  bool unique = false;
  std::vector<uint32_t> order;  ///< row positions in key order
};

class TableData {
 public:
  explicit TableData(TableId table, int num_columns)
      : table_(table), num_columns_(num_columns) {}

  TableId table() const { return table_; }
  int num_columns() const { return num_columns_; }

  void AppendRow(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  const std::vector<Row>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  Row* mutable_row(size_t i) { return &rows_[i]; }

  /// Removes one row equal to `row` (NULLs compare equal). Returns false
  /// if no matching row exists. Indexes become stale; call
  /// RebuildIndexes() after a batch of mutations.
  bool RemoveOneMatching(const Row& row);

  /// Swap-erases the row at `i` (indexes become stale).
  void RemoveRowAt(size_t i);

  void Clear() { rows_.clear(); }

  /// Order-independent 64-bit checksum of the stored rows (commutative
  /// sum of per-row hashes), so logically-equal contents reached through
  /// different maintenance orders agree. Backs the view-lifecycle
  /// circuit breaker.
  uint64_t ContentChecksum() const {
    uint64_t sum = 0;
    for (const Row& row : rows_) {
      sum += static_cast<uint64_t>(RowHash()(row));
    }
    return sum;
  }

  /// Rebuilds every index from the current rows.
  void RebuildIndexes();

  /// Builds and stores an ordered index over `key_columns`.
  const OrderedIndex& BuildIndex(const std::string& name,
                                 std::vector<ColumnOrdinal> key_columns,
                                 bool unique);

  const std::vector<OrderedIndex>& indexes() const { return indexes_; }

  /// First index whose leading key column is `column`, or nullptr.
  const OrderedIndex* FindIndexOnLeadingColumn(ColumnOrdinal column) const;

  /// Positions [begin, end) within `index.order` whose leading key value
  /// lies in `range`.
  std::pair<size_t, size_t> IndexRange(const OrderedIndex& index,
                                       const ValueRange& range) const;

 private:
  TableId table_;
  int num_columns_;
  std::vector<Row> rows_;
  std::vector<OrderedIndex> indexes_;
};

}  // namespace mvopt

#endif  // MVOPT_ENGINE_TABLE_DATA_H_
