#include "engine/maintenance.h"

#include <cassert>
#include <unordered_map>

#include "engine/eval.h"

namespace mvopt {

namespace {

// Output-column roles of an aggregation view.
struct AggLayout {
  std::vector<int> grouping;                    // ordinals of group-by cols
  int count = -1;                               // count(*) ordinal
  std::vector<std::pair<int, AggKind>> aggs;    // sum/min/max ordinals
  bool has_min_max = false;
};

AggLayout LayoutOf(const ViewDefinition& view) {
  AggLayout layout;
  const SpjgQuery& q = view.query();
  for (size_t i = 0; i < q.outputs.size(); ++i) {
    const Expr& e = *q.outputs[i].expr;
    if (e.kind() == ExprKind::kAggregate) {
      switch (e.agg_kind()) {
        case AggKind::kCountStar:
          layout.count = static_cast<int>(i);
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          layout.has_min_max = true;
          [[fallthrough]];
        case AggKind::kSum:
          layout.aggs.emplace_back(static_cast<int>(i), e.agg_kind());
          break;
        case AggKind::kAvg:
          assert(false && "avg is not allowed in materialized views");
          break;
      }
    } else {
      layout.grouping.push_back(static_cast<int>(i));
    }
  }
  assert(layout.count >= 0 && "validated aggregation views carry count(*)");
  return layout;
}

// Merges a sum-like value: NULL-aware addition/subtraction.
Value MergeSum(const Value& current, const Value& delta, bool subtract) {
  if (delta.is_null()) return current;
  if (current.is_null()) {
    // No non-null contribution yet; subtracting from NULL cannot happen
    // for deltas derived from the view's own content.
    return subtract ? current : delta;
  }
  return ApplyArith(subtract ? ArithOp::kSub : ArithOp::kAdd, current,
                    delta);
}

}  // namespace

void ViewMaintainer::RegisterView(ViewDefinition* view) {
  assert(view->materialized_table() != kInvalidTableId &&
         "materialize the view before registering it for maintenance");
  MutexLock lock(mu_);
  views_.push_back(view);
}

void ViewMaintainer::Insert(TableId table, std::vector<Row> rows) {
  MutexLock lock(mu_);
  // Incremental deltas are computed against the pre-change state (the
  // delta join substitutes the new rows for the changed table, so the
  // other tables' current contents are exactly what it needs). Views that
  // require full recomputation are refreshed after the base change.
  std::vector<ViewDefinition*> recompute;
  for (ViewDefinition* view : views_) {
    if (!Maintain(view, table, rows, DeltaKind::kInsert)) {
      recompute.push_back(view);
    }
  }
  TableData* data = db_->table(table);
  assert(data != nullptr);
  for (auto& r : rows) data->AppendRow(std::move(r));
  data->RebuildIndexes();
  if (epochs_ != nullptr) epochs_->Advance(table);
  for (ViewDefinition* view : recompute) Recompute(view);
  PublishRefreshAll();
}

void ViewMaintainer::Delete(TableId table, const std::vector<Row>& rows) {
  MutexLock lock(mu_);
  std::vector<ViewDefinition*> recompute;
  for (ViewDefinition* view : views_) {
    if (!Maintain(view, table, rows, DeltaKind::kDelete)) {
      recompute.push_back(view);
    }
  }
  TableData* data = db_->table(table);
  assert(data != nullptr);
  for (const Row& r : rows) {
    bool removed = data->RemoveOneMatching(r);
    assert(removed && "deleted row not found");
    (void)removed;
  }
  data->RebuildIndexes();
  if (epochs_ != nullptr) epochs_->Advance(table);
  for (ViewDefinition* view : recompute) Recompute(view);
  PublishRefreshAll();
}

void ViewMaintainer::PublishRefreshAll() {
  if (lifecycle_ == nullptr) return;
  const uint64_t now = epochs_ != nullptr ? epochs_->now() : 0;
  for (ViewDefinition* view : views_) {
    const ViewId id = view->id();
    lifecycle_->EnsureSize(static_cast<size_t>(id) + 1);
    const TableData* data = db_->table(view->materialized_table());
    if (data != nullptr) {
      lifecycle_->SetChecksum(id, data->ContentChecksum());
    }
    lifecycle_->MarkFresh(id, now);
    if (counters_.refreshes != nullptr) counters_.refreshes->Increment();
  }
}

bool ViewMaintainer::Validate(const ViewDefinition& view) const {
  MutexLock lock(mu_);
  const TableData* data = db_->table(view.materialized_table());
  if (data == nullptr) return false;
  std::vector<Row> expected = db_->ExecuteSpjg(view.query());
  uint64_t sum = 0;
  for (const Row& r : expected) sum += static_cast<uint64_t>(RowHash()(r));
  return sum == data->ContentChecksum();
}

void ViewMaintainer::Repair(ViewDefinition* view) {
  MutexLock lock(mu_);
  Recompute(view);
  if (lifecycle_ == nullptr) return;
  const ViewId id = view->id();
  lifecycle_->EnsureSize(static_cast<size_t>(id) + 1);
  const TableData* data = db_->table(view->materialized_table());
  if (data != nullptr) lifecycle_->SetChecksum(id, data->ContentChecksum());
  lifecycle_->MarkFresh(id, epochs_ != nullptr ? epochs_->now() : 0);
}

bool ViewMaintainer::Maintain(ViewDefinition* view, TableId table,
                              const std::vector<Row>& delta_rows,
                              DeltaKind kind) {
  const SpjgQuery& q = view->query();
  // Which view table reference changed?
  int32_t ref = -1;
  int occurrences = 0;
  for (int t = 0; t < q.num_tables(); ++t) {
    if (q.tables[t].table == table) {
      ref = t;
      ++occurrences;
    }
  }
  if (occurrences == 0) return true;  // view unaffected
  if (occurrences > 1) {
    // Self-join on the changed table: ΔV has cross terms; recompute.
    return false;
  }
  if (kind == DeltaKind::kDelete && q.is_aggregate &&
      LayoutOf(*view).has_min_max) {
    // Deleting the current MIN/MAX of a group cannot be fixed from the
    // aggregates alone.
    return false;
  }

  std::vector<Row> delta_out = db_->ExecuteSpjgWithDelta(q, ref, delta_rows);
  if (q.is_aggregate) {
    MaintainAggregate(view, delta_out, kind);
  } else {
    MaintainSpj(view, delta_out, kind);
  }
  ++incremental_updates_;
  if (counters_.incremental_updates != nullptr) {
    counters_.incremental_updates->Increment();
  }
  return true;
}

void ViewMaintainer::MaintainSpj(ViewDefinition* view,
                                 const std::vector<Row>& delta_out,
                                 DeltaKind kind) {
  TableData* data = db_->table(view->materialized_table());
  assert(data != nullptr);
  if (kind == DeltaKind::kInsert) {
    for (const Row& r : delta_out) data->AppendRow(r);
  } else {
    for (const Row& r : delta_out) {
      bool removed = data->RemoveOneMatching(r);
      assert(removed && "view delta row missing from materialized data");
      (void)removed;
    }
  }
  data->RebuildIndexes();
}

void ViewMaintainer::MaintainAggregate(ViewDefinition* view,
                                       const std::vector<Row>& delta_out,
                                       DeltaKind kind) {
  TableData* data = db_->table(view->materialized_table());
  assert(data != nullptr);
  const AggLayout layout = LayoutOf(*view);
  const bool subtract = kind == DeltaKind::kDelete;

  // Group lookup by the grouping-column values.
  std::unordered_map<Row, size_t, RowHash, RowEq> by_key;
  auto key_of = [&layout](const Row& row) {
    Row key;
    key.reserve(layout.grouping.size());
    for (int g : layout.grouping) key.push_back(row[g]);
    return key;
  };
  for (size_t i = 0; i < data->rows().size(); ++i) {
    by_key[key_of(data->rows()[i])] = i;
  }

  std::vector<size_t> dead_groups;
  for (const Row& d : delta_out) {
    Row key = key_of(d);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      // New group: the delta row is itself a complete view row. A delete
      // can never create a group.
      assert(!subtract && "deleting from a non-existent group");
      data->AppendRow(d);
      by_key[std::move(key)] = data->rows().size() - 1;
      continue;
    }
    Row& row = *data->mutable_row(it->second);
    // count_big(*) merges additively; "when the count becomes zero, the
    // group is empty and the row must be deleted" (§2).
    int64_t new_count =
        row[layout.count].int64() +
        (subtract ? -d[layout.count].int64() : d[layout.count].int64());
    row[layout.count] = Value::Int64(new_count);
    for (const auto& [ordinal, agg] : layout.aggs) {
      switch (agg) {
        case AggKind::kSum:
          row[ordinal] = MergeSum(row[ordinal], d[ordinal], subtract);
          break;
        case AggKind::kMin:
          if (!d[ordinal].is_null() &&
              (row[ordinal].is_null() || d[ordinal] < row[ordinal])) {
            row[ordinal] = d[ordinal];
          }
          break;
        case AggKind::kMax:
          if (!d[ordinal].is_null() &&
              (row[ordinal].is_null() || d[ordinal] > row[ordinal])) {
            row[ordinal] = d[ordinal];
          }
          break;
        default:
          break;
      }
    }
    if (new_count == 0) dead_groups.push_back(it->second);
  }
  // Remove emptied groups (descending positions keep indices valid under
  // swap-erase: re-resolve via keys instead).
  if (!dead_groups.empty()) {
    std::vector<Row> dead_keys;
    for (size_t i : dead_groups) dead_keys.push_back(key_of(data->rows()[i]));
    for (const Row& key : dead_keys) {
      for (size_t i = 0; i < data->rows().size(); ++i) {
        if (RowEq()(key_of(data->rows()[i]), key)) {
          data->RemoveRowAt(i);
          break;
        }
      }
    }
  }
  data->RebuildIndexes();
}

void ViewMaintainer::Recompute(ViewDefinition* view) {
  TableData* data = db_->table(view->materialized_table());
  assert(data != nullptr);
  std::vector<Row> rows = db_->ExecuteSpjg(view->query());
  data->Clear();
  for (auto& r : rows) data->AppendRow(std::move(r));
  data->RebuildIndexes();
  ++full_recomputations_;
  if (counters_.full_recomputations != nullptr) {
    counters_.full_recomputations->Increment();
  }
}

}  // namespace mvopt
