// Structural invariant audits for the matching index and the optimizer
// memo. Where the RewriteChecker proves individual rewrites sound, the
// InvariantAuditor proves the *machinery* sound: it re-derives, by brute
// force, the properties the fast structures rely on —
//
//   - LatticeIndex: the stored cover edges form exactly the Hasse diagram
//     of the key sets (minimal supersets / maximal subsets), keys are
//     sorted duplicate-free, and the pruned subset/superset searches
//     return exactly what a linear scan returns.
//   - FilterTree: every level node's lattice passes the audit, interior
//     live nodes have materialized children, live leaf nodes carry views
//     (and dead ones carry none), each view id appears on exactly one
//     path of the tree matching its description's aggregation class, and
//     the leaf population adds up to num_views().
//   - Optimizer memo (via an exported snapshot): group keys are unique,
//     masks are non-empty subsets of the query's table set, GET
//     expressions are single-table, JOIN children partition the group's
//     mask, AGGREGATE expressions wrap the matching SPJ mask, and
//     aggregation-spec ids stay within the declared ranges.
//
// Audits never mutate anything and report every violation found, not
// just the first.

#ifndef MVOPT_VERIFY_INVARIANT_AUDITOR_H_
#define MVOPT_VERIFY_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/filter_tree.h"
#include "index/lattice.h"

namespace mvopt {

struct AuditReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// "ok" or the violations joined with "; ".
  std::string Summary() const;
};

/// Snapshot of one memo expression, decoupled from optimizer internals so
/// the auditor can also be fed hand-built (adversarial) memos in tests.
struct MemoExprRecord {
  enum class Kind { kGet, kJoin, kAggregate, kViewGet };
  Kind kind = Kind::kGet;
  int32_t table_ref = -1;  ///< kGet: table reference slot
  int child0 = -1;         ///< kJoin / kAggregate: input group id
  int child1 = -1;         ///< kJoin: second input group id
  int32_t view_id = -1;    ///< kViewGet: substituted view
};

/// Snapshot of one memo group.
struct MemoGroupRecord {
  uint32_t mask = 0;  ///< table-reference set
  int agg_spec = -1;  ///< -1 = SPJ group
  std::vector<MemoExprRecord> exprs;
};

class InvariantAuditor {
 public:
  AuditReport AuditLattice(const LatticeIndex& index) const;

  AuditReport AuditFilterTree(const FilterTree& tree) const;

  /// `full_mask` is the query's complete table-reference set,
  /// `num_agg_specs` the number of aggregation specs the optimizer
  /// created, and `joined_agg_key_base` the offset it uses to key
  /// aggregation groups ranging over joined (multi-table) inputs.
  AuditReport AuditMemo(const std::vector<MemoGroupRecord>& groups,
                        uint32_t full_mask, int num_agg_specs,
                        int joined_agg_key_base) const;

 private:
  void CheckLattice(const LatticeIndex& index, const std::string& where,
                    AuditReport* report) const;
  void CheckTreeNode(const FilterTree& tree, const FilterTree::Node& node,
                     size_t depth, size_t num_levels, bool agg_tree,
                     const std::string& where, std::vector<ViewId>* seen,
                     AuditReport* report) const;
};

}  // namespace mvopt

#endif  // MVOPT_VERIFY_INVARIANT_AUDITOR_H_
