#include "verify/rewrite_checker.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mvopt {

namespace {

std::string RefName(ColumnRefId c) {
  return "t" + std::to_string(c.table_ref) + ".c" + std::to_string(c.column);
}

// ---------------------------------------------------------------------------
// Independent union-find over column references. Columns are registered
// lazily; two unregistered references are equivalent only when identical.
// ---------------------------------------------------------------------------
class ProofClasses {
 public:
  void Merge(ColumnRefId a, ColumnRefId b) {
    int ra = Find(Ensure(a));
    int rb = Find(Ensure(b));
    if (ra != rb) parent_[rb] = ra;
  }

  int Ensure(ColumnRefId c) {
    auto it = idx_.find(c);
    if (it != idx_.end()) return it->second;
    int id = static_cast<int>(cols_.size());
    idx_.emplace(c, id);
    cols_.push_back(c);
    parent_.push_back(id);
    return id;
  }

  bool Same(ColumnRefId a, ColumnRefId b) const {
    if (a == b) return true;
    auto ia = idx_.find(a);
    auto ib = idx_.find(b);
    if (ia == idx_.end() || ib == idx_.end()) return false;
    return Find(ia->second) == Find(ib->second);
  }

  /// Root id of a registered column, or -1.
  int RootOf(ColumnRefId c) const {
    auto it = idx_.find(c);
    return it == idx_.end() ? -1 : Find(it->second);
  }

  /// Groups of two or more equivalent columns.
  std::vector<std::vector<ColumnRefId>> NontrivialGroups() const {
    std::map<int, std::vector<ColumnRefId>> by_root;
    for (size_t i = 0; i < cols_.size(); ++i) {
      by_root[Find(static_cast<int>(i))].push_back(cols_[i]);
    }
    std::vector<std::vector<ColumnRefId>> out;
    for (auto& [root, members] : by_root) {
      (void)root;
      if (members.size() >= 2) out.push_back(std::move(members));
    }
    return out;
  }

 private:
  int Find(int x) const {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::unordered_map<ColumnRefId, int, ColumnRefIdHash> idx_;
  std::vector<ColumnRefId> cols_;
  mutable std::vector<int> parent_;
};

/// True when `a` and `b` induce the same equality partition; otherwise
/// `*why` names a witness pair merged on one side only.
bool PartitionsEqual(const ProofClasses& a, const ProofClasses& b,
                     std::string* why) {
  for (const auto& group : a.NontrivialGroups()) {
    for (size_t i = 1; i < group.size(); ++i) {
      if (!b.Same(group[0], group[i])) {
        *why = RefName(group[0]) + " ~ " + RefName(group[i]) +
               " holds on the query side only";
        return false;
      }
    }
  }
  for (const auto& group : b.NontrivialGroups()) {
    for (size_t i = 1; i < group.size(); ++i) {
      if (!a.Same(group[0], group[i])) {
        *why = RefName(group[0]) + " ~ " + RefName(group[i]) +
               " holds on the substitute side only";
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Independent interval arithmetic over Value bounds. An absent bound is
// infinite; at an equal value an exclusive bound is the tighter one.
// ---------------------------------------------------------------------------
struct ProofBound {
  bool present = false;
  bool inclusive = false;
  Value value;
};

bool LowerTighter(const ProofBound& a, const ProofBound& b) {
  if (!a.present) return false;
  if (!b.present) return true;
  int c = a.value.Compare(b.value);
  if (c != 0) return c > 0;
  return !a.inclusive && b.inclusive;
}

bool UpperTighter(const ProofBound& a, const ProofBound& b) {
  if (!a.present) return false;
  if (!b.present) return true;
  int c = a.value.Compare(b.value);
  if (c != 0) return c < 0;
  return !a.inclusive && b.inclusive;
}

bool BoundsIdentical(const ProofBound& a, const ProofBound& b) {
  if (a.present != b.present) return false;
  if (!a.present) return true;
  return a.inclusive == b.inclusive && a.value == b.value;
}

struct ProofInterval {
  ProofBound lo;
  ProofBound hi;

  void Apply(CompareOp op, const Value& v) {
    ProofBound b;
    b.present = true;
    b.value = v;
    switch (op) {
      case CompareOp::kEq:
        b.inclusive = true;
        if (LowerTighter(b, lo)) lo = b;
        if (UpperTighter(b, hi)) hi = b;
        return;
      case CompareOp::kLt:
        b.inclusive = false;
        if (UpperTighter(b, hi)) hi = b;
        return;
      case CompareOp::kLe:
        b.inclusive = true;
        if (UpperTighter(b, hi)) hi = b;
        return;
      case CompareOp::kGt:
        b.inclusive = false;
        if (LowerTighter(b, lo)) lo = b;
        return;
      case CompareOp::kGe:
        b.inclusive = true;
        if (LowerTighter(b, lo)) lo = b;
        return;
      case CompareOp::kNe:
        return;  // never classified as a range
    }
  }

  bool SameAs(const ProofInterval& o) const {
    return BoundsIdentical(lo, o.lo) && BoundsIdentical(hi, o.hi);
  }

  std::string Describe() const {
    std::string out = lo.present
                          ? (lo.inclusive ? "[" : "(") + lo.value.ToString()
                          : "(-inf";
    out += ", ";
    out += hi.present ? hi.value.ToString() + (hi.inclusive ? "]" : ")")
                      : "+inf)";
    return out;
  }
};

// ---------------------------------------------------------------------------
// Independent conjunct classification (same language as expr/classify.cc:
// column=column, column-vs-literal range, everything else residual).
// ---------------------------------------------------------------------------
struct ProofRange {
  ColumnRefId column;
  CompareOp op;
  Value bound;
};

struct ProofPreds {
  std::vector<std::pair<ColumnRefId, ColumnRefId>> equalities;
  std::vector<ProofRange> ranges;
  std::vector<ExprPtr> residuals;
};

ProofPreds ClassifyForProof(const std::vector<ExprPtr>& conjuncts) {
  ProofPreds out;
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kComparison) {
      const Expr& lhs = *c->child(0);
      const Expr& rhs = *c->child(1);
      if (c->compare_op() == CompareOp::kEq &&
          lhs.kind() == ExprKind::kColumnRef &&
          rhs.kind() == ExprKind::kColumnRef) {
        out.equalities.emplace_back(lhs.column_ref(), rhs.column_ref());
        continue;
      }
      if (c->compare_op() != CompareOp::kNe) {
        if (lhs.kind() == ExprKind::kColumnRef &&
            rhs.kind() == ExprKind::kLiteral && !rhs.literal().is_null()) {
          out.ranges.push_back(
              {lhs.column_ref(), c->compare_op(), rhs.literal()});
          continue;
        }
        if (rhs.kind() == ExprKind::kColumnRef &&
            lhs.kind() == ExprKind::kLiteral && !lhs.literal().is_null()) {
          out.ranges.push_back({rhs.column_ref(),
                                FlipCompare(c->compare_op()), lhs.literal()});
          continue;
        }
      }
    }
    out.residuals.push_back(c);
  }
  return out;
}

/// A row with NULL in `col` cannot satisfy `conjunct` (conservative).
bool RejectsNullOn(const Expr& conjunct, ColumnRefId col) {
  switch (conjunct.kind()) {
    case ExprKind::kIsNotNull:
      return conjunct.child(0)->kind() == ExprKind::kColumnRef &&
             conjunct.child(0)->column_ref() == col;
    case ExprKind::kComparison:
    case ExprKind::kLike: {
      std::vector<ColumnRefId> cols;
      conjunct.CollectColumnRefs(&cols);
      return std::find(cols.begin(), cols.end(), col) != cols.end();
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Independent shape matching: textual rendering with columns factored out
// ('$'), columns compared positionally under an equality partition.
// ---------------------------------------------------------------------------
struct ProofShape {
  std::string text;
  std::vector<ColumnRefId> columns;
};

ProofShape ShapeOf(const Expr& e) {
  static const std::function<std::string(ColumnRefId)> kDollar =
      [](ColumnRefId) { return std::string("$"); };
  ProofShape s;
  s.text = e.ToString(&kDollar);
  e.CollectColumnRefs(&s.columns);
  return s;
}

bool ShapeEq(const ProofShape& a, const ProofShape& b,
             const ProofClasses& classes) {
  if (a.text != b.text) return false;
  if (a.columns.size() != b.columns.size()) return false;
  for (size_t i = 0; i < a.columns.size(); ++i) {
    if (!classes.Same(a.columns[i], b.columns[i])) return false;
  }
  return true;
}

bool ShapeCovered(const ProofShape& needle,
                  const std::vector<ProofShape>& haystack,
                  const ProofClasses& classes) {
  for (const auto& h : haystack) {
    if (ShapeEq(needle, h, classes)) return true;
  }
  return false;
}

/// Bidirectional cover of two expression lists under `classes`: the lists
/// denote the same set of values (used for grouping lists).
bool ListsMutuallyCover(const std::vector<ProofShape>& a,
                        const std::vector<ProofShape>& b,
                        const ProofClasses& classes) {
  for (const auto& s : a) {
    if (!ShapeCovered(s, b, classes)) return false;
  }
  for (const auto& s : b) {
    if (!ShapeCovered(s, a, classes)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Table-mapping enumeration (view refs -> query slots, injective, grouped
// by catalog table id).
// ---------------------------------------------------------------------------
struct MappingGroup {
  std::vector<int32_t> query_refs;
  std::vector<int32_t> view_refs;
};

void AssignMappingGroup(const std::vector<MappingGroup>& groups, size_t g,
                        size_t qi, int limit, std::vector<int32_t>* mapping,
                        std::vector<std::vector<int32_t>>* out) {
  if (static_cast<int>(out->size()) >= limit) return;
  if (g == groups.size()) {
    out->push_back(*mapping);
    return;
  }
  const MappingGroup& group = groups[g];
  if (qi == group.query_refs.size()) {
    AssignMappingGroup(groups, g + 1, 0, limit, mapping, out);
    return;
  }
  for (int32_t vref : group.view_refs) {
    if ((*mapping)[vref] != -1) continue;
    (*mapping)[vref] = group.query_refs[qi];
    AssignMappingGroup(groups, g, qi + 1, limit, mapping, out);
    (*mapping)[vref] = -1;
  }
}

/// Empty when some query table has no (or too few) view occurrences.
std::vector<std::vector<int32_t>> EnumerateMappings(const SpjgQuery& query,
                                                    const SpjgQuery& view,
                                                    int limit) {
  std::map<TableId, std::vector<int32_t>> query_refs;
  std::map<TableId, std::vector<int32_t>> view_refs;
  for (int32_t i = 0; i < query.num_tables(); ++i) {
    query_refs[query.tables[i].table].push_back(i);
  }
  for (int32_t i = 0; i < view.num_tables(); ++i) {
    view_refs[view.tables[i].table].push_back(i);
  }
  std::vector<MappingGroup> groups;
  for (const auto& [tid, qrefs] : query_refs) {
    auto it = view_refs.find(tid);
    if (it == view_refs.end() || it->second.size() < qrefs.size()) return {};
    groups.push_back(MappingGroup{qrefs, it->second});
  }
  std::vector<std::vector<int32_t>> out;
  std::vector<int32_t> mapping(view.num_tables(), -1);
  AssignMappingGroup(groups, 0, 0, limit, &mapping, &out);
  return out;
}

/// Keeps the failure that progressed furthest through the proof pipeline
/// (CheckCode values are ordered by pipeline stage).
void KeepFurthestFailure(Verdict* best, Verdict candidate) {
  if (static_cast<int>(candidate.code) > static_cast<int>(best->code)) {
    *best = std::move(candidate);
  }
}

/// Mirrors the contract of ViewDefinition::Validate plus the properties
/// the proof depends on (grouping outputs are grouping expressions; no
/// nested aggregates). Re-derived here so a corrupted in-memory view
/// cannot vouch for itself.
std::optional<std::string> AuditViewContract(const SpjgQuery& vq) {
  if (vq.tables.empty()) return "view has no tables";
  if (vq.outputs.empty()) return "view has no outputs";
  for (const auto& o : vq.outputs) {
    if (o.expr == nullptr) return "view output '" + o.name + "' is null";
  }
  if (!vq.is_aggregate) {
    if (!vq.group_by.empty()) return "SPJ view has grouping expressions";
    for (const auto& o : vq.outputs) {
      if (o.expr->ContainsAggregate()) {
        return "SPJ view output '" + o.name + "' contains an aggregate";
      }
    }
    return std::nullopt;
  }
  for (const auto& g : vq.group_by) {
    if (g == nullptr || g->ContainsAggregate()) {
      return "view grouping expression contains an aggregate";
    }
    bool found = false;
    for (const auto& o : vq.outputs) {
      if (o.expr->Equals(*g)) {
        found = true;
        break;
      }
    }
    if (!found) return "view grouping expression is not an output";
  }
  for (const auto& o : vq.outputs) {
    if (o.expr->kind() == ExprKind::kAggregate) {
      if (o.expr->agg_kind() == AggKind::kAvg) {
        return "view output '" + o.name + "' is an AVG aggregate";
      }
      if (o.expr->num_children() == 1 &&
          o.expr->child(0)->ContainsAggregate()) {
        return "view output '" + o.name + "' nests aggregates";
      }
      continue;
    }
    if (o.expr->ContainsAggregate()) {
      return "view output '" + o.name + "' buries an aggregate";
    }
    bool is_grouping = false;
    for (const auto& g : vq.group_by) {
      if (o.expr->Equals(*g)) {
        is_grouping = true;
        break;
      }
    }
    if (!is_grouping) {
      return "view output '" + o.name +
             "' is neither a grouping expression nor an aggregate";
    }
  }
  return std::nullopt;
}

}  // namespace

RewriteChecker::RewriteChecker(const Catalog* catalog)
    : RewriteChecker(catalog, Options()) {}

RewriteChecker::RewriteChecker(const Catalog* catalog, Options options)
    : catalog_(catalog), options_(options) {}

Verdict RewriteChecker::Check(const SpjgQuery& query,
                              const ViewDefinition& view,
                              const Substitute& sub) const {
  const SpjgQuery& vq = view.query();

  // ---- Structural sanity: arity, names, aggregation flags, reference
  // bounds. Everything past this point may index freely.
  if (sub.view_id != view.id()) {
    return Verdict::Fail(CheckCode::kMalformedSubstitute,
                         "substitute names a different view id");
  }
  if (sub.outputs.size() != query.outputs.size()) {
    return Verdict::Fail(CheckCode::kMalformedSubstitute,
                         "output arity differs from the query");
  }
  for (size_t i = 0; i < sub.outputs.size(); ++i) {
    if (sub.outputs[i].name != query.outputs[i].name) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "output name '" + sub.outputs[i].name +
                               "' does not match '" + query.outputs[i].name +
                               "'");
    }
  }
  if (!query.is_aggregate &&
      (sub.needs_aggregation || !sub.group_by.empty())) {
    return Verdict::Fail(CheckCode::kMalformedSubstitute,
                         "aggregating substitute for an SPJ query");
  }
  if (!sub.needs_aggregation && !sub.group_by.empty()) {
    return Verdict::Fail(CheckCode::kMalformedSubstitute,
                         "group-by present without needs_aggregation");
  }
  for (const auto& bj : sub.backjoins) {
    if (bj.table < 0 || bj.table >= catalog_->num_tables()) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "backjoin names an unknown table");
    }
    if (bj.key_join.empty()) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "backjoin with empty key join");
    }
    const TableDef& t = catalog_->table(bj.table);
    for (const auto& [out, col] : bj.key_join) {
      if (out < 0 || out >= static_cast<int>(vq.outputs.size()) || col < 0 ||
          col >= t.num_columns()) {
        return Verdict::Fail(CheckCode::kMalformedSubstitute,
                             "backjoin key ordinal out of range");
      }
    }
  }
  auto refs_in_bounds = [&](const ExprPtr& e) {
    if (e == nullptr) return false;
    std::vector<ColumnRefId> cols;
    e->CollectColumnRefs(&cols);
    for (ColumnRefId c : cols) {
      if (c.table_ref == 0) {
        if (c.column < 0 ||
            c.column >= static_cast<ColumnOrdinal>(vq.outputs.size())) {
          return false;
        }
      } else if (c.table_ref >= 1 &&
                 c.table_ref <= static_cast<int32_t>(sub.backjoins.size())) {
        const TableDef& t =
            catalog_->table(sub.backjoins[c.table_ref - 1].table);
        if (c.column < 0 || c.column >= t.num_columns()) return false;
      } else {
        return false;
      }
    }
    return true;
  };
  for (const auto& p : sub.predicates) {
    if (!refs_in_bounds(p)) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "predicate references outside the view space");
    }
  }
  for (const auto& o : sub.outputs) {
    if (!refs_in_bounds(o.expr)) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "output references outside the view space");
    }
  }
  for (const auto& g : sub.group_by) {
    if (!refs_in_bounds(g)) {
      return Verdict::Fail(CheckCode::kMalformedSubstitute,
                           "group-by references outside the view space");
    }
  }

  // ---- The view itself must obey the indexable-view contract the proof
  // relies on (§2).
  if (auto bad = AuditViewContract(vq); bad.has_value()) {
    return Verdict::Fail(CheckCode::kViewNotWellFormed, *bad);
  }

  // Grouping collapses duplicates: an aggregation view can never answer a
  // pure SPJ query, whatever the compensation (§3.3 requirement 3).
  if (vq.is_aggregate && !query.is_aggregate) {
    return Verdict::Fail(CheckCode::kAggregateRewriteUnsound,
                         "aggregation view answers a SPJ query");
  }

  auto mappings =
      EnumerateMappings(query, vq, options_.max_table_mappings);
  if (mappings.empty()) {
    return Verdict::Fail(CheckCode::kNoValidTableMapping,
                         "no injective table mapping covers the query");
  }
  Verdict best = Verdict::Fail(CheckCode::kNoValidTableMapping,
                               "all candidate mappings failed");
  for (const auto& mapping : mappings) {
    Verdict v = CheckWithMapping(query, view, sub, mapping);
    if (v.proven) return v;
    KeepFurthestFailure(&best, std::move(v));
  }
  return best;
}

Verdict RewriteChecker::CheckWithMapping(
    const SpjgQuery& query, const ViewDefinition& view, const Substitute& sub,
    const std::vector<int32_t>& view_to_slot) const {
  const SpjgQuery& vq = view.query();
  const int num_query_tables = query.num_tables();

  // ---- Unified table space: query slots first, then the view's extra
  // references on fresh slots.
  std::vector<int32_t> slot_of(vq.num_tables());
  std::vector<TableRef> unified = query.tables;
  std::vector<int32_t> extra_slots;
  for (int32_t v = 0; v < vq.num_tables(); ++v) {
    if (view_to_slot[v] >= 0) {
      slot_of[v] = view_to_slot[v];
    } else {
      slot_of[v] = static_cast<int32_t>(unified.size());
      unified.push_back(vq.tables[v]);
      extra_slots.push_back(slot_of[v]);
    }
  }
  if (unified.size() > 60) {
    return Verdict::Fail(CheckCode::kNoValidTableMapping,
                         "unified table space too large to analyze");
  }

  std::vector<ExprPtr> view_conjuncts;
  view_conjuncts.reserve(vq.conjuncts.size());
  for (const auto& c : vq.conjuncts) {
    view_conjuncts.push_back(c->RemapTableRefs(slot_of));
  }
  std::vector<ExprPtr> view_outputs;
  view_outputs.reserve(vq.outputs.size());
  for (const auto& o : vq.outputs) {
    view_outputs.push_back(o.expr->RemapTableRefs(slot_of));
  }
  std::vector<ExprPtr> view_group_by;
  view_group_by.reserve(vq.group_by.size());
  for (const auto& g : vq.group_by) {
    view_group_by.push_back(g->RemapTableRefs(slot_of));
  }
  std::vector<ExprPtr> check_conjuncts;
  for (size_t t = 0; t < unified.size(); ++t) {
    for (const auto& c : catalog_->table(unified[t].table).check_constraints()) {
      std::vector<int32_t> self = {static_cast<int32_t>(t)};
      check_conjuncts.push_back(c->RemapTableRefs(self));
    }
  }

  ProofPreds view_preds = ClassifyForProof(view_conjuncts);
  ProofPreds query_preds = ClassifyForProof(query.conjuncts);
  ProofPreds check_preds = ClassifyForProof(check_conjuncts);

  // Equalities that hold on the view's rows: the view's own equijoins plus
  // CHECK-constraint equalities (true on every base row).
  ProofClasses view_classes;
  for (const auto& [a, b] : view_preds.equalities) view_classes.Merge(a, b);
  for (const auto& [a, b] : check_preds.equalities) view_classes.Merge(a, b);

  // ---- Extra tables must disappear through cardinality-preserving FK
  // joins, re-derived from the catalog (§3.2). Edge admission: the FK
  // target covers a unique key, every FK column is non-null (or the query
  // provably rejects NULL in it), and each column pair is equated on the
  // view's rows.
  std::vector<std::pair<ColumnRefId, ColumnRefId>> fk_equalities;
  if (!extra_slots.empty()) {
    std::vector<ColumnRefId> null_rejected;
    if (options_.allow_nullable_fk_with_null_rejection) {
      for (const auto& p : query_preds.ranges) {
        null_rejected.push_back(p.column);
      }
      for (const auto& [a, b] : query_preds.equalities) {
        null_rejected.push_back(a);
        null_rejected.push_back(b);
      }
      for (const auto& r : query_preds.residuals) {
        std::vector<ColumnRefId> cols;
        r->CollectColumnRefs(&cols);
        for (ColumnRefId c : cols) {
          if (RejectsNullOn(*r, c)) null_rejected.push_back(c);
        }
      }
    }
    auto is_null_rejected = [&](ColumnRefId c) {
      return std::find(null_rejected.begin(), null_rejected.end(), c) !=
             null_rejected.end();
    };

    struct ProofEdge {
      int from;
      int to;
      const ForeignKeyDef* fk;
    };
    std::vector<ProofEdge> edges;
    const int n = static_cast<int>(unified.size());
    for (int i = 0; i < n; ++i) {
      const TableDef& ti = catalog_->table(unified[i].table);
      for (const ForeignKeyDef& fk : ti.foreign_keys()) {
        for (int j = 0; j < n; ++j) {
          if (i == j || fk.referenced_table != unified[j].table) continue;
          const TableDef& tj = catalog_->table(unified[j].table);
          if (!tj.CoversUniqueKey(fk.key_columns)) continue;
          bool ok = true;
          for (size_t k = 0; k < fk.fk_columns.size(); ++k) {
            ColumnRefId fcol{i, fk.fk_columns[k]};
            ColumnRefId kcol{j, fk.key_columns[k]};
            if (!ti.column(fk.fk_columns[k]).not_null &&
                !is_null_rejected(fcol)) {
              ok = false;
              break;
            }
            if (!view_classes.Same(fcol, kcol)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          bool dup = false;
          for (const auto& e : edges) {
            if (e.from == i && e.to == j) {
              dup = true;
              break;
            }
          }
          if (!dup) edges.push_back(ProofEdge{i, j, &fk});
        }
      }
    }

    // Repeatedly remove any extra slot with no outgoing and exactly one
    // incoming edge among remaining slots; the surviving in-edge's column
    // equalities then hold on the (extended) query rows.
    std::vector<bool> alive(n, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (int v = num_query_tables; v < n; ++v) {
        if (!alive[v]) continue;
        int out_deg = 0;
        int in_deg = 0;
        const ProofEdge* in_edge = nullptr;
        for (const auto& e : edges) {
          if (!alive[e.from] || !alive[e.to]) continue;
          if (e.from == v) ++out_deg;
          if (e.to == v) {
            ++in_deg;
            in_edge = &e;
          }
        }
        if (out_deg == 0 && in_deg == 1) {
          alive[v] = false;
          for (size_t k = 0; k < in_edge->fk->fk_columns.size(); ++k) {
            fk_equalities.emplace_back(
                ColumnRefId{in_edge->from, in_edge->fk->fk_columns[k]},
                ColumnRefId{in_edge->to, in_edge->fk->key_columns[k]});
          }
          changed = true;
        }
      }
    }
    for (int v = num_query_tables; v < n; ++v) {
      if (alive[v]) {
        return Verdict::Fail(
            CheckCode::kNoValidTableMapping,
            "extra view table '" + catalog_->table(unified[v].table).name() +
                "' not removable by cardinality-preserving joins");
      }
    }
  }

  // ---- Backjoin justification (§7 extension): each backjoined table
  // must correspond to a unified slot whose unique key the view outputs,
  // with key values equal on the view's rows. Self-joins can make the
  // slot ambiguous, so candidate assignments are enumerated.
  std::vector<std::vector<int32_t>> backjoin_candidates;
  for (const auto& bj : sub.backjoins) {
    std::vector<int32_t> candidates;
    const TableDef& t = catalog_->table(bj.table);
    std::vector<ColumnOrdinal> key_cols;
    for (const auto& [out, col] : bj.key_join) {
      (void)out;
      key_cols.push_back(col);
    }
    if (!t.CoversUniqueKey(key_cols)) {
      return Verdict::Fail(CheckCode::kBackjoinNotJustified,
                           "backjoin key of '" + t.name() +
                               "' does not cover a unique key");
    }
    for (size_t s = 0; s < unified.size(); ++s) {
      if (unified[s].table != bj.table) continue;
      bool ok = true;
      for (const auto& [out, col] : bj.key_join) {
        const Expr& vout = *view_outputs[out];
        if (vout.kind() != ExprKind::kColumnRef ||
            !view_classes.Same(vout.column_ref(),
                               ColumnRefId{static_cast<int32_t>(s), col})) {
          ok = false;
          break;
        }
      }
      if (ok) candidates.push_back(static_cast<int32_t>(s));
    }
    if (candidates.empty()) {
      return Verdict::Fail(CheckCode::kBackjoinNotJustified,
                           "no view table slot justifies the backjoin to '" +
                               t.name() + "'");
    }
    backjoin_candidates.push_back(std::move(candidates));
  }

  // ---- Core proof for one backjoin slot assignment. `expand` inlines a
  // substitute-space expression into the unified space: view output refs
  // become the view's output expressions, backjoin refs become base
  // columns of the assigned slot.
  auto prove = [&](const std::vector<int32_t>& backjoin_slot) -> Verdict {
    auto expand = [&](const ExprPtr& e) -> ExprPtr {
      return e->RewriteColumns([&](ColumnRefId c) -> ExprPtr {
        if (c.table_ref == 0) return view_outputs[c.column];
        return Expr::MakeColumn(backjoin_slot[c.table_ref - 1], c.column);
      });
    };

    std::vector<ExprPtr> comp_preds;
    comp_preds.reserve(sub.predicates.size());
    for (const auto& p : sub.predicates) {
      ExprPtr ex = expand(p);
      if (ex->ContainsAggregate()) {
        return Verdict::Fail(
            CheckCode::kAggregateRewriteUnsound,
            "compensating predicate filters on an aggregate output");
      }
      comp_preds.push_back(std::move(ex));
    }
    ProofPreds comp = ClassifyForProof(comp_preds);

    // Obligation 2a: equal equality partitions. Query side: query
    // equijoins, CHECK equalities, and the equalities contributed by the
    // removed FK joins. Substitute side: the view's rows filtered by the
    // inlined compensation.
    ProofClasses query_classes;
    for (const auto& [a, b] : query_preds.equalities) query_classes.Merge(a, b);
    for (const auto& [a, b] : check_preds.equalities) query_classes.Merge(a, b);
    for (const auto& [a, b] : fk_equalities) query_classes.Merge(a, b);
    ProofClasses sub_classes;
    for (const auto& [a, b] : view_preds.equalities) sub_classes.Merge(a, b);
    for (const auto& [a, b] : check_preds.equalities) sub_classes.Merge(a, b);
    for (const auto& [a, b] : comp.equalities) sub_classes.Merge(a, b);
    std::string why;
    if (!PartitionsEqual(query_classes, sub_classes, &why)) {
      return Verdict::Fail(CheckCode::kEqualityNotEquivalent, why);
    }

    // Obligation 2b: identical folded range intervals per equivalence
    // class, CHECK ranges folded into both sides.
    std::map<int, ProofInterval> query_ranges;
    std::map<int, ProofInterval> sub_ranges;
    auto fold = [&](std::map<int, ProofInterval>* into,
                    const std::vector<ProofRange>& ranges) {
      for (const auto& r : ranges) {
        query_classes.Ensure(r.column);
        (*into)[query_classes.RootOf(r.column)].Apply(r.op, r.bound);
      }
    };
    fold(&query_ranges, query_preds.ranges);
    fold(&query_ranges, check_preds.ranges);
    fold(&sub_ranges, view_preds.ranges);
    fold(&sub_ranges, comp.ranges);
    fold(&sub_ranges, check_preds.ranges);
    for (const auto& [cls, qi] : query_ranges) {
      auto it = sub_ranges.find(cls);
      ProofInterval si = it == sub_ranges.end() ? ProofInterval{} : it->second;
      if (!qi.SameAs(si)) {
        return Verdict::Fail(CheckCode::kRangeNotEquivalent,
                             "class range differs: query " + qi.Describe() +
                                 " vs substitute " + si.Describe());
      }
    }
    for (const auto& [cls, si] : sub_ranges) {
      if (query_ranges.find(cls) == query_ranges.end() &&
          !si.SameAs(ProofInterval{})) {
        return Verdict::Fail(CheckCode::kRangeNotEquivalent,
                             "substitute constrains an unconstrained class "
                             "to " + si.Describe());
      }
    }

    // Obligation 2c: residual conjuncts mutually covered (CHECK residuals
    // discharge either side — they hold on every row).
    std::vector<ProofShape> query_residuals;
    for (const auto& r : query_preds.residuals) {
      query_residuals.push_back(ShapeOf(*r));
    }
    std::vector<ProofShape> sub_residuals;
    for (const auto& r : view_preds.residuals) {
      sub_residuals.push_back(ShapeOf(*r));
    }
    for (const auto& r : comp.residuals) sub_residuals.push_back(ShapeOf(*r));
    std::vector<ProofShape> check_residuals;
    for (const auto& r : check_preds.residuals) {
      check_residuals.push_back(ShapeOf(*r));
    }
    for (const auto& s : sub_residuals) {
      if (!ShapeCovered(s, query_residuals, query_classes) &&
          !ShapeCovered(s, check_residuals, query_classes)) {
        return Verdict::Fail(CheckCode::kResidualNotEquivalent,
                             "substitute residual not implied by the query: " +
                                 s.text);
      }
    }
    for (const auto& s : query_residuals) {
      if (!ShapeCovered(s, sub_residuals, query_classes) &&
          !ShapeCovered(s, check_residuals, query_classes)) {
        return Verdict::Fail(CheckCode::kResidualNotEquivalent,
                             "query residual not enforced by the substitute: " +
                                 s.text);
      }
    }

    // ---- Obligation 3: outputs (and grouping) compute the query.
    auto expanded_shape_matches = [&](const ExprPtr& sub_expr,
                                      const Expr& query_expr) {
      ExprPtr ex = expand(sub_expr);
      return ShapeEq(ShapeOf(*ex), ShapeOf(query_expr), query_classes);
    };

    if (!query.is_aggregate) {
      // SPJ from SPJ (aggregation views were rejected up front): row sets
      // are bag-equal, so per-row value equality suffices.
      for (size_t i = 0; i < sub.outputs.size(); ++i) {
        if (!expanded_shape_matches(sub.outputs[i].expr,
                                    *query.outputs[i].expr)) {
          return Verdict::Fail(CheckCode::kOutputNotEquivalent,
                               "output '" + query.outputs[i].name +
                                   "' computes a different expression");
        }
      }
      return Verdict::Ok();
    }

    // Aggregate query. First the grouping partition.
    std::vector<ProofShape> query_grouping;
    for (const auto& g : query.group_by) query_grouping.push_back(ShapeOf(*g));
    if (sub.needs_aggregation) {
      // The substitute re-aggregates: its grouping list must induce
      // exactly the query's partition, and must be aggregate-free (a
      // view-group must fall wholly inside one query group for rollups
      // to be legal).
      std::vector<ProofShape> sub_grouping;
      for (const auto& g : sub.group_by) {
        ExprPtr ex = expand(g);
        if (ex->ContainsAggregate()) {
          return Verdict::Fail(CheckCode::kAggregateRewriteUnsound,
                               "compensating group-by over an aggregate");
        }
        sub_grouping.push_back(ShapeOf(*ex));
      }
      if (!ListsMutuallyCover(sub_grouping, query_grouping, query_classes)) {
        return Verdict::Fail(CheckCode::kGroupingNotEquivalent,
                             "compensating grouping induces a different "
                             "partition than the query grouping");
      }
    } else {
      // No re-aggregation: the view's own groups must coincide with the
      // query's groups row-for-row.
      std::vector<ProofShape> vg;
      for (const auto& g : view_group_by) vg.push_back(ShapeOf(*g));
      if (!ListsMutuallyCover(vg, query_grouping, query_classes)) {
        return Verdict::Fail(CheckCode::kGroupingNotEquivalent,
                             "view grouping does not coincide with the query "
                             "grouping (re-aggregation required)");
      }
    }

    // Then each output.
    for (size_t i = 0; i < sub.outputs.size(); ++i) {
      const Expr& q = *query.outputs[i].expr;
      const ExprPtr& s = sub.outputs[i].expr;
      const std::string& name = query.outputs[i].name;
      auto fail_out = [&](const char* what) {
        return Verdict::Fail(CheckCode::kAggregateRewriteUnsound,
                             "output '" + name + "': " + what);
      };

      if (q.kind() != ExprKind::kAggregate) {
        // Grouping output: group-constant on both sides, equal per row.
        ExprPtr ex = expand(s);
        if (ex->ContainsAggregate()) {
          return fail_out("grouping output reads an aggregate");
        }
        if (!ShapeEq(ShapeOf(*ex), ShapeOf(q), query_classes)) {
          return Verdict::Fail(CheckCode::kOutputNotEquivalent,
                               "output '" + name +
                                   "' computes a different expression");
        }
        continue;
      }

      const AggKind kind = q.agg_kind();
      if (!vq.is_aggregate) {
        // Compensating aggregation over an SPJ view: same aggregate over
        // an argument equal per (1:1) row.
        if (s->kind() != ExprKind::kAggregate || s->agg_kind() != kind) {
          return fail_out("compensating aggregate has the wrong function");
        }
        if (kind == AggKind::kCountStar) {
          if (s->num_children() != 0) {
            return fail_out("count(*) takes no argument");
          }
          continue;
        }
        if (s->num_children() != 1 ||
            !expanded_shape_matches(s->child(0), *q.child(0))) {
          return fail_out("aggregate argument computes a different value");
        }
        continue;
      }

      // Aggregation view: the substitute reads (and possibly rolls up)
      // pre-computed aggregates. Only the algebraically valid patterns
      // are accepted (§3.3; SUM/COUNT combine by SUM, MIN/MAX by
      // themselves, AVG = SUM / COUNT).
      const bool regroup = sub.needs_aggregation;
      // `inner` must expand to the view's aggregate `want(kind, arg)`.
      auto expands_to_view_agg = [&](const ExprPtr& inner, AggKind want,
                                     const Expr* want_arg) {
        ExprPtr ex = expand(inner);
        if (ex->kind() != ExprKind::kAggregate || ex->agg_kind() != want) {
          return false;
        }
        if (want == AggKind::kCountStar) return ex->num_children() == 0;
        return ex->num_children() == 1 && want_arg != nullptr &&
               ShapeEq(ShapeOf(*ex->child(0)), ShapeOf(*want_arg),
                       query_classes);
      };

      switch (kind) {
        case AggKind::kCountStar: {
          if (regroup) {
            if (s->kind() != ExprKind::kAggregate ||
                s->agg_kind() != AggKind::kSum || s->num_children() != 1 ||
                !expands_to_view_agg(s->child(0), AggKind::kCountStar,
                                     nullptr)) {
              return fail_out("count(*) must roll up as SUM(count column)");
            }
          } else if (!expands_to_view_agg(s, AggKind::kCountStar, nullptr)) {
            return fail_out("count(*) must read the view's count column");
          }
          break;
        }
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax: {
          if (regroup) {
            // SUM rolls up with SUM, MIN/MAX with themselves.
            if (s->kind() != ExprKind::kAggregate || s->agg_kind() != kind ||
                s->num_children() != 1 ||
                !expands_to_view_agg(s->child(0), kind, q.child(0).get())) {
              return fail_out("rollup must re-apply the aggregate to the "
                              "view's matching aggregate column");
            }
          } else if (!expands_to_view_agg(s, kind, q.child(0).get())) {
            return fail_out("must read the view's matching aggregate column");
          }
          break;
        }
        case AggKind::kAvg: {
          // AVG(E) = SUM(E) / COUNT(*), each side rolled up when
          // regrouping.
          if (s->kind() != ExprKind::kArithmetic ||
              s->arith_op() != ArithOp::kDiv) {
            return fail_out("AVG must be computed as SUM / COUNT");
          }
          ExprPtr num = s->child(0);
          ExprPtr den = s->child(1);
          if (regroup) {
            if (num->kind() != ExprKind::kAggregate ||
                num->agg_kind() != AggKind::kSum ||
                num->num_children() != 1 ||
                den->kind() != ExprKind::kAggregate ||
                den->agg_kind() != AggKind::kSum ||
                den->num_children() != 1) {
              return fail_out("AVG rollup must SUM both sum and count");
            }
            num = num->child(0);
            den = den->child(0);
          }
          if (!expands_to_view_agg(num, AggKind::kSum, q.child(0).get()) ||
              !expands_to_view_agg(den, AggKind::kCountStar, nullptr)) {
            return fail_out("AVG numerator/denominator do not read the "
                            "view's sum and count columns");
          }
          break;
        }
      }
    }
    return Verdict::Ok();
  };

  // Try every capped combination of backjoin slot assignments.
  std::vector<int32_t> assignment(sub.backjoins.size(), -1);
  Verdict best = Verdict::Fail(CheckCode::kBackjoinNotJustified,
                               "no backjoin slot assignment succeeded");
  int tried = 0;
  std::function<bool(size_t)> try_assign = [&](size_t j) -> bool {
    if (tried >= options_.max_backjoin_assignments) return false;
    if (j == backjoin_candidates.size()) {
      ++tried;
      Verdict v = prove(assignment);
      if (v.proven) {
        best = std::move(v);
        return true;
      }
      KeepFurthestFailure(&best, std::move(v));
      return false;
    }
    for (int32_t slot : backjoin_candidates[j]) {
      assignment[j] = slot;
      if (try_assign(j + 1)) return true;
    }
    return false;
  };
  try_assign(0);
  return best;
}

}  // namespace mvopt
