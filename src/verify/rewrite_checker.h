// Rewrite soundness checker: a static proof-checking pass over finished
// substitutes (the output of view matching, §3). The checker re-derives,
// from the catalog and the two SPJG expressions alone, whether a
// substitute is provably equivalent to the query expression it claims to
// answer. It deliberately shares no code with src/rewrite: it has its own
// union-find, its own interval arithmetic, its own conjunct
// classification and its own shape matching, so a bug in the matcher and
// a bug in the checker are independent events.
//
// Proof obligations, per candidate table mapping (view refs -> query
// slots):
//   1. Extra view tables must be removable through cardinality-preserving
//      foreign-key joins re-derived from the catalog (§3.2).
//   2. The query predicate and the substitute predicate (view predicate
//      plus inlined compensating predicates) must be equivalent modulo
//      CHECK constraints: equal equality partitions, equal per-class
//      range intervals, and bidirectionally covered residuals (§3.1.2).
//   3. Every output (and, for aggregates, every rollup) must compute the
//      query's expression: shape-equivalent after inlining view outputs,
//      with SUM/COUNT/MIN/MAX/AVG rollups restricted to the patterns that
//      are algebraically valid over disjoint sub-groups (§3.3).
//
// The checker is intentionally conservative: it proves equivalence or
// reports a machine-readable reason why it could not.

#ifndef MVOPT_VERIFY_REWRITE_CHECKER_H_
#define MVOPT_VERIFY_REWRITE_CHECKER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/enum_coverage.h"
#include "common/query_context.h"
#include "query/spjg.h"
#include "query/substitute.h"
#include "query/view_def.h"

namespace mvopt {

/// How the matching pipeline applies the checker to produced substitutes.
enum class VerifyMode {
  kOff,      ///< never run the checker
  kLog,      ///< run it, count + trace rejections, keep all substitutes
  kEnforce,  ///< run it and discard substitutes that cannot be proven
};

inline constexpr int kNumVerifyModes = 3;
static_assert(static_cast<int>(VerifyMode::kEnforce) + 1 == kNumVerifyModes,
              "kNumVerifyModes must cover every VerifyMode");

constexpr const char* VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kLog:
      return "log";
    case VerifyMode::kEnforce:
      return "enforce";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<VerifyMode, VerifyModeName>(kNumVerifyModes),
              "every VerifyMode needs a VerifyModeName entry");

/// Machine-readable outcome classes, ordered roughly by how far the proof
/// progressed before failing.
enum class CheckCode {
  kProven = 0,
  kMalformedSubstitute,     ///< structural damage (bad ordinals, arity...)
  kViewNotWellFormed,       ///< view violates the indexable-view contract
  kNoValidTableMapping,     ///< no mapping with removable extra tables
  kBackjoinNotJustified,    ///< backjoin key not proven unique/equal
  kEqualityNotEquivalent,   ///< equality partitions differ
  kRangeNotEquivalent,      ///< some column range differs
  kResidualNotEquivalent,   ///< residual conjuncts not mutually covered
  kGroupingNotEquivalent,   ///< grouping partitions differ
  kOutputNotEquivalent,     ///< an output computes a different expression
  kAggregateRewriteUnsound, ///< rollup pattern not algebraically valid
};

inline constexpr int kNumCheckCodes = 11;
static_assert(static_cast<int>(CheckCode::kAggregateRewriteUnsound) + 1 ==
                  kNumCheckCodes,
              "kNumCheckCodes must cover every CheckCode");

/// Exhaustive (switch-based, no default): a new CheckCode without a
/// name is a -Wswitch error, and the static_assert below proves every
/// value maps to a real name even where that warning is demoted.
constexpr const char* CheckCodeName(CheckCode code) {
  switch (code) {
    case CheckCode::kProven:
      return "proven";
    case CheckCode::kMalformedSubstitute:
      return "malformed-substitute";
    case CheckCode::kViewNotWellFormed:
      return "view-not-well-formed";
    case CheckCode::kNoValidTableMapping:
      return "no-valid-table-mapping";
    case CheckCode::kBackjoinNotJustified:
      return "backjoin-not-justified";
    case CheckCode::kEqualityNotEquivalent:
      return "equality-not-equivalent";
    case CheckCode::kRangeNotEquivalent:
      return "range-not-equivalent";
    case CheckCode::kResidualNotEquivalent:
      return "residual-not-equivalent";
    case CheckCode::kGroupingNotEquivalent:
      return "grouping-not-equivalent";
    case CheckCode::kOutputNotEquivalent:
      return "output-not-equivalent";
    case CheckCode::kAggregateRewriteUnsound:
      return "aggregate-rewrite-unsound";
  }
  return "?";
}

static_assert(AllEnumeratorsNamed<CheckCode, CheckCodeName>(kNumCheckCodes),
              "every CheckCode needs a CheckCodeName entry");

/// The checker's structured answer.
struct Verdict {
  bool proven = false;
  CheckCode code = CheckCode::kProven;
  std::string detail;  ///< human-readable specifics on rejection

  static Verdict Ok() { return Verdict{true, CheckCode::kProven, {}}; }
  static Verdict Fail(CheckCode code, std::string detail) {
    return Verdict{false, code, std::move(detail)};
  }
};

class RewriteChecker {
 public:
  struct Options {
    /// Cap on candidate table mappings tried before giving up.
    int max_table_mappings = 64;
    /// Cap on backjoin slot assignments tried per mapping (self-joins can
    /// make the backjoined slot ambiguous).
    int max_backjoin_assignments = 16;
    /// Mirror of the matcher's nullable-FK relaxation: a nullable FK
    /// column still supports elimination when the query's own predicates
    /// reject NULL in it.
    bool allow_nullable_fk_with_null_rejection = true;
  };

  explicit RewriteChecker(const Catalog* catalog);
  RewriteChecker(const Catalog* catalog, Options options);

  /// Attempts to prove that `sub` (produced against `view`) is equivalent
  /// to `query`. Never mutates anything; safe to call on arbitrary
  /// (including hostile) substitutes.
  Verdict Check(const SpjgQuery& query, const ViewDefinition& view,
                const Substitute& sub) const;

  /// Context form: charges the proof against the query's budget (one
  /// deadline tick per check — the proof itself always runs to its
  /// verdict; soundness is never traded for latency mid-check). The
  /// verdict is identical to the loose overload's.
  Verdict Check(const SpjgQuery& query, const ViewDefinition& view,
                const Substitute& sub, QueryContext& ctx) const {
    ctx.TickDeadline();
    return Check(query, view, sub);
  }

 private:
  Verdict CheckWithMapping(const SpjgQuery& query, const ViewDefinition& view,
                           const Substitute& sub,
                           const std::vector<int32_t>& view_to_slot) const;

  const Catalog* catalog_;
  Options options_;
};

}  // namespace mvopt

#endif  // MVOPT_VERIFY_REWRITE_CHECKER_H_
