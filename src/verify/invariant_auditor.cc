#include "verify/invariant_auditor.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <utility>

namespace mvopt {

std::string AuditReport::Summary() const {
  if (violations.empty()) return "ok";
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

namespace {

std::string KeyText(const LatticeIndex::Key& key) {
  std::string out = "{";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(key[i]);
  }
  return out + "}";
}

bool ProperSubset(const LatticeIndex::Key& a, const LatticeIndex::Key& b) {
  return a.size() < b.size() && LatticeIndex::IsSubset(a, b);
}

}  // namespace

void InvariantAuditor::CheckLattice(const LatticeIndex& index,
                                    const std::string& where,
                                    AuditReport* report) const {
  const int n = index.num_nodes();

  // Keys: sorted, duplicate-free, and unique across nodes.
  std::set<LatticeIndex::Key> distinct;
  for (int i = 0; i < n; ++i) {
    const auto& key = index.key(i);
    if (!std::is_sorted(key.begin(), key.end()) ||
        std::adjacent_find(key.begin(), key.end()) != key.end()) {
      report->violations.push_back(where + ": node " + std::to_string(i) +
                                   " key " + KeyText(key) +
                                   " is not sorted unique");
    }
    if (!distinct.insert(key).second) {
      report->violations.push_back(where + ": duplicate key " + KeyText(key));
    }
  }

  // Hasse edges: stored cover edges must equal the brute-force cover
  // relation over all stored keys (erased nodes stay routing waypoints,
  // so they participate).
  for (int i = 0; i < n; ++i) {
    std::vector<int> expected_up;
    std::vector<int> expected_down;
    for (int j = 0; j < n; ++j) {
      if (!ProperSubset(index.key(i), index.key(j))) continue;
      bool covering = true;
      for (int k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        if (ProperSubset(index.key(i), index.key(k)) &&
            ProperSubset(index.key(k), index.key(j))) {
          covering = false;
          break;
        }
      }
      if (covering) expected_up.push_back(j);
    }
    for (int j = 0; j < n; ++j) {
      if (!ProperSubset(index.key(j), index.key(i))) continue;
      bool covering = true;
      for (int k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        if (ProperSubset(index.key(j), index.key(k)) &&
            ProperSubset(index.key(k), index.key(i))) {
          covering = false;
          break;
        }
      }
      if (covering) expected_down.push_back(j);
    }
    std::vector<int> stored_up = index.supersets(i);
    std::vector<int> stored_down = index.subsets(i);
    std::sort(stored_up.begin(), stored_up.end());
    std::sort(stored_down.begin(), stored_down.end());
    if (stored_up != expected_up) {
      report->violations.push_back(where + ": node " + std::to_string(i) +
                                   " superset cover edges disagree with the "
                                   "Hasse diagram");
    }
    if (stored_down != expected_down) {
      report->violations.push_back(where + ": node " + std::to_string(i) +
                                   " subset cover edges disagree with the "
                                   "Hasse diagram");
    }
  }

  // The index's own structure check (tops/roots consistency).
  std::string self_check = index.CheckStructure();
  if (!self_check.empty()) {
    report->violations.push_back(where + ": " + self_check);
  }

  // Search completeness: the pruned searches must return exactly the
  // linear-scan answer for every stored key (plus the empty key and the
  // union of all keys, which exercise the extremes).
  std::vector<LatticeIndex::Key> probes;
  probes.push_back({});
  LatticeIndex::Key all;
  for (int i = 0; i < n; ++i) {
    probes.push_back(index.key(i));
    all.insert(all.end(), index.key(i).begin(), index.key(i).end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  probes.push_back(all);
  for (const auto& probe : probes) {
    std::vector<int> fast;
    std::vector<int> slow;
    index.SearchSubsets(probe, &fast);
    index.LinearScan(
        [&](const LatticeIndex::Key& k) {
          return LatticeIndex::IsSubset(k, probe);
        },
        &slow);
    std::sort(fast.begin(), fast.end());
    std::sort(slow.begin(), slow.end());
    if (fast != slow) {
      report->violations.push_back(where + ": SearchSubsets(" +
                                   KeyText(probe) +
                                   ") disagrees with a linear scan");
    }
    fast.clear();
    slow.clear();
    index.SearchSupersets(probe, &fast);
    index.LinearScan(
        [&](const LatticeIndex::Key& k) {
          return LatticeIndex::IsSubset(probe, k);
        },
        &slow);
    std::sort(fast.begin(), fast.end());
    std::sort(slow.begin(), slow.end());
    if (fast != slow) {
      report->violations.push_back(where + ": SearchSupersets(" +
                                   KeyText(probe) +
                                   ") disagrees with a linear scan");
    }
  }
}

AuditReport InvariantAuditor::AuditLattice(const LatticeIndex& index) const {
  AuditReport report;
  CheckLattice(index, "lattice", &report);
  return report;
}

void InvariantAuditor::CheckTreeNode(const FilterTree& tree,
                                     const FilterTree::Node& node,
                                     size_t depth, size_t num_levels,
                                     bool agg_tree, const std::string& where,
                                     std::vector<ViewId>* seen,
                                     AuditReport* report) const {
  CheckLattice(node.index, where, report);
  const size_t n = static_cast<size_t>(node.index.num_nodes());
  const bool last = depth + 1 == num_levels;
  if (node.leaves.size() > n || node.children.size() > n) {
    report->violations.push_back(where +
                                 ": payload arrays exceed the lattice");
  }
  if (last && !node.children.empty()) {
    report->violations.push_back(where + ": leaf level has children");
  }
  if (!last && !node.leaves.empty()) {
    report->violations.push_back(where + ": interior level has leaves");
  }
  for (size_t i = 0; i < n; ++i) {
    const std::string at = where + "#" + std::to_string(i);
    if (last) {
      const bool populated =
          i < node.leaves.size() && !node.leaves[i].empty();
      if (node.index.alive(static_cast<int>(i)) != populated) {
        report->violations.push_back(
            at + ": leaf liveness disagrees with its view list");
      }
      if (i < node.leaves.size()) {
        for (ViewId id : node.leaves[i]) {
          if (id < 0 ||
              id >= static_cast<ViewId>(tree.descriptions_->size())) {
            report->violations.push_back(at + ": leaf holds unknown view id " +
                                         std::to_string(id));
            continue;
          }
          if ((*tree.descriptions_)[id].is_aggregate != agg_tree) {
            report->violations.push_back(
                at + ": view " + std::to_string(id) +
                " indexed in the wrong aggregation tree");
          }
          seen->push_back(id);
        }
      }
      continue;
    }
    const bool has_child =
        i < node.children.size() && node.children[i] != nullptr;
    if (node.index.alive(static_cast<int>(i)) && !has_child) {
      report->violations.push_back(at + ": live interior node has no child");
    }
    if (has_child) {
      CheckTreeNode(tree, *node.children[i], depth + 1, num_levels, agg_tree,
                    at, seen, report);
    }
  }
}

AuditReport InvariantAuditor::AuditFilterTree(const FilterTree& tree) const {
  AuditReport report;
  std::vector<ViewId> seen;
  if (!tree.spj_levels_.empty()) {
    CheckTreeNode(tree, tree.spj_root_, 0, tree.spj_levels_.size(),
                  /*agg_tree=*/false, "spj", &seen, &report);
  }
  if (!tree.agg_levels_.empty()) {
    CheckTreeNode(tree, tree.agg_root_, 0, tree.agg_levels_.size(),
                  /*agg_tree=*/true, "agg", &seen, &report);
  }
  std::vector<ViewId> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    report.violations.push_back("a view id appears on more than one path");
  }
  if (static_cast<int>(seen.size()) != tree.num_views()) {
    report.violations.push_back(
        "leaf population " + std::to_string(seen.size()) +
        " disagrees with num_views() " + std::to_string(tree.num_views()));
  }
  return report;
}

AuditReport InvariantAuditor::AuditMemo(
    const std::vector<MemoGroupRecord>& groups, uint32_t full_mask,
    int num_agg_specs, int joined_agg_key_base) const {
  AuditReport report;
  auto bad = [&](size_t g, const std::string& what) {
    report.violations.push_back("group " + std::to_string(g) + ": " + what);
  };

  std::set<std::pair<uint32_t, int>> keys;
  for (size_t g = 0; g < groups.size(); ++g) {
    const MemoGroupRecord& group = groups[g];
    if (!keys.insert({group.mask, group.agg_spec}).second) {
      bad(g, "duplicate (mask, agg-spec) key");
    }
    if (group.mask == 0) bad(g, "empty table mask");
    if ((group.mask & ~full_mask) != 0) {
      bad(g, "mask escapes the query's table set");
    }
    const bool spec_ok =
        group.agg_spec == -1 ||
        (group.agg_spec >= 0 && group.agg_spec < num_agg_specs) ||
        (group.agg_spec >= joined_agg_key_base &&
         group.agg_spec < joined_agg_key_base + num_agg_specs);
    if (!spec_ok) bad(g, "aggregation spec id out of range");
    if (group.exprs.empty()) bad(g, "no logical expressions");

    auto group_valid = [&](int id) {
      return id >= 0 && id < static_cast<int>(groups.size());
    };
    for (const MemoExprRecord& e : group.exprs) {
      switch (e.kind) {
        case MemoExprRecord::Kind::kGet:
          if (std::popcount(group.mask) != 1) {
            bad(g, "GET in a multi-table group");
          } else if (e.table_ref != std::countr_zero(group.mask)) {
            bad(g, "GET table does not match the group mask");
          }
          if (group.agg_spec != -1) bad(g, "GET in an aggregation group");
          break;
        case MemoExprRecord::Kind::kJoin: {
          if (!group_valid(e.child0) || !group_valid(e.child1)) {
            bad(g, "JOIN child group id out of range");
            break;
          }
          const MemoGroupRecord& l = groups[e.child0];
          const MemoGroupRecord& r = groups[e.child1];
          if ((l.mask & r.mask) != 0) bad(g, "JOIN children overlap");
          if ((l.mask | r.mask) != group.mask) {
            bad(g, "JOIN children do not partition the group mask");
          }
          if (group.agg_spec == -1) {
            // Plain SPJ join: both inputs are SPJ groups.
            if (l.agg_spec != -1 || r.agg_spec != -1) {
              bad(g, "SPJ JOIN over aggregation groups");
            }
          } else if (group.agg_spec >= joined_agg_key_base) {
            // Join above a pre-aggregation (Example 4): exactly one input
            // carries the inner aggregation spec named by the group key.
            const int inner = group.agg_spec - joined_agg_key_base;
            const bool shape_ok =
                (l.agg_spec == inner && r.agg_spec == -1) ||
                (r.agg_spec == inner && l.agg_spec == -1);
            if (!shape_ok) {
              bad(g, "joined-aggregate JOIN inputs do not match the key");
            }
          } else {
            bad(g, "JOIN in an aggregation group");
          }
          break;
        }
        case MemoExprRecord::Kind::kAggregate: {
          if (group.agg_spec == -1 ||
              group.agg_spec >= joined_agg_key_base) {
            bad(g, "AGGREGATE outside an aggregation group");
            break;
          }
          if (!group_valid(e.child0)) {
            bad(g, "AGGREGATE child group id out of range");
            break;
          }
          const MemoGroupRecord& c = groups[e.child0];
          if (c.mask != group.mask) {
            bad(g, "AGGREGATE child mask differs from the group mask");
          }
          // The input is either the group's SPJ expression set or a
          // join-above-pre-aggregation group of the same mask.
          if (c.agg_spec != -1 && c.agg_spec < joined_agg_key_base) {
            bad(g, "AGGREGATE over another aggregation group");
          }
          break;
        }
        case MemoExprRecord::Kind::kViewGet:
          if (e.view_id < 0) bad(g, "VIEWGET without a view id");
          break;
      }
    }
  }
  return report;
}

}  // namespace mvopt
