// Ablation A3: incremental view maintenance vs. full recomputation — the
// economics behind §2's indexed-view requirements (unique clustered key,
// mandatory count_big(*)). Measures wall time to apply small base-table
// deltas to a set of materialized aggregation views incrementally and by
// recomputing from scratch.

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "engine/maintenance.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

namespace mvopt {
namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int Main() {
  constexpr double kScale = 0.001;
  constexpr int kNumViews = 10;
  constexpr int kRounds = 20;
  constexpr int kRecomputeRounds = 1;  // recompute is slow; extrapolate
  constexpr int kDeltaRows = 10;

  Catalog catalog;
  tpch::Schema schema = tpch::BuildSchema(&catalog, kScale);
  Database db(&catalog);
  tpch::DataGenOptions dg;
  dg.scale_factor = kScale;
  tpch::GenerateData(&db, schema, dg);

  ViewMaintainer maintainer(&db);
  tpch::WorkloadGenerator gen(&catalog, 77);
  std::vector<std::unique_ptr<ViewDefinition>> views;
  for (int i = 0; i < kNumViews; ++i) {
    views.push_back(std::make_unique<ViewDefinition>(
        i, "mv" + std::to_string(i), gen.GenerateView()));
    db.MaterializeView(views.back().get());
    maintainer.RegisterView(views.back().get());
  }

  std::printf("# Ablation: incremental maintenance vs full recomputation\n");
  std::printf("# %d views over TPC-H SF %.3f, %d rounds of %d-row deltas\n",
              kNumViews, kScale, kRounds, kDeltaRows);

  Rng rng(5);
  const TableData* lineitem = db.table(schema.lineitem);

  // Incremental path.
  auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Row> batch;
    for (int k = 0; k < kDeltaRows; ++k) {
      batch.push_back(
          lineitem->rows()[rng.Uniform(0, lineitem->num_rows() - 1)]);
    }
    maintainer.Insert(schema.lineitem, batch);
    maintainer.Delete(schema.lineitem, {batch[0]});
  }
  auto t1 = std::chrono::steady_clock::now();
  double incremental = Seconds(t0, t1);

  // Recompute path: same deltas, every view rebuilt from scratch.
  auto recompute_all = [&]() {
    for (const auto& v : views) {
      TableData* data = db.table(v->materialized_table());
      std::vector<Row> rows = db.ExecuteSpjg(v->query());
      data->Clear();
      for (auto& r : rows) data->AppendRow(std::move(r));
      data->RebuildIndexes();
    }
  };
  auto t2 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRecomputeRounds; ++round) {
    std::vector<Row> batch;
    for (int k = 0; k < kDeltaRows; ++k) {
      batch.push_back(
          lineitem->rows()[rng.Uniform(0, lineitem->num_rows() - 1)]);
    }
    TableData* data = db.table(schema.lineitem);
    for (auto& r : batch) data->AppendRow(r);
    data->RebuildIndexes();
    recompute_all();
    data->RemoveOneMatching(batch[0]);
    data->RebuildIndexes();
    recompute_all();
  }
  auto t3 = std::chrono::steady_clock::now();
  double recompute =
      Seconds(t2, t3) * (static_cast<double>(kRounds) / kRecomputeRounds);

  std::printf("incremental: %8.3f s  (%lld incremental updates, %lld "
              "fallback recomputations)\n",
              incremental,
              static_cast<long long>(maintainer.incremental_updates()),
              static_cast<long long>(maintainer.full_recomputations()));
  std::printf("recompute:   %8.3f s (extrapolated from %d rounds)\n",
              recompute, kRecomputeRounds);
  std::printf("speedup:     %8.1fx\n",
              recompute / std::max(1e-9, incremental));
  return 0;
}

}  // namespace
}  // namespace mvopt

int main() { return mvopt::Main(); }
