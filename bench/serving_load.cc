// Serving front-end load sweep: open-loop arrivals at 0.5x / 1x / 2x of
// the measured service capacity, reporting end-to-end latency percentiles
// and the shed rate at each point.
//
// The robustness claim under test: with the bounded admission queue, the
// p99 latency of ADMITTED queries stays bounded even at 2x saturation —
// overload surfaces as a rising shed rate, not as unbounded queueing
// delay. Without admission control an open-loop 2x offered load grows
// the queue (and the tail) without limit.
//
// Knobs:
//   MVOPT_BENCH_QUERIES   submissions per load point (default 2000)
//   --out PATH            JSON output file (default results/serving_load.json;
//                         "-" for stdout only)
//
// Output: a human-readable table on stdout plus a machine-readable JSON
// document (validated with ValidateJson before it is written).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "observe/metrics.h"
#include "serve/serving_service.h"

namespace {

using namespace mvopt;
using Clock = std::chrono::steady_clock;

struct LoadPoint {
  double multiplier = 0;
  double offered_qps = 0;
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  double shed_rate = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

/// One open-loop run: paced submissions at `rate` qps while a collector
/// thread waits each ticket in FIFO order and stamps its completion.
/// FIFO waiting can only overestimate an out-of-order completion's
/// latency, which is conservative for a bounded-tail claim.
LoadPoint RunPoint(const bench::Workload& workload, MatchingService* matching,
                   double multiplier, double rate, int total) {
  ServingOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  ServingService service(&workload.catalog(), matching, options);

  struct Pending {
    std::shared_ptr<ServeTicket> ticket;
    Clock::time_point submitted;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool done_submitting = false;

  LoadPoint point;
  point.multiplier = multiplier;
  point.offered_qps = rate;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(total));

  std::thread collector([&] {
    for (;;) {
      Pending next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done_submitting; });
        if (pending.empty()) return;
        next = pending.front();
        pending.pop_front();
      }
      const ServeResult& result = next.ticket->Wait();
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - next.submitted)
                            .count();
      if (result.outcome == AdmissionOutcome::kAdmitted) {
        ++point.admitted;
        latencies_ms.push_back(ms);
      } else {
        ++point.shed;
      }
    }
  });

  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  auto next_arrival = Clock::now();
  for (int i = 0; i < total; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    ServeRequest req;
    req.query = workload.queries()[static_cast<size_t>(i) %
                                   workload.queries().size()];
    req.tenant = "load";
    Pending entry{service.Submit(req), Clock::now()};
    ++point.submitted;
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(entry));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done_submitting = true;
  }
  cv.notify_one();
  collector.join();
  service.Drain();

  point.shed_rate = point.submitted > 0
                        ? static_cast<double>(point.shed) /
                              static_cast<double>(point.submitted)
                        : 0;
  point.p50_ms = Percentile(&latencies_ms, 0.50);
  point.p95_ms = Percentile(&latencies_ms, 0.95);
  point.p99_ms = Percentile(&latencies_ms, 0.99);
  return point;
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvopt;
  using namespace mvopt::bench;

  std::string out_path = "results/serving_load.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH|-]\n", argv[0]);
      return 2;
    }
  }
  const int total = EnvInt("MVOPT_BENCH_QUERIES", 2000);

  Workload workload(/*num_views=*/200, /*num_queries=*/64);
  auto matching = workload.MakeService(200, /*use_filter_tree=*/true);

  // Measure the per-query round-trip time with a serial closed loop
  // (submit, wait, repeat). This deliberately includes the submit and
  // wakeup overhead the paced run pays per query, so the capacity
  // estimate matches what the open-loop sweep can actually sustain.
  // Parallel workers only add capacity when there are cores to run them.
  const unsigned host_cores = std::thread::hardware_concurrency();
  double capacity_qps;
  {
    ServingOptions options;
    options.num_workers = 2;
    options.queue_capacity = 64;
    ServingService probe(&workload.catalog(), matching.get(), options);
    const int warm = 64;
    const auto start = Clock::now();
    for (int i = 0; i < warm; ++i) {
      ServeRequest req;
      req.query = workload.queries()[static_cast<size_t>(i) %
                                     workload.queries().size()];
      req.tenant = "probe";
      probe.Submit(req)->Wait();
    }
    const double mean_seconds =
        std::chrono::duration<double>(Clock::now() - start).count() / warm;
    probe.Drain();
    const double effective_workers = std::min<double>(
        options.num_workers, std::max(1u, host_cores));
    capacity_qps = effective_workers / std::max(mean_seconds, 1e-6);
  }
  std::printf("# Serving load sweep: open-loop arrivals vs measured capacity "
              "(%.0f qps)\n", capacity_qps);
  std::printf("# host cores: %u%s\n", host_cores,
              host_cores <= 1
                  ? "  (single-core host: submitter, workers and collector "
                    "share one core, so absolute latencies are inflated; the "
                    "bounded-p99 shape is what matters)"
                  : "");
  std::printf("%-6s %12s %10s %10s %10s %10s %10s\n", "load", "offered_qps",
              "admitted", "shed_rate", "p50_ms", "p95_ms", "p99_ms");

  std::vector<LoadPoint> points;
  for (double multiplier : {0.5, 1.0, 2.0}) {
    points.push_back(RunPoint(workload, matching.get(), multiplier,
                              multiplier * capacity_qps, total));
    const LoadPoint& p = points.back();
    std::printf("%-6.1f %12.0f %10lld %9.1f%% %10.2f %10.2f %10.2f\n",
                p.multiplier, p.offered_qps,
                static_cast<long long>(p.admitted), p.shed_rate * 100.0,
                p.p50_ms, p.p95_ms, p.p99_ms);
  }

  std::string json = "{\n  \"bench\": \"serving_load\",\n";
  json += "  \"host_cores\": " + std::to_string(host_cores) + ",\n";
  json += "  \"capacity_qps\": " + JsonNumber(capacity_qps) + ",\n";
  json += "  \"submissions_per_point\": " + std::to_string(total) + ",\n";
  json += "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json += "    {\"load_multiplier\": " + JsonNumber(p.multiplier) +
            ", \"offered_qps\": " + JsonNumber(p.offered_qps) +
            ", \"submitted\": " + std::to_string(p.submitted) +
            ", \"admitted\": " + std::to_string(p.admitted) +
            ", \"shed\": " + std::to_string(p.shed) +
            ", \"shed_rate\": " + JsonNumber(p.shed_rate) +
            ", \"p50_ms\": " + JsonNumber(p.p50_ms) +
            ", \"p95_ms\": " + JsonNumber(p.p95_ms) +
            ", \"p99_ms\": " + JsonNumber(p.p99_ms) + "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::string error;
  if (!ValidateJson(json, &error)) {
    std::fprintf(stderr, "generated JSON does not validate: %s\n",
                 error.c_str());
    return 1;
  }
  if (out_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return 0;
}
