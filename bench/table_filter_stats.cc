// In-text §5 statistics: filter-tree effectiveness and matching rates.
//
// Paper numbers (1000 random queries over TPC-H):
//   candidate set          0.29% of views at 100 views, 0.36% at 1000
//   candidates that match  15-20%
//   substitutes/invocation 0.04 at 100 views -> 0.59 at 1000
//   invocations/query      ~17.8-17.9
//   substitutes/query      0.7 at 100 views -> 10.5 at 1000

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);

  std::printf("# Table S: filter tree effectiveness (in-text stats, §5)\n");
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "views", "cand-frac%",
              "pass-rate%", "subst/invoc", "invoc/query", "subst/query");

  OptimizerOptions opts;
  for (int n : config.ViewCounts()) {
    if (n == 0) continue;
    auto service = workload.MakeService(n, /*use_filter_tree=*/true);
    SweepPoint p = RunSweepPoint(workload, service.get(), n, opts);
    const double invocations = static_cast<double>(p.invocations);
    // Candidate fraction: candidates per invocation relative to n views.
    double cand_frac =
        100.0 * static_cast<double>(p.candidates) / (invocations * n);
    double pass_rate = p.candidates > 0
                           ? 100.0 * static_cast<double>(p.substitutes) /
                                 static_cast<double>(p.candidates)
                           : 0.0;
    std::printf("%-8d %12.3f %12.1f %12.3f %12.1f %12.2f\n", n, cand_frac,
                pass_rate, static_cast<double>(p.substitutes) / invocations,
                invocations / config.num_queries,
                static_cast<double>(p.substitutes) / config.num_queries);
  }
  return 0;
}
