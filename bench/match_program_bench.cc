// Two-tier matching throughput on the fig-3 workload configuration (the
// §5 random view/query recipe at MVOPT_BENCH_VIEWS/MVOPT_BENCH_QUERIES).
//
// Two measurements:
//
//  1. Match kernel (the tentpole number): every (query, view) candidate
//     pushed straight through the matcher — the generic tier runs
//     ViewMatcher::Match per candidate (rebuilding the query-side
//     conjunct classification, equivalence classes, ranges and residuals
//     each time); the compiled tier builds ONE MatchProbeContext per
//     query and runs each candidate through its MatchProgram's flat
//     instruction stream, falling back to the oracle for out-of-envelope
//     candidates. Candidates/sec, compiled vs generic.
//
//  2. End-to-end FindSubstitutes with the filter tree off (every view a
//     candidate), in three service modes — generic, compiled, and
//     compiled under cross-check=enforce. The end-to-end ratio is
//     necessarily smaller than the kernel ratio (stage bookkeeping is
//     tier-independent), and enforce runs BOTH tiers, so it documents
//     the price of continuous oracle replay.
//
// Output: JSON document on stdout (committed as
// results/match_program.json; see bench/bench_report.h), progress on
// stderr. Knobs: MVOPT_BENCH_VIEWS (default 1000), MVOPT_BENCH_QUERIES
// (default 1000), MVOPT_BENCH_REPS (timed passes, best kept; default 3).

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_report.h"
#include "bench/harness.h"
#include "rewrite/match_program.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 1000);
  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 1000);
  const int reps = EnvInt("MVOPT_BENCH_REPS", 3);
  Workload workload(num_views, num_queries);

  JsonReport report("match_program");
  report.Caveat("single-core-host caveat: single-host wall clock; the "
                "compiled-vs-generic ratio is the meaningful number, "
                "absolute candidates/sec are not comparable across hosts");
  report.Meta("views", num_views);
  report.Meta("queries", num_queries);
  report.Meta("timed_passes", reps);

  // ---- phase 1: the match kernel -----------------------------------------
  const MatchOptions mopts;
  ViewMatcher matcher(&workload.catalog(), mopts);
  ViewCatalog views(&workload.catalog());
  {
    auto service = workload.MakeService(num_views, /*use_filter_tree=*/false);
    // Reuse the service's registered definitions so both phases see the
    // identical catalog (AddView validation included).
    for (ViewId id = 0; id < service->views().num_views(); ++id) {
      std::string error;
      if (views.AddView(service->views().view(id).name(),
                        service->views().view(id).query(), &error) == nullptr) {
        std::fprintf(stderr, "re-registration failed: %s\n", error.c_str());
        return 1;
      }
    }
  }
  std::vector<std::shared_ptr<const MatchProgram>> programs;
  for (ViewId id = 0; id < views.num_views(); ++id) {
    programs.push_back(
        CompileMatchProgram(workload.catalog(), views.view(id), mopts));
  }

  const int64_t kernel_candidates =
      static_cast<int64_t>(num_queries) * views.num_views();
  int64_t generic_accepts = 0;
  double generic_kernel = -1;
  for (int rep = 0; rep < reps; ++rep) {
    int64_t accepts = 0;
    auto start = std::chrono::steady_clock::now();
    for (const SpjgQuery& q : workload.queries()) {
      for (ViewId id = 0; id < views.num_views(); ++id) {
        if (matcher.Match(q, views.view(id)).ok()) ++accepts;
      }
    }
    auto stop = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(stop - start).count();
    if (generic_kernel < 0 || s < generic_kernel) generic_kernel = s;
    generic_accepts = accepts;
  }

  int64_t compiled_accepts = 0, hits = 0, fallbacks = 0;
  double compiled_kernel = -1;
  MatchProgramScratch scratch;
  for (int rep = 0; rep < reps; ++rep) {
    int64_t accepts = 0;
    hits = fallbacks = 0;
    auto start = std::chrono::steady_clock::now();
    for (const SpjgQuery& q : workload.queries()) {
      MatchProbeContext pctx =
          BuildMatchProbeContext(workload.catalog(), q, mopts);
      for (ViewId id = 0; id < views.num_views(); ++id) {
        const MatchProgram* program = programs[id].get();
        bool ok;
        if (program != nullptr) {
          MatchExecResult exec = ExecuteMatchProgram(*program, pctx, scratch);
          if (exec.status == MatchExecStatus::kDecided) {
            ++hits;
            ok = exec.result.ok();
          } else {
            ++fallbacks;
            ok = matcher.Match(q, views.view(id)).ok();
          }
        } else {
          ++fallbacks;
          ok = matcher.Match(q, views.view(id)).ok();
        }
        if (ok) ++accepts;
      }
    }
    auto stop = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(stop - start).count();
    if (compiled_kernel < 0 || s < compiled_kernel) compiled_kernel = s;
    compiled_accepts = accepts;
  }
  if (compiled_accepts != generic_accepts) {
    std::fprintf(stderr, "TIER DIVERGENCE: kernel accepts %lld vs %lld\n",
                 static_cast<long long>(compiled_accepts),
                 static_cast<long long>(generic_accepts));
    return 1;
  }

  const double generic_cps = kernel_candidates / generic_kernel;
  const double compiled_cps = kernel_candidates / compiled_kernel;
  for (int pass = 0; pass < 2; ++pass) {
    const bool compiled = pass == 1;
    report.BeginRow();
    report.Field("phase", "match_kernel");
    report.Field("mode", compiled ? "compiled" : "generic");
    report.Field("seconds", compiled ? compiled_kernel : generic_kernel);
    report.Field("candidates", kernel_candidates);
    report.Field("candidates_per_sec", compiled ? compiled_cps : generic_cps);
    report.Field("accepts", generic_accepts);
    report.Field("compiled_hits", compiled ? hits : 0);
    report.Field("compiled_fallbacks",
                 compiled ? fallbacks : kernel_candidates);
    report.Field("vs_generic", compiled ? compiled_cps / generic_cps : 1.0);
    report.EndRow();
    std::fprintf(stderr, "kernel %-9s %8.3fs  %12.0f candidates/sec (%.2fx)\n",
                 compiled ? "compiled" : "generic",
                 compiled ? compiled_kernel : generic_kernel,
                 compiled ? compiled_cps : generic_cps,
                 compiled ? compiled_cps / generic_cps : 1.0);
  }

  // ---- phase 2: end-to-end FindSubstitutes -------------------------------
  struct ModeSpec {
    const char* name;
    bool compile;
    MatchCrossCheck cross_check;
  };
  const ModeSpec modes[] = {
      {"generic", false, MatchCrossCheck::kOff},
      {"compiled", true, MatchCrossCheck::kOff},
      {"compiled+enforce", true, MatchCrossCheck::kEnforce},
  };

  double e2e_generic_cps = -1;
  int64_t e2e_generic_subs = -1;
  for (const ModeSpec& mode : modes) {
    MatchingService::Options opts;
    opts.use_filter_tree = false;
    opts.compile_match_programs = mode.compile;
    opts.cross_check = mode.cross_check;
    auto service = workload.MakeService(num_views, opts);

    auto run_once = [&] {
      for (const SpjgQuery& q : workload.queries()) {
        (void)service->FindSubstitutes(q);
      }
    };
    run_once();  // warm-up
    service->ResetStats();
    double seconds = -1;
    MatchingStats stats;
    for (int rep = 0; rep < reps; ++rep) {
      if (rep > 0) service->ResetStats();
      auto start = std::chrono::steady_clock::now();
      run_once();
      auto stop = std::chrono::steady_clock::now();
      double s = std::chrono::duration<double>(stop - start).count();
      if (seconds < 0 || s < seconds) {
        seconds = s;
        stats = service->stats();
      }
    }

    const double cps = stats.full_tests / seconds;
    if (e2e_generic_cps < 0) {
      e2e_generic_cps = cps;
      e2e_generic_subs = stats.substitutes;
    } else if (stats.substitutes != e2e_generic_subs) {
      // The tiers must agree probe-for-probe; a different substitute
      // total means the compiled tier diverged from the oracle.
      std::fprintf(stderr,
                   "TIER DIVERGENCE: mode=%s substitutes=%lld generic=%lld\n",
                   mode.name, static_cast<long long>(stats.substitutes),
                   static_cast<long long>(e2e_generic_subs));
      return 1;
    }
    if (stats.cross_check_mismatches != 0) {
      std::fprintf(stderr, "CROSS-CHECK MISMATCHES: mode=%s count=%lld\n",
                   mode.name,
                   static_cast<long long>(stats.cross_check_mismatches));
      return 1;
    }

    report.BeginRow();
    report.Field("phase", "find_substitutes");
    report.Field("mode", mode.name);
    report.Field("seconds", seconds);
    report.Field("candidates", stats.full_tests);
    report.Field("candidates_per_sec", cps);
    report.Field("substitutes", stats.substitutes);
    report.Field("compiled_hits", stats.compiled_hits);
    report.Field("compiled_fallbacks", stats.compiled_fallbacks);
    report.Field("vs_generic",
                 e2e_generic_cps > 0 ? cps / e2e_generic_cps : 0.0);
    report.EndRow();
    std::fprintf(stderr, "e2e    %-17s %8.3fs  %12.0f candidates/sec (%.2fx)\n",
                 mode.name, seconds, cps,
                 e2e_generic_cps > 0 ? cps / e2e_generic_cps : 0.0);
  }
  report.Finish();

  if (compiled_cps < 2.0 * generic_cps) {
    std::fprintf(stderr,
                 "WARNING: compiled kernel below the 2x target (%.2fx)\n",
                 compiled_cps / generic_cps);
    return 1;
  }
  return 0;
}
