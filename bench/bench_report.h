// Unified bench output: every bench emits ONE machine-readable JSON
// document on stdout, committed under results/*.json, with the same
// envelope —
//
//   {
//     "bench": "<name>",
//     "host_hw_threads": N,
//     "caveat": "...",          // what the numbers do NOT mean on this host
//     <bench-specific metadata: knob values, workload sizes>,
//     "results": [ { <one measurement per row> }, ... ]
//   }
//
// so the experiment harness (and EXPERIMENTS.md readers) can diff runs
// across hosts without per-bench parsers. Human-readable progress goes
// to stderr; stdout carries only the document.
//
// Usage:
//   JsonReport report("pipeline_scaling");
//   report.Caveat("speedup > 1 requires real cores");
//   report.Meta("queries", num_queries);
//   ...
//   report.BeginRow();
//   report.Field("workers", w);
//   report.Field("seconds", secs);
//   report.EndRow();
//   ...
//   report.Finish();   // also run by the destructor

#ifndef MVOPT_BENCH_BENCH_REPORT_H_
#define MVOPT_BENCH_BENCH_REPORT_H_

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

namespace mvopt {
namespace bench {

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// bench metadata is ASCII by construction.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonReport {
 public:
  explicit JsonReport(const std::string& bench, std::FILE* out = stdout)
      : out_(out) {
    std::fprintf(out_, "{\n  \"bench\": \"%s\",\n  \"host_hw_threads\": %u",
                 JsonEscape(bench).c_str(),
                 std::thread::hardware_concurrency());
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { Finish(); }

  /// Host-dependent disclaimer recorded next to the numbers (e.g. the
  /// core count they were taken on). Metadata — call before BeginRow.
  void Caveat(const std::string& text) { Meta("caveat", text); }

  void Meta(const std::string& key, const std::string& value) {
    MetaKey(key);
    std::fprintf(out_, "\"%s\"", JsonEscape(value).c_str());
  }
  void Meta(const std::string& key, const char* value) {
    Meta(key, std::string(value));
  }
  void Meta(const std::string& key, int64_t value) {
    MetaKey(key);
    std::fprintf(out_, "%lld", static_cast<long long>(value));
  }
  void Meta(const std::string& key, int value) {
    Meta(key, static_cast<int64_t>(value));
  }
  void Meta(const std::string& key, unsigned value) {
    Meta(key, static_cast<int64_t>(value));
  }
  void Meta(const std::string& key, double value) {
    MetaKey(key);
    std::fprintf(out_, "%.4f", value);
  }
  void Meta(const std::string& key, bool value) {
    MetaKey(key);
    std::fprintf(out_, "%s", value ? "true" : "false");
  }

  void BeginRow() {
    assert(!in_row_);
    if (!rows_started_) {
      std::fprintf(out_, ",\n  \"results\": [\n");
      rows_started_ = true;
    } else {
      std::fprintf(out_, ",\n");
    }
    std::fprintf(out_, "    {");
    in_row_ = true;
    row_field_ = false;
  }

  void Field(const std::string& key, const std::string& value) {
    FieldKey(key);
    std::fprintf(out_, "\"%s\"", JsonEscape(value).c_str());
  }
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, int64_t value) {
    FieldKey(key);
    std::fprintf(out_, "%lld", static_cast<long long>(value));
  }
  void Field(const std::string& key, int value) {
    Field(key, static_cast<int64_t>(value));
  }
  void Field(const std::string& key, double value) {
    FieldKey(key);
    std::fprintf(out_, "%.4f", value);
  }
  void Field(const std::string& key, bool value) {
    FieldKey(key);
    std::fprintf(out_, "%s", value ? "true" : "false");
  }

  void EndRow() {
    assert(in_row_);
    std::fprintf(out_, " }");
    in_row_ = false;
    std::fflush(out_);
  }

  /// Closes the document (idempotent; the destructor calls it too).
  void Finish() {
    if (finished_) return;
    assert(!in_row_);
    if (rows_started_) {
      std::fprintf(out_, "\n  ]\n}\n");
    } else {
      std::fprintf(out_, ",\n  \"results\": []\n}\n");
    }
    std::fflush(out_);
    finished_ = true;
  }

 private:
  void MetaKey(const std::string& key) {
    assert(!rows_started_ && "metadata must precede the first row");
    std::fprintf(out_, ",\n  \"%s\": ", JsonEscape(key).c_str());
  }
  void FieldKey(const std::string& key) {
    assert(in_row_);
    std::fprintf(out_, "%s\"%s\": ", row_field_ ? ", " : " ",
                 JsonEscape(key).c_str());
    row_field_ = true;
  }

  std::FILE* out_;
  bool rows_started_ = false;
  bool in_row_ = false;
  bool row_field_ = false;
  bool finished_ = false;
};

}  // namespace bench
}  // namespace mvopt

#endif  // MVOPT_BENCH_BENCH_REPORT_H_
