// Parallel crash-recovery bench for the sharded catalog: time a full
// RecoverAll over a durable N-view catalog, serial (no pool) versus
// parallel (one task per shard on a ThreadPool), as the catalog and the
// shard count grow. Recovery here is WAL replay: parse + validate +
// per-shard filter-tree and lattice reconstruction, plus the post-replay
// invariant audit — the CPU-bound path sharding is meant to spread.
//
// Caveat: on a single-core container the parallel sweep degenerates to
// serial plus pool overhead — speedups only appear with real cores.
// The JSON records the worker count so readers can judge the numbers.
//
// Output: JSON to stdout (redirect into results/shard_recovery.json).
//
// Knobs: MVOPT_BENCH_VIEWS (max views, default 400),
//        MVOPT_BENCH_STEP  (sweep step, default 100).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "shard/sharded_catalog_service.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

namespace mvopt {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoi(v);
}

struct Row {
  int views = 0;
  int num_shards = 0;
  double seed_ms = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
};

double TimeRecoverAll(const Catalog* catalog,
                      const ShardedCatalogOptions& options, ThreadPool* pool,
                      int want_views) {
  ShardedCatalogService service(catalog, options);
  const auto start = Clock::now();
  const ShardRecoveryReport report = service.RecoverAll(pool);
  const double ms = MsSince(start);
  if (!report.all_healthy()) {
    std::fprintf(stderr, "recovery quarantined shards: %s\n",
                 report.ToJson().c_str());
    std::exit(1);
  }
  int total = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    total += service.shard_service(s).views().num_views();
  }
  if (total != want_views) {
    std::fprintf(stderr, "recovered %d views, want %d\n", total, want_views);
    std::exit(1);
  }
  return ms;
}

Row RunOne(const Catalog* catalog, const std::vector<SpjgQuery>& defs,
           int nviews, int num_shards, ThreadPool* pool) {
  Row row;
  row.views = nviews;
  row.num_shards = num_shards;
  char tmpl[] = "/tmp/mvopt_shard_bench_XXXXXX";
  const std::string dir = ::mkdtemp(tmpl);

  ShardedCatalogOptions options;
  options.num_shards = num_shards;
  options.dir = dir;
  {
    ShardedCatalogService service(catalog, options);
    const auto start = Clock::now();
    for (int i = 0; i < nviews; ++i) {
      std::string error;
      if (service.AddView("v" + std::to_string(i),
                          defs[static_cast<size_t>(i)],
                          &error) == kInvalidViewId) {
        std::fprintf(stderr, "registration failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
    row.seed_ms = MsSince(start);
  }

  row.serial_ms = TimeRecoverAll(catalog, options, nullptr, nviews);
  row.parallel_ms = TimeRecoverAll(catalog, options, pool, nviews);

  const std::string cmd = "rm -rf " + dir;
  (void)::system(cmd.c_str());
  return row;
}

int Main() {
  const int max_views = EnvInt("MVOPT_BENCH_VIEWS", 400);
  const int step = EnvInt("MVOPT_BENCH_STEP", 100);
  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = hw > 1 ? static_cast<int>(hw) - 1 : 1;

  Catalog catalog;
  const tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  (void)schema;
  tpch::WorkloadGenerator gen(&catalog, /*seed=*/7321);
  std::vector<SpjgQuery> defs;
  defs.reserve(static_cast<size_t>(max_views));
  for (int i = 0; i < max_views; ++i) defs.push_back(gen.GenerateView());

  ThreadPool pool(workers);
  std::vector<Row> rows;
  for (int views = step; views <= max_views; views += step) {
    for (int num_shards : {1, 4, 8}) {
      rows.push_back(RunOne(&catalog, defs, views, num_shards, &pool));
      std::fprintf(stderr, "views=%d shards=%d serial=%.1fms parallel=%.1fms\n",
                   rows.back().views, rows.back().num_shards,
                   rows.back().serial_ms, rows.back().parallel_ms);
    }
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"shard_recovery\",\n");
  std::printf("  \"pool_workers\": %d,\n", workers);
  std::printf("  \"hardware_concurrency\": %u,\n", hw);
  std::printf(
      "  \"note\": \"parallel = one recovery task per shard on the pool; "
      "on a single-core host this degenerates to serial plus pool "
      "overhead\",\n");
  std::printf("  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf(
        "    {\"views\": %d, \"num_shards\": %d, \"seed_ms\": %.3f, "
        "\"serial_recover_ms\": %.3f, \"parallel_recover_ms\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        r.views, r.num_shards, r.seed_ms, r.serial_ms, r.parallel_ms,
        r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace mvopt

int main() { return mvopt::Main(); }
