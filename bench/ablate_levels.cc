// Ablation A2: filter-tree level composition (§4.3 — "the conditions are
// independent and can be composed in any order"). Compares the paper's
// eight-level order against shallower trees and a reversed order:
// candidate counts stay identical (the conditions are conjunctive), but
// probe time shifts with how early the most selective conditions run.

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "index/filter_tree.h"

namespace mvopt {
namespace bench {
namespace {

struct LevelConfig {
  const char* name;
  std::vector<FilterLevel> spj;
  std::vector<FilterLevel> agg;
};

double ProbeSeconds(const Catalog& catalog, const ViewCatalog& views,
                    const LevelConfig& config,
                    const std::vector<QueryDescription>& queries,
                    int64_t* total_candidates) {
  FilterTree tree(&views.descriptions());
  tree.SetLevels(config.spj, config.agg);
  for (ViewId id = 0; id < views.num_views(); ++id) tree.AddView(id);
  (void)catalog;
  auto start = std::chrono::steady_clock::now();
  int64_t candidates = 0;
  for (const auto& qd : queries) {
    candidates += static_cast<int64_t>(tree.FindCandidates(qd).size());
  }
  auto end = std::chrono::steady_clock::now();
  *total_candidates = candidates;
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int Main() {
  SweepConfig config;
  const int num_views = config.max_views;
  const int num_queries = config.num_queries;

  Catalog catalog;
  tpch::BuildSchema(&catalog, 0.5);
  ViewCatalog views(&catalog);
  tpch::WorkloadGenerator view_gen(&catalog, 1);
  for (int i = 0; i < num_views; ++i) {
    std::string error;
    views.AddView("v" + std::to_string(i), view_gen.GenerateView(), &error);
  }
  tpch::WorkloadGenerator query_gen(&catalog, 77778);
  std::vector<QueryDescription> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(DescribeQuery(catalog, query_gen.GenerateQuery()));
  }

  using FL = FilterLevel;
  std::vector<FL> paper_spj = {FL::kHub,           FL::kSourceTables,
                               FL::kOutputExprs,   FL::kOutputColumns,
                               FL::kResidual,      FL::kRangeConstraints};
  std::vector<FL> paper_agg = paper_spj;
  paper_agg.push_back(FL::kGroupingExprs);
  paper_agg.push_back(FL::kGroupingColumns);

  std::vector<LevelConfig> configs;
  configs.push_back({"paper-order(8)", paper_spj, paper_agg});
  {
    std::vector<FL> rev_spj(paper_spj.rbegin(), paper_spj.rend());
    std::vector<FL> rev_agg(paper_agg.rbegin(), paper_agg.rend());
    configs.push_back({"reversed", rev_spj, rev_agg});
  }
  configs.push_back({"tables-only",
                     {FL::kHub, FL::kSourceTables},
                     {FL::kHub, FL::kSourceTables}});
  configs.push_back({"source-tables-only",
                     {FL::kSourceTables},
                     {FL::kSourceTables}});
  configs.push_back(
      {"columns-first",
       {FL::kOutputColumns, FL::kRangeConstraints, FL::kResidual,
        FL::kOutputExprs, FL::kSourceTables, FL::kHub},
       {FL::kGroupingColumns, FL::kGroupingExprs, FL::kOutputColumns,
        FL::kRangeConstraints, FL::kResidual, FL::kOutputExprs,
        FL::kSourceTables, FL::kHub}});

  std::printf("# Ablation: filter-tree level composition (%d views, %d "
              "queries)\n",
              views.num_views(), num_queries);
  std::printf("%-22s %14s %16s %16s\n", "config", "probe-time(s)",
              "candidates", "cand/query");
  for (const auto& c : configs) {
    int64_t candidates = 0;
    double secs = ProbeSeconds(catalog, views, c, queries, &candidates);
    std::printf("%-22s %14.3f %16lld %16.2f\n", c.name, secs,
                static_cast<long long>(candidates),
                static_cast<double>(candidates) / num_queries);
  }
  std::printf(
      "# note: candidate counts are identical for configs applying the\n"
      "# full condition set (conjunctive filters); prefix configs admit\n"
      "# more candidates.\n");
  return 0;
}

}  // namespace bench
}  // namespace mvopt

int main() { return mvopt::bench::Main(); }
