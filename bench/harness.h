// Shared setup for the §5 experiment benches: the TPC-H catalog, a pool
// of randomly generated views and queries (per the paper's §5 recipe),
// and helpers to run the optimizer over the query set with a given number
// of views installed.
//
// Knobs (environment variables):
//   MVOPT_BENCH_QUERIES   queries per measurement (default 1000, as in
//                         the paper; lower for quick runs)
//   MVOPT_BENCH_VIEWS     maximum number of views   (default 1000)
//   MVOPT_BENCH_STEP      view-count step           (default 200)

#ifndef MVOPT_BENCH_HARNESS_H_
#define MVOPT_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

namespace mvopt {
namespace bench {

inline int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoi(v);
}

struct SweepConfig {
  int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 1000);
  int max_views = EnvInt("MVOPT_BENCH_VIEWS", 1000);
  int step = EnvInt("MVOPT_BENCH_STEP", 200);

  std::vector<int> ViewCounts() const {
    std::vector<int> counts{0};
    for (int n = step; n <= max_views; n += step) counts.push_back(n);
    return counts;
  }
};

class Workload {
 public:
  Workload(int num_views, int num_queries, uint64_t seed = 1)
      : schema_(tpch::BuildSchema(&catalog_, 0.5)) {
    // Views and queries "generated in the same way but with a different
    // seed for the random number generator" (§5).
    tpch::WorkloadGenerator view_gen(&catalog_, seed);
    for (int i = 0; i < num_views; ++i) {
      views_.push_back(view_gen.GenerateView());
    }
    tpch::WorkloadGenerator query_gen(&catalog_, seed + 77777);
    for (int i = 0; i < num_queries; ++i) {
      queries_.push_back(query_gen.GenerateQuery());
    }
  }

  /// A matching service holding the first `n` views.
  std::unique_ptr<MatchingService> MakeService(int n,
                                               bool use_filter_tree) const {
    MatchingService::Options opts;
    opts.use_filter_tree = use_filter_tree;
    return MakeService(n, opts);
  }

  /// Same, with full control over the service options (observability,
  /// verification, quarantine).
  std::unique_ptr<MatchingService> MakeService(
      int n, const MatchingService::Options& opts) const {
    auto service = std::make_unique<MatchingService>(&catalog_, opts);
    tpch::WorkloadGenerator index_gen(&catalog_, 4242);
    for (int i = 0; i < n; ++i) {
      std::string error;
      ViewDefinition* v =
          service->AddView("v" + std::to_string(i), views_[i], &error);
      if (v == nullptr) {
        std::fprintf(stderr, "view %d rejected: %s\n", i, error.c_str());
        continue;
      }
      index_gen.AttachDefaultIndexes(v);
    }
    return service;
  }

  const Catalog& catalog() const { return catalog_; }
  const std::vector<SpjgQuery>& queries() const { return queries_; }
  int num_views_available() const { return static_cast<int>(views_.size()); }

 private:
  Catalog catalog_;
  tpch::Schema schema_;
  std::vector<SpjgQuery> views_;
  std::vector<SpjgQuery> queries_;
};

struct SweepPoint {
  int num_views = 0;
  double total_seconds = 0;           ///< total optimization time
  double view_matching_seconds = 0;   ///< time inside the rule
  int64_t invocations = 0;
  int64_t substitutes = 0;
  int64_t plans_using_views = 0;
  int64_t candidates = 0;  ///< from MatchingService stats
  int64_t full_tests = 0;
};

/// Optimizes every workload query against `n` views. `service` may be
/// null (pure no-view baseline).
inline SweepPoint RunSweepPoint(const Workload& workload,
                                MatchingService* service, int n,
                                const OptimizerOptions& options) {
  SweepPoint point;
  point.num_views = n;
  Optimizer optimizer(&workload.catalog(), service, options);
  auto start = std::chrono::steady_clock::now();
  for (const SpjgQuery& q : workload.queries()) {
    OptimizationResult r = optimizer.Optimize(q);
    point.view_matching_seconds += r.metrics.view_matching_seconds;
    point.invocations += r.metrics.view_matching_invocations;
    point.substitutes += r.metrics.substitutes_produced;
    if (r.uses_view) ++point.plans_using_views;
  }
  auto end = std::chrono::steady_clock::now();
  point.total_seconds = std::chrono::duration<double>(end - start).count();
  if (service != nullptr) {
    point.candidates = service->stats().candidates;
    point.full_tests = service->stats().full_tests;
  }
  return point;
}

}  // namespace bench
}  // namespace mvopt

#endif  // MVOPT_BENCH_HARNESS_H_
