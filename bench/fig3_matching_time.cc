// Figure 3 reproduction: total increase in optimization time (relative to
// zero views) and the portion of it spent inside the view-matching rule,
// as a function of the number of views. Paper shape: at 1000 views about
// half of the increase originates in view matching; with few views almost
// all of it does (most invocations produce no substitutes, so no extra
// optimizer work follows).

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);

  std::printf("# Figure 3: optimization-time increase and view-matching "
              "time\n");
  std::printf("%-8s %16s %18s %12s\n", "views", "total-increase(s)",
              "view-matching(s)", "vm-share");

  OptimizerOptions opts;
  double baseline = -1;
  for (int n : config.ViewCounts()) {
    auto service = workload.MakeService(n, /*use_filter_tree=*/true);
    SweepPoint p = RunSweepPoint(workload, service.get(), n, opts);
    if (baseline < 0) baseline = p.total_seconds;
    double increase = p.total_seconds - baseline;
    double share = increase > 0 ? p.view_matching_seconds / increase : 0;
    std::printf("%-8d %16.3f %18.3f %12.2f\n", n, increase,
                p.view_matching_seconds, share);
  }
  return 0;
}
