// Overhead of the rewrite soundness checker (src/verify) on the matching
// path: the same seeded view/query workload is pushed through
// FindSubstitutes with verification off, in log mode and in enforce mode.
// Every view definition is also replayed as a query so the checker sees a
// guaranteed self-match per view on top of the random matches — without
// this most invocations produce nothing and the checker never runs.
//
// Knobs: MVOPT_BENCH_VIEWS (default 200), MVOPT_BENCH_QUERIES (default
// 400).

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "verify/rewrite_checker.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 200);
  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 400);
  Workload workload(num_views, num_queries);

  std::printf("# Soundness-checker overhead on the matching path\n");
  std::printf("# views=%d queries=%d (+%d self-match replays per mode)\n",
              num_views, num_queries, num_views);
  std::printf("%-8s %12s %10s %10s %10s %12s\n", "mode", "seconds", "subs",
              "checked", "proven", "vs-off");

  double baseline = -1;
  for (VerifyMode mode :
       {VerifyMode::kOff, VerifyMode::kLog, VerifyMode::kEnforce}) {
    auto service = workload.MakeService(num_views, /*use_filter_tree=*/true);
    service->set_verify_mode(mode);

    auto run_once = [&] {
      for (ViewId id = 0; id < service->views().num_views(); ++id) {
        (void)service->FindSubstitutes(service->views().view(id).query());
      }
      for (const SpjgQuery& query : workload.queries()) {
        (void)service->FindSubstitutes(query);
      }
    };

    // Warm up caches, then take the best of three timed passes so mode
    // ordering and allocator state don't masquerade as checker cost.
    run_once();
    service->ResetStats();
    service->ResetVerifyStats();
    double seconds = -1;
    for (int rep = 0; rep < 3; ++rep) {
      if (rep > 0) {
        service->ResetStats();
        service->ResetVerifyStats();
      }
      auto start = std::chrono::steady_clock::now();
      run_once();
      auto stop = std::chrono::steady_clock::now();
      double s = std::chrono::duration<double>(stop - start).count();
      if (seconds < 0 || s < seconds) seconds = s;
    }
    if (baseline < 0) baseline = seconds;

    const VerifyStats vs = service->verify_stats();
    std::printf("%-8s %12.3f %10lld %10lld %10lld %11.2fx\n",
                VerifyModeName(mode), seconds,
                static_cast<long long>(service->stats().substitutes),
                static_cast<long long>(vs.checked),
                static_cast<long long>(vs.proven),
                baseline > 0 ? seconds / baseline : 0.0);
    if (vs.rejected != 0) {
      std::printf("# WARNING: %lld rejections (expected none)\n",
                  static_cast<long long>(vs.rejected));
      for (const auto& t : vs.rejection_traces) {
        std::printf("#   %s\n", t.c_str());
      }
    }
  }
  return 0;
}
