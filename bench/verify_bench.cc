// Overhead of the rewrite soundness checker (src/verify) on the matching
// path: the same seeded view/query workload is pushed through
// FindSubstitutes with verification off, in log mode and in enforce mode.
// Every view definition is also replayed as a query so the checker sees a
// guaranteed self-match per view on top of the random matches — without
// this most invocations produce nothing and the checker never runs.
//
// Output: JSON document on stdout (committed as
// results/verify_overhead.json; see bench/bench_report.h), progress on
// stderr.
//
// Knobs: MVOPT_BENCH_VIEWS (default 200), MVOPT_BENCH_QUERIES (default
// 400).

#include <chrono>
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/harness.h"
#include "verify/rewrite_checker.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 200);
  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 400);
  Workload workload(num_views, num_queries);

  JsonReport report("verify_overhead");
  report.Caveat("vs_off is a single-host wall-clock ratio; absolute "
                "seconds are not comparable across hosts");
  report.Meta("views", num_views);
  report.Meta("queries", num_queries);
  report.Meta("self_match_replays_per_mode", num_views);

  double baseline = -1;
  int exit_code = 0;
  for (VerifyMode mode :
       {VerifyMode::kOff, VerifyMode::kLog, VerifyMode::kEnforce}) {
    auto service = workload.MakeService(num_views, /*use_filter_tree=*/true);
    service->set_verify_mode(mode);

    auto run_once = [&] {
      for (ViewId id = 0; id < service->views().num_views(); ++id) {
        (void)service->FindSubstitutes(service->views().view(id).query());
      }
      for (const SpjgQuery& query : workload.queries()) {
        (void)service->FindSubstitutes(query);
      }
    };

    // Warm up caches, then take the best of three timed passes so mode
    // ordering and allocator state don't masquerade as checker cost.
    run_once();
    service->ResetStats();
    service->ResetVerifyStats();
    double seconds = -1;
    for (int rep = 0; rep < 3; ++rep) {
      if (rep > 0) {
        service->ResetStats();
        service->ResetVerifyStats();
      }
      auto start = std::chrono::steady_clock::now();
      run_once();
      auto stop = std::chrono::steady_clock::now();
      double s = std::chrono::duration<double>(stop - start).count();
      if (seconds < 0 || s < seconds) seconds = s;
    }
    if (baseline < 0) baseline = seconds;

    const VerifyStats vs = service->verify_stats();
    report.BeginRow();
    report.Field("mode", VerifyModeName(mode));
    report.Field("seconds", seconds);
    report.Field("substitutes", service->stats().substitutes);
    report.Field("checked", vs.checked);
    report.Field("proven", vs.proven);
    report.Field("rejected", vs.rejected);
    report.Field("vs_off", baseline > 0 ? seconds / baseline : 0.0);
    report.EndRow();
    std::fprintf(stderr, "%-8s %10.3fs  %lld checked, %lld proven\n",
                 VerifyModeName(mode), seconds,
                 static_cast<long long>(vs.checked),
                 static_cast<long long>(vs.proven));
    if (vs.rejected != 0) {
      std::fprintf(stderr, "WARNING: %lld rejections (expected none)\n",
                   static_cast<long long>(vs.rejected));
      for (const auto& t : vs.rejection_traces) {
        std::fprintf(stderr, "  %s\n", t.c_str());
      }
      exit_code = 1;
    }
  }
  report.Finish();
  return exit_code;
}
