// Recovery-time bench for the durable view catalog: how long it takes
// to (a) register a catalog through the WAL, (b) checkpoint it, and
// (c) bring it back after a restart — split into the raw store scan
// (decode + CRC) and the full rebuild (parse + validate + filter-tree
// and lattice reconstruction) — as the catalog grows.
//
// Two recovery shapes are measured per size: replaying a pure WAL (the
// worst case: every registration is a log record) and loading a fresh
// snapshot (the post-checkpoint fast path).
//
// Output: one row per catalog size, written to stdout (redirect into
// results/recovery_bench.txt).

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "index/matching_service.h"
#include "rewrite/catalog_store.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

namespace mvopt {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Row {
  int views = 0;
  double register_ms = 0;     // N AddView calls, WAL append + fsync each
  double wal_scan_ms = 0;     // CatalogStore::Recover, WAL only
  double wal_rebuild_ms = 0;  // full RecoverFrom, WAL only
  double checkpoint_ms = 0;   // snapshot write + WAL reset
  double snap_scan_ms = 0;    // CatalogStore::Recover, snapshot
  double snap_rebuild_ms = 0; // full RecoverFrom, snapshot
  int64_t wal_bytes = 0;
};

Row RunOne(const Catalog* catalog, const std::vector<SpjgQuery>& defs,
           int nviews) {
  Row row;
  row.views = nviews;
  char tmpl[] = "/tmp/mvopt_recovery_bench_XXXXXX";
  std::string dir = ::mkdtemp(tmpl);

  {
    MatchingService service(catalog);
    CatalogStore store(dir);
    service.AttachStore(&store);
    auto start = Clock::now();
    for (int i = 0; i < nviews; ++i) {
      std::string error;
      if (service.AddView("v" + std::to_string(i), defs[i], &error) ==
          nullptr) {
        std::fprintf(stderr, "registration failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
    row.register_ms = MsSince(start);
    row.wal_bytes = store.wal_bytes();
  }

  {
    CatalogStore store(dir);
    auto start = Clock::now();
    CatalogStore::RecoveredState state = store.Recover();
    row.wal_scan_ms = MsSince(start);
    if (state.report.views_recovered != nviews) {
      std::fprintf(stderr, "wal scan lost views: %s\n",
                   state.report.ToJson().c_str());
      std::exit(1);
    }
  }
  {
    MatchingService reborn(catalog);
    CatalogStore store(dir);
    auto start = Clock::now();
    RecoveryReport report = reborn.RecoverFrom(&store);
    row.wal_rebuild_ms = MsSince(start);
    if (reborn.views().num_views() != nviews || !report.quarantined.empty()) {
      std::fprintf(stderr, "wal rebuild lost views: %s\n",
                   report.ToJson().c_str());
      std::exit(1);
    }
    auto cp = Clock::now();
    reborn.Checkpoint();
    row.checkpoint_ms = MsSince(cp);
  }

  {
    CatalogStore store(dir);
    auto start = Clock::now();
    CatalogStore::RecoveredState state = store.Recover();
    row.snap_scan_ms = MsSince(start);
    if (!state.report.snapshot_loaded) {
      std::fprintf(stderr, "snapshot missing after checkpoint\n");
      std::exit(1);
    }
  }
  {
    MatchingService reborn(catalog);
    CatalogStore store(dir);
    auto start = Clock::now();
    (void)reborn.RecoverFrom(&store);
    row.snap_rebuild_ms = MsSince(start);
    if (reborn.views().num_views() != nviews) {
      std::fprintf(stderr, "snapshot rebuild lost views\n");
      std::exit(1);
    }
  }

  std::string cmd = "rm -rf " + dir;
  (void)::system(cmd.c_str());
  return row;
}

}  // namespace
}  // namespace mvopt

int main() {
  using namespace mvopt;
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  tpch::WorkloadGenerator gen(&catalog, 7);
  std::vector<SpjgQuery> defs;
  for (int i = 0; i < 1000; ++i) defs.push_back(gen.GenerateView());

  std::printf(
      "# Durable catalog recovery bench: times in ms, catalog sizes of\n"
      "# 100/500/1000 views. register = N WAL append+fsync cycles;\n"
      "# wal_scan / snap_scan = store decode only; wal_rebuild /\n"
      "# snap_rebuild = full RecoverFrom incl. parse + filter tree +\n"
      "# lattices; checkpoint = snapshot install + WAL reset.\n"
      "#\n"
      "# %6s %12s %10s %12s %12s %10s %13s %12s\n",
      "views", "register", "wal_scan", "wal_rebuild", "checkpoint",
      "snap_scan", "snap_rebuild", "wal_bytes");
  for (int n : {100, 500, 1000}) {
    Row row = RunOne(&catalog, defs, n);
    std::printf("  %6d %12.2f %10.2f %12.2f %12.2f %10.2f %13.2f %12lld\n",
                row.views, row.register_ms, row.wal_scan_ms,
                row.wal_rebuild_ms, row.checkpoint_ms, row.snap_scan_ms,
                row.snap_rebuild_ms,
                static_cast<long long>(row.wal_bytes));
  }
  return 0;
}
