// Micro-benchmarks of the view-matching algorithm itself (§3): single
// Match() calls for the paper's example shapes — plain SPJ subsumption,
// extra-table elimination through foreign-key joins, and aggregation
// rollup — plus a full MatchingService probe (filter + match) at 1000
// views.

#include <benchmark/benchmark.h>

#include "index/matching_service.h"
#include "rewrite/matcher.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

namespace mvopt {
namespace {

struct Fixture {
  Fixture() : schema(tpch::BuildSchema(&catalog, 0.5)) {}
  Catalog catalog;
  tpch::Schema schema;

  static ExprPtr Eq(ExprPtr a, ExprPtr b) {
    return Expr::MakeCompare(CompareOp::kEq, std::move(a), std::move(b));
  }
  static ExprPtr Gt(ExprPtr a, int64_t v) {
    return Expr::MakeCompare(CompareOp::kGt, std::move(a),
                             Expr::MakeLiteral(Value::Int64(v)));
  }
};

void BM_MatchSpj(benchmark::State& state) {
  Fixture f;
  SpjgBuilder vb(&f.catalog);
  int l = vb.AddTable("lineitem");
  int o = vb.AddTable("orders");
  vb.Where(f.Eq(vb.Col(l, "l_orderkey"), vb.Col(o, "o_orderkey")));
  vb.Where(f.Gt(vb.Col(l, "l_partkey"), 100));
  vb.Output(vb.Col(l, "l_orderkey"));
  vb.Output(vb.Col(l, "l_partkey"));
  vb.Output(vb.Col(o, "o_custkey"));
  ViewDefinition view(0, "v", vb.Build());

  SpjgBuilder qb(&f.catalog);
  int ql = qb.AddTable("lineitem");
  int qo = qb.AddTable("orders");
  qb.Where(f.Eq(qb.Col(ql, "l_orderkey"), qb.Col(qo, "o_orderkey")));
  qb.Where(f.Gt(qb.Col(ql, "l_partkey"), 500));
  qb.Output(qb.Col(ql, "l_orderkey"));
  SpjgQuery query = qb.Build();

  ViewMatcher matcher(&f.catalog);
  for (auto _ : state) {
    MatchResult r = matcher.Match(query, view);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchSpj);

void BM_MatchExtraTables(benchmark::State& state) {
  Fixture f;
  SpjgBuilder vb(&f.catalog);
  int l = vb.AddTable("lineitem");
  int o = vb.AddTable("orders");
  int c = vb.AddTable("customer");
  int n = vb.AddTable("nation");
  vb.Where(f.Eq(vb.Col(l, "l_orderkey"), vb.Col(o, "o_orderkey")));
  vb.Where(f.Eq(vb.Col(o, "o_custkey"), vb.Col(c, "c_custkey")));
  vb.Where(f.Eq(vb.Col(c, "c_nationkey"), vb.Col(n, "n_nationkey")));
  vb.Output(vb.Col(l, "l_orderkey"));
  vb.Output(vb.Col(l, "l_quantity"));
  ViewDefinition view(0, "v", vb.Build());

  SpjgBuilder qb(&f.catalog);
  int ql = qb.AddTable("lineitem");
  qb.Where(f.Gt(qb.Col(ql, "l_orderkey"), 1000));
  qb.Output(qb.Col(ql, "l_orderkey"));
  qb.Output(qb.Col(ql, "l_quantity"));
  SpjgQuery query = qb.Build();

  ViewMatcher matcher(&f.catalog);
  for (auto _ : state) {
    MatchResult r = matcher.Match(query, view);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchExtraTables);

void BM_MatchAggregationRollup(benchmark::State& state) {
  Fixture f;
  SpjgBuilder vb(&f.catalog);
  int l = vb.AddTable("lineitem");
  int o = vb.AddTable("orders");
  vb.Where(f.Eq(vb.Col(l, "l_orderkey"), vb.Col(o, "o_orderkey")));
  vb.Output(vb.Col(o, "o_custkey"));
  vb.Output(vb.Col(l, "l_suppkey"));
  vb.Output(Expr::MakeAggregate(AggKind::kCountStar, nullptr), "cnt");
  vb.Output(Expr::MakeAggregate(AggKind::kSum, vb.Col(l, "l_quantity")),
            "sumq");
  vb.GroupBy(vb.Col(o, "o_custkey"));
  vb.GroupBy(vb.Col(l, "l_suppkey"));
  ViewDefinition view(0, "v", vb.Build());

  SpjgBuilder qb(&f.catalog);
  int ql = qb.AddTable("lineitem");
  int qo = qb.AddTable("orders");
  qb.Where(f.Eq(qb.Col(ql, "l_orderkey"), qb.Col(qo, "o_orderkey")));
  qb.Output(qb.Col(qo, "o_custkey"));
  qb.Output(Expr::MakeAggregate(AggKind::kSum, qb.Col(ql, "l_quantity")),
            "q");
  qb.GroupBy(qb.Col(qo, "o_custkey"));
  SpjgQuery query = qb.Build();

  ViewMatcher matcher(&f.catalog);
  for (auto _ : state) {
    MatchResult r = matcher.Match(query, view);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MatchAggregationRollup);

void BM_ServiceProbe(benchmark::State& state) {
  const int num_views = static_cast<int>(state.range(0));
  Fixture f;
  MatchingService service(&f.catalog);
  tpch::WorkloadGenerator view_gen(&f.catalog, 5);
  for (int i = 0; i < num_views; ++i) {
    std::string error;
    service.AddView("v" + std::to_string(i), view_gen.GenerateView(),
                    &error);
  }
  tpch::WorkloadGenerator query_gen(&f.catalog, 999);
  std::vector<SpjgQuery> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(query_gen.GenerateQuery());
  size_t qi = 0;
  for (auto _ : state) {
    auto subs = service.FindSubstitutes(queries[qi++ % queries.size()]);
    benchmark::DoNotOptimize(subs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceProbe)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace mvopt

BENCHMARK_MAIN();
