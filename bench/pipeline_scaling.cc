// Parallel match-stage scaling: FindSubstitutes wall clock as a function
// of worker count and catalog size, with the filter tree on and off.
//
// With the filter tree ON at the paper's prune ratios (~1 candidate per
// probe at 1000 views) there is nothing to parallelize — those rows
// document that the serial fast path stays fast. The match-BOUND rows
// are the filter-OFF ones: every registered view is a candidate, so the
// match stage carries the probe and the pool pays off. The sweep also
// cross-checks that every worker count produces the identical substitute
// total — the determinism contract, observed from the outside.
//
// Output: JSON document on stdout (committed as
// results/pipeline_scaling.json; see bench/bench_report.h), progress on
// stderr. Knobs: MVOPT_BENCH_QUERIES / MVOPT_BENCH_VIEWS /
// MVOPT_BENCH_STEP (bench/harness.h).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/harness.h"
#include "common/query_context.h"
#include "common/thread_pool.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);
  const std::vector<int> worker_counts = {0, 1, 2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();

  JsonReport report("pipeline_scaling");
  char caveat[256];
  std::snprintf(caveat, sizeof(caveat),
                "measured on a host with %u hardware threads; workers > %u "
                "oversubscribe, and on a single-core host the sweep "
                "degenerates to an overhead measurement (speedup > 1 "
                "requires real cores)",
                hw, hw);
  report.Caveat(caveat);
  report.Meta("queries_per_point", config.num_queries);
  report.Meta("serial_baseline_workers", 0);

  for (int n : config.ViewCounts()) {
    if (n == 0) continue;
    for (bool use_filter_tree : {true, false}) {
      auto service = workload.MakeService(n, use_filter_tree);
      double baseline = -1;
      int64_t baseline_subs = -1;
      for (int workers : worker_counts) {
        ThreadPool pool(workers);
        int64_t substitutes = 0;
        auto start = std::chrono::steady_clock::now();
        for (const SpjgQuery& q : workload.queries()) {
          QueryContext ctx;
          if (workers > 0) ctx.set_match_pool(&pool);
          substitutes +=
              static_cast<int64_t>(service->FindSubstitutes(q, ctx).size());
        }
        auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        if (baseline < 0) {
          baseline = seconds;
          baseline_subs = substitutes;
        }
        if (substitutes != baseline_subs) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: views=%d filter=%d workers=%d "
                       "substitutes=%lld baseline=%lld\n",
                       n, use_filter_tree ? 1 : 0, workers,
                       static_cast<long long>(substitutes),
                       static_cast<long long>(baseline_subs));
          return 1;
        }
        report.BeginRow();
        report.Field("views", n);
        report.Field("filter", use_filter_tree ? "on" : "off");
        report.Field("workers", workers);
        report.Field("seconds", seconds);
        report.Field("speedup", baseline / seconds);
        report.Field("substitutes", substitutes);
        report.EndRow();
        std::fprintf(stderr, "views=%-5d filter=%-3s workers=%d  %8.3fs\n", n,
                     use_filter_tree ? "on" : "off", workers, seconds);
      }
    }
  }
  report.Finish();
  return 0;
}
