// Parallel match-stage scaling: FindSubstitutes wall clock as a function
// of worker count and catalog size, with the filter tree on and off.
//
// With the filter tree ON at the paper's prune ratios (~1 candidate per
// probe at 1000 views) there is nothing to parallelize — those rows
// document that the serial fast path stays fast. The match-BOUND rows
// are the filter-OFF ones: every registered view is a candidate, so the
// match stage carries the probe and the pool pays off. The sweep also
// cross-checks that every worker count produces the identical substitute
// total — the determinism contract, observed from the outside.
//
// Knobs: MVOPT_BENCH_QUERIES / MVOPT_BENCH_VIEWS / MVOPT_BENCH_STEP
// (bench/harness.h). Output: results/pipeline_scaling.txt via stdout.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/query_context.h"
#include "common/thread_pool.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);
  const std::vector<int> worker_counts = {0, 1, 2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("# Pipeline scaling: FindSubstitutes wall clock vs match-stage "
              "workers\n");
  std::printf("# %d queries per point; workers=0 is the serial pipeline "
              "(baseline)\n", config.num_queries);
  std::printf("# hardware threads: %u%s\n", hw,
              hw <= 1 ? "  (single-core host: the sweep degenerates to an "
                        "overhead measurement; speedup > 1 requires real "
                        "cores)"
                      : "");
  std::printf("%-8s %-8s %-8s %12s %10s %12s\n", "views", "filter", "workers",
              "seconds", "speedup", "substitutes");

  for (int n : config.ViewCounts()) {
    if (n == 0) continue;
    for (bool use_filter_tree : {true, false}) {
      auto service = workload.MakeService(n, use_filter_tree);
      double baseline = -1;
      int64_t baseline_subs = -1;
      for (int workers : worker_counts) {
        ThreadPool pool(workers);
        int64_t substitutes = 0;
        auto start = std::chrono::steady_clock::now();
        for (const SpjgQuery& q : workload.queries()) {
          QueryContext ctx;
          if (workers > 0) ctx.set_match_pool(&pool);
          substitutes +=
              static_cast<int64_t>(service->FindSubstitutes(q, ctx).size());
        }
        auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        if (baseline < 0) {
          baseline = seconds;
          baseline_subs = substitutes;
        }
        if (substitutes != baseline_subs) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: views=%d filter=%d workers=%d "
                       "substitutes=%lld baseline=%lld\n",
                       n, use_filter_tree ? 1 : 0, workers,
                       static_cast<long long>(substitutes),
                       static_cast<long long>(baseline_subs));
          return 1;
        }
        std::printf("%-8d %-8s %-8d %12.3f %10.2f %12lld\n", n,
                    use_filter_tree ? "on" : "off", workers, seconds,
                    baseline / seconds, static_cast<long long>(substitutes));
      }
    }
  }
  return 0;
}
