// Figure 4 reproduction: how many of the final execution plans use at
// least one materialized view, as a function of the number of views.
// Paper shape: diminishing returns — about 60% of queries already use a
// view at 200 views, rising to about 87% at 1000.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);

  std::printf("# Figure 4: final plans using materialized views\n");
  std::printf("%-8s %12s %10s\n", "views", "plans", "fraction");

  OptimizerOptions opts;
  for (int n : config.ViewCounts()) {
    auto service = workload.MakeService(n, /*use_filter_tree=*/true);
    SweepPoint p = RunSweepPoint(workload, service.get(), n, opts);
    std::printf("%-8d %12lld %10.2f\n", n,
                static_cast<long long>(p.plans_using_views),
                static_cast<double>(p.plans_using_views) /
                    static_cast<double>(config.num_queries));
  }
  return 0;
}
