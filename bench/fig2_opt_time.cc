// Figure 2 reproduction: total optimization time for the random query
// workload as a function of the number of materialized views, for the
// four series of the paper:
//   Alt&Filter     substitutes produced, filter tree enabled
//   NoAlt&Filter   view matching runs but produces no substitutes
//   Alt&NoFilter   substitutes produced, every view checked
//   NoAlt&NoFilter no substitutes, every view checked
//
// The paper's shape: optimization time grows linearly with the number of
// views; with the filter tree the increase at 1000 views is ~60%, without
// it ~110%.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  SweepConfig config;
  Workload workload(config.max_views, config.num_queries);

  std::printf("# Figure 2: optimization time vs number of views\n");
  std::printf("# %d queries per point (paper: 1000)\n", config.num_queries);
  std::printf("%-8s %14s %14s %14s %14s\n", "views", "Alt&Filter",
              "NoAlt&Filter", "Alt&NoFilter", "NoAlt&NoFilter");

  double baseline = 0;
  for (int n : config.ViewCounts()) {
    double secs[4] = {0, 0, 0, 0};
    int idx = 0;
    for (bool filter : {true, false}) {
      auto service = workload.MakeService(n, filter);
      for (bool alt : {true, false}) {
        OptimizerOptions opts;
        opts.produce_substitutes = alt;
        SweepPoint p = RunSweepPoint(workload, service.get(), n, opts);
        secs[idx * 2 + (alt ? 0 : 1)] = p.total_seconds;
      }
      ++idx;
    }
    if (n == 0) baseline = secs[0];
    std::printf("%-8d %14.3f %14.3f %14.3f %14.3f\n", n, secs[0], secs[1],
                secs[2], secs[3]);
  }
  std::printf("# baseline (0 views, Alt&Filter): %.3f s\n", baseline);
  std::printf(
      "# paper shape check: increase should be roughly linear in views,\n"
      "# and the NoFilter series should grow distinctly faster than the\n"
      "# Filter series.\n");
  return 0;
}
