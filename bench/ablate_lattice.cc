// Ablation A1: lattice index search vs. linear key scan (§4: "We can
// always do a linear scan and check every key but this may be slow if the
// node contains many keys"). Measures subset and superset searches over
// key populations of increasing size, plus insertion cost.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "index/lattice.h"

namespace mvopt {
namespace {

// Keys shaped like view source-table sets: small subsets of a bounded
// atom universe (8 TPC-H tables -> up to ~30 atoms with columns mixed in).
std::vector<LatticeIndex::Key> MakeKeys(int count, int universe,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<LatticeIndex::Key> keys;
  for (int i = 0; i < count; ++i) {
    LatticeIndex::Key k;
    int len = static_cast<int>(rng.Uniform(1, 6));
    for (int j = 0; j < len; ++j) {
      k.push_back(static_cast<uint32_t>(rng.Uniform(0, universe - 1)));
    }
    std::sort(k.begin(), k.end());
    k.erase(std::unique(k.begin(), k.end()), k.end());
    keys.push_back(std::move(k));
  }
  return keys;
}

void BM_LatticeSubsetSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto keys = MakeKeys(n, 24, 7);
  LatticeIndex index;
  for (const auto& k : keys) index.Insert(k);
  auto probes = MakeKeys(64, 24, 99);
  size_t i = 0;
  for (auto _ : state) {
    std::vector<int> out;
    index.SearchSubsets(probes[i++ % probes.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatticeSubsetSearch)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_LinearSubsetScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto keys = MakeKeys(n, 24, 7);
  LatticeIndex index;
  for (const auto& k : keys) index.Insert(k);
  auto probes = MakeKeys(64, 24, 99);
  size_t i = 0;
  for (auto _ : state) {
    std::vector<int> out;
    const auto& probe = probes[i++ % probes.size()];
    index.LinearScan(
        [&probe](const LatticeIndex::Key& k) {
          return LatticeIndex::IsSubset(k, probe);
        },
        &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearSubsetScan)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_LatticeSupersetSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto keys = MakeKeys(n, 24, 7);
  LatticeIndex index;
  for (const auto& k : keys) index.Insert(k);
  auto probes = MakeKeys(64, 24, 99);
  size_t i = 0;
  for (auto _ : state) {
    std::vector<int> out;
    index.SearchSupersets(probes[i++ % probes.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatticeSupersetSearch)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_LatticeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto keys = MakeKeys(n, 24, 7);
  for (auto _ : state) {
    LatticeIndex index;
    for (const auto& k : keys) index.Insert(k);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LatticeInsert)->Arg(32)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace mvopt

BENCHMARK_MAIN();
