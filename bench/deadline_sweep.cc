// Deadline sweep: plan quality under a per-query wall-clock budget.
// For 100/300/1000 installed views, optimizes the random query workload
// with deadlines from unlimited down to 100 microseconds and reports how
// often the budget trips, how many plans still use views, and the cost
// of the degraded plans relative to the unbounded optimizer (ratio 1.00
// = no quality loss). A degraded optimization must still return a valid
// plan — the harness asserts that on every query.
//
// Knobs: MVOPT_BENCH_QUERIES (default 1000).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/harness.h"
#include "common/query_budget.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;
  using std::chrono::microseconds;

  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 1000);
  const std::vector<int> view_counts{100, 300, 1000};
  // 0 = no deadline (reference run).
  const std::vector<int64_t> deadlines_us{0, 10000, 3000, 1000, 300, 100};

  Workload workload(1000, num_queries);

  std::printf("# Deadline sweep: plan quality vs per-query time budget\n");
  std::printf("# %d queries per point\n", num_queries);
  std::printf("%-8s %12s %10s %10s %12s %12s %12s %12s\n", "views",
              "deadline_us", "degraded", "use_views", "mean_ratio",
              "median_ratio", "total_s", "p_valid");

  for (int n : view_counts) {
    auto service = workload.MakeService(n, /*use_filter_tree=*/true);
    Optimizer optimizer(&workload.catalog(), service.get());
    std::vector<double> reference_costs;
    for (int64_t deadline_us : deadlines_us) {
      int degraded = 0;
      int use_views = 0;
      int valid = 0;
      std::vector<double> ratios;
      auto start = std::chrono::steady_clock::now();
      size_t qi = 0;
      for (const SpjgQuery& q : workload.queries()) {
        QueryBudget budget;
        if (deadline_us > 0) {
          budget.set_deadline_after(microseconds(deadline_us));
        }
        OptimizationResult r = optimizer.Optimize(q, &budget);
        if (r.plan == nullptr) {
          std::fprintf(stderr, "FATAL: no plan for query %zu\n", qi);
          return 1;
        }
        ++valid;
        if (r.degradation != DegradationReason::kNone) ++degraded;
        if (r.uses_view) ++use_views;
        if (deadline_us == 0) {
          reference_costs.push_back(r.cost);
        } else if (reference_costs[qi] > 0) {
          ratios.push_back(r.cost / reference_costs[qi]);
        }
        ++qi;
      }
      auto end = std::chrono::steady_clock::now();
      double total = std::chrono::duration<double>(end - start).count();
      double mean = 1.0;
      double median = 1.0;
      if (!ratios.empty()) {
        mean = 0;
        for (double r : ratios) mean += r;
        mean /= static_cast<double>(ratios.size());
        std::sort(ratios.begin(), ratios.end());
        median = ratios[ratios.size() / 2];
      }
      std::printf("%-8d %12lld %9.1f%% %9.1f%% %12.3f %12.3f %12.3f %8d/%d\n",
                  n, static_cast<long long>(deadline_us),
                  100.0 * degraded / num_queries,
                  100.0 * use_views / num_queries, mean, median, total, valid,
                  num_queries);
    }
  }
  std::printf(
      "# ratios: plan cost relative to the unbounded run (>= 1; 1.000 =\n"
      "# the deadline cost no plan quality). The mean is dominated by the\n"
      "# few queries whose view plan beats the base plan by orders of\n"
      "# magnitude; the median shows the typical query. p_valid must\n"
      "# always be full: a tripped budget degrades, it never fails.\n");
  return 0;
}
