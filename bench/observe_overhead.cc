// Observability overhead budget check: the off mode must be free.
//
// Measures per-probe MatchingService::FindSubstitutes latency in four
// configurations:
//
//   baseline     default options (no registry attached)
//   off          ObserveMode::kOff with a registry supplied
//   counters     ObserveMode::kCountersOnly
//   full-trace   ObserveMode::kFullTrace with a QueryTrace per probe
//
// and FAILS (nonzero exit) if the off configuration is more than 2%
// slower than baseline — off mode compiles down to null-pointer checks
// and must not read clocks or collect filter statistics. Counters and
// full-trace numbers are reported for the record, not gated.
//
// Each configuration is timed as min-of-reps over `inner` passes of the
// whole query set, with the configuration order rotated per repetition
// (min + rotation filter scheduler noise and drift). Knobs:
// MVOPT_BENCH_VIEWS (default 400), MVOPT_BENCH_QUERIES (default 300),
// MVOPT_BENCH_REPS (default 15), MVOPT_BENCH_INNER (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "observe/observe.h"
#include "observe/trace.h"

namespace {

using namespace mvopt;
using namespace mvopt::bench;

double TimeOnePass(MatchingService* service,
                   const std::vector<SpjgQuery>& queries, int inner,
                   bool with_trace, int64_t* sink) {
  auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < inner; ++it) {
    for (const SpjgQuery& q : queries) {
      if (with_trace) {
        QueryTrace trace;
        auto subs = service->FindSubstitutes(q, nullptr, &trace);
        *sink += static_cast<int64_t>(subs.size());
      } else {
        auto subs = service->FindSubstitutes(q);
        *sink += static_cast<int64_t>(subs.size());
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 400);
  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 300);
  const int reps = EnvInt("MVOPT_BENCH_REPS", 15);
  const int inner = EnvInt("MVOPT_BENCH_INNER", 3);

  Workload workload(num_views, num_queries);
  int64_t sink = 0;

  struct Config {
    const char* name;
    ObserveMode mode;
    bool attach_registry;
    bool with_trace;
    double seconds = 0;
  };
  Config configs[] = {
      {"baseline", ObserveMode::kOff, false, false},
      {"off", ObserveMode::kOff, true, false},
      {"counters", ObserveMode::kCountersOnly, true, false},
      {"full-trace", ObserveMode::kFullTrace, true, true},
  };

  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::vector<std::unique_ptr<MatchingService>> services;
  for (Config& config : configs) {
    MatchingService::Options opts;
    if (config.attach_registry) {
      registries.push_back(std::make_unique<MetricsRegistry>());
      opts.observe.mode = config.mode;
      opts.observe.registry = registries.back().get();
    }
    services.push_back(workload.MakeService(num_views, opts));
    config.seconds = 1e300;
  }
  // Interleave the repetitions across configurations — rotating the order
  // each round — so clock drift, frequency scaling, and cache warm-up hit
  // every mode equally; the first (warm-up) round is discarded by the min.
  const size_t num_configs = services.size();
  for (int r = 0; r < reps + 1; ++r) {
    for (size_t i = 0; i < num_configs; ++i) {
      const size_t c = (i + static_cast<size_t>(r)) % num_configs;
      const double pass = TimeOnePass(services[c].get(), workload.queries(),
                                      inner, configs[c].with_trace, &sink);
      if (r > 0) configs[c].seconds = std::min(configs[c].seconds, pass);
    }
  }

  const double baseline = configs[0].seconds;
  const int probes_per_pass = num_queries * inner;
  std::printf("# observe overhead: views=%d queries=%d inner=%d reps=%d "
              "(min-of-reps, seconds for %d probes)\n",
              num_views, num_queries, inner, reps, probes_per_pass);
  std::printf("%-12s %14s %14s %10s\n", "mode", "total(s)", "us/probe",
              "vs-base");
  for (const Config& config : configs) {
    std::printf("%-12s %14.6f %14.3f %+9.2f%%\n", config.name,
                config.seconds,
                config.seconds * 1e6 / probes_per_pass,
                (config.seconds / baseline - 1.0) * 100.0);
  }

  const double off_overhead = configs[1].seconds / baseline - 1.0;
  std::printf("# off-mode overhead: %+.2f%% (budget: +2%%)  [sink=%lld]\n",
              off_overhead * 100.0, static_cast<long long>(sink));
  if (off_overhead > 0.02) {
    std::fprintf(stderr,
                 "FAIL: off mode is %.2f%% slower than baseline "
                 "(budget 2%%)\n",
                 off_overhead * 100.0);
    return 1;
  }
  std::printf("PASS: off mode within the 2%% budget\n");
  return 0;
}
