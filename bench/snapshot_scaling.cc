// Probe-path scaling: concurrent FindSubstitutes throughput under the
// two probe disciplines — ProbeMode::kReaderLock (every probe takes the
// shared service lock, the pre-snapshot design) vs ProbeMode::kSnapshot
// (lock-free: pin the published snapshot through the epoch domain, zero
// shared lock acquisitions on the probe path by construction).
//
// Fixed-work design: every thread sweeps the query set a fixed number
// of rounds, so both modes execute the identical probe sequence and the
// only variable is the synchronization discipline. Emits JSON on stdout
// (committed as results/snapshot_scaling.json); the host_hw_threads
// caveat field records the core count the numbers were taken on —
// thread counts beyond it oversubscribe and measure scheduling, not
// lock scaling.
//
// Knobs: MVOPT_BENCH_QUERIES (default 100), MVOPT_BENCH_VIEWS (default
// 300), MVOPT_BENCH_ROUNDS (rounds per thread, default 20).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/query_context.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 100);
  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 300);
  const int rounds = EnvInt("MVOPT_BENCH_ROUNDS", 20);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts = {1, 4, 16};

  Workload workload(num_views, num_queries);

  std::printf("{\n");
  std::printf("  \"bench\": \"snapshot_scaling\",\n");
  std::printf("  \"host_hw_threads\": %u,\n", hw);
  std::printf("  \"caveat\": \"probes/sec measured on a host with %u "
              "hardware threads; points with threads > %u oversubscribe "
              "and measure scheduling, not synchronization scaling\",\n",
              hw, hw);
  std::printf("  \"views\": %d,\n", num_views);
  std::printf("  \"queries\": %d,\n", num_queries);
  std::printf("  \"rounds_per_thread\": %d,\n", rounds);
  std::printf("  \"probe_path_shared_lock_acquisitions\": "
              "{ \"reader_lock\": \"one per probe\", \"snapshot\": 0 },\n");
  std::printf("  \"results\": [\n");

  bool first = true;
  for (auto mode : {MatchingService::ProbeMode::kReaderLock,
                    MatchingService::ProbeMode::kSnapshot}) {
    const bool is_snapshot = mode == MatchingService::ProbeMode::kSnapshot;
    MatchingService::Options options;
    options.probe_mode = mode;
    auto service = workload.MakeService(num_views, options);

    for (int threads : thread_counts) {
      std::atomic<int64_t> substitutes{0};
      std::vector<std::thread> probers;
      const auto start = std::chrono::steady_clock::now();
      for (int t = 0; t < threads; ++t) {
        probers.emplace_back([&] {
          int64_t local = 0;
          for (int r = 0; r < rounds; ++r) {
            for (const SpjgQuery& q : workload.queries()) {
              QueryContext ctx;
              local += static_cast<int64_t>(
                  service->FindSubstitutes(q, ctx).size());
            }
          }
          substitutes.fetch_add(local);
        });
      }
      for (std::thread& p : probers) p.join();
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const int64_t probes =
          static_cast<int64_t>(threads) * rounds * num_queries;
      std::printf("%s    { \"mode\": \"%s\", \"threads\": %d, "
                  "\"probes\": %lld, \"seconds\": %.4f, "
                  "\"probes_per_sec\": %.0f, \"substitutes\": %lld }",
                  first ? "" : ",\n", is_snapshot ? "snapshot" : "reader_lock",
                  threads, static_cast<long long>(probes), seconds,
                  probes / seconds, static_cast<long long>(substitutes.load()));
      first = false;
      std::fflush(stdout);
      std::fprintf(stderr, "%-12s threads=%-3d %10.0f probes/sec\n",
                   is_snapshot ? "snapshot" : "reader_lock", threads,
                   probes / seconds);
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
