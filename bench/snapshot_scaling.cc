// Probe-path scaling: concurrent FindSubstitutes throughput under the
// two probe disciplines — ProbeMode::kReaderLock (every probe takes the
// shared service lock, the pre-snapshot design) vs ProbeMode::kSnapshot
// (lock-free: pin the published snapshot through the epoch domain, zero
// shared lock acquisitions on the probe path by construction).
//
// Fixed-work design: every thread sweeps the query set a fixed number
// of rounds, so both modes execute the identical probe sequence and the
// only variable is the synchronization discipline. Emits JSON on stdout
// (committed as results/snapshot_scaling.json); the host_hw_threads
// caveat field records the core count the numbers were taken on —
// thread counts beyond it oversubscribe and measure scheduling, not
// lock scaling.
//
// Knobs: MVOPT_BENCH_QUERIES (default 100), MVOPT_BENCH_VIEWS (default
// 300), MVOPT_BENCH_ROUNDS (rounds per thread, default 20).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_report.h"
#include "bench/harness.h"
#include "common/query_context.h"

int main() {
  using namespace mvopt;
  using namespace mvopt::bench;

  const int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 100);
  const int num_views = EnvInt("MVOPT_BENCH_VIEWS", 300);
  const int rounds = EnvInt("MVOPT_BENCH_ROUNDS", 20);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts = {1, 4, 16};

  Workload workload(num_views, num_queries);

  JsonReport report("snapshot_scaling");
  char caveat[256];
  std::snprintf(caveat, sizeof(caveat),
                "probes/sec measured on a host with %u hardware threads; "
                "points with threads > %u oversubscribe and measure "
                "scheduling, not synchronization scaling",
                hw, hw);
  report.Caveat(caveat);
  report.Meta("views", num_views);
  report.Meta("queries", num_queries);
  report.Meta("rounds_per_thread", rounds);
  report.Meta("probe_path_shared_lock_acquisitions_reader_lock",
              "one per probe");
  report.Meta("probe_path_shared_lock_acquisitions_snapshot", 0);

  for (auto mode : {MatchingService::ProbeMode::kReaderLock,
                    MatchingService::ProbeMode::kSnapshot}) {
    const bool is_snapshot = mode == MatchingService::ProbeMode::kSnapshot;
    MatchingService::Options options;
    options.probe_mode = mode;
    auto service = workload.MakeService(num_views, options);

    for (int threads : thread_counts) {
      std::atomic<int64_t> substitutes{0};
      std::vector<std::thread> probers;
      const auto start = std::chrono::steady_clock::now();
      for (int t = 0; t < threads; ++t) {
        probers.emplace_back([&] {
          int64_t local = 0;
          for (int r = 0; r < rounds; ++r) {
            for (const SpjgQuery& q : workload.queries()) {
              QueryContext ctx;
              local += static_cast<int64_t>(
                  service->FindSubstitutes(q, ctx).size());
            }
          }
          substitutes.fetch_add(local);
        });
      }
      for (std::thread& p : probers) p.join();
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const int64_t probes =
          static_cast<int64_t>(threads) * rounds * num_queries;
      report.BeginRow();
      report.Field("mode", is_snapshot ? "snapshot" : "reader_lock");
      report.Field("threads", threads);
      report.Field("probes", probes);
      report.Field("seconds", seconds);
      report.Field("probes_per_sec", probes / seconds);
      report.Field("substitutes", substitutes.load());
      report.EndRow();
      std::fprintf(stderr, "%-12s threads=%-3d %10.0f probes/sec\n",
                   is_snapshot ? "snapshot" : "reader_lock", threads,
                   probes / seconds);
    }
  }
  report.Finish();
  return 0;
}
