// The paper's Example 4 end-to-end: an aggregation view grouped by
// o_custkey answers a query that groups by c_nationkey — but only because
// the optimizer also generates the pre-aggregated alternative
//
//   select c_nationkey, sum(rev)
//   from customer, (select o_custkey, sum(...) as rev
//                   from lineitem, orders
//                   where l_orderkey = o_orderkey
//                   group by o_custkey) as iq
//   where c_custkey = o_custkey group by c_nationkey
//
// on whose inner query the view-matching rule fires. "This is a case
// where integration with the optimizer helps."

#include <chrono>
#include <cstdio>

#include "engine/database.h"
#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_exec.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"

using namespace mvopt;

int main() {
  Catalog catalog;
  tpch::Schema schema = tpch::BuildSchema(&catalog, 0.002);
  Database db(&catalog);
  tpch::DataGenOptions dg;
  dg.scale_factor = 0.002;
  tpch::GenerateData(&db, schema, dg);

  MatchingService service(&catalog);

  // create view v4: revenue per customer.
  SpjgBuilder vb(&catalog);
  int l = vb.AddTable("lineitem");
  int o = vb.AddTable("orders");
  vb.Where(Expr::MakeCompare(CompareOp::kEq, vb.Col(l, "l_orderkey"),
                             vb.Col(o, "o_orderkey")));
  vb.Output(vb.Col(o, "o_custkey"));
  vb.Output(Expr::MakeAggregate(AggKind::kCountStar, nullptr), "cnt");
  vb.Output(Expr::MakeAggregate(
                AggKind::kSum,
                Expr::MakeArith(ArithOp::kMul, vb.Col(l, "l_quantity"),
                                vb.Col(l, "l_extendedprice"))),
            "revenue");
  vb.GroupBy(vb.Col(o, "o_custkey"));
  std::string error;
  ViewDefinition* v4 = service.AddView("v4", vb.Build(), &error);
  if (v4 == nullptr) {
    std::printf("rejected: %s\n", error.c_str());
    return 1;
  }
  IndexDef cidx;
  cidx.name = "v4_cidx";
  cidx.key_columns = {0};
  cidx.unique = true;
  v4->set_clustered_index(cidx);
  db.MaterializeView(v4);
  std::printf("view v4 materialized: %lld rows\n\n",
              static_cast<long long>(
                  catalog.table(v4->materialized_table()).row_count()));

  // Query: revenue per nation (requires joining customer).
  SpjgBuilder qb(&catalog);
  int ql = qb.AddTable("lineitem");
  int qo = qb.AddTable("orders");
  int qc = qb.AddTable("customer");
  qb.Where(Expr::MakeCompare(CompareOp::kEq, qb.Col(ql, "l_orderkey"),
                             qb.Col(qo, "o_orderkey")));
  qb.Where(Expr::MakeCompare(CompareOp::kEq, qb.Col(qo, "o_custkey"),
                             qb.Col(qc, "c_custkey")));
  qb.Output(qb.Col(qc, "c_nationkey"));
  qb.Output(Expr::MakeAggregate(
                AggKind::kSum,
                Expr::MakeArith(ArithOp::kMul, qb.Col(ql, "l_quantity"),
                                qb.Col(ql, "l_extendedprice"))),
            "revenue");
  qb.GroupBy(qb.Col(qc, "c_nationkey"));
  SpjgQuery query = qb.Build();
  std::printf("query:\n%s\n\n", query.ToSql(catalog).c_str());

  Optimizer optimizer(&catalog, &service);
  OptimizationResult result = optimizer.Optimize(query);
  std::printf("best plan (cost %.0f, uses view: %s):\n%s\n", result.cost,
              result.uses_view ? "yes" : "no",
              result.plan->ToString(catalog).c_str());
  std::printf("view-matching rule: %lld invocations, %lld substitutes\n\n",
              static_cast<long long>(
                  result.metrics.view_matching_invocations),
              static_cast<long long>(result.metrics.substitutes_produced));

  OptimizerOptions no_views_opts;
  no_views_opts.enable_view_matching = false;
  Optimizer baseline(&catalog, &service, no_views_opts);
  OptimizationResult base = baseline.Optimize(query);
  std::printf("baseline plan (cost %.0f):\n%s\n", base.cost,
              base.plan->ToString(catalog).c_str());

  PlanExecutor exec(&db);
  auto t0 = std::chrono::steady_clock::now();
  auto rows1 = exec.Execute(result.plan);
  auto t1 = std::chrono::steady_clock::now();
  auto rows2 = exec.Execute(base.plan);
  auto t2 = std::chrono::steady_clock::now();
  double s1 = std::chrono::duration<double>(t1 - t0).count();
  double s2 = std::chrono::duration<double>(t2 - t1).count();
  std::printf("%zu nations; %.4fs via v4 vs %.4fs from base (%.1fx)\n",
              rows1.size(), s1, s2, s2 / std::max(1e-9, s1));
  if (rows1.size() != rows2.size()) {
    std::printf("ERROR: result sizes differ!\n");
    return 1;
  }
  return 0;
}
