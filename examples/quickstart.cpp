// Quickstart: define a materialized view over TPC-H, let the optimizer
// rewrite a query to use it, and execute both plans.
//
// Mirrors the paper's Example 1: an aggregation view over part ⋈ lineitem
// with a range and a LIKE predicate, a count_big(*) column and a SUM.

#include <chrono>
#include <cstdio>

#include "engine/database.h"
#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_exec.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"

using namespace mvopt;

namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main() {
  // 1. Catalog + data (synthetic TPC-H at a small scale factor).
  Catalog catalog;
  tpch::Schema schema = tpch::BuildSchema(&catalog, 0.002);
  Database db(&catalog);
  tpch::DataGenOptions dg;
  dg.scale_factor = 0.002;
  tpch::GenerateData(&db, schema, dg);
  std::printf("TPC-H loaded: %lld lineitem rows\n\n",
              static_cast<long long>(
                  catalog.table(schema.lineitem).row_count()));

  // 2. Create the paper's Example 1 view:
  //      create view v1 as
  //      select p_partkey, p_name, p_retailprice, count_big(*) as cnt,
  //             sum(l_extendedprice * l_quantity) as gross_revenue
  //      from lineitem, part
  //      where p_partkey < 1000 and p_name like '%steel%'
  //        and p_partkey = l_partkey
  //      group by p_partkey, p_name, p_retailprice
  MatchingService service(&catalog);
  SpjgBuilder vb(&catalog);
  int l = vb.AddTable("lineitem");
  int p = vb.AddTable("part");
  vb.Where(Expr::MakeCompare(CompareOp::kLt, vb.Col(p, "p_partkey"),
                             Expr::MakeLiteral(Value::Int64(1000))));
  vb.Where(Expr::MakeLike(vb.Col(p, "p_name"), "%steel%"));
  vb.Where(Expr::MakeCompare(CompareOp::kEq, vb.Col(p, "p_partkey"),
                             vb.Col(l, "l_partkey")));
  vb.Output(vb.Col(p, "p_partkey"));
  vb.Output(vb.Col(p, "p_name"));
  vb.Output(vb.Col(p, "p_retailprice"));
  vb.Output(Expr::MakeAggregate(AggKind::kCountStar, nullptr), "cnt");
  vb.Output(Expr::MakeAggregate(
                AggKind::kSum,
                Expr::MakeArith(ArithOp::kMul, vb.Col(l, "l_extendedprice"),
                                vb.Col(l, "l_quantity"))),
            "gross_revenue");
  vb.GroupBy(vb.Col(p, "p_partkey"));
  vb.GroupBy(vb.Col(p, "p_name"));
  vb.GroupBy(vb.Col(p, "p_retailprice"));

  std::string error;
  ViewDefinition* v1 = service.AddView("v1", vb.Build(), &error);
  if (v1 == nullptr) {
    std::printf("view rejected: %s\n", error.c_str());
    return 1;
  }
  // create unique clustered index v1_cidx on v1(p_partkey)
  IndexDef cidx;
  cidx.name = "v1_cidx";
  cidx.key_columns = {0};
  cidx.unique = false;  // p_partkey alone is the leading key here
  v1->set_clustered_index(cidx);
  db.MaterializeView(v1);
  std::printf("created view v1:\n%s\n\nmaterialized: %lld rows\n\n",
              v1->query().ToSql(catalog).c_str(),
              static_cast<long long>(
                  catalog.table(v1->materialized_table()).row_count()));

  // 3. A narrower query against the base tables.
  SpjgBuilder qb(&catalog);
  int ql = qb.AddTable("lineitem");
  int qp = qb.AddTable("part");
  qb.Where(Expr::MakeCompare(CompareOp::kLt, qb.Col(qp, "p_partkey"),
                             Expr::MakeLiteral(Value::Int64(500))));
  qb.Where(Expr::MakeLike(qb.Col(qp, "p_name"), "%steel%"));
  qb.Where(Expr::MakeCompare(CompareOp::kEq, qb.Col(qp, "p_partkey"),
                             qb.Col(ql, "l_partkey")));
  qb.Output(qb.Col(qp, "p_partkey"));
  qb.Output(Expr::MakeAggregate(
                AggKind::kSum,
                Expr::MakeArith(ArithOp::kMul, qb.Col(ql, "l_extendedprice"),
                                qb.Col(ql, "l_quantity"))),
            "revenue");
  qb.GroupBy(qb.Col(qp, "p_partkey"));
  SpjgQuery query = qb.Build();
  std::printf("query:\n%s\n\n", query.ToSql(catalog).c_str());

  // 4. Optimize with and without the view. The QueryContext carries the
  // per-query knobs (deadline budget, staleness tolerance, trace, match
  // pool); default-constructed it behaves exactly like the plain call.
  Optimizer with_views(&catalog, &service);
  Optimizer without_views(&catalog, nullptr);
  QueryContext ctx;
  ctx.EmplaceBudget().set_deadline_after(std::chrono::seconds(5));
  OptimizationResult rewritten = with_views.Optimize(query, ctx);
  OptimizationResult baseline = without_views.Optimize(query);
  std::printf("plan with view matching (cost %.0f):\n%s\n",
              rewritten.cost, rewritten.plan->ToString(catalog).c_str());
  std::printf("plan without views (cost %.0f):\n%s\n", baseline.cost,
              baseline.plan->ToString(catalog).c_str());

  // 5. Execute both; results must agree, the view plan should be faster.
  PlanExecutor exec(&db);
  auto t0 = std::chrono::steady_clock::now();
  auto rows_view = exec.Execute(rewritten.plan);
  auto t1 = std::chrono::steady_clock::now();
  auto rows_base = exec.Execute(baseline.plan);
  auto t2 = std::chrono::steady_clock::now();
  std::printf("rows: %zu (view plan) vs %zu (base plan)\n",
              rows_view.size(), rows_base.size());
  std::printf("execution: %.4fs via view, %.4fs via base tables (%.1fx)\n",
              Seconds(t0, t1), Seconds(t1, t2),
              Seconds(t1, t2) / std::max(1e-9, Seconds(t0, t1)));

  // 6. The two-tier match stage, observed from the outside: every
  // candidate that reached the match stage was decided by exactly one
  // tier — the view's compiled MatchProgram or the generic oracle.
  const MatchingStats stats = service.stats();
  std::printf("\nmatch tiers: %lld candidates = %lld compiled + %lld "
              "generic-fallback (invariant %s)\n",
              static_cast<long long>(stats.full_tests),
              static_cast<long long>(stats.compiled_hits),
              static_cast<long long>(stats.compiled_fallbacks),
              stats.compiled_hits + stats.compiled_fallbacks ==
                      stats.full_tests
                  ? "holds"
                  : "VIOLATED");
  return stats.compiled_hits + stats.compiled_fallbacks == stats.full_tests
             ? 0
             : 1;
}
