// Cached query results as temporary materialized views — the paper's
// introduction motivates scalability with exactly this scenario: "A smart
// system might also cache and reuse results of previously computed
// queries. Cached results can be treated as temporary materialized views,
// easily resulting in thousands of materialized views."
//
// This example runs a stream of random queries; every answered query is
// materialized and registered as a view, so later (narrower) queries can
// be answered from the cache. Prints the running hit rate and the
// filter-tree statistics at the end.

#include <cstdio>
#include <string>

#include "engine/database.h"
#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_exec.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"
#include "tpch/workload.h"

using namespace mvopt;

int main(int argc, char** argv) {
  const int num_queries = argc > 1 ? std::atoi(argv[1]) : 300;

  Catalog catalog;
  tpch::Schema schema = tpch::BuildSchema(&catalog, 0.001);
  Database db(&catalog);
  tpch::DataGenOptions dg;
  dg.scale_factor = 0.001;
  tpch::GenerateData(&db, schema, dg);

  MatchingService service(&catalog);
  Optimizer optimizer(&catalog, &service);
  PlanExecutor exec(&db);

  // Queries come from a generator whose cardinality band widens over the
  // view band so earlier results often contain later ones.
  std::vector<TableId> base_tables = {
      schema.region,   schema.nation,   schema.supplier, schema.part,
      schema.partsupp, schema.customer, schema.orders,   schema.lineitem};
  tpch::WorkloadOptions wopts;
  wopts.query_card_lo = 0.05;
  wopts.query_card_hi = 0.60;
  tpch::WorkloadGenerator gen(&catalog, base_tables, 2024, wopts);

  int hits = 0;
  int cached = 0;
  for (int i = 0; i < num_queries; ++i) {
    SpjgQuery query = gen.GenerateQuery();
    OptimizationResult result = optimizer.Optimize(query);
    if (result.plan == nullptr) continue;
    if (result.uses_view) ++hits;
    exec.Execute(result.plan);

    // Cache this result as a temporary materialized view (only queries
    // that qualify as indexable views — aggregation queries need their
    // count(*) column, which the generator always includes).
    std::string error;
    ViewDefinition* v = service.AddView("cache_" + std::to_string(i), query,
                                        &error);
    if (v != nullptr) {
      db.MaterializeView(v);
      ++cached;
    }
    if ((i + 1) % 50 == 0) {
      std::printf("after %4d queries: %4d cached results, cache hit rate "
                  "%.1f%%\n",
                  i + 1, cached, 100.0 * hits / (i + 1));
    }
  }

  const MatchingStats& stats = service.stats();
  std::printf("\nview-matching rule: %lld invocations, %lld candidates "
              "examined (%.2f%% of views on average), %lld substitutes\n",
              static_cast<long long>(stats.invocations),
              static_cast<long long>(stats.candidates),
              stats.invocations > 0 && cached > 0
                  ? 100.0 * static_cast<double>(stats.candidates) /
                        (static_cast<double>(stats.invocations) * cached)
                  : 0.0,
              static_cast<long long>(stats.substitutes));
  std::printf("final cache: %d materialized result views; overall hit rate "
              "%.1f%%\n",
              cached, 100.0 * hits / num_queries);
  return 0;
}
