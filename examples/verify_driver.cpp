// Verify driver: exercises the src/verify soundness layer end to end.
//
//   1. Runs a seeded TPC-H workload through the matching service in `log`
//      mode and prints the checker's verdict tally (every substitute the
//      matcher produces should be proven).
//   2. Repeats in `enforce` mode and confirms no substitute is discarded.
//   3. Hand-corrupts a substitute and shows the checker rejecting it with
//      a machine-readable code.
//   4. Audits the structural invariants of the service's filter tree and
//      a standalone lattice, including after deletions.
//   5. Runs the optimizer with memo auditing on and reports the result.
//
// Exits non-zero on any unexpected outcome, so it doubles as a smoke
// check in CI.

#include <cstdio>
#include <string>
#include <vector>

#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "tpch/schema.h"
#include "tpch/workload.h"
#include "verify/invariant_auditor.h"
#include "verify/rewrite_checker.h"

using namespace mvopt;

namespace {

int g_failures = 0;

void Expect(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    ++g_failures;
  }
}

void PrintVerifyStats(const VerifyStats& vs) {
  std::printf("  checked=%lld proven=%lld rejected=%lld\n",
              static_cast<long long>(vs.checked),
              static_cast<long long>(vs.proven),
              static_cast<long long>(vs.rejected));
  for (int c = 0; c < kNumCheckCodes; ++c) {
    if (vs.by_code[c] == 0) continue;
    std::printf("    %-24s %lld\n", CheckCodeName(static_cast<CheckCode>(c)),
                static_cast<long long>(vs.by_code[c]));
  }
  for (const std::string& trace : vs.rejection_traces) {
    std::printf("    trace: %s\n", trace.c_str());
  }
}

// Replays every registered view's own definition as a query (each is
// guaranteed at least its self-match), then a batch of random queries for
// diversity.
void RunWorkload(MatchingService* service, uint64_t seed, int num_queries) {
  for (ViewId id = 0; id < service->views().num_views(); ++id) {
    (void)service->FindSubstitutes(service->views().view(id).query());
  }
  tpch::WorkloadGenerator query_gen(&service->catalog(), seed);
  for (int i = 0; i < num_queries; ++i) {
    (void)service->FindSubstitutes(query_gen.GenerateQuery());
  }
}

}  // namespace

int main() {
  Catalog catalog;
  tpch::BuildSchema(&catalog, 0.001);

  // --- 1+2: seeded workload under log, then enforce, mode. -------------
  MatchingService::Options opts;
  opts.verify_mode = VerifyMode::kLog;
  MatchingService service(&catalog, opts);

  tpch::WorkloadGenerator view_gen(&catalog, 101);
  for (int i = 0; i < 60; ++i) {
    std::string error;
    if (service.AddView("v" + std::to_string(i), view_gen.GenerateView(),
                        &error) == nullptr) {
      std::printf("AddView failed: %s\n", error.c_str());
      return 1;
    }
  }

  std::printf("mode=%s\n", VerifyModeName(service.verify_mode()));
  RunWorkload(&service, 202, 120);
  PrintVerifyStats(service.verify_stats());
  Expect(service.verify_stats().checked > 0, "log mode checked substitutes");
  Expect(service.verify_stats().rejected == 0,
         "log mode: every matcher substitute proves");

  int64_t produced_in_log_mode = service.stats().substitutes;
  service.ResetVerifyStats();
  service.ResetStats();
  service.set_verify_mode(VerifyMode::kEnforce);
  std::printf("\nmode=%s\n", VerifyModeName(service.verify_mode()));
  RunWorkload(&service, 202, 120);
  PrintVerifyStats(service.verify_stats());
  Expect(service.stats().substitutes == produced_in_log_mode,
         "enforce mode keeps the full substitute set");

  // --- 3: a corrupted substitute is rejected. --------------------------
  std::printf("\ncorrupted substitute:\n");
  bool showed_rejection = false;
  for (ViewId id = 0; id < service.views().num_views() && !showed_rejection;
       ++id) {
    SpjgQuery query = service.views().view(id).query();
    std::vector<Substitute> subs = service.FindSubstitutes(query);
    if (subs.empty()) continue;
    Substitute bad = subs[0];
    bad.predicates.clear();  // drop every compensating predicate
    if (!bad.outputs.empty()) bad.outputs.pop_back();  // and break arity
    Verdict verdict = service.checker().Check(
        query, service.views().view(bad.view_id), bad);
    std::printf("  %s: %s\n", CheckCodeName(verdict.code),
                verdict.detail.c_str());
    Expect(!verdict.proven, "corrupted substitute is rejected");
    showed_rejection = true;
  }
  Expect(showed_rejection, "found a substitute to corrupt");

  // --- 4: structural invariant audits. ---------------------------------
  InvariantAuditor auditor;
  AuditReport tree_report = auditor.AuditFilterTree(service.filter_tree());
  std::printf("\nfilter tree audit: %s\n",
              tree_report.ok() ? "clean" : tree_report.Summary().c_str());
  Expect(tree_report.ok(), "filter tree invariants hold");

  LatticeIndex lattice;
  lattice.Insert({1, 2});
  lattice.Insert({1, 2, 3});
  lattice.Insert({2, 3});
  lattice.Insert({1});
  lattice.Insert({3, 4});
  lattice.Erase({1, 2});
  AuditReport lattice_report = auditor.AuditLattice(lattice);
  std::printf("lattice audit: %s\n",
              lattice_report.ok() ? "clean" : lattice_report.Summary().c_str());
  Expect(lattice_report.ok(), "lattice invariants hold after erase");

  // --- 5: optimizer memo audit. ----------------------------------------
  OptimizerOptions oopts;
  oopts.audit_memo = true;
  Optimizer optimizer(&catalog, &service, oopts);
  tpch::WorkloadGenerator opt_gen(&catalog, 303);
  int audited = 0;
  int clean = 0;
  for (int i = 0; i < 20; ++i) {
    OptimizationResult result = optimizer.Optimize(opt_gen.GenerateQuery());
    ++audited;
    if (result.memo_audit.ok()) {
      ++clean;
    } else {
      std::printf("memo audit violations:\n%s\n",
                  result.memo_audit.Summary().c_str());
    }
  }
  std::printf("memo audit: %d/%d clean\n", clean, audited);
  Expect(clean == audited, "optimizer memos audit clean");

  std::printf("\n%s\n", g_failures == 0 ? "verify driver: all checks passed"
                                        : "verify driver: FAILURES");
  return g_failures == 0 ? 0 : 1;
}
