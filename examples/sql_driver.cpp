// A miniature SQL driver: create materialized views and run queries
// written as SQL text, watching the optimizer rewrite them.
//
//   ./sql_driver                      # runs the built-in demo script
//   ./sql_driver "SELECT ... FROM .." # optimizes one ad-hoc query
//
// Views are created with "CREATE VIEW <name> AS SELECT ..." lines; other
// lines are optimized, executed, and reported.

#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"
#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_exec.h"
#include "query/parser.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"

using namespace mvopt;

namespace {

bool StartsWithNoCase(const std::string& s, const std::string& prefix) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Catalog catalog;
  tpch::Schema schema = tpch::BuildSchema(&catalog, 0.001);
  Database db(&catalog);
  tpch::DataGenOptions dg;
  dg.scale_factor = 0.001;
  tpch::GenerateData(&db, schema, dg);
  MatchingService service(&catalog);
  Optimizer optimizer(&catalog, &service);
  PlanExecutor exec(&db);

  std::vector<std::string> script;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) script.push_back(argv[i]);
  } else {
    script = {
        "CREATE VIEW rev_by_cust AS SELECT o_custkey, COUNT_BIG(*) AS cnt,"
        " SUM(l_quantity * l_extendedprice) AS revenue"
        " FROM lineitem, orders WHERE l_orderkey = o_orderkey"
        " GROUP BY o_custkey",
        "SELECT o_custkey, SUM(l_quantity * l_extendedprice) AS rev"
        " FROM lineitem, orders WHERE l_orderkey = o_orderkey"
        " GROUP BY o_custkey",
        "SELECT c_nationkey, SUM(l_quantity * l_extendedprice) AS rev"
        " FROM lineitem, orders, customer"
        " WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
        " GROUP BY c_nationkey",
        "SELECT l_orderkey, l_quantity FROM lineitem"
        " WHERE l_quantity BETWEEN 10 AND 20",
    };
  }

  for (const std::string& stmt : script) {
    std::printf("\n=== %s\n", stmt.c_str());
    std::string error;
    if (StartsWithNoCase(stmt, "CREATE VIEW ")) {
      size_t as = stmt.find(" AS ");
      if (as == std::string::npos) {
        std::printf("!! missing AS in CREATE VIEW\n");
        continue;
      }
      std::string name = stmt.substr(12, as - 12);
      auto q = ParseSpjg(catalog, stmt.substr(as + 4), &error);
      if (!q.has_value()) {
        std::printf("!! parse error: %s\n", error.c_str());
        continue;
      }
      ViewDefinition* v = service.AddView(name, std::move(*q), &error);
      if (v == nullptr) {
        std::printf("!! not indexable: %s\n", error.c_str());
        continue;
      }
      db.MaterializeView(v);
      std::printf("view '%s' materialized: %lld rows\n", name.c_str(),
                  static_cast<long long>(
                      catalog.table(v->materialized_table()).row_count()));
      continue;
    }
    auto q = ParseSpjg(catalog, stmt, &error);
    if (!q.has_value()) {
      std::printf("!! parse error: %s\n", error.c_str());
      continue;
    }
    OptimizationResult r = optimizer.Optimize(*q);
    if (r.plan == nullptr) {
      std::printf("!! no plan\n");
      continue;
    }
    std::printf("%s", r.plan->ToString(catalog).c_str());
    auto rows = exec.Execute(r.plan);
    std::printf("-> %zu rows, cost %.0f, %s, %lld matching invocations, "
                "%lld substitutes\n",
                rows.size(), r.cost,
                r.uses_view ? "USES MATERIALIZED VIEW" : "base tables only",
                static_cast<long long>(
                    r.metrics.view_matching_invocations),
                static_cast<long long>(r.metrics.substitutes_produced));
  }
  return 0;
}
