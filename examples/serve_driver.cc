// Serving front-end demo + CI smoke driver: stands a ServingService up
// in front of the optimizer, drives it with several concurrent tenants
// (each using the client RetryPolicy), and dumps
//
//   1. a per-outcome admission table (admitted / shed-* counts),
//   2. the degradation-tier trajectory under the applied load,
//   3. the Prometheus exposition of the mvopt_serve_* families.
//
// The default configuration is deliberately under-provisioned (small
// queue, strict per-tenant quota) so every admission outcome is
// exercised in a short run.
//
// Knobs:
//   --views N       views to install            (default MVOPT_BENCH_VIEWS
//                                                or 200)
//   --queries N     submissions per tenant      (default MVOPT_BENCH_QUERIES
//                                                or 200)
//   --tenants N     concurrent tenant threads   (default 3)
//   --workers N     serving worker threads      (default 2)
//   --selfcheck     validate the accounting invariants and metric
//                   exports; exit nonzero on any failure
//   --quiet         suppress the Prometheus dump

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "observe/observe.h"
#include "serve/serving_service.h"

namespace {

using namespace mvopt;

int Fail(const std::string& what) {
  std::fprintf(stderr, "selfcheck FAILED: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvopt;
  using namespace mvopt::bench;

  int num_views = EnvInt("MVOPT_BENCH_VIEWS", 200);
  int queries_per_tenant = EnvInt("MVOPT_BENCH_QUERIES", 200);
  int num_tenants = 3;
  int num_workers = 2;
  bool selfcheck = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--views") == 0 && i + 1 < argc) {
      num_views = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries_per_tenant = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      num_tenants = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      num_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--views N] [--queries N] [--tenants N] "
                   "[--workers N] [--selfcheck] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_tenants < 1) num_tenants = 1;

  Workload workload(num_views, /*num_queries=*/64);
  auto matching = workload.MakeService(num_views, /*use_filter_tree=*/true);

  MetricsRegistry registry;
  ServingOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = 8;
  options.max_in_flight = 4 * num_workers;
  options.default_quota = TokenBucketConfig{/*capacity=*/32,
                                            /*refill_per_second=*/400};
  options.observe.mode = ObserveMode::kCountersOnly;
  options.observe.registry = &registry;
  ServingService service(&workload.catalog(), matching.get(), options);

  // Per-outcome tallies as observed by the clients; compared against the
  // server's own books in --selfcheck.
  std::atomic<int64_t> client_outcomes[kNumAdmissionOutcomes] = {};
  std::atomic<int64_t> retries_spent{0};
  std::atomic<int64_t> gave_up{0};
  std::atomic<int64_t> plans{0};

  std::vector<std::thread> tenants;
  for (int t = 0; t < num_tenants; ++t) {
    tenants.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      RetryPolicyConfig retry_config;
      retry_config.max_attempts = 3;
      retry_config.initial_backoff_seconds = 0.0005;
      retry_config.max_backoff_seconds = 0.01;
      retry_config.seed = 0x5e4 + static_cast<uint64_t>(t);
      for (int i = 0; i < queries_per_tenant; ++i) {
        RetryPolicy retry(retry_config);
        for (;;) {
          ServeRequest req;
          req.query = workload.queries()[
              static_cast<size_t>(i) % workload.queries().size()];
          req.tenant = tenant;
          const ServeResult& result = service.Submit(req)->Wait();
          client_outcomes[static_cast<int>(result.outcome)]
              .fetch_add(1, std::memory_order_relaxed);
          if (result.has_plan) plans.fetch_add(1, std::memory_order_relaxed);
          auto delay = retry.NextDelay(result.outcome, result.error_kind,
                                       result.retry_after_seconds);
          if (!delay.has_value()) {
            if (result.outcome != AdmissionOutcome::kAdmitted ||
                result.error_kind != ServeErrorKind::kNone) {
              gave_up.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          retries_spent.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::duration<double>(*delay));
        }
      }
    });
  }
  for (std::thread& t : tenants) t.join();
  service.Drain();

  const ServingStats stats = service.stats();
  std::printf("# --- admission outcomes "
              "------------------------------------------\n");
  std::printf("%-18s %12s %12s\n", "outcome", "server", "client");
  for (int i = 0; i < kNumAdmissionOutcomes; ++i) {
    std::printf("%-18s %12lld %12lld\n",
                AdmissionOutcomeName(static_cast<AdmissionOutcome>(i)),
                static_cast<long long>(stats.outcomes[static_cast<size_t>(i)]),
                static_cast<long long>(
                    client_outcomes[i].load(std::memory_order_relaxed)));
  }
  std::printf("\nsubmitted=%lld plans=%lld retries=%lld gave_up=%lld "
              "max_queue_depth=%lld final_tier=%s\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(plans.load()),
              static_cast<long long>(retries_spent.load()),
              static_cast<long long>(gave_up.load()),
              static_cast<long long>(stats.max_queue_depth),
              ServingTierName(service.tier()));
  std::printf("tier_escalations=%lld tier_recoveries=%lld "
              "duplicate_publishes=%lld\n",
              static_cast<long long>(stats.tier_escalations),
              static_cast<long long>(stats.tier_recoveries),
              static_cast<long long>(stats.duplicate_publishes));

  if (!quiet) {
    std::printf("\n# --- Prometheus exposition "
                "---------------------------------------\n");
    std::fputs(registry.WritePrometheus().c_str(), stdout);
  }

  if (selfcheck) {
    std::string error;
    const std::string prom = registry.WritePrometheus();
    if (!ValidatePrometheusText(prom, &error)) {
      return Fail("exposition does not parse: " + error);
    }
    if (!ValidateJson(registry.WriteJson(), &error)) {
      return Fail("metrics JSON does not parse: " + error);
    }
    int64_t total_outcomes = 0;
    for (int i = 0; i < kNumAdmissionOutcomes; ++i) {
      const int64_t server = stats.outcomes[static_cast<size_t>(i)];
      const int64_t client = client_outcomes[i].load();
      if (server != client) {
        return Fail(std::string("outcome ") +
                    AdmissionOutcomeName(static_cast<AdmissionOutcome>(i)) +
                    " server/client mismatch: " + std::to_string(server) +
                    " vs " + std::to_string(client));
      }
      total_outcomes += server;
    }
    if (total_outcomes != stats.submitted) {
      return Fail("outcome total " + std::to_string(total_outcomes) +
                  " != submitted " + std::to_string(stats.submitted));
    }
    int64_t total_completions = 0;
    for (int64_t c : stats.completions) total_completions += c;
    if (total_completions !=
        stats.outcomes[static_cast<size_t>(AdmissionOutcome::kAdmitted)]) {
      return Fail("completions != admitted");
    }
    if (stats.duplicate_publishes != 0) {
      return Fail("duplicate publishes observed");
    }
    if (stats.submitted == 0 || plans.load() == 0) {
      return Fail("workload produced no plans");
    }
    std::printf("\nselfcheck OK: %lld submissions, %lld plans\n",
                static_cast<long long>(stats.submitted),
                static_cast<long long>(plans.load()));
  }
  return 0;
}
