// Observability demo + CI smoke driver: runs the TPC-H workload of the
// fig3 experiment with full observability on, then dumps
//
//   1. the Prometheus text exposition of every pipeline metric,
//   2. one query's JSON trace (per-stage wall clock, per-candidate
//      verdicts),
//   3. a per-level filter-tree summary with the end-to-end prune ratio
//      (candidates / (probes x views); the paper's §5 finding is that
//      under 0.4% of views survive the filter at the fig3 config).
//
// Knobs:
//   --views N       views to install        (default MVOPT_BENCH_VIEWS
//                                            or 1000, the fig3 config)
//   --queries N     queries to optimize     (default MVOPT_BENCH_QUERIES
//                                            or 200)
//   --mode M        off | counters | full-trace   (default full-trace)
//   --cross-check M off | log | enforce   (default off): replay every
//                   compiled verdict against the generic oracle
//   --selfcheck     validate the exports and mandatory metrics — among
//                   them the two-tier accounting invariant
//                   compiled_hits + compiled_fallbacks == full_tests and
//                   zero cross-check mismatches; exit nonzero on any
//                   failure (the CI metrics smoke step)
//   --quiet         suppress the full exposition/trace dumps

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness.h"
#include "observe/observe.h"
#include "observe/trace.h"

namespace {

using namespace mvopt;

int Fail(const std::string& what) {
  std::fprintf(stderr, "selfcheck FAILED: %s\n", what.c_str());
  return 1;
}

/// Mandatory families: present and non-negative (probe/optimize counters
/// must be positive after a workload run).
int SelfCheck(const MetricsRegistry& registry, const MatchingStats& stats) {
  const int64_t invocations = stats.invocations;
  std::string error;
  const std::string prom = registry.WritePrometheus();
  if (!ValidatePrometheusText(prom, &error)) {
    return Fail("exposition does not parse: " + error);
  }
  const std::string json = registry.WriteJson();
  if (!ValidateJson(json, &error)) {
    return Fail("metrics JSON does not parse: " + error);
  }
  struct Required {
    const char* name;
    bool positive;  // must be > 0 (vs merely present and >= 0)
  };
  const Required required[] = {
      {"mvopt_probe_invocations_total", true},
      {"mvopt_probe_candidates_total", false},
      {"mvopt_probe_full_tests_total", false},
      {"mvopt_probe_substitutes_total", false},
      {"mvopt_optimize_total", true},
      {"mvopt_memo_groups_total", true},
      {"mvopt_memo_exprs_total", true},
      {"mvopt_view_matching_invocations_total", true},
  };
  for (const Required& req : required) {
    std::optional<int64_t> v = registry.CounterValue(req.name);
    if (!v.has_value()) {
      return Fail(std::string(req.name) + " is not registered");
    }
    if (*v < 0) return Fail(std::string(req.name) + " is negative");
    if (req.positive && *v == 0) {
      return Fail(std::string(req.name) + " is zero after the workload");
    }
  }
  const char* families[] = {"mvopt_match_rejects_total",
                            "mvopt_filter_level_probes_total",
                            "mvopt_filter_level_visits_total",
                            "mvopt_lifecycle_transitions_total"};
  for (const char* family : families) {
    if (registry.SumFamily(family) < 0) {
      return Fail(std::string(family) + " family sum is negative");
    }
  }
  if (registry.SumFamily("mvopt_filter_level_probes_total") == 0) {
    return Fail("no filter-level probes recorded");
  }
  if (invocations == 0) {
    return Fail("MatchingService recorded no invocations");
  }
  // Two-tier accounting: every candidate that reached the match stage
  // was decided by exactly one tier, in both the service stats and the
  // exported counters, and no compiled verdict disagreed with the
  // oracle.
  if (stats.compiled_hits + stats.compiled_fallbacks != stats.full_tests) {
    return Fail("tier accounting broken: compiled_hits " +
                std::to_string(stats.compiled_hits) + " + fallbacks " +
                std::to_string(stats.compiled_fallbacks) + " != full_tests " +
                std::to_string(stats.full_tests));
  }
  const int64_t hits =
      registry.CounterValue("mvopt_match_compiled_hits_total").value_or(-1);
  const int64_t fallbacks =
      registry.CounterValue("mvopt_match_compiled_fallbacks_total")
          .value_or(-1);
  if (hits != stats.compiled_hits || fallbacks != stats.compiled_fallbacks) {
    return Fail("exported tier counters disagree with the service stats");
  }
  if (stats.cross_check_mismatches != 0) {
    return Fail("cross-check found " +
                std::to_string(stats.cross_check_mismatches) +
                " compiled/generic mismatches");
  }
  std::printf("selfcheck OK: %zu counters, %zu histograms\n",
              registry.num_counters(), registry.num_histograms());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvopt;
  using namespace mvopt::bench;

  int num_views = EnvInt("MVOPT_BENCH_VIEWS", 1000);
  int num_queries = EnvInt("MVOPT_BENCH_QUERIES", 200);
  ObserveMode mode = ObserveMode::kFullTrace;
  MatchCrossCheck cross_check = MatchCrossCheck::kOff;
  bool selfcheck = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--views") == 0 && i + 1 < argc) {
      num_views = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      num_queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      mode = std::strcmp(m, "off") == 0         ? ObserveMode::kOff
             : std::strcmp(m, "counters") == 0  ? ObserveMode::kCountersOnly
                                                : ObserveMode::kFullTrace;
    } else if (std::strcmp(argv[i], "--cross-check") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      cross_check = std::strcmp(m, "log") == 0       ? MatchCrossCheck::kLog
                    : std::strcmp(m, "enforce") == 0 ? MatchCrossCheck::kEnforce
                                                     : MatchCrossCheck::kOff;
    } else if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--views N] [--queries N] "
                   "[--mode off|counters|full-trace] "
                   "[--cross-check off|log|enforce] [--selfcheck] "
                   "[--quiet]\n",
                   argv[0]);
      return 2;
    }
  }

  MetricsRegistry registry;
  ObserveOptions observe;
  observe.mode = mode;
  observe.registry = &registry;

  Workload workload(num_views, num_queries);
  MatchingService::Options sopts;
  sopts.observe = observe;
  sopts.cross_check = cross_check;
  auto service = workload.MakeService(num_views, sopts);

  OptimizerOptions oopts;
  oopts.observe = observe;
  Optimizer optimizer(&workload.catalog(), service.get(), oopts);

  std::shared_ptr<QueryTrace> sample_trace;
  int64_t plans_using_views = 0;
  for (const SpjgQuery& q : workload.queries()) {
    OptimizationResult r = optimizer.Optimize(q);
    if (r.uses_view) ++plans_using_views;
    // Keep the most interesting trace: prefer one whose plan used a view.
    if (r.trace != nullptr &&
        (sample_trace == nullptr || r.uses_view)) {
      sample_trace = r.trace;
      if (r.uses_view) continue;
    }
  }

  const MatchingStats stats = service->stats();
  if (!quiet) {
    std::printf("# --- Prometheus exposition "
                "---------------------------------------\n");
    std::fputs(registry.WritePrometheus().c_str(), stdout);
    if (sample_trace != nullptr) {
      std::printf("\n# --- sample query trace (JSON) "
                  "-----------------------------------\n");
      std::printf("%s\n", sample_trace->ToJson().c_str());
    }
  }

  std::printf("\n# --- filter-tree effectiveness "
              "-----------------------------------\n");
  std::printf("%-20s %14s %14s\n", "level", "probes", "qualifying");
  for (int i = 0; i < kNumFilterLevels; ++i) {
    const char* level = FilterLevelName(static_cast<FilterLevel>(i));
    const int64_t probes =
        registry.CounterValue("mvopt_filter_level_probes_total",
                              {{"level", level}})
            .value_or(0);
    const int64_t visits =
        registry.CounterValue("mvopt_filter_level_visits_total",
                              {{"level", level}})
            .value_or(0);
    std::printf("%-20s %14lld %14lld\n", level,
                static_cast<long long>(probes),
                static_cast<long long>(visits));
  }
  const double prune_ratio =
      stats.invocations > 0 && num_views > 0
          ? static_cast<double>(stats.candidates) /
                (static_cast<double>(stats.invocations) * num_views)
          : 0.0;
  std::printf("\nviews=%d queries=%d probes=%lld candidates=%lld "
              "full_tests=%lld substitutes=%lld plans_using_views=%lld\n",
              num_views, num_queries,
              static_cast<long long>(stats.invocations),
              static_cast<long long>(stats.candidates),
              static_cast<long long>(stats.full_tests),
              static_cast<long long>(stats.substitutes),
              static_cast<long long>(plans_using_views));
  std::printf("prune ratio (candidates / (probes x views)): %.4f%%\n",
              prune_ratio * 100.0);
  std::printf("match tiers: compiled_hits=%lld compiled_fallbacks=%lld "
              "(hits + fallbacks == full_tests: %s) "
              "cross_check=%s mismatches=%lld\n",
              static_cast<long long>(stats.compiled_hits),
              static_cast<long long>(stats.compiled_fallbacks),
              stats.compiled_hits + stats.compiled_fallbacks ==
                      stats.full_tests
                  ? "yes"
                  : "NO",
              MatchCrossCheckName(cross_check),
              static_cast<long long>(stats.cross_check_mismatches));

  if (selfcheck) {
    if (mode == ObserveMode::kOff) {
      std::fprintf(stderr, "selfcheck requires counters; use --mode "
                           "counters or full-trace\n");
      return 2;
    }
    std::string error;
    if (sample_trace != nullptr &&
        !ValidateJson(sample_trace->ToJson(), &error)) {
      return Fail("trace JSON does not parse: " + error);
    }
    return SelfCheck(registry, stats);
  }
  return 0;
}
