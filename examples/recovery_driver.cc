// Crash-recovery driver for the durable view catalog, built for the
// kill-at-every-failpoint CI loop (tools/ci/run_crash_recovery.sh).
//
// Modes:
//   recovery_driver seed <dir> <nviews>
//       Creates a fresh store in <dir> and registers <nviews> workload
//       views through the WAL. Exits 0.
//   recovery_driver crash <dir> <site> <iter>
//       Recovers the catalog from <dir>, arms the given failpoint site,
//       attempts a checkpoint and one more registration, records the
//       acknowledged outcome in <dir>/committed.txt / uncommitted.txt,
//       then dies with _exit(42) — no destructors, no flushes, exactly
//       the state a kill at that site leaves on disk.
//   recovery_driver verify <dir>
//       Recovers the catalog and asserts: nothing quarantined, every
//       name in committed.txt present, every name in uncommitted.txt
//       absent, the filter tree audits green, and probes pass the
//       rewrite soundness checker. Exits 0 on success, 1 on any
//       violation (with a diagnostic on stderr).
//
// Sharded-catalog modes (shard/sharded_catalog_service.h) mirror the
// three above over a fixed 4-shard layout at <dir>/shard_<i>:
//   recovery_driver seed-sharded <dir> <nviews>
//   recovery_driver crash-sharded <dir> <site> <iter>
//       Recovers all shards in parallel, arms <site>, then walks the
//       whole shard lifecycle while armed — a second recovery pass, a
//       fleet checkpoint, a routed registration, and a forced-quarantine
//       scrub — so every catalog_shard.* (and catalog_store.*) site in
//       the matrix is reachable. Dies with _exit(42).
//   recovery_driver verify-sharded <dir>
//       Parallel recovery must come back all-healthy (crash artifacts
//       are recoverable by design); the ShardRecoveryReport JSON must
//       validate structurally; manifests must hold; every shard's
//       filter tree must audit green; 50 workload queries must produce
//       plans byte-identical to an unsharded control catalog built from
//       the same views; and the enforce-mode checker must reject
//       nothing.
//
// Utility modes:
//   recovery_driver rot <file> <offset>
//       Flips (XORs with 0xFF) one byte at <offset> (negative counts
//       from the end) — the bit-rot injector for corruption tests.
//   recovery_driver list-failpoints
//       Prints every compiled-in failpoint site, one per line; CI
//       scripts validate their kill matrices against it so a typo'd
//       site name fails loudly instead of testing nothing.
//
// The manifest files are the crash-consistency oracle: the crash run
// appends a view's name to committed.txt only after the registration
// was acknowledged (or failed with durable()==true), and fsyncs the
// manifest before dying, so a later verify run knows exactly which
// registrations the "application" was promised.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "index/matching_service.h"
#include "optimizer/optimizer.h"
#include "rewrite/catalog_store.h"
#include "shard/sharded_catalog_service.h"
#include "tpch/schema.h"
#include "tpch/workload.h"
#include "verify/invariant_auditor.h"

namespace {

using namespace mvopt;

constexpr uint64_t kWorkloadSeed = 31;
constexpr int kNumShards = 4;
constexpr int kRecoveryWorkers = 3;

/// Appends one line and fsyncs, so the record survives the _exit(42).
void AppendManifestLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
}

std::vector<std::string> ReadManifest(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

int RunSeed(const std::string& dir, int nviews) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed);
  MatchingService service(&catalog);
  CatalogStore store(dir);
  service.AttachStore(&store);
  for (int i = 0; i < nviews; ++i) {
    std::string name = "seed" + std::to_string(i);
    std::string error;
    if (service.AddView(name, gen.GenerateView(), &error) == nullptr) {
      std::cerr << "seed: registration of " << name << " failed: " << error
                << "\n";
      return 1;
    }
    AppendManifestLine(dir + "/committed.txt", name);
  }
  std::cout << "seeded " << nviews << " views into " << dir << "\n";
  return 0;
}

int RunCrash(const std::string& dir, const std::string& site, int iter) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  MatchingService service(&catalog);
  CatalogStore store(dir);
  RecoveryReport report = service.RecoverFrom(&store);
  if (!report.quarantined.empty()) {
    std::cerr << "crash: pre-existing quarantine: " << report.ToJson() << "\n";
    return 1;
  }

  // A per-iteration definition stream so armed views differ run to run.
  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed + 1000 + iter);
  FailpointRegistry::Instance().Enable(site);

  // Snapshot-protocol sites fire inside the checkpoint, WAL sites inside
  // the append; run both so every site in the matrix is reachable.
  try {
    service.Checkpoint();
  } catch (const StoreIoError&) {
    // Either the new snapshot installed atomically or the old state is
    // intact — both recover; the checkpoint moves no views.
  }
  std::string name = "armed_" + site + "_" + std::to_string(iter);
  std::string error;
  ViewDefinition* v = service.AddView(name, gen.GenerateView(), &error);
  if (v != nullptr) {
    // Acknowledged (or durable ambiguous commit): must survive.
    AppendManifestLine(dir + "/committed.txt", name);
  } else {
    AppendManifestLine(dir + "/uncommitted.txt", name);
  }
  // Die hard: no Close(), no destructors — the files keep exactly the
  // bytes that reached them before and during the injected fault.
  ::_exit(42);
}

int RunVerify(const std::string& dir) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  MatchingService::Options options;
  options.verify_mode = VerifyMode::kEnforce;
  MatchingService service(&catalog, options);
  CatalogStore store(dir);
  RecoveryReport report = service.RecoverFrom(&store);

  int failures = 0;
  if (!report.quarantined.empty()) {
    std::cerr << "verify: quarantined entries after crash recovery: "
              << report.ToJson() << "\n";
    ++failures;
  }
  std::unordered_set<std::string> committed;
  for (const std::string& name : ReadManifest(dir + "/committed.txt")) {
    committed.insert(name);
    if (service.views().FindView(name) == nullptr) {
      std::cerr << "verify: committed view lost: " << name << "\n";
      ++failures;
    }
  }
  for (const std::string& name : ReadManifest(dir + "/uncommitted.txt")) {
    if (committed.count(name) > 0) continue;  // later retry committed it
    if (service.views().FindView(name) != nullptr) {
      std::cerr << "verify: uncommitted view resurrected: " << name << "\n";
      ++failures;
    }
  }

  InvariantAuditor auditor;
  AuditReport audit = auditor.AuditFilterTree(service.filter_tree());
  if (!audit.ok()) {
    std::cerr << "verify: invariant audit failed:\n" << audit.Summary();
    ++failures;
  }

  // Probe the rebuilt catalog in enforce mode: every substitute the
  // recovered filter tree and matcher produce must pass the soundness
  // checker.
  tpch::WorkloadGenerator query_gen(&catalog, kWorkloadSeed + 77777);
  for (int i = 0; i < 50; ++i) {
    (void)service.FindSubstitutes(query_gen.GenerateQuery());
  }
  VerifyStats vs = service.verify_stats();
  if (vs.rejected > 0) {
    std::cerr << "verify: rewrite checker rejected " << vs.rejected
              << " substitute(s) after recovery:\n";
    for (const std::string& trace : vs.rejection_traces) {
      std::cerr << "  " << trace << "\n";
    }
    ++failures;
  }

  if (failures > 0) return 1;
  std::cout << "verified " << service.views().num_views()
            << " views (checked=" << vs.checked << ", proven=" << vs.proven
            << ", wal_bytes_truncated=" << report.wal_bytes_truncated << ")\n";
  return 0;
}

ShardedCatalogOptions ShardedOptions(const std::string& dir) {
  ShardedCatalogOptions options;
  options.num_shards = kNumShards;
  options.dir = dir;
  return options;
}

int RunSeedSharded(const std::string& dir, int nviews) {
  ::mkdir(dir.c_str(), 0755);  // shard stores create their own subdirs
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed);
  ShardedCatalogService service(&catalog, ShardedOptions(dir));
  for (int i = 0; i < nviews; ++i) {
    std::string name = "seed" + std::to_string(i);
    std::string error;
    if (service.AddView(name, gen.GenerateView(), &error) == kInvalidViewId) {
      std::cerr << "seed-sharded: registration of " << name
                << " failed: " << error << "\n";
      return 1;
    }
    AppendManifestLine(dir + "/committed.txt", name);
  }
  std::cout << "seeded " << nviews << " views across " << kNumShards
            << " shards in " << dir << "\n";
  return 0;
}

int RunCrashSharded(const std::string& dir, const std::string& site,
                    int iter) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  ShardedCatalogService service(&catalog, ShardedOptions(dir));
  ThreadPool pool(kRecoveryWorkers);
  ShardRecoveryReport clean = service.RecoverAll(&pool);
  if (!clean.all_healthy()) {
    std::cerr << "crash-sharded: pre-existing quarantine: " << clean.ToJson()
              << "\n";
    return 1;
  }

  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed + 1000 + iter);
  FailpointRegistry::Instance().Enable(site);

  // Walk the whole shard lifecycle while armed, so every site class is
  // reachable whichever one the matrix picked: recovery-task sites fire
  // in the second recovery pass, checkpoint/snapshot sites in the fleet
  // checkpoint, routing and WAL sites in the registration, and the
  // scrub sites in the forced-quarantine repair.
  (void)service.RecoverAll(&pool);
  (void)service.CheckpointAll();

  std::string name = "armed_" + site + "_" + std::to_string(iter);
  std::string error;
  const ViewId id = service.AddView(name, gen.GenerateView(), &error);
  if (id != kInvalidViewId) {
    AppendManifestLine(dir + "/committed.txt", name);
  } else {
    AppendManifestLine(dir + "/uncommitted.txt", name);
  }

  service.ForceQuarantine(1 % kNumShards, ShardQuarantineCause::kForced,
                          "crash-driver scrub arming");
  (void)service.ScrubTick();

  // Die hard: no Close(), no destructors — the shard stores keep exactly
  // the bytes that reached them before and during the injected fault.
  ::_exit(42);
}

int RunVerifySharded(const std::string& dir) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  ShardedCatalogOptions options = ShardedOptions(dir);
  options.service.verify_mode = VerifyMode::kEnforce;
  ShardedCatalogService service(&catalog, options);
  ThreadPool pool(kRecoveryWorkers);
  ShardRecoveryReport report = service.RecoverAll(&pool);

  int failures = 0;
  const std::string json = report.ToJson();
  std::string jerr;
  if (!ValidateShardRecoveryReportJson(json, &jerr)) {
    std::cerr << "verify-sharded: report JSON invalid: " << jerr << "\n"
              << json << "\n";
    ++failures;
  }
  if (!report.all_healthy()) {
    // A crash leaves only recoverable artifacts (torn tails, overlap);
    // any quarantine here means fault isolation ate durable state.
    std::cerr << "verify-sharded: shards quarantined after crash recovery: "
              << json << "\n";
    ++failures;
  }

  auto view_present = [&service](const std::string& name) {
    for (int s = 0; s < service.num_shards(); ++s) {
      if (service.shard_service(s).views().FindView(name) != nullptr) {
        return true;
      }
    }
    return false;
  };
  std::unordered_set<std::string> committed;
  for (const std::string& name : ReadManifest(dir + "/committed.txt")) {
    committed.insert(name);
    if (!view_present(name)) {
      std::cerr << "verify-sharded: committed view lost: " << name << "\n";
      ++failures;
    }
  }
  for (const std::string& name : ReadManifest(dir + "/uncommitted.txt")) {
    if (committed.count(name) > 0) continue;  // later retry committed it
    if (view_present(name)) {
      std::cerr << "verify-sharded: uncommitted view resurrected: " << name
                << "\n";
      ++failures;
    }
  }

  InvariantAuditor auditor;
  for (int s = 0; s < service.num_shards(); ++s) {
    AuditReport audit =
        auditor.AuditFilterTree(service.shard_service(s).filter_tree());
    if (!audit.ok()) {
      std::cerr << "verify-sharded: shard " << s << " audit failed:\n"
                << audit.Summary();
      ++failures;
    }
  }

  // Byte-identity: an unsharded control catalog holding the same views
  // (in shard-major order, matching the sharded merge order) must
  // produce the same plan text for every workload query.
  MatchingService control(&catalog, options.service);
  for (int s = 0; s < service.num_shards(); ++s) {
    const ViewCatalog& views = service.shard_service(s).views();
    for (int i = 0; i < views.num_views(); ++i) {
      const ViewDefinition& view = views.view(i);
      std::string error;
      if (control.AddView(view.name(), view.query(), &error) == nullptr) {
        std::cerr << "verify-sharded: control registration of "
                  << view.name() << " failed: " << error << "\n";
        ++failures;
      }
    }
  }
  Optimizer sharded_opt(&catalog, &service);
  Optimizer control_opt(&catalog, &control);
  tpch::WorkloadGenerator query_gen(&catalog, kWorkloadSeed + 77777);
  int plan_mismatches = 0;
  for (int i = 0; i < 50; ++i) {
    const SpjgQuery query = query_gen.GenerateQuery();
    QueryContext sharded_ctx;
    QueryContext control_ctx;
    const std::string sharded_plan =
        sharded_opt.Optimize(query, sharded_ctx).plan->ToString(catalog);
    const std::string control_plan =
        control_opt.Optimize(query, control_ctx).plan->ToString(catalog);
    if (sharded_plan != control_plan && ++plan_mismatches <= 3) {
      std::cerr << "verify-sharded: plan mismatch on query " << i
                << "\n--- sharded ---\n"
                << sharded_plan << "--- control ---\n"
                << control_plan;
    }
  }
  if (plan_mismatches > 0) {
    std::cerr << "verify-sharded: " << plan_mismatches
              << " of 50 plans differ from the unsharded control\n";
    ++failures;
  }

  VerifyStats vs = service.verify_stats();
  if (vs.rejected > 0) {
    std::cerr << "verify-sharded: rewrite checker rejected " << vs.rejected
              << " substitute(s) after recovery:\n";
    for (const std::string& trace : vs.rejection_traces) {
      std::cerr << "  " << trace << "\n";
    }
    ++failures;
  }

  if (failures > 0) return 1;
  int total_views = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    total_views += service.shard_service(s).views().num_views();
  }
  std::cout << "verified " << total_views << " views across " << kNumShards
            << " shards (checked=" << vs.checked << ", proven=" << vs.proven
            << ", plans=50 byte-identical)\n";
  return 0;
}

int RunRot(const std::string& path, long long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    std::perror(path.c_str());
    return 1;
  }
  std::fseek(f, 0, SEEK_END);
  const long long size = std::ftell(f);
  if (offset < 0) offset += size;
  if (offset < 0 || offset >= size) {
    std::cerr << "rot: offset " << offset << " out of range for " << path
              << " (" << size << " bytes)\n";
    std::fclose(f);
    return 1;
  }
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  std::fputc(byte ^ 0xFF, f);
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  std::cout << "flipped byte at offset " << offset << " in " << path << "\n";
  return 0;
}

int RunListFailpoints() {
  for (const char* site : kFailpointSites) {
    std::cout << site << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "seed") == 0) {
    return RunSeed(argv[2], std::atoi(argv[3]));
  }
  if (argc >= 5 && std::strcmp(argv[1], "crash") == 0) {
    return RunCrash(argv[2], argv[3], std::atoi(argv[4]));
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0) {
    return RunVerify(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "seed-sharded") == 0) {
    return RunSeedSharded(argv[2], std::atoi(argv[3]));
  }
  if (argc >= 5 && std::strcmp(argv[1], "crash-sharded") == 0) {
    return RunCrashSharded(argv[2], argv[3], std::atoi(argv[4]));
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify-sharded") == 0) {
    return RunVerifySharded(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "rot") == 0) {
    return RunRot(argv[2], std::atoll(argv[3]));
  }
  if (argc >= 2 && std::strcmp(argv[1], "list-failpoints") == 0) {
    return RunListFailpoints();
  }
  std::cerr << "usage:\n"
            << "  " << argv[0] << " seed <dir> <nviews>\n"
            << "  " << argv[0] << " crash <dir> <failpoint-site> <iter>\n"
            << "  " << argv[0] << " verify <dir>\n"
            << "  " << argv[0] << " seed-sharded <dir> <nviews>\n"
            << "  " << argv[0]
            << " crash-sharded <dir> <failpoint-site> <iter>\n"
            << "  " << argv[0] << " verify-sharded <dir>\n"
            << "  " << argv[0] << " rot <file> <offset>\n"
            << "  " << argv[0] << " list-failpoints\n";
  return 2;
}
