// Crash-recovery driver for the durable view catalog, built for the
// kill-at-every-failpoint CI loop (tools/ci/run_crash_recovery.sh).
//
// Modes:
//   recovery_driver seed <dir> <nviews>
//       Creates a fresh store in <dir> and registers <nviews> workload
//       views through the WAL. Exits 0.
//   recovery_driver crash <dir> <site> <iter>
//       Recovers the catalog from <dir>, arms the given failpoint site,
//       attempts a checkpoint and one more registration, records the
//       acknowledged outcome in <dir>/committed.txt / uncommitted.txt,
//       then dies with _exit(42) — no destructors, no flushes, exactly
//       the state a kill at that site leaves on disk.
//   recovery_driver verify <dir>
//       Recovers the catalog and asserts: nothing quarantined, every
//       name in committed.txt present, every name in uncommitted.txt
//       absent, the filter tree audits green, and probes pass the
//       rewrite soundness checker. Exits 0 on success, 1 on any
//       violation (with a diagnostic on stderr).
//
// The manifest files are the crash-consistency oracle: the crash run
// appends a view's name to committed.txt only after the registration
// was acknowledged (or failed with durable()==true), and fsyncs the
// manifest before dying, so a later verify run knows exactly which
// registrations the "application" was promised.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/failpoint.h"
#include "index/matching_service.h"
#include "rewrite/catalog_store.h"
#include "tpch/schema.h"
#include "tpch/workload.h"
#include "verify/invariant_auditor.h"

namespace {

using namespace mvopt;

constexpr uint64_t kWorkloadSeed = 31;

/// Appends one line and fsyncs, so the record survives the _exit(42).
void AppendManifestLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
}

std::vector<std::string> ReadManifest(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

int RunSeed(const std::string& dir, int nviews) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed);
  MatchingService service(&catalog);
  CatalogStore store(dir);
  service.AttachStore(&store);
  for (int i = 0; i < nviews; ++i) {
    std::string name = "seed" + std::to_string(i);
    std::string error;
    if (service.AddView(name, gen.GenerateView(), &error) == nullptr) {
      std::cerr << "seed: registration of " << name << " failed: " << error
                << "\n";
      return 1;
    }
    AppendManifestLine(dir + "/committed.txt", name);
  }
  std::cout << "seeded " << nviews << " views into " << dir << "\n";
  return 0;
}

int RunCrash(const std::string& dir, const std::string& site, int iter) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  MatchingService service(&catalog);
  CatalogStore store(dir);
  RecoveryReport report = service.RecoverFrom(&store);
  if (!report.quarantined.empty()) {
    std::cerr << "crash: pre-existing quarantine: " << report.ToJson() << "\n";
    return 1;
  }

  // A per-iteration definition stream so armed views differ run to run.
  tpch::WorkloadGenerator gen(&catalog, kWorkloadSeed + 1000 + iter);
  FailpointRegistry::Instance().Enable(site);

  // Snapshot-protocol sites fire inside the checkpoint, WAL sites inside
  // the append; run both so every site in the matrix is reachable.
  try {
    service.Checkpoint();
  } catch (const StoreIoError&) {
    // Either the new snapshot installed atomically or the old state is
    // intact — both recover; the checkpoint moves no views.
  }
  std::string name = "armed_" + site + "_" + std::to_string(iter);
  std::string error;
  ViewDefinition* v = service.AddView(name, gen.GenerateView(), &error);
  if (v != nullptr) {
    // Acknowledged (or durable ambiguous commit): must survive.
    AppendManifestLine(dir + "/committed.txt", name);
  } else {
    AppendManifestLine(dir + "/uncommitted.txt", name);
  }
  // Die hard: no Close(), no destructors — the files keep exactly the
  // bytes that reached them before and during the injected fault.
  ::_exit(42);
}

int RunVerify(const std::string& dir) {
  Catalog catalog;
  [[maybe_unused]] tpch::Schema schema = tpch::BuildSchema(&catalog, 0.5);
  MatchingService::Options options;
  options.verify_mode = VerifyMode::kEnforce;
  MatchingService service(&catalog, options);
  CatalogStore store(dir);
  RecoveryReport report = service.RecoverFrom(&store);

  int failures = 0;
  if (!report.quarantined.empty()) {
    std::cerr << "verify: quarantined entries after crash recovery: "
              << report.ToJson() << "\n";
    ++failures;
  }
  std::unordered_set<std::string> committed;
  for (const std::string& name : ReadManifest(dir + "/committed.txt")) {
    committed.insert(name);
    if (service.views().FindView(name) == nullptr) {
      std::cerr << "verify: committed view lost: " << name << "\n";
      ++failures;
    }
  }
  for (const std::string& name : ReadManifest(dir + "/uncommitted.txt")) {
    if (committed.count(name) > 0) continue;  // later retry committed it
    if (service.views().FindView(name) != nullptr) {
      std::cerr << "verify: uncommitted view resurrected: " << name << "\n";
      ++failures;
    }
  }

  InvariantAuditor auditor;
  AuditReport audit = auditor.AuditFilterTree(service.filter_tree());
  if (!audit.ok()) {
    std::cerr << "verify: invariant audit failed:\n" << audit.Summary();
    ++failures;
  }

  // Probe the rebuilt catalog in enforce mode: every substitute the
  // recovered filter tree and matcher produce must pass the soundness
  // checker.
  tpch::WorkloadGenerator query_gen(&catalog, kWorkloadSeed + 77777);
  for (int i = 0; i < 50; ++i) {
    (void)service.FindSubstitutes(query_gen.GenerateQuery());
  }
  VerifyStats vs = service.verify_stats();
  if (vs.rejected > 0) {
    std::cerr << "verify: rewrite checker rejected " << vs.rejected
              << " substitute(s) after recovery:\n";
    for (const std::string& trace : vs.rejection_traces) {
      std::cerr << "  " << trace << "\n";
    }
    ++failures;
  }

  if (failures > 0) return 1;
  std::cout << "verified " << service.views().num_views()
            << " views (checked=" << vs.checked << ", proven=" << vs.proven
            << ", wal_bytes_truncated=" << report.wal_bytes_truncated << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "seed") == 0) {
    return RunSeed(argv[2], std::atoi(argv[3]));
  }
  if (argc >= 5 && std::strcmp(argv[1], "crash") == 0) {
    return RunCrash(argv[2], argv[3], std::atoi(argv[4]));
  }
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0) {
    return RunVerify(argv[2]);
  }
  std::cerr << "usage:\n"
            << "  " << argv[0] << " seed <dir> <nviews>\n"
            << "  " << argv[0] << " crash <dir> <failpoint-site> <iter>\n"
            << "  " << argv[0] << " verify <dir>\n";
  return 2;
}
